// Resilient-execution layer (DESIGN.md §5f): cooperative cancellation at
// every level of the stack, deterministic fault injection, shard
// retry-with-quarantine bit-identity, the ProgramValidator pre-flight pass,
// and the run_batch_resilient facade.
#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <stdexcept>
#include <vector>

#include "core/batch_runner.h"
#include "core/simulator.h"
#include "eventsim/event_sim.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "lcc/lcc.h"
#include "netlist/diagnostics.h"
#include "obs/metrics.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "resilience/cancel.h"
#include "resilience/fault_injection.h"
#include "resilience/program_validator.h"
#include "resilience/resilient_run.h"

namespace udsim {
namespace {

Netlist test_dag(std::uint64_t seed) {
  RandomDagParams p;
  p.name = "resil" + std::to_string(seed);
  p.inputs = 8;
  p.outputs = 6;
  p.gates = 120;
  p.depth = 8;
  p.seed = seed;
  p.reach = 1.6;
  return random_dag(p);
}

std::vector<std::uint64_t> random_inputs(std::size_t pis, std::size_t count,
                                         std::uint64_t seed) {
  RandomVectorSource src(pis, seed);
  std::vector<Bit> row(pis);
  std::vector<std::uint64_t> in(pis * count);
  for (std::size_t v = 0; v < count; ++v) {
    src.next(row);
    for (std::size_t i = 0; i < pis; ++i) in[v * pis + i] = row[i];
  }
  return in;
}

std::vector<Bit> bit_stream(std::size_t pis, std::size_t count,
                            std::uint64_t seed) {
  RandomVectorSource src(pis, seed);
  std::vector<Bit> flat(pis * count);
  for (std::size_t v = 0; v < count; ++v) {
    src.next(std::span<Bit>(flat.data() + v * pis, pis));
  }
  return flat;
}

struct LccCase {
  Program program;
  std::vector<ArenaProbe> probes;
};

LccCase lcc_case(const Netlist& nl) {
  LccCase c;
  LccCompiled lcc = compile_lcc(nl);
  for (NetId po : nl.primary_outputs()) c.probes.push_back({lcc.net_var[po.value], 0});
  c.program = std::move(lcc.program);
  return c;
}

// ---- token and poll --------------------------------------------------------

TEST(CancelToken, CancelIsStickyAndDeadlineIsSeparate) {
  CancelToken t;
  EXPECT_EQ(t.stop_reason(), StopReason::None);
  EXPECT_FALSE(t.has_deadline());
  t.request_cancel();
  EXPECT_TRUE(t.cancel_requested());
  EXPECT_EQ(t.stop_reason(), StopReason::Cancelled);

  CancelToken d;
  d.set_deadline_after(std::chrono::nanoseconds(0));
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.deadline_expired());
  EXPECT_EQ(d.stop_reason(), StopReason::Deadline);
  d.clear_deadline();
  EXPECT_EQ(d.stop_reason(), StopReason::None);
}

TEST(CancelPoll, NullTokenAlwaysRunsAndDeadlineIsStrideAmortized) {
  CancelPoll null_poll(nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(null_poll.poll(), StopReason::None);

  CancelToken t;
  t.set_deadline_after(std::chrono::nanoseconds(0));
  CancelPoll poll(&t);
  // The clock is only read every kClockStride polls; force_clock_check makes
  // the very next poll see the expired deadline.
  poll.force_clock_check();
  EXPECT_EQ(poll.poll(), StopReason::Deadline);
  // Cancellation is checked on *every* poll, stride or not.
  CancelToken c;
  CancelPoll cpoll(&c);
  EXPECT_EQ(cpoll.poll(), StopReason::None);
  c.request_cancel();
  EXPECT_EQ(cpoll.poll(), StopReason::Cancelled);
}

TEST(CancelToken, CancelledExceptionCarriesStructuredFields) {
  const Cancelled e(StopReason::Deadline, "kernel.run", 42);
  EXPECT_EQ(e.reason(), StopReason::Deadline);
  EXPECT_EQ(e.site(), "kernel.run");
  EXPECT_EQ(e.vector_index(), 42u);
  EXPECT_NE(std::string(e.what()).find("kernel.run"), std::string::npos);
  EXPECT_EQ(stop_reason_name(StopReason::Cancelled), "cancelled");
}

// ---- engines honor the token ----------------------------------------------

TEST(Cancellation, KernelRunnerStopsBetweenPassesWithConsistentArena) {
  const Netlist nl = test_dag(1);
  const LccCase c = lcc_case(nl);
  const auto in = random_inputs(nl.primary_inputs().size(), 4, 11);
  CancelToken token;
  KernelRunner<std::uint32_t> runner(c.program);
  runner.set_cancel(&token);
  std::vector<std::uint32_t> row(c.program.input_words);
  for (std::size_t i = 0; i < row.size(); ++i) row[i] = static_cast<std::uint32_t>(in[i]);
  runner.run(row);
  EXPECT_EQ(runner.passes(), 1u);
  std::vector<std::uint64_t> settled;
  runner.save_arena(settled);

  token.request_cancel();
  try {
    runner.run(row);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_EQ(e.reason(), StopReason::Cancelled);
    EXPECT_EQ(e.site(), "kernel.run");
  }
  // The stop happened *before* the pass: passes and arena are untouched.
  EXPECT_EQ(runner.passes(), 1u);
  std::vector<std::uint64_t> after;
  runner.save_arena(after);
  EXPECT_EQ(after, settled);
}

TEST(Cancellation, EventEnginesStopBetweenVectors) {
  const Netlist nl = test_dag(2);
  std::vector<Bit> row(nl.primary_inputs().size(), 1);
  EventSim2 e2(nl);
  CancelToken token;
  e2.set_cancel(&token);
  e2.step(row);
  token.request_cancel();
  EXPECT_THROW(e2.step(row), Cancelled);

  EventSim3 e3(nl);
  e3.set_cancel(&token);
  EXPECT_THROW(e3.step(row), Cancelled);
  e3.set_cancel(nullptr);
  EXPECT_NO_THROW(e3.step(row));
}

TEST(Cancellation, GuardedCompilersStopAtPhaseBoundaries) {
  const Netlist nl = test_dag(3);
  CancelToken token;
  token.request_cancel();
  CompileGuard guard;
  guard.cancel = &token;
  EXPECT_THROW((void)compile_lcc(nl, /*packed=*/true, 32, guard), Cancelled);
  EXPECT_THROW((void)compile_pcset(nl, std::span<const NetId>{}, true, 32, guard),
               Cancelled);
  EXPECT_THROW((void)compile_parallel(nl, {}, guard), Cancelled);
  try {
    (void)compile_lcc(nl, true, 32, guard);
  } catch (const Cancelled& e) {
    EXPECT_EQ(e.site(), "compile.levelize");
  }
}

TEST(Cancellation, SimulatorFacadeStepAndBatchHonorTheToken) {
  const Netlist nl = test_dag(4);
  const auto flat = bit_stream(nl.primary_inputs().size(), 30, 44);
  for (EngineKind kind : {EngineKind::ZeroDelayLcc, EngineKind::Event2}) {
    const auto sim = make_simulator(nl, kind);
    CancelToken token;
    sim->set_cancel(&token);
    EXPECT_NO_THROW((void)sim->run_batch(flat, 2));
    token.request_cancel();
    EXPECT_THROW((void)sim->run_batch(flat, 2), Cancelled) << engine_name(kind);
    EXPECT_THROW(sim->step(std::span<const Bit>(flat.data(),
                                                nl.primary_inputs().size())),
                 Cancelled)
        << engine_name(kind);
    sim->set_cancel(nullptr);
    EXPECT_NO_THROW((void)sim->run_batch(flat, 2));
  }
}

// ---- batch layer: structured stops, retries, quarantine --------------------

TEST(BatchResilience, PreCancelledRunReturnsImmediatelyWithEmptyCheckpoint) {
  const Netlist nl = test_dag(5);
  const LccCase c = lcc_case(nl);
  const std::size_t count = 40;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 55);
  CancelToken token;
  token.request_cancel();
  MetricsRegistry reg;
  Diagnostics diag;
  BatchRunner runner(c.program, c.probes,
                     BatchOptions{.num_threads = 2, .min_chunk = 4,
                                  .metrics = &reg, .cancel = &token,
                                  .diag = &diag});
  const ResilientBatch r = runner.run_resilient(in, count);
  EXPECT_EQ(r.status, RunStatus::Cancelled);
  EXPECT_EQ(r.vectors_done, 0u);
  EXPECT_EQ(r.checkpoint.vectors_done(), 0u);
  EXPECT_EQ(r.checkpoint.num_vectors, count);
  EXPECT_EQ(reg.counter("resil.cancelled").value(), 1u);
  EXPECT_TRUE(diag.has(DiagCode::RunCancelled));
  // run() surfaces the same stop as a structured exception instead.
  EXPECT_THROW((void)runner.run(in, count), Cancelled);
}

TEST(BatchResilience, ZeroVectorsShortCircuitsWithNoMetricsTraffic) {
  const Netlist nl = test_dag(6);
  const LccCase c = lcc_case(nl);
  MetricsRegistry reg;
  BatchRunner runner(c.program, c.probes,
                     BatchOptions{.num_threads = 3, .metrics = &reg});
  EXPECT_TRUE(runner.run({}, 0).empty());
  const ResilientBatch r = runner.run_resilient({}, 0);
  EXPECT_EQ(r.status, RunStatus::Complete);
  EXPECT_TRUE(r.values.empty());
  // No seam replay, no pool dispatch, no metrics traffic.
  EXPECT_EQ(reg.counter("batch.runs").value(), 0u);
  EXPECT_EQ(reg.counter("batch.shards").value(), 0u);
  EXPECT_EQ(reg.counter("sim.vectors").value(), 0u);
}

TEST(FaultInjector, DecisionsArePureFunctionsOfTheSeed) {
  FaultInjector a(1234), b(1234), other(1235);
  bool any = false, any_differs = false;
  a.set_rate(FaultSite::WorkerThrow, 500, /*max_attempt=*/1);
  b.set_rate(FaultSite::WorkerThrow, 500, 1);
  other.set_rate(FaultSite::WorkerThrow, 500, 1);
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    for (std::uint64_t v = 0; v < 200; ++v) {
      const bool fa = a.fires(FaultSite::WorkerThrow, shard, v, 0);
      EXPECT_EQ(fa, b.fires(FaultSite::WorkerThrow, shard, v, 0));
      any |= fa;
      any_differs |= (fa != other.fires(FaultSite::WorkerThrow, shard, v, 0));
      // Beyond max_attempt the injector always stands down: retries
      // eventually run clean.
      EXPECT_FALSE(a.fires(FaultSite::WorkerThrow, shard, v, 2));
    }
  }
  EXPECT_TRUE(any) << "a 5% rate over 800 passes never fired";
  EXPECT_TRUE(any_differs) << "different seeds produced identical decisions";

  FaultInjector planted(1);
  planted.add_site({FaultSite::AllocFail, 3, 17, 2});
  EXPECT_TRUE(planted.fires(FaultSite::AllocFail, 3, 17, 2));
  EXPECT_FALSE(planted.fires(FaultSite::AllocFail, 3, 17, 1));
  EXPECT_FALSE(planted.fires(FaultSite::AllocFail, 3, 16, 2));
  EXPECT_FALSE(planted.fires(FaultSite::WorkerThrow, 3, 17, 2));
  EXPECT_TRUE(planted.fire(FaultSite::AllocFail, 3, 17, 2));
  EXPECT_EQ(planted.fired(FaultSite::AllocFail), 1u);
  EXPECT_EQ(planted.fired_total(), 1u);
}

/// Inject `site` at one (shard, vector) for attempts [0, fail_attempts) and
/// expect the batch to still produce bit-identical output, with the
/// given retry/quarantine counts.
void expect_recovery(FaultSite site, unsigned fail_attempts,
                     unsigned retry_limit, std::uint64_t want_retries,
                     std::uint64_t want_quarantined) {
  const Netlist nl = test_dag(7);
  const LccCase c = lcc_case(nl);
  const std::size_t count = 48;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 77);
  BatchRunner clean(c.program, c.probes,
                    BatchOptions{.num_threads = 3, .min_chunk = 4});
  const auto expect = clean.run(in, count);

  // 48 vectors over 3 shards: shard 1 spans [16, 32). AllocFail is probed
  // once at shard entry (vector = shard begin); the others fire mid-pass.
  const std::size_t site_vector = site == FaultSite::AllocFail ? 16 : 20;
  FaultInjector inject(42);
  for (unsigned a = 0; a < fail_attempts; ++a) {
    inject.add_site({site, 1, site_vector, a});
  }
  MetricsRegistry reg;
  Diagnostics diag;
  BatchRunner faulty(c.program, c.probes,
                     BatchOptions{.num_threads = 3, .min_chunk = 4,
                                  .metrics = &reg, .inject = &inject,
                                  .retry_limit = retry_limit, .diag = &diag});
  const ResilientBatch r = faulty.run_resilient(in, count);
  EXPECT_EQ(r.status, RunStatus::Complete);
  EXPECT_EQ(r.values, expect) << fault_site_name(site)
                              << ": recovered run is not bit-identical";
  EXPECT_EQ(r.retries, want_retries);
  EXPECT_EQ(r.quarantined, want_quarantined);
  EXPECT_EQ(reg.counter("resil.retries").value(), want_retries);
  EXPECT_EQ(reg.counter("resil.quarantined").value(), want_quarantined);
  EXPECT_EQ(diag.count(DiagCode::ShardRetry), want_retries);
  EXPECT_EQ(diag.count(DiagCode::ShardQuarantined), want_quarantined);
  EXPECT_EQ(inject.fired(site), fail_attempts);
}

TEST(BatchResilience, WorkerThrowIsRetriedFromTheSeamBitIdentically) {
  expect_recovery(FaultSite::WorkerThrow, 1, 2, 1, 0);
}

TEST(BatchResilience, ArenaCorruptionIsTrappedAndRetriedBitIdentically) {
  expect_recovery(FaultSite::ArenaCorrupt, 2, 2, 2, 0);
}

TEST(BatchResilience, AllocationFailureIsRetried) {
  expect_recovery(FaultSite::AllocFail, 1, 2, 1, 0);
}

TEST(BatchResilience, ExhaustedRetriesQuarantineThenSequentialReplayRecovers) {
  // Fails attempts 0 and 1 with retry_limit 1: one retry, then quarantine;
  // the sequential replay (attempt retry_limit + 1 = 2) runs clean and the
  // run still completes bit-identically.
  expect_recovery(FaultSite::WorkerThrow, 2, 1, 1, 1);
}

TEST(BatchResilience, QuarantineReplayFailurePropagates) {
  const Netlist nl = test_dag(8);
  const LccCase c = lcc_case(nl);
  const std::size_t count = 32;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 88);
  FaultInjector inject(9);
  // Fail every attempt including the sequential quarantine replay (attempt
  // retry_limit + 1 = 2): a genuine unrecoverable error.
  for (unsigned a = 0; a <= 2; ++a) inject.add_site({FaultSite::WorkerThrow, 0, 5, a});
  BatchRunner runner(c.program, c.probes,
                     BatchOptions{.num_threads = 2, .min_chunk = 4,
                                  .inject = &inject, .retry_limit = 1});
  EXPECT_THROW((void)runner.run_resilient(in, count), InjectedFault);
}

TEST(BatchResilience, InjectionRunsAreDeterministicGivenTheSeed) {
  const Netlist nl = test_dag(9);
  const LccCase c = lcc_case(nl);
  const std::size_t count = 64;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 99);
  const auto run_once = [&](std::uint64_t seed, std::uint64_t* retries,
                            std::uint64_t* fired) {
    FaultInjector inject(seed);
    inject.set_rate(FaultSite::WorkerThrow, 300, /*max_attempt=*/0);
    BatchRunner runner(c.program, c.probes,
                       BatchOptions{.num_threads = 3, .min_chunk = 4,
                                    .inject = &inject, .retry_limit = 3});
    const ResilientBatch r = runner.run_resilient(in, count);
    EXPECT_EQ(r.status, RunStatus::Complete);
    *retries = r.retries;
    *fired = inject.fired_total();
    return r.values;
  };
  std::uint64_t retries1 = 0, retries2 = 0, fired1 = 0, fired2 = 0;
  const auto v1 = run_once(1111, &retries1, &fired1);
  const auto v2 = run_once(1111, &retries2, &fired2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(retries1, retries2);
  EXPECT_EQ(fired1, fired2);
  EXPECT_GT(fired1, 0u) << "rate chosen to fire at least once";
  // And the values still equal a clean run: injection never changes results.
  BatchRunner clean(c.program, c.probes,
                    BatchOptions{.num_threads = 3, .min_chunk = 4});
  EXPECT_EQ(v1, clean.run(in, count));
}

TEST(BatchResilience, MidRunCancelProducesAResumableCheckpoint) {
  const Netlist nl = test_dag(10);
  const LccCase c = lcc_case(nl);
  const std::size_t count = 60;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 1010);
  BatchRunner clean(c.program, c.probes,
                    BatchOptions{.num_threads = 2, .min_chunk = 8});
  const auto expect = clean.run(in, count);

  FaultInjector inject(3);
  inject.add_site({FaultSite::DeadlineOverrun, 0, 7, 0});
  inject.add_site({FaultSite::DeadlineOverrun, 1, 40, 0});
  BatchRunner first(c.program, c.probes,
                    BatchOptions{.num_threads = 2, .min_chunk = 8,
                                 .inject = &inject});
  const ResilientBatch stopped = first.run_resilient(in, count);
  ASSERT_EQ(stopped.status, RunStatus::DeadlineExpired);
  ASSERT_LT(stopped.vectors_done, count);
  // The rows the checkpoint claims are final match the clean run already.
  const std::size_t cols = c.probes.size();
  for (const ShardCheckpoint& s : stopped.checkpoint.shards) {
    for (std::size_t v = s.begin; v < s.next; ++v) {
      for (std::size_t j = 0; j < cols; ++j) {
        ASSERT_EQ(stopped.values[v * cols + j], expect[v * cols + j]);
      }
    }
  }
  BatchRunner second(c.program, c.probes,
                     BatchOptions{.num_threads = 2, .min_chunk = 8});
  const ResilientBatch resumed =
      second.run_resilient(in, count, &stopped.checkpoint);
  EXPECT_EQ(resumed.status, RunStatus::Complete);
  EXPECT_EQ(resumed.values, expect);
}

// ---- program validator -----------------------------------------------------

TEST(ProgramValidator, AcceptsEveryCompiledEngineProgram) {
  const Netlist nl = test_dag(11);
  constexpr EngineKind kCompiled[] = {
      EngineKind::ZeroDelayLcc,        EngineKind::PCSet,
      EngineKind::Parallel,            EngineKind::ParallelTrimmed,
      EngineKind::ParallelPathTracing, EngineKind::ParallelCycleBreaking,
      EngineKind::ParallelCombined,
  };
  for (EngineKind kind : kCompiled) {
    const auto sim = make_simulator(nl, kind);
    const Program* p = sim->compiled_program();
    ASSERT_NE(p, nullptr) << engine_name(kind);
    const auto probes = sim->output_probes();
    ASSERT_FALSE(probes.empty());
    Diagnostics diag;
    EXPECT_TRUE(validate_program(*p, ValidateOptions{.probes = probes}, diag))
        << engine_name(kind) << ": " << validate_program_brief(*p);
    EXPECT_TRUE(diag.has(DiagCode::ProgramAccepted));
    EXPECT_EQ(diag.count(DiagSeverity::Error), 0u);
  }
  // The interpreted engines have no program to validate.
  EXPECT_EQ(make_simulator(nl, EngineKind::Event2)->compiled_program(), nullptr);
}

/// Each mutation class must be rejected with its own DiagCode.
TEST(ProgramValidator, RejectsEachMutationClassWithItsOwnCode) {
  const Netlist nl = test_dag(12);
  const LccCase c = lcc_case(nl);
  const ValidateOptions opts{.probes = c.probes};
  const auto expect_reject = [&](Program p, DiagCode want, const char* what) {
    Diagnostics diag;
    EXPECT_FALSE(validate_program(p, opts, diag)) << what;
    EXPECT_TRUE(diag.has(want))
        << what << ": wanted " << diag_code_name(want);
    EXPECT_FALSE(diag.has(DiagCode::ProgramAccepted)) << what;
    EXPECT_FALSE(validate_program_brief(p, opts).empty()) << what;
  };

  {
    Program p = c.program;
    p.word_bits = 48;
    expect_reject(std::move(p), DiagCode::ProgramWordSize, "word size");
  }
  {
    Program p = c.program;
    p.ops[p.ops.size() / 2].dst = p.arena_words + 7;
    expect_reject(std::move(p), DiagCode::ProgramOpBounds, "dst bounds");
  }
  {
    Program p = c.program;
    p.ops.push_back({OpCode::Copy, 0, 0, p.arena_words + 1, 0});
    expect_reject(std::move(p), DiagCode::ProgramOpBounds, "src bounds");
  }
  {
    Program p = c.program;
    p.ops.push_back({static_cast<OpCode>(250), 0, 0, 0, 0});
    expect_reject(std::move(p), DiagCode::ProgramOpBounds, "unknown opcode");
  }
  {
    Program p = c.program;
    p.ops[0].a = p.input_words + 3;  // op 0 is a Load
    expect_reject(std::move(p), DiagCode::ProgramInputBounds, "input bounds");
  }
  {
    Program p = c.program;
    p.ops.push_back({OpCode::Shl, static_cast<std::uint8_t>(p.word_bits), 0, 0, 0});
    expect_reject(std::move(p), DiagCode::ProgramShiftRange, "shift range");
  }
  {
    Program p = c.program;
    p.ops.push_back({OpCode::FunnelL, 0, 0, 0, 0});
    expect_reject(std::move(p), DiagCode::ProgramShiftRange, "zero funnel");
  }
  {
    Program p = c.program;
    p.arena_init.push_back({p.arena_words + 2, 1});
    expect_reject(std::move(p), DiagCode::ProgramInitBounds, "init bounds");
  }
  {
    Diagnostics diag;
    const std::vector<ArenaProbe> bad{{c.program.arena_words + 1, 0}};
    EXPECT_FALSE(validate_program(c.program,
                                  ValidateOptions{.probes = bad}, diag));
    EXPECT_TRUE(diag.has(DiagCode::ProgramProbeBounds));
  }
  {
    // Scratch read-before-write: the injected first op reads a fresh word
    // nothing ever writes. The check only engages when the caller declares
    // which words are legitimately persistent.
    Program p = c.program;
    const std::uint32_t scratch = p.arena_words;
    p.arena_words += 1;
    p.ops.insert(p.ops.begin(), {OpCode::Copy, 0, 0, scratch, 0});
    ValidateOptions sopts{.probes = c.probes};
    Diagnostics without;
    EXPECT_TRUE(validate_program(p, sopts, without));
    const std::vector<std::uint32_t> persistent{0};
    sopts.persistent = persistent;
    Diagnostics with;
    EXPECT_FALSE(validate_program(p, sopts, with));
    EXPECT_TRUE(with.has(DiagCode::ProgramScratchRead));
  }
  // A defect flood is capped, not unbounded.
  {
    Program p = c.program;
    for (int i = 0; i < 100; ++i) {
      p.ops.push_back({OpCode::Copy, 0, p.arena_words + 9, 0, 0});
    }
    Diagnostics diag;
    EXPECT_FALSE(validate_program(p, opts, diag));
    EXPECT_LE(diag.count(DiagSeverity::Error), 17u);
  }
}

TEST(ProgramValidator, FallbackChainRevalidatesAndFacadeRejects) {
  const Netlist nl = test_dag(13);
  // The default chain's programs are all valid: selection succeeds and the
  // winner's validation note is on record.
  Diagnostics diag;
  SimPolicy policy;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);
  EXPECT_TRUE(diag.has(DiagCode::EngineSelected));
  EXPECT_TRUE(diag.has(DiagCode::ProgramAccepted));

  // A corrupted program handed to the resilient facade is rejected before
  // any pass executes.
  const LccCase c = lcc_case(nl);
  Program bad = c.program;
  bad.ops[0].dst = bad.arena_words + 1;
  Diagnostics vdiag;
  EXPECT_FALSE(validate_program(bad, ValidateOptions{.probes = c.probes}, vdiag));
  EXPECT_THROW(
      { throw ProgramRejected(validate_program_brief(bad)); },
      ProgramRejected);
}

// ---- run_batch_resilient facade -------------------------------------------

TEST(ResilientRun, CompiledEngineCheckpointsAndResumesThroughTheFacade) {
  const Netlist nl = test_dag(14);
  const std::size_t count = 50;
  const auto flat = bit_stream(nl.primary_inputs().size(), count, 1414);
  const auto sim = make_simulator(nl, EngineKind::ParallelCombined);
  const BatchResult clean = sim->run_batch(flat, 2);

  FaultInjector inject(5);
  inject.add_site({FaultSite::DeadlineOverrun, 0, 9, 0});
  ResilientOptions opts;
  opts.num_threads = 2;
  opts.inject = &inject;
  MetricsRegistry reg;
  Diagnostics diag;
  opts.metrics = &reg;
  opts.diag = &diag;
  const ResilientResult stopped = run_batch_resilient(*sim, flat, opts);
  EXPECT_EQ(stopped.status, RunStatus::DeadlineExpired);
  EXPECT_TRUE(stopped.resumable);
  EXPECT_LT(stopped.vectors_done, count);
  EXPECT_EQ(reg.counter("resil.deadline").value(), 1u);
  EXPECT_TRUE(diag.has(DiagCode::RunCancelled));

  ResilientOptions resume_opts;
  resume_opts.num_threads = 2;
  resume_opts.resume = &stopped.checkpoint;
  resume_opts.diag = &diag;
  const ResilientResult resumed = run_batch_resilient(*sim, flat, resume_opts);
  EXPECT_EQ(resumed.status, RunStatus::Complete);
  EXPECT_EQ(resumed.batch.values, clean.values);
  EXPECT_TRUE(diag.has(DiagCode::CheckpointResumed));
}

TEST(ResilientRun, InterpretedEngineCancelsButIsNotResumable) {
  const Netlist nl = test_dag(15);
  const auto flat = bit_stream(nl.primary_inputs().size(), 20, 1515);
  const auto sim = make_simulator(nl, EngineKind::Event3);
  CancelToken token;
  sim->set_cancel(&token);
  ResilientOptions opts;
  opts.cancel = &token;
  const ResilientResult ok = run_batch_resilient(*sim, flat, opts);
  EXPECT_EQ(ok.status, RunStatus::Complete);
  EXPECT_FALSE(ok.resumable);
  EXPECT_EQ(ok.vectors_done, 20u);

  token.request_cancel();
  const ResilientResult stopped = run_batch_resilient(*sim, flat, opts);
  EXPECT_EQ(stopped.status, RunStatus::Cancelled);
  EXPECT_FALSE(stopped.resumable);
  EXPECT_TRUE(stopped.batch.values.empty());
}

}  // namespace
}  // namespace udsim
