// Live-telemetry surface tests (DESIGN.md §5l): status_json() and
// health_json() round-trip through the hardened obs/json parser with every
// documented section and exact uint64 counters, the windowed outcome totals
// match the exactly-once outcome counters over the wire, responses carry
// trace ids that also tag the shard spans in the trace buffer, the
// Prometheus exposition validates (and the validator itself rejects
// malformed text), and the JSONL event log accounts for every resolution.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gen/iscas_profiles.h"
#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "service/sim_service.h"

namespace udsim {
namespace {

std::shared_ptr<const Netlist> circuit(const char* name, unsigned seed = 1) {
  return std::make_shared<Netlist>(make_iscas85_like(name, seed));
}

std::vector<Bit> stream_for(const Netlist& nl, std::size_t n,
                            std::uint64_t seed = 7) {
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> bits(n * pis);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bits[i] = static_cast<Bit>(x & 1);
  }
  return bits;
}

/// A service that has resolved a known traffic mix: `completed` completions
/// plus one Rejected (ragged stream) and one DeadlineExpired (1ns budget).
struct DrivenService {
  std::unique_ptr<SimService> svc;
  std::uint64_t offered = 0;
  std::vector<SimResponse> responses;
};

DrivenService drive(ServiceConfig cfg, unsigned completed = 4) {
  DrivenService d;
  d.svc = std::make_unique<SimService>(cfg);
  const auto nl = circuit("c432");
  const std::vector<Bit> stream = stream_for(*nl, 16);
  const SessionId s = d.svc->open_session("telemetry-test");
  for (unsigned i = 0; i < completed; ++i) {
    d.responses.push_back(
        d.svc->run(s, SimRequest{.netlist = nl, .vectors = stream}));
    ++d.offered;
    EXPECT_EQ(d.responses.back().outcome, Outcome::Completed);
  }
  std::vector<Bit> ragged(stream.begin(), stream.end() - 1);
  d.responses.push_back(
      d.svc->run(s, SimRequest{.netlist = nl, .vectors = ragged}));
  ++d.offered;
  EXPECT_EQ(d.responses.back().outcome, Outcome::Rejected);
  d.responses.push_back(
      d.svc->run(s, SimRequest{.netlist = nl,
                               .vectors = stream,
                               .deadline = std::chrono::nanoseconds(1)}));
  ++d.offered;
  EXPECT_EQ(d.responses.back().outcome, Outcome::DeadlineExpired);
  return d;
}

TEST(TelemetryTest, StatusJsonRoundTripsWithEverySection) {
  DrivenService d = drive(ServiceConfig{});
  const JsonValue doc = JsonValue::parse(d.svc->status_json());
  for (const char* key :
       {"service", "health", "outcomes", "window", "slo", "events", "trace"}) {
    EXPECT_TRUE(doc.has(key)) << "missing section \"" << key << "\"";
  }
  const JsonValue& svc = doc.at("service");
  EXPECT_TRUE(svc.at("submitted").is_integer);
  EXPECT_EQ(svc.at("submitted").as_u64(), d.offered);
  EXPECT_TRUE(svc.at("breaker").is_string());
  EXPECT_TRUE(doc.at("health").has("state"));
  EXPECT_TRUE(doc.at("trace").at("dropped").is_integer);
}

TEST(TelemetryTest, OutcomeCountersAreExactAndMatchWindowTotals) {
  DrivenService d = drive(ServiceConfig{});
  const JsonValue doc = JsonValue::parse(d.svc->status_json());

  const JsonValue& outcomes = doc.at("outcomes");
  std::uint64_t sum = 0;
  for (const auto& [name, v] : outcomes.object) {
    ASSERT_TRUE(v.is_integer) << name << " is not an exact uint64";
    sum += v.as_u64();
  }
  EXPECT_EQ(sum, d.offered) << "outcome counters must sum to submissions";
  EXPECT_EQ(outcomes.at("completed").as_u64(), d.offered - 2);
  EXPECT_EQ(outcomes.at("rejected").as_u64(), 1u);
  EXPECT_EQ(outcomes.at("deadline_expired").as_u64(), 1u);

  // The invariant, observed over the wire: the rolling window's cumulative
  // totals equal the service's exactly-once counters, slot by slot.
  const JsonValue& totals = doc.at("window").at("outcome_totals");
  ASSERT_EQ(totals.object.size(), outcomes.object.size());
  for (const auto& [name, v] : totals.object) {
    EXPECT_EQ(v.as_u64(), outcomes.at(name).as_u64()) << "slot " << name;
  }

  const JsonValue& slo = doc.at("slo");
  EXPECT_EQ(slo.at("total").as_u64(), d.offered);
  // Rejected is a service-side refusal (an error); the expired deadline is
  // a client-chosen budget (good).
  EXPECT_EQ(slo.at("errors").as_u64(), 1u);
}

TEST(TelemetryTest, HealthJsonRoundTripsThroughTheParser) {
  DrivenService d = drive(ServiceConfig{}, 1);
  const JsonValue doc = JsonValue::parse(d.svc->health_json());
  EXPECT_TRUE(doc.has("state"));
  EXPECT_TRUE(doc.has("components"));
}

TEST(TelemetryTest, ResponsesCarryDistinctTraceIdsThatTagShardSpans) {
  DrivenService d = drive(ServiceConfig{});
  std::set<std::uint64_t> ids;
  for (const SimResponse& r : d.responses) {
    EXPECT_NE(r.trace_id, 0u);
    ids.insert(r.trace_id);
  }
  EXPECT_EQ(ids.size(), d.responses.size()) << "trace ids must be distinct";

  // The ids thread through to the span buffer: every batch.shard span of a
  // completed request carries a "request" arg holding one of them.
  bool tagged_shard = false;
  for (const TraceEvent& e : d.svc->metrics().trace_events()) {
    if (e.name != "batch.shard") continue;
    for (const auto& [k, v] : e.args) {
      if (k == "request" && ids.count(v) != 0) tagged_shard = true;
    }
  }
  EXPECT_TRUE(tagged_shard) << "no batch.shard span carried a request id";

  // And the Perfetto export stays parseable, with drop accounting.
  const JsonValue trace = JsonValue::parse(d.svc->metrics().trace_to_json());
  EXPECT_TRUE(trace.has("traceEvents"));
  EXPECT_TRUE(trace.at("metadata").has("trace.dropped"));
}

TEST(TelemetryTest, DisabledTelemetryLeavesNoTraceOrWindow) {
  ServiceConfig cfg;
  cfg.telemetry.enabled = false;
  DrivenService d = drive(std::move(cfg), 1);
  for (const SimResponse& r : d.responses) EXPECT_EQ(r.trace_id, 0u);
  EXPECT_EQ(d.svc->window(), nullptr);
  // status_json still parses; it simply has no window/slo sections.
  const JsonValue doc = JsonValue::parse(d.svc->status_json());
  EXPECT_TRUE(doc.has("outcomes"));
  EXPECT_FALSE(doc.has("window"));
}

TEST(TelemetryTest, PrometheusExpositionValidatesAndCoversServiceState) {
  DrivenService d = drive(ServiceConfig{});
  const std::string text = d.svc->prometheus_text();
  std::string why;
  EXPECT_TRUE(validate_prometheus_text(text, &why)) << why;
  for (const char* needle :
       {"udsim_service_queue_depth", "udsim_service_breaker_state",
        "udsim_window_outcome_total", "udsim_slo_availability",
        "udsim_service_health_state"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing " << needle;
  }
}

TEST(TelemetryTest, PrometheusValidatorRejectsMalformedText) {
  auto bad = [](std::string_view text) {
    return !validate_prometheus_text(text);
  };
  EXPECT_FALSE(bad("udsim_x 1\n"));
  EXPECT_FALSE(bad("udsim_x{label=\"a b\"} 1.5 1234\n"));
  EXPECT_FALSE(bad("udsim_x +Inf\n"));
  EXPECT_TRUE(bad("9leading_digit 1\n"));
  EXPECT_TRUE(bad("udsim_x{unbalanced=\"a\" 1\n"));
  EXPECT_TRUE(bad("udsim_x notanumber\n"));
  EXPECT_TRUE(bad("udsim_x\n"));
  EXPECT_TRUE(bad("# TYPE udsim_x nonsense\n"));
}

TEST(TelemetryTest, PrometheusNameSanitizesTheDottedRegistryNames) {
  EXPECT_EQ(prometheus_name("service.outcome.completed"),
            "udsim_service_outcome_completed");
  EXPECT_EQ(prometheus_name("exec.ops/sec"), "udsim_exec_ops_sec");
  EXPECT_EQ(prometheus_name("9lives", ""), "_9lives");
}

TEST(TelemetryTest, EventLogAccountsForEveryResolution) {
  const std::string path = "telemetry_test_events.jsonl";
  std::remove(path.c_str());
  ServiceConfig cfg;
  cfg.telemetry.event_log_path = path;
  std::uint64_t offered = 0;
  std::uint64_t written = 0;
  {
    DrivenService d = drive(std::move(cfg));
    offered = d.offered;
    JsonlEventLog* log = d.svc->event_log();
    ASSERT_NE(log, nullptr);
    EXPECT_TRUE(log->ok());
    log->flush();
    written = log->written();
    EXPECT_EQ(written + log->dropped(), offered);
    d.svc->shutdown();
  }
  // After the writer thread is gone: one parseable line per written event,
  // each carrying the documented schema.
  std::uint64_t lines = 0;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[1 << 16];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    ++lines;
    const JsonValue e = JsonValue::parse(buf);
    for (const char* key : {"trace_id", "outcome", "engine", "cache",
                            "latency_ns", "phase_ns"}) {
      EXPECT_TRUE(e.has(key)) << "line " << lines << " missing " << key;
    }
  }
  std::fclose(f);
  EXPECT_EQ(lines, written);
  std::remove(path.c_str());
}

TEST(TelemetryTest, EventLogOnUnusableSinkDropsAndCountsInsteadOfFailing) {
  EventLogConfig cfg;
  cfg.path = "no-such-dir-telemetry-test/sub/events.jsonl";
  JsonlEventLog log(cfg);
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.append("{\"k\":1}"));
  log.flush();
  EXPECT_EQ(log.written(), 0u);
  EXPECT_EQ(log.dropped(), 1u);
}

}  // namespace
}  // namespace udsim
