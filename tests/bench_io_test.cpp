// Unit tests for the .bench reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_io.h"
#include "netlist/stats.h"

namespace udsim {
namespace {

constexpr const char* kC17 = R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIo, ParsesC17) {
  std::istringstream in(kC17);
  const Netlist nl = read_bench(in, "c17");
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  const CircuitStats st = circuit_stats(nl);
  EXPECT_EQ(st.depth, 3);  // c17 has 3 logic levels
  for (const Gate& g : nl.gates()) {
    EXPECT_EQ(g.type, GateType::Nand);
    EXPECT_EQ(g.inputs.size(), 2u);
  }
}

TEST(BenchIo, RoundTrip) {
  std::istringstream in(kC17);
  const Netlist nl = read_bench(in, "c17");
  std::ostringstream out;
  write_bench(out, nl);
  std::istringstream in2(out.str());
  const Netlist nl2 = read_bench(in2, "c17rt");
  EXPECT_EQ(nl2.gate_count(), nl.gate_count());
  EXPECT_EQ(nl2.net_count(), nl.net_count());
  EXPECT_EQ(nl2.primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(nl2.primary_outputs().size(), nl.primary_outputs().size());
  for (std::uint32_t g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(nl2.gate(GateId{g}).type, nl.gate(GateId{g}).type);
  }
}

TEST(BenchIo, AcceptsCommentsAndBlanks) {
  std::istringstream in("# hi\n\nINPUT(a)\n  OUTPUT( b )  # trail\nb = NOT(a)\n");
  const Netlist nl = read_bench(in);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.net(*nl.find_net("b")).is_primary_output, true);
}

TEST(BenchIo, AcceptsBuffAndCaseInsensitivity) {
  std::istringstream in("INPUT(a)\nOUTPUT(b)\nb = buff(a)\n");
  const Netlist nl = read_bench(in);
  EXPECT_EQ(nl.gate(GateId{0}).type, GateType::Buf);
}

TEST(BenchIo, RejectsUnknownGate) {
  std::istringstream in("INPUT(a)\nb = FLUX(a)\n");
  EXPECT_THROW((void)read_bench(in), BenchParseError);
}

TEST(BenchIo, RejectsMalformedLine) {
  std::istringstream in("INPUT a\n");
  EXPECT_THROW((void)read_bench(in), BenchParseError);
}

TEST(BenchIo, RejectsUnknownOutput) {
  std::istringstream in("INPUT(a)\nOUTPUT(zz)\nb = NOT(a)\n");
  EXPECT_THROW((void)read_bench(in), BenchParseError);
}

TEST(BenchIo, ReportsLineNumbers) {
  std::istringstream in("INPUT(a)\n\nb = FLUX(a)\n");
  try {
    (void)read_bench(in);
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(BenchIo, GateUseBeforeDefinition) {
  // Gates may reference nets defined later in the file.
  std::istringstream in("INPUT(a)\nOUTPUT(c)\nc = NOT(b)\nb = NOT(a)\n");
  const Netlist nl = read_bench(in);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.gate_count(), 2u);
}

TEST(BenchIo, ReadsShippedC17File) {
  const Netlist nl = read_bench_file(std::string(UDSIM_DATA_DIR) + "/c17.bench");
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.gate_count(), 6u);
  EXPECT_NO_THROW(nl.validate());
}

}  // namespace
}  // namespace udsim
