// Parser hardening: a corpus of malformed .bench inputs. The contract under
// test (bench_io.h): malformed input always raises BenchParseError carrying
// the offending line number — never another exception type, a crash, or a
// hang — and a Diagnostics sink never changes what is accepted.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "netlist/bench_io.h"

namespace udsim {
namespace {

/// Parse and classify: 0 = accepted, 1 = BenchParseError with a line
/// number, 2 = anything else (a contract violation).
int classify(const std::string& text, std::string* what = nullptr) {
  std::istringstream in(text);
  try {
    Diagnostics diag;  // exercised on every input; must not alter acceptance
    (void)read_bench(in, "fuzz", &diag);
    return 0;
  } catch (const BenchParseError& e) {
    if (what) *what = e.what();
    return e.line() >= 1 ? 1 : 2;
  } catch (...) {
    return 2;
  }
}

void expect_rejected(const std::string& text, const std::string& label) {
  std::string what;
  EXPECT_EQ(classify(text, &what), 1) << label << ": " << what;
  EXPECT_NE(what.find("line "), std::string::npos) << label << ": " << what;
}

TEST(BenchFuzz, TruncatedAndMangledLines) {
  expect_rejected("INPUT(a\n", "unclosed INPUT");
  expect_rejected("INPUT\n", "no parentheses");
  expect_rejected("y = AND(a, b\n", "unclosed gate");
  expect_rejected("y = AND a, b)\n", "missing open paren");
  expect_rejected("y = \n", "truncated after '='");
  expect_rejected("y = AND()\n", "no argument list... truncated mid-edit");
  expect_rejected("= AND(a)\n", "missing output name");
  expect_rejected("INPUT(a))\n", "trailing text after ')'");
  expect_rejected("INPUT(a) INPUT(b)\n", "two statements on one line");
  expect_rejected("y = AND(a,, b)\n", "empty argument");
  expect_rejected("y = AND(a) = OR(b)\n", "double assignment");
  expect_rejected(")(\n", "reversed parentheses");
  expect_rejected("INPUT()\n", "empty identifier");
}

TEST(BenchFuzz, UnknownConstructs) {
  expect_rejected("FOO(a)\n", "unknown statement");
  expect_rejected("y = FROB(a, b)\n", "unknown gate type");
  expect_rejected("#!delay\n", "bare delay directive");
  expect_rejected("#!delay x\n", "delay without value");
  expect_rejected("#!delay x 0\n", "non-positive delay");
  expect_rejected("INPUT(a)\n#!delay ghost 2\n", "delay names unknown net");
}

TEST(BenchFuzz, BinaryJunkAndNulBytes) {
  expect_rejected(std::string("INPUT(a\0b)\n", 11), "NUL inside identifier");
  expect_rejected("y\x01 = AND(a, b)\n", "control char in output name");
  expect_rejected("y = AND(a, b\x7f)\n", "DEL in argument");
  // NUL bytes outside identifiers land in the statement head.
  expect_rejected(std::string("\0\0\0(x)\n", 7), "leading NUL bytes");
}

TEST(BenchFuzz, StructuralMisuse) {
  expect_rejected("INPUT(a)\ny = BUFF(y)\n", "self-referential gate");
  expect_rejected(
      "INPUT(a)\nINPUT(b)\n"
      "y = AND(a, b)\n"
      "y = OR(a, b)\n",
      "duplicate driver");
  expect_rejected("INPUT(a)\na = NOT(a)\n", "gate drives its own input (PI)");
  expect_rejected("INPUT(a)\nOUTPUT(nowhere)\n", "OUTPUT of unknown net");
  expect_rejected("y = NOT(a, b)\n", "unary gate with two pins");
}

TEST(BenchFuzz, HugeArgumentListParsesInBoundedTime) {
  // A 10k-input gate is grammatically fine; the parser must neither hang
  // nor blow the stack on it. (And with a matching pin count it must load.)
  std::string text;
  for (int i = 0; i < 10000; ++i) {
    text += "INPUT(i" + std::to_string(i) + ")\n";
  }
  text += "OUTPUT(y)\ny = AND(";
  for (int i = 0; i < 10000; ++i) {
    if (i) text += ", ";
    text += "i" + std::to_string(i);
  }
  text += ")\n";
  std::istringstream in(text);
  const Netlist nl = read_bench(in, "wide");
  EXPECT_EQ(nl.primary_inputs().size(), 10000u);
  EXPECT_EQ(nl.gate_count(), 1u);

  // The same list with a bogus tail still fails cleanly with the line.
  expect_rejected(text + "z = AND(y,\n", "huge file, truncated last gate");
}

TEST(BenchFuzz, ReportedLineNumberPointsAtTheOffendingLine) {
  const std::string text =
      "INPUT(a)\n"
      "INPUT(b)\n"
      "OUTPUT(y)\n"
      "y = AND(a, b)\n"
      "z = FROB(y)\n";
  std::istringstream in(text);
  try {
    (void)read_bench(in, "t");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line(), 5u);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }
}

// Every corpus entry again, cross-product with random truncation points:
// any prefix of any entry must also parse or fail cleanly.
TEST(BenchFuzz, EveryPrefixOfTheCorpusFailsCleanly) {
  const std::vector<std::string> corpus = {
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
      "INPUT(a)\nOUTPUT(y)\ny = NAND(a, a)\n#!delay y 3\n",
      std::string("INPUT(\0)\ny = XOR(a, b)\n", 22),
      "y = AND(a, b))))\nz = OR(((\n",
  };
  for (const std::string& entry : corpus) {
    for (std::size_t cut = 0; cut <= entry.size(); ++cut) {
      const int r = classify(entry.substr(0, cut));
      EXPECT_NE(r, 2) << "entry of size " << entry.size() << " cut at " << cut;
    }
  }
}

}  // namespace
}  // namespace udsim
