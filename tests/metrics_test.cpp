// Unit tests for the observability primitives (obs/metrics.h): counter
// semantics, registry snapshots and exports, and TraceSpan behaviour with
// and without a registry.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace udsim {
namespace {

TEST(MetricCounter, AddAccumulates) {
  MetricCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricCounter, SetIsLastWriteWins) {
  MetricCounter c;
  c.set(10);
  c.set(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricCounter, SetMaxKeepsMaximum) {
  MetricCounter c;
  c.set_max(4);
  c.set_max(9);
  c.set_max(2);
  EXPECT_EQ(c.value(), 9u);
}

TEST(MetricsRegistry, CounterIsCreateOrGet) {
  MetricsRegistry reg;
  MetricCounter& a = reg.counter("x");
  MetricCounter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.counter("c").add(3);
  const auto snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& [k, v] : snap) names.push_back(k);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(snap.at("a"), 1u);
  EXPECT_EQ(snap.at("c"), 3u);
}

TEST(MetricsRegistry, ToJsonHasSortedCountersAndHistogramSections) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.counter("a.count").add(1);
  reg.histogram("lat").record(5);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"z.count\": 2"), std::string::npos);
  EXPECT_LT(j.find("a.count"), j.find("z.count"));
  EXPECT_NE(j.find("\"lat\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(MetricsRegistry, ToJsonCanDropTimingKeys) {
  MetricsRegistry reg;
  reg.counter("phase.ns").add(123);
  reg.counter("phase.calls").add(1);
  reg.histogram("shard.us").record(9);
  reg.histogram("shape").record(4);
  const std::string all = reg.to_json(/*include_timings=*/true);
  const std::string det = reg.to_json(/*include_timings=*/false);
  EXPECT_NE(all.find("phase.ns"), std::string::npos);
  EXPECT_NE(all.find("shard.us"), std::string::npos);
  EXPECT_EQ(det.find("phase.ns"), std::string::npos);
  EXPECT_EQ(det.find("shard.us"), std::string::npos);
  EXPECT_NE(det.find("phase.calls"), std::string::npos);
  EXPECT_NE(det.find("\"shape\""), std::string::npos);
}

// Satellite 1 (ISSUE 5): two registries driven identically must serialize
// identically — map-ordered keys, no pointer- or time-dependent content.
TEST(MetricsRegistry, ToJsonIsDeterministicAcrossRegistries) {
  const auto drive = [](MetricsRegistry& reg) {
    reg.counter("exec.ops").add(1234);
    reg.counter("compile.ops").add(617);
    reg.counter("sim.vectors").add(2);
    reg.histogram("batch.shard.us").record(7);
    reg.histogram("batch.shard.us").record(700);
    reg.histogram("exec.program_ops").record(617);
  };
  MetricsRegistry a, b;
  drive(a);
  drive(b);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(false), b.to_json(false));
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  MetricCounter& c = reg.counter("x");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("x").value(), 2u);
}

TEST(MetricsRegistry, ResetClearsHistogramsAndTrace) {
  MetricsRegistry reg;
  MetricHistogram& h = reg.histogram("h");
  h.record(3);
  reg.record_trace(TraceEvent{"span", 0, 10, 1, {}});
  reg.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_TRUE(reg.trace_events().empty());
  h.record(9);  // handle stays live after reset
  EXPECT_EQ(reg.histogram("h").count(), 1u);
}

TEST(MetricHistogram, BucketPlacementIsLog2) {
  EXPECT_EQ(MetricHistogram::bucket_index(0), 0);
  EXPECT_EQ(MetricHistogram::bucket_index(1), 1);
  EXPECT_EQ(MetricHistogram::bucket_index(2), 2);
  EXPECT_EQ(MetricHistogram::bucket_index(3), 2);
  EXPECT_EQ(MetricHistogram::bucket_index(4), 3);
  EXPECT_EQ(MetricHistogram::bucket_index(1023), 10);
  EXPECT_EQ(MetricHistogram::bucket_index(1024), 11);
  EXPECT_EQ(MetricHistogram::bucket_index(~std::uint64_t{0}), 64);
  EXPECT_EQ(MetricHistogram::bucket_floor(0), 0u);
  EXPECT_EQ(MetricHistogram::bucket_floor(1), 1u);
  EXPECT_EQ(MetricHistogram::bucket_floor(11), 1024u);
  // Every value lands in the bucket whose floor does not exceed it.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 63ull, 64ull, 12345ull}) {
    const int b = MetricHistogram::bucket_index(v);
    EXPECT_LE(MetricHistogram::bucket_floor(b), v);
    if (b < MetricHistogram::kBuckets - 1) {
      EXPECT_GT(MetricHistogram::bucket_floor(b + 1), v);
    }
  }
}

TEST(MetricHistogram, RecordTracksCountSumMinMax) {
  MetricHistogram h;
  EXPECT_EQ(h.min(), 0u);  // empty histogram reads as all-zero
  h.record(8);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket(MetricHistogram::bucket_index(8)), 1u);
  EXPECT_EQ(h.bucket(MetricHistogram::bucket_index(3)), 1u);
  EXPECT_EQ(h.bucket(MetricHistogram::bucket_index(100)), 1u);
}

TEST(MetricHistogram, SnapshotKeepsOnlyNonEmptyBucketsInOrder) {
  MetricsRegistry reg;
  MetricHistogram& h = reg.histogram("lat");
  h.record(0);
  h.record(5);
  h.record(5);
  h.record(300);
  const auto snaps = reg.snapshot_histograms();
  ASSERT_TRUE(snaps.contains("lat"));
  const HistogramSnapshot& s = snaps.at("lat");
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 310u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 300u);
  ASSERT_EQ(s.buckets.size(), 3u);  // buckets for 0, [4,8), [256,512)
  EXPECT_EQ(s.buckets[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(s.buckets[1], (std::pair<std::uint64_t, std::uint64_t>{4, 2}));
  EXPECT_EQ(s.buckets[2], (std::pair<std::uint64_t, std::uint64_t>{256, 1}));
}

TEST(MetricHistogram, ConcurrentRecordsAreExact) {
  MetricsRegistry reg;
  MetricHistogram& h = reg.histogram("contended");
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kIters; ++i) h.record(static_cast<std::uint64_t>(t));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  // sum = kIters * (0 + 1 + ... + kThreads-1)
  EXPECT_EQ(h.sum(),
            static_cast<std::uint64_t>(kIters) * kThreads * (kThreads - 1) / 2);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kThreads - 1));
}

TEST(MetricsRegistry, EmptyReflectsRegistrations) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  (void)reg.counter("x");
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, PrintRendersEveryCounter) {
  MetricsRegistry reg;
  reg.counter("sim.vectors").add(7);
  std::ostringstream out;
  reg.print(out);
  EXPECT_NE(out.str().find("sim.vectors"), std::string::npos);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

TEST(TraceSpan, RecordsCallsAndElapsed) {
  MetricsRegistry reg;
  { TraceSpan span(&reg, "phase"); }
  { TraceSpan span(&reg, "phase"); }
  EXPECT_EQ(reg.counter("phase.calls").value(), 2u);
  // Elapsed time is environment-dependent; only its presence is asserted.
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.contains("phase.ns"));
}

TEST(TraceSpan, NullRegistryIsInert) {
  TraceSpan span(nullptr, "phase");  // must not crash or allocate a registry
  span.arg("k", 1);                  // args are no-ops too
  EXPECT_EQ(span.tid(), 0u);
}

TEST(TraceSpan, BuffersTraceEventWithArgsAndTid) {
  MetricsRegistry reg;
  {
    TraceSpan span(&reg, "phase");
    span.arg("vectors", 64);
    span.arg("shard", 2);
    EXPECT_GT(span.tid(), 0u);
  }
  const auto events = reg.trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "phase");
  EXPECT_GT(events[0].tid, 0u);
  EXPECT_EQ(events[0].tid, trace_thread_id());  // same thread, same ordinal
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0],
            (std::pair<std::string, std::uint64_t>{"vectors", 64}));
  EXPECT_EQ(events[0].args[1],
            (std::pair<std::string, std::uint64_t>{"shard", 2}));
}

TEST(TraceSpan, ThreadOrdinalsAreStablePerThreadAndDistinctAcross) {
  const std::uint32_t here = trace_thread_id();
  EXPECT_EQ(trace_thread_id(), here);  // stable within a thread
  std::uint32_t other = 0;
  std::thread t([&other] { other = trace_thread_id(); });
  t.join();
  EXPECT_GT(other, 0u);
  EXPECT_NE(other, here);
}

TEST(MetricsRegistry, TraceBufferDropsPastCapAndCounts) {
  MetricsRegistry reg;
  // Exercise the overflow path without 2^20 allocations: record into a
  // registry whose buffer we fill via the public API in bulk.
  for (std::size_t i = 0; i < 100; ++i) {
    reg.record_trace(TraceEvent{"e", i, 1, 1, {}});
  }
  EXPECT_EQ(reg.trace_events().size(), 100u);
  reg.clear_trace();
  EXPECT_TRUE(reg.trace_events().empty());
}

TEST(MetricHelpers, NullSafe) {
  metric_add(nullptr, "x", 1);
  metric_set_max(nullptr, "x", 1);
  MetricsRegistry reg;
  metric_add(&reg, "x", 2);
  metric_set_max(&reg, "y", 3);
  EXPECT_EQ(reg.counter("x").value(), 2u);
  EXPECT_EQ(reg.counter("y").value(), 3u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndBumpsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) reg.counter("shared").add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace udsim
