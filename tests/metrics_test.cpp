// Unit tests for the observability primitives (obs/metrics.h): counter
// semantics, registry snapshots and exports, and TraceSpan behaviour with
// and without a registry.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace udsim {
namespace {

TEST(MetricCounter, AddAccumulates) {
  MetricCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricCounter, SetIsLastWriteWins) {
  MetricCounter c;
  c.set(10);
  c.set(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(MetricCounter, SetMaxKeepsMaximum) {
  MetricCounter c;
  c.set_max(4);
  c.set_max(9);
  c.set_max(2);
  EXPECT_EQ(c.value(), 9u);
}

TEST(MetricsRegistry, CounterIsCreateOrGet) {
  MetricsRegistry reg;
  MetricCounter& a = reg.counter("x");
  MetricCounter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.counter("c").add(3);
  const auto snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& [k, v] : snap) names.push_back(k);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(snap.at("a"), 1u);
  EXPECT_EQ(snap.at("c"), 3u);
}

TEST(MetricsRegistry, ToJsonIsFlatSortedObject) {
  MetricsRegistry reg;
  reg.counter("z.count").add(2);
  reg.counter("a.count").add(1);
  const std::string j = reg.to_json();
  EXPECT_NE(j.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"z.count\": 2"), std::string::npos);
  EXPECT_LT(j.find("a.count"), j.find("z.count"));
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(MetricsRegistry, ToJsonCanDropTimingKeys) {
  MetricsRegistry reg;
  reg.counter("phase.ns").add(123);
  reg.counter("phase.calls").add(1);
  const std::string all = reg.to_json(/*include_timings=*/true);
  const std::string det = reg.to_json(/*include_timings=*/false);
  EXPECT_NE(all.find("phase.ns"), std::string::npos);
  EXPECT_EQ(det.find("phase.ns"), std::string::npos);
  EXPECT_NE(det.find("phase.calls"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  MetricCounter& c = reg.counter("x");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("x").value(), 2u);
}

TEST(MetricsRegistry, EmptyReflectsRegistrations) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  (void)reg.counter("x");
  EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, PrintRendersEveryCounter) {
  MetricsRegistry reg;
  reg.counter("sim.vectors").add(7);
  std::ostringstream out;
  reg.print(out);
  EXPECT_NE(out.str().find("sim.vectors"), std::string::npos);
  EXPECT_NE(out.str().find("7"), std::string::npos);
}

TEST(TraceSpan, RecordsCallsAndElapsed) {
  MetricsRegistry reg;
  { TraceSpan span(&reg, "phase"); }
  { TraceSpan span(&reg, "phase"); }
  EXPECT_EQ(reg.counter("phase.calls").value(), 2u);
  // Elapsed time is environment-dependent; only its presence is asserted.
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.contains("phase.ns"));
}

TEST(TraceSpan, NullRegistryIsInert) {
  TraceSpan span(nullptr, "phase");  // must not crash or allocate a registry
}

TEST(MetricHelpers, NullSafe) {
  metric_add(nullptr, "x", 1);
  metric_set_max(nullptr, "x", 1);
  MetricsRegistry reg;
  metric_add(&reg, "x", 2);
  metric_set_max(&reg, "y", 3);
  EXPECT_EQ(reg.counter("x").value(), 2u);
  EXPECT_EQ(reg.counter("y").value(), 3u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndBumpsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) reg.counter("shared").add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace udsim
