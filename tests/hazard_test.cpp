// Hazard-analysis tests: the binary-search single-transition detector
// against a linear-scan model, plus end-to-end glitch hunting on circuits.
#include <gtest/gtest.h>

#include "gen/rng.h"
#include "hazard/hazard.h"
#include "oracle/oracle.h"
#include "parsim/parallel_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

std::vector<std::uint32_t> make_field(std::uint64_t bits, int width) {
  std::vector<std::uint32_t> f((static_cast<std::size_t>(width) + 31) / 32, 0);
  for (int i = 0; i < width; ++i) {
    if ((bits >> i) & 1u) f[static_cast<std::size_t>(i) / 32] |= 1u << (i % 32);
  }
  return f;
}

TEST(Hazard, ConstantFields) {
  for (int width : {1, 5, 32, 40}) {
    const auto zeros = make_field(0, width);
    const auto shape0 = single_transition_shape<std::uint32_t>(zeros, width);
    ASSERT_TRUE(shape0.has_value());
    EXPECT_TRUE(shape0->constant);
    const auto ones = make_field(~0ull, width);
    const auto shape1 = single_transition_shape<std::uint32_t>(ones, width);
    ASSERT_TRUE(shape1.has_value());
    EXPECT_TRUE(shape1->constant);
  }
}

TEST(Hazard, SingleRisingAndFalling) {
  // 0...01...1 with the boundary at each position.
  for (int width : {8, 32, 48}) {
    for (int b = 1; b < width; ++b) {
      const std::uint64_t rising = ~((1ull << b) - 1);
      auto f = make_field(rising, width);
      auto shape = single_transition_shape<std::uint32_t>(f, width);
      ASSERT_TRUE(shape.has_value()) << width << " " << b;
      EXPECT_FALSE(shape->constant);
      EXPECT_TRUE(shape->rising);
      EXPECT_EQ(shape->boundary, b);
      const std::uint64_t falling = (1ull << b) - 1;
      f = make_field(falling, width);
      shape = single_transition_shape<std::uint32_t>(f, width);
      ASSERT_TRUE(shape.has_value());
      EXPECT_FALSE(shape->constant);
      EXPECT_FALSE(shape->rising);
      EXPECT_EQ(shape->boundary, b);
    }
  }
}

TEST(Hazard, GlitchesDetected) {
  EXPECT_TRUE(has_hazard<std::uint32_t>(make_field(0b010, 3), 3));
  EXPECT_TRUE(has_hazard<std::uint32_t>(make_field(0b101, 3), 3));
  EXPECT_TRUE(has_hazard<std::uint32_t>(make_field(0b0110, 4), 4));
  EXPECT_FALSE(has_hazard<std::uint32_t>(make_field(0b110, 3), 3));
  // Glitch far from the ends, across a word boundary.
  std::uint64_t v = ~0ull;
  v &= ~(1ull << 33);
  EXPECT_TRUE(has_hazard<std::uint32_t>(make_field(v, 40), 40));
}

TEST(HazardProperty, BinarySearchAgreesWithLinearScan) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const int width = 2 + static_cast<int>(rng.below(62));
    std::uint64_t bits;
    // Mix random fields with biased single-transition shapes so both
    // branches are exercised.
    if (rng.chance(0.5)) {
      const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
      bits = rng.chance(0.5) ? ~((1ull << b) - 1) : ((1ull << b) - 1);
    } else {
      bits = rng.next();
    }
    const auto f = make_field(bits, width);
    const int transitions = count_transitions<std::uint32_t>(f, width);
    EXPECT_EQ(has_hazard<std::uint32_t>(f, width), transitions > 1)
        << "width " << width << " bits " << std::hex << bits;
    const auto shape = single_transition_shape<std::uint32_t>(f, width);
    if (transitions == 0) {
      ASSERT_TRUE(shape.has_value());
      EXPECT_TRUE(shape->constant);
    } else if (transitions == 1) {
      ASSERT_TRUE(shape.has_value());
      EXPECT_FALSE(shape->constant);
    } else {
      EXPECT_FALSE(shape.has_value());
    }
  }
}

TEST(Hazard, SixtyFourBitWords) {
  std::vector<std::uint64_t> f = {0xffffffffffff0000ull, 0x1ull};
  EXPECT_FALSE(has_hazard<std::uint64_t>(f, 65));
  f[1] = 0;  // now 1-bits end at 63: 0^16 1^48 0^1 -> hazard
  EXPECT_TRUE(has_hazard<std::uint64_t>(f, 65));
}

TEST(Hazard, EndToEndGlitchHuntOnFig11) {
  // A AND NOT(A): rising A produces a hazard on C (oracle-confirmed), and
  // the parallel technique's bit-field shows it.
  const Netlist nl = test::fig11_network();
  const NetId c = *nl.find_net("C");
  ParallelSim<> sim(nl);
  OracleSim oracle(nl);
  const Bit v0[] = {0};
  sim.step(v0);
  (void)oracle.step(v0);
  const Bit v1[] = {1};
  sim.step(v1);
  const Waveform wf = oracle.step(v1);
  const int width = sim.compiled().widths[c.value];
  EXPECT_TRUE(has_hazard<std::uint32_t>(sim.field(c), width));
  EXPECT_GT(wf.transition_count(c), 1u);
  // Falling A: no glitch.
  sim.step(v0);
  EXPECT_FALSE(has_hazard<std::uint32_t>(sim.field(c), width));
}

}  // namespace
}  // namespace udsim
