// Zero-delay LCC compiled-simulation tests, scalar and packed modes.
#include <gtest/gtest.h>

#include "core/kernel_runner.h"
#include "eventsim/zero_delay_sim.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "lcc/lcc.h"
#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Lcc, Fig1GeneratedCodeIsOneOpPerGate) {
  // Fig. 1: D = A & B; E = C & D; — plus one load per primary input.
  const Netlist nl = test::fig4_network();
  const LccCompiled c = compile_lcc(nl);
  EXPECT_EQ(c.program.size(), nl.primary_inputs().size() + nl.gate_count());
}

TEST(Lcc, MatchesOracleFinals) {
  RandomDagParams p;
  p.inputs = 11;
  p.gates = 140;
  p.depth = 11;
  p.seed = 77;
  const Netlist nl = random_dag(p);
  OracleSim oracle(nl);
  LccSim<> lcc(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 10);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 30; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    lcc.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      ASSERT_EQ(lcc.value(NetId{n}), wf.final_value(NetId{n}))
          << nl.net(NetId{n}).name;
    }
  }
}

TEST(Lcc, PackedModeSimulates32StreamsAtOnce) {
  RandomDagParams p;
  p.inputs = 9;
  p.gates = 100;
  p.depth = 9;
  p.seed = 3;
  const Netlist nl = random_dag(p);
  const LccCompiled c = compile_lcc(nl, /*packed=*/true);
  KernelRunner<std::uint32_t> packed(c.program);
  // 32 scalar references.
  std::vector<std::unique_ptr<LccSim<>>> scalars;
  for (int l = 0; l < 32; ++l) scalars.push_back(std::make_unique<LccSim<>>(nl));

  RandomVectorSource src(nl.primary_inputs().size(), 12);
  std::vector<Bit> lane_v(nl.primary_inputs().size());
  for (int step = 0; step < 5; ++step) {
    std::vector<std::uint32_t> packed_in(nl.primary_inputs().size(), 0);
    for (unsigned lane = 0; lane < 32; ++lane) {
      src.next(lane_v);
      for (std::size_t i = 0; i < lane_v.size(); ++i) {
        packed_in[i] |= static_cast<std::uint32_t>(lane_v[i] & 1u) << lane;
      }
      scalars[lane]->step(lane_v);
    }
    packed.run(packed_in);
    for (unsigned lane = 0; lane < 32; ++lane) {
      for (NetId po : nl.primary_outputs()) {
        ASSERT_EQ(packed.bit(c.net_var[po.value], lane),
                  scalars[lane]->value(po))
            << "lane " << lane << " step " << step;
      }
    }
  }
}

TEST(Lcc, ConstantsLiveInArenaInit) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId k = nl.add_net("k");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Const1, {}, k);
  nl.add_gate(GateType::Nand, {a, k}, o);
  nl.mark_primary_output(o);
  const LccCompiled c = compile_lcc(nl);
  // No per-vector op touches the constant net.
  for (const Op& op : c.program.ops) {
    EXPECT_NE(op.dst, c.net_var[k.value]);
  }
  LccSim<> sim(nl);
  const Bit v1[] = {1};
  sim.step(v1);
  EXPECT_EQ(sim.value(o), 0);
  const Bit v0[] = {0};
  sim.step(v0);
  EXPECT_EQ(sim.value(o), 1);
}

TEST(Lcc, AgreesWithInterpretedZeroDelay) {
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 110;
  p.depth = 8;
  p.seed = 19;
  const Netlist nl = random_dag(p);
  LccSim<> lcc(nl);
  ZeroDelayEventSim zd(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 20);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    lcc.step(v);
    zd.step(v);
    for (NetId po : nl.primary_outputs()) {
      ASSERT_EQ(lcc.value(po), zd.value(po));
    }
  }
}

}  // namespace
}  // namespace udsim
