// Runtime lane-width dispatch tests (core/width_dispatch.h, DESIGN.md §5j):
// the UDSIM_FORCE_WIDTH override, the fallback ladder with its structured
// WidthFallback diagnostic and dispatch.* counters, the facade overloads
// that carry a width request, and the KernelRunner word-size-mismatch
// regression (a program compiled at one width handed to a runner at
// another must surface as a structured ProgramWordSize diagnostic, not a
// bare string).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "ir/program.h"
#include "lcc/lcc.h"
#include "netlist/diagnostics.h"
#include "obs/metrics.h"

namespace udsim {
namespace {

/// Sets (or clears, with nullptr) one environment variable for the scope
/// and restores the previous state on exit, so tests cannot leak a forced
/// width into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(WidthDispatch, LadderAlwaysCarries32And64) {
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const std::vector<int> widths = supported_widths();
  ASSERT_GE(widths.size(), 2u);
  EXPECT_EQ(widths.front(), 32);
  for (std::size_t i = 1; i < widths.size(); ++i) {
    EXPECT_LT(widths[i - 1], widths[i]) << "ascending";
  }
  EXPECT_TRUE(width_available(32));
  EXPECT_TRUE(width_available(64));
  EXPECT_EQ(widest_width(), widths.back());
  for (int w : widths) EXPECT_TRUE(width_available(w)) << w;
  EXPECT_FALSE(width_available(512));
  EXPECT_FALSE(width_compiled(48));
}

TEST(WidthDispatch, DefaultRequestStaysAt32Bits) {
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const WidthChoice c = dispatch_width();
  EXPECT_EQ(c.word_bits, 32);
  EXPECT_FALSE(c.forced);
  EXPECT_FALSE(c.fell_back);
}

TEST(WidthDispatch, WidestRequestSelectsLadderTop) {
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const WidthChoice c = dispatch_width(kWidthWidest);
  EXPECT_EQ(c.word_bits, widest_width());
  EXPECT_FALSE(c.fell_back);
}

TEST(WidthDispatch, ExplicitAvailableWidthsDispatchExactly) {
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const Netlist nl = make_iscas85_like("c432");
  for (int w : supported_widths()) {
    MetricsRegistry reg;
    const WidthChoice c = dispatch_width(w, nullptr, &reg);
    EXPECT_EQ(c.word_bits, w);
    EXPECT_FALSE(c.fell_back);
    EXPECT_EQ(reg.counter("dispatch.width").value(),
              static_cast<std::uint64_t>(w));
    // The facade overload compiles the engine at exactly that width.
    for (EngineKind kind : {EngineKind::ZeroDelayLcc, EngineKind::PCSet,
                            EngineKind::ParallelCombined}) {
      const auto sim = make_simulator(nl, kind, w);
      ASSERT_NE(sim->compiled_program(), nullptr) << engine_name(kind);
      EXPECT_EQ(sim->compiled_program()->word_bits, w) << engine_name(kind);
    }
  }
}

TEST(WidthDispatch, ForceEnvOverridesEveryRequest) {
  const Netlist nl = make_iscas85_like("c432");
  for (int w : supported_widths()) {
    const ScopedEnv force("UDSIM_FORCE_WIDTH", std::to_string(w).c_str());
    const WidthChoice c = dispatch_width(/*requested=*/32);
    EXPECT_EQ(c.word_bits, w);
    EXPECT_TRUE(c.forced);
    // The default make_simulator path (no explicit width) obeys the force.
    const auto sim = make_simulator(nl, EngineKind::ZeroDelayLcc);
    ASSERT_NE(sim->compiled_program(), nullptr);
    EXPECT_EQ(sim->compiled_program()->word_bits, w) << "forced " << w;
  }
}

TEST(WidthDispatch, UnknownRequestFallsDownLadderWithDiagnostic) {
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  Diagnostics diag;
  MetricsRegistry reg;
  // 512 is above the ladder: fall to the widest available width.
  const WidthChoice wide = dispatch_width(512, &diag, &reg);
  EXPECT_EQ(wide.word_bits, widest_width());
  EXPECT_TRUE(wide.fell_back);
  ASSERT_TRUE(diag.has(DiagCode::WidthFallback));
  const Diagnostic* d = diag.first(DiagCode::WidthFallback);
  EXPECT_EQ(d->severity, DiagSeverity::Warning);
  EXPECT_NE(d->subject.find("512"), std::string::npos) << d->subject;
  EXPECT_EQ(reg.counter("dispatch.width_fallbacks").value(), 1u);
  EXPECT_EQ(reg.counter("dispatch.width").value(),
            static_cast<std::uint64_t>(widest_width()));
  // 48 sits between rungs: fall to the widest width not above it (32).
  const WidthChoice narrow = dispatch_width(48, &diag, &reg);
  EXPECT_EQ(narrow.word_bits, 32);
  EXPECT_TRUE(narrow.fell_back);
  EXPECT_EQ(diag.count(DiagCode::WidthFallback), 2u);
  EXPECT_EQ(reg.counter("dispatch.width_fallbacks").value(), 2u);
}

TEST(WidthDispatch, ForcedUnavailableWidthAlsoFallsBack) {
  const ScopedEnv force("UDSIM_FORCE_WIDTH", "512");
  Diagnostics diag;
  const WidthChoice c = dispatch_width(/*requested=*/32, &diag);
  EXPECT_EQ(c.word_bits, widest_width());
  EXPECT_TRUE(c.forced);
  EXPECT_TRUE(c.fell_back);
  EXPECT_TRUE(diag.has(DiagCode::WidthFallback));
}

TEST(WidthDispatch, KernelRunnerRejectsMismatchedProgramWithDiagnostic) {
  // Regression: a program compiled for 64-bit words handed to a 32-bit
  // runner must throw WordSizeMismatch naming BOTH widths and report a
  // structured ProgramWordSize record (historically a bare string).
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const Netlist nl = make_iscas85_like("c432");
  const LccCompiled compiled = compile_lcc(nl, /*packed=*/false, 64);
  ASSERT_EQ(compiled.program.word_bits, 64);
  Diagnostics diag;
  try {
    const KernelRunner<std::uint32_t> runner(compiled.program, &diag);
    FAIL() << "mismatched widths must not construct";
  } catch (const WordSizeMismatch& e) {
    EXPECT_EQ(e.program_bits(), 64);
    EXPECT_EQ(e.runner_bits(), 32);
    const std::string what = e.what();
    EXPECT_NE(what.find("64"), std::string::npos) << what;
    EXPECT_NE(what.find("32"), std::string::npos) << what;
  }
  ASSERT_TRUE(diag.has(DiagCode::ProgramWordSize));
  const Diagnostic* d = diag.first(DiagCode::ProgramWordSize);
  EXPECT_EQ(d->severity, DiagSeverity::Error);
  EXPECT_EQ(d->subject, "KernelRunner");
}

TEST(WidthDispatch, NativeEngineRejectsWideWidths) {
  // The native backend has no portable C word type above 64 bits; a direct
  // request is a caller error, not a silent downgrade.
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  const Netlist nl = make_iscas85_like("c432");
  if (!width_available(128)) GTEST_SKIP() << "no 128-bit lane on this build";
  EXPECT_THROW((void)make_simulator(nl, EngineKind::Native, 128),
               std::invalid_argument);
}

TEST(WidthDispatch, FallbackChainSkipsNativeAtWideWidths) {
  // In a *chain*, the same situation is a structured skip: NativeFallback
  // diagnostic + native.fallback counter, then the IR engines take over at
  // the requested width.
  const ScopedEnv clear("UDSIM_FORCE_WIDTH", nullptr);
  if (!width_available(128)) GTEST_SKIP() << "no 128-bit lane on this build";
  const Netlist nl = make_iscas85_like("c432");
  MetricsRegistry reg;
  SimPolicy policy;
  policy.chain = {EngineKind::Native, EngineKind::ZeroDelayLcc};
  policy.word_bits = 128;
  policy.metrics = &reg;
  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);
  EXPECT_EQ(sim->kind(), EngineKind::ZeroDelayLcc);
  ASSERT_NE(sim->compiled_program(), nullptr);
  EXPECT_EQ(sim->compiled_program()->word_bits, 128);
  EXPECT_TRUE(diag.has(DiagCode::NativeFallback));
  EXPECT_EQ(reg.counter("native.fallback").value(), 1u);
  EXPECT_EQ(reg.counter("dispatch.width").value(), 128u);
}

}  // namespace
}  // namespace udsim
