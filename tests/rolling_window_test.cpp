// RollingWindow (DESIGN.md §5l): bucket rotation and expiry under an
// explicit test-driven clock, the cumulative-totals invariant (totals()
// never expire and count every record exactly once, including under
// concurrent recording across interval edges), the nearest-rank log2
// percentile, and the SLO evaluation math.
#include "obs/rolling_window.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace udsim {
namespace {

constexpr std::uint64_t kIntervalNs = 1'000;  // small, test-driven clock

RollingWindowConfig tiny_config(std::size_t buckets = 4) {
  RollingWindowConfig cfg;
  cfg.interval_ns = kIntervalNs;
  cfg.buckets = buckets;
  return cfg;
}

std::uint64_t at_interval(std::uint64_t i) { return i * kIntervalNs + 1; }

TEST(RollingWindowTest, ConstructorRejectsDegenerateShapes) {
  EXPECT_THROW(RollingWindow(tiny_config(), 0), std::invalid_argument);
  RollingWindowConfig no_buckets = tiny_config(0);
  EXPECT_THROW(RollingWindow(no_buckets, 3), std::invalid_argument);
  RollingWindowConfig no_interval = tiny_config();
  no_interval.interval_ns = 0;
  EXPECT_THROW(RollingWindow(no_interval, 3), std::invalid_argument);
}

TEST(RollingWindowTest, RecordsLandInTheCurrentInterval) {
  RollingWindow w(tiny_config(), 3);
  w.record(0, 100, at_interval(0));
  w.record(0, 200, at_interval(0));
  w.record(2, 50, at_interval(0));

  const auto snap = w.snapshot(at_interval(0));
  EXPECT_EQ(snap.covered_intervals, 1u);
  EXPECT_EQ(snap.slot_counts, (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(snap.slot_totals, (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(snap.latency.count, 3u);
  EXPECT_EQ(snap.latency.sum, 350u);
  EXPECT_EQ(snap.latency.max, 200u);
}

TEST(RollingWindowTest, ExpiredBucketsLeaveTheWindowButNotTheTotals) {
  RollingWindow w(tiny_config(4), 2);
  w.record(0, 10, at_interval(0));
  w.record(1, 10, at_interval(1));

  // Both intervals still inside the 4-bucket window.
  auto snap = w.snapshot(at_interval(2));
  EXPECT_EQ(snap.slot_counts, (std::vector<std::uint64_t>{1, 1}));

  // Advance until interval 0 has slid out (window covers (now-4, now]).
  snap = w.snapshot(at_interval(4));
  EXPECT_EQ(snap.slot_counts, (std::vector<std::uint64_t>{0, 1}));

  // Far past everything: the windowed view is empty, the totals are not.
  snap = w.snapshot(at_interval(100));
  EXPECT_EQ(snap.slot_counts, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(snap.covered_intervals, 0u);
  EXPECT_EQ(snap.latency.count, 0u);
  EXPECT_EQ(w.totals(), (std::vector<std::uint64_t>{1, 1}));
  EXPECT_EQ(w.total_count(), 2u);
}

TEST(RollingWindowTest, RingRecyclingResetsTheReusedBucket) {
  // Interval 0 and interval 4 share a ring position in a 4-bucket ring; the
  // later epoch must rotate the bucket rather than accumulate into it.
  RollingWindow w(tiny_config(4), 1);
  w.record(0, 10, at_interval(0));
  w.record(0, 10, at_interval(0));
  w.record(0, 10, at_interval(4));

  const auto snap = w.snapshot(at_interval(4));
  EXPECT_EQ(snap.slot_counts[0], 1u) << "recycled bucket kept stale counts";
  EXPECT_EQ(w.totals()[0], 3u);
}

TEST(RollingWindowTest, OutOfRangeSlotClampsToLast) {
  RollingWindow w(tiny_config(), 2);
  w.record(99, 10, at_interval(0));
  EXPECT_EQ(w.totals(), (std::vector<std::uint64_t>{0, 1}));
}

TEST(RollingWindowTest, PercentileIsTheInclusiveLog2UpperEdge) {
  RollingWindow w(tiny_config(), 1);
  // 100 samples of 100µs: every percentile is the upper edge of the bucket
  // [64, 128), i.e. 127.
  for (int i = 0; i < 100; ++i) w.record(0, 100, at_interval(0));
  const auto snap = w.snapshot(at_interval(0));
  EXPECT_EQ(RollingWindow::percentile(snap.latency, 0.50), 127u);
  EXPECT_EQ(RollingWindow::percentile(snap.latency, 0.99), 127u);

  HistogramSnapshot empty;
  EXPECT_EQ(RollingWindow::percentile(empty, 0.99), 0u);

  // 9 fast samples + 1 slow: p50 stays in the fast bucket, p99 reaches the
  // slow one — the quantile is monotone across buckets.
  RollingWindow mixed(tiny_config(), 1);
  for (int i = 0; i < 9; ++i) mixed.record(0, 3, at_interval(0));
  mixed.record(0, 1000, at_interval(0));
  const auto msnap = mixed.snapshot(at_interval(0));
  EXPECT_EQ(RollingWindow::percentile(msnap.latency, 0.50), 3u);
  EXPECT_EQ(RollingWindow::percentile(msnap.latency, 0.99), 1023u);
}

TEST(RollingWindowTest, SloEvaluationChargesErrorsAgainstTheBudget) {
  RollingWindow w(tiny_config(), 2);  // slot 0 good, slot 1 error
  for (int i = 0; i < 98; ++i) w.record(0, 10, at_interval(0));
  w.record(1, 10, at_interval(0));
  w.record(1, 10, at_interval(0));

  SloConfig slo;
  slo.availability_target = 0.95;
  slo.latency_target_us = 100;
  slo.latency_quantile = 0.95;
  const SloView v =
      evaluate_slo(w.snapshot(at_interval(0)), slo, {true, false});
  EXPECT_EQ(v.total, 100u);
  EXPECT_EQ(v.good, 98u);
  EXPECT_EQ(v.errors, 2u);
  EXPECT_DOUBLE_EQ(v.availability, 0.98);
  EXPECT_TRUE(v.availability_ok);
  EXPECT_NEAR(v.error_budget, 5.0, 1e-9);
  EXPECT_NEAR(v.budget_consumed, 0.4, 1e-9);
  EXPECT_LE(v.latency_q_us, 15u);
  EXPECT_TRUE(v.latency_ok);

  // Tighten the target past the observed availability: budget blown.
  slo.availability_target = 0.999;
  const SloView tight =
      evaluate_slo(w.snapshot(at_interval(0)), slo, {true, false});
  EXPECT_FALSE(tight.availability_ok);
  EXPECT_GT(tight.budget_consumed, 1.0);
}

TEST(RollingWindowTest, SloOnEmptyWindowIsVacuouslyHealthy) {
  RollingWindow w(tiny_config(), 2);
  const SloView v = evaluate_slo(w.snapshot(at_interval(0)), SloConfig{},
                                 {true, false});
  EXPECT_EQ(v.total, 0u);
  EXPECT_DOUBLE_EQ(v.availability, 1.0);
  EXPECT_TRUE(v.availability_ok);
  EXPECT_TRUE(v.latency_ok);
}

TEST(RollingWindowTest, TotalsStayExactUnderConcurrentRecordingAndRotation) {
  // The hard invariant behind "windowed totals == outcome counters": many
  // threads record across interval edges (forcing rotations and ring
  // recycling) while a reader snapshots; afterwards totals() must count
  // every record exactly once per slot.
  constexpr std::size_t kSlots = 3;
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  RollingWindow w(tiny_config(4), kSlots);

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&w, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Deterministic slot mix and a clock that sweeps many epochs.
        const std::size_t slot = (t + i) % kSlots;
        const std::uint64_t now = i * (kIntervalNs / 8) + t;
        w.record(slot, i % 512, now);
      }
    });
  }
  std::uint64_t snapshots_taken = 0;
  std::thread reader([&w, &snapshots_taken] {
    for (int i = 0; i < 200; ++i) {
      const auto snap = w.snapshot(at_interval(static_cast<std::uint64_t>(i)));
      ASSERT_LE(snap.slot_counts[0] + snap.slot_counts[1] + snap.slot_counts[2],
                kThreads * kPerThread);
      ++snapshots_taken;
    }
  });
  for (std::thread& th : workers) th.join();
  reader.join();
  EXPECT_EQ(snapshots_taken, 200u);

  std::vector<std::uint64_t> expected(kSlots, 0);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) ++expected[(t + i) % kSlots];
  }
  EXPECT_EQ(w.totals(), expected);
  EXPECT_EQ(w.total_count(), kThreads * kPerThread);
}

}  // namespace
}  // namespace udsim
