// make_simulator_with_fallback: a budget too small for the preferred engine
// degrades down the chain instead of failing, the chosen engine still
// simulates correctly (checked against the oracle), and every downgrade is
// visible in the Diagnostics sink.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

/// Deep, heavily reconvergent DAG: the parallel technique's per-net
/// (depth+1)-bit fields make its arena far larger than LCC's one word per
/// net, so an arena budget can separate the two.
Netlist deep_reconvergent() {
  RandomDagParams p;
  p.name = "deep";
  p.inputs = 12;
  p.outputs = 8;
  p.gates = 600;
  p.depth = 96;
  p.reach = 6.0;
  p.seed = 0x5eedull;
  return random_dag(p);
}

void expect_matches_oracle(Simulator& sim, const Netlist& nl, int vectors,
                           std::uint64_t seed) {
  OracleSim oracle(nl);
  RandomVectorSource src(nl.primary_inputs().size(), seed);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < vectors; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    for (NetId po : nl.primary_outputs()) {
      ASSERT_EQ(wf.final_value(po), sim.final_value(po))
          << "net " << nl.net(po).name << " vector " << i << " engine "
          << engine_name(sim.kind());
    }
  }
}

TEST(FallbackChain, UnlimitedBudgetPicksTheFirstEngine) {
  const Netlist nl = test::fig4_network();
  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, {}, &diag);
  EXPECT_EQ(sim->kind(), EngineKind::ParallelCombined);
  EXPECT_EQ(diag.count(DiagCode::BudgetDowngrade), 0u);
  ASSERT_TRUE(diag.has(DiagCode::EngineSelected));
  EXPECT_EQ(diag.first(DiagCode::EngineSelected)->subject,
            engine_name(EngineKind::ParallelCombined));
}

// The acceptance scenario: a deep reconvergent netlist whose parallel-
// technique cost exceeds a small arena budget compiles and simulates
// correctly through the fallback chain, outputs match the oracle, and the
// downgrades are recorded.
TEST(FallbackChain, DeepNetlistDowngradesAndStillMatchesOracle) {
  const Netlist nl = deep_reconvergent();

  // Budget sized between LCC (one word per net) and the parallel engines'
  // bit-field arenas, so the chain must skip past both parallel entries.
  const CompileCostEstimate par =
      estimate_compile_cost(nl, EngineKind::ParallelCombined);
  const CompileCostEstimate lcc =
      estimate_compile_cost(nl, EngineKind::ZeroDelayLcc);
  ASSERT_LT(lcc.arena_words, par.arena_words);

  SimPolicy policy;
  policy.budget.max_arena_words = lcc.arena_words;
  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);

  EXPECT_EQ(sim->kind(), EngineKind::ZeroDelayLcc);
  EXPECT_GE(diag.count(DiagCode::BudgetDowngrade), 3u);  // combined/trimmed/pcset
  ASSERT_TRUE(diag.has(DiagCode::EngineSelected));
  const Diagnostic* sel = diag.first(DiagCode::EngineSelected);
  EXPECT_EQ(sel->subject, engine_name(EngineKind::ZeroDelayLcc));
  const Diagnostic* down = diag.first(DiagCode::BudgetDowngrade);
  EXPECT_EQ(down->subject, engine_name(EngineKind::ParallelCombined));
  EXPECT_NE(down->message.find("arena words"), std::string::npos);

  expect_matches_oracle(*sim, nl, 16, 0xfeedull);
}

TEST(FallbackChain, EventEngineIsTheLastResort) {
  const Netlist nl = deep_reconvergent();
  SimPolicy policy;
  policy.budget.max_arena_words = 4;  // below even LCC's one word per net
  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);
  EXPECT_EQ(sim->kind(), EngineKind::Event2);
  EXPECT_EQ(diag.count(DiagCode::BudgetDowngrade), 4u);  // all compiled entries
  expect_matches_oracle(*sim, nl, 8, 0xbeefull);
}

TEST(FallbackChain, ExhaustedChainThrowsBudgetExceeded) {
  const Netlist nl = test::fig4_network();
  SimPolicy policy;
  policy.chain = {EngineKind::ParallelCombined, EngineKind::ZeroDelayLcc};
  policy.budget.max_arena_words = 1;
  Diagnostics diag;
  EXPECT_THROW(
      { auto s = make_simulator_with_fallback(nl, policy, &diag); },
      BudgetExceeded);
  EXPECT_EQ(diag.count(DiagCode::BudgetDowngrade), 2u);
  EXPECT_FALSE(diag.has(DiagCode::EngineSelected));
}

TEST(FallbackChain, EmptyChainIsAnError) {
  const Netlist nl = test::fig4_network();
  SimPolicy policy;
  policy.chain.clear();
  EXPECT_THROW({ auto s = make_simulator_with_fallback(nl, policy); },
               NetlistError);
}

// Native entries in the chain (DESIGN.md §5h): a native pipeline failure is
// not a budget miss — it produces a NativeFallback record ordered before
// the EngineSelected note, the chain lands on the IR first choice, and the
// facade's exec.ops == compile.ops × passes invariant still holds on the IR
// path (the abandoned native attempt's compile counters are rolled back).
TEST(FallbackChain, NativeFailureFallsBackToIrWithOrderedDiagnostics) {
  const Netlist nl = test::fig4_network();
  SimPolicy policy = native_sim_policy();
  policy.native.compiler = "/nonexistent/udsim-no-such-cc";  // force Compile
  MetricsRegistry reg;
  policy.metrics = &reg;
  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);

  EXPECT_EQ(sim->kind(), EngineKind::ParallelCombined);
  EXPECT_EQ(diag.count(DiagCode::NativeFallback), 1u);
  EXPECT_EQ(diag.count(DiagCode::BudgetDowngrade), 0u)
      << "a toolchain failure must not masquerade as a budget miss";

  // Record order: the fallback explains the selection that follows it.
  std::size_t fallback_at = diag.records().size();
  std::size_t selected_at = diag.records().size();
  for (std::size_t i = 0; i < diag.records().size(); ++i) {
    if (diag.records()[i].code == DiagCode::NativeFallback) fallback_at = i;
    if (diag.records()[i].code == DiagCode::EngineSelected) selected_at = i;
  }
  ASSERT_LT(selected_at, diag.records().size());
  EXPECT_LT(fallback_at, selected_at);
  EXPECT_EQ(diag.records()[fallback_at].subject,
            engine_name(EngineKind::Native));
  const Diagnostic& sel = diag.records()[selected_at];
  EXPECT_EQ(sel.subject, engine_name(EngineKind::ParallelCombined));
  EXPECT_NE(sel.message.find("after native fallback"), std::string::npos)
      << sel.message;

  // The invariant the observability layer pins for every IR engine must
  // survive the detour: only the selected engine's compile is on the books.
  EXPECT_EQ(reg.snapshot().at("native.fallback"), 1u);
  constexpr std::uint64_t kPasses = 3;
  std::vector<Bit> row(nl.primary_inputs().size(), 0);
  for (std::uint64_t i = 0; i < kPasses; ++i) sim->step(row);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.at("compile.ops"), 0u);
  EXPECT_EQ(snap.at("exec.ops"), snap.at("compile.ops") * kPasses);

  expect_matches_oracle(*sim, nl, 8, 0xabcdull);
}

// Diagnostics are optional: the chain works with a null sink.
TEST(FallbackChain, NullDiagnosticsSinkIsAccepted) {
  const Netlist nl = deep_reconvergent();
  SimPolicy policy;
  policy.budget.max_arena_words =
      estimate_compile_cost(nl, EngineKind::ZeroDelayLcc).arena_words;
  const auto sim = make_simulator_with_fallback(nl, policy);
  EXPECT_EQ(sim->kind(), EngineKind::ZeroDelayLcc);
}

// The guarded make_simulator overload enforces the budget on a single
// engine without any fallback.
TEST(FallbackChain, GuardedMakeSimulatorThrowsInsteadOfFallingBack) {
  const Netlist nl = deep_reconvergent();
  const CompileGuard guard{CompileBudget{.max_arena_words = 8}, nullptr};
  EXPECT_THROW(
      { auto s = make_simulator(nl, EngineKind::ParallelCombined, guard); },
      BudgetExceeded);
  // Event engines compile nothing, so the same guard admits them.
  const auto sim = make_simulator(nl, EngineKind::Event2, guard);
  EXPECT_EQ(sim->kind(), EngineKind::Event2);
}

}  // namespace
}  // namespace udsim
