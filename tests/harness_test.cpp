// Harness-layer tests: RNG determinism, vector sources, table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/rng.h"
#include "harness/table.h"
#include "harness/timer.h"
#include "harness/vectors.h"

namespace udsim {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BitsAreRoughlyBalanced) {
  Rng rng(11);
  int ones = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) ones += static_cast<int>(rng.bit());
  EXPECT_GT(ones, kN * 45 / 100);
  EXPECT_LT(ones, kN * 55 / 100);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Vectors, ScalarStreamIsDeterministic) {
  RandomVectorSource a(8, 5), b(8, 5);
  std::vector<Bit> va(8), vb(8);
  for (int i = 0; i < 20; ++i) {
    a.next(va);
    b.next(vb);
    EXPECT_EQ(va, vb);
  }
}

TEST(Vectors, PackedLanesAreIndependentStreams) {
  RandomVectorSource src(4, 9);
  std::vector<std::uint32_t> w(4);
  src.next_packed<std::uint32_t>(w, 8);
  for (std::uint32_t x : w) {
    EXPECT_EQ(x >> 8, 0u);  // only the requested lanes are populated
  }
}

TEST(Table, AlignsAndFormats) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Numbers are right-aligned: "    1" under "value".
  EXPECT_NE(s.find("     1\n"), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Timer, MedianOfTrialsRuns) {
  int calls = 0;
  const double s = median_seconds([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace udsim
