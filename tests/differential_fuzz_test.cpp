// Seeded cross-engine differential fuzz harness.
//
// For N random circuits × random vector streams, every EngineKind must agree
// with OracleSim on all primary-output settled values, and the batch layer
// must agree with the per-step facade. Each case is derived deterministically
// from one seed; on mismatch the failure message carries the seed, the
// generator parameters, and the full netlist in `.bench` syntax, so any
// failure reproduces with a one-line unit test.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/packed_runner.h"
#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/random_dag.h"
#include "gen/rng.h"
#include "harness/vectors.h"
#include "native/native_sim.h"
#include "netlist/bench_io.h"
#include "oracle/oracle.h"

namespace udsim {
namespace {

constexpr EngineKind kAllEngines[] = {
    EngineKind::Event2,
    EngineKind::Event3,
    EngineKind::PCSet,
    EngineKind::Parallel,
    EngineKind::ParallelTrimmed,
    EngineKind::ParallelPathTracing,
    EngineKind::ParallelCycleBreaking,
    EngineKind::ParallelCombined,
    EngineKind::ZeroDelayLcc,
};

RandomDagParams fuzz_params(std::uint64_t seed) {
  Rng r(seed * 0x9e3779b97f4a7c15ull + 1);
  RandomDagParams p;
  p.name = "fuzz" + std::to_string(seed);
  p.inputs = 3 + r.below(8);
  p.outputs = 2 + r.below(4);
  p.depth = 3 + static_cast<int>(r.below(8));
  p.gates = static_cast<std::size_t>(p.depth) + 8 + r.below(70);
  p.seed = seed;
  p.reach = 1.0 + r.uniform() * 2.0;
  p.xor_fraction = r.uniform() * 0.3;
  p.inv_fraction = r.uniform() * 0.3;
  p.tree_bias = 0.3 + r.uniform() * 0.6;
  p.max_fanin = 2 + static_cast<int>(r.below(3));
  // Every fifth case exercises the multi-delay timing model.
  p.max_delay = (seed % 5 == 0) ? 2 + static_cast<int>(r.below(2)) : 1;
  return p;
}

std::string describe(std::uint64_t seed, const RandomDagParams& p,
                     const Netlist& nl) {
  std::ostringstream os;
  os << "fuzz seed " << seed << " (inputs=" << p.inputs << " outputs="
     << p.outputs << " gates=" << p.gates << " depth=" << p.depth
     << " reach=" << p.reach << " max_delay=" << p.max_delay << ")\n"
     << "--- netlist ---\n";
  write_bench(os, nl);
  os << "--- end netlist ---";
  return os.str();
}

/// One fuzz case. Returns false after reporting the first mismatch so a
/// broken engine produces one readable dump per seed, not thousands.
bool run_case(std::uint64_t seed) {
  const RandomDagParams params = fuzz_params(seed);
  const Netlist nl = random_dag(params);
  const std::size_t pis = nl.primary_inputs().size();

  OracleSim oracle(nl);
  std::vector<std::unique_ptr<Simulator>> sims;
  for (EngineKind k : kAllEngines) sims.push_back(make_simulator(nl, k));

  Rng r(seed ^ 0xfeedface);
  const std::size_t vectors = 5 + r.below(6);
  RandomVectorSource src(pis, seed + 0x5151);
  std::vector<Bit> flat(pis * vectors);
  for (std::size_t v = 0; v < vectors; ++v) {
    src.next(std::span<Bit>(flat.data() + v * pis, pis));
  }

  // Oracle-vs-engine settled values, vector by vector.
  std::vector<Bit> oracle_finals;  // row-major vectors × POs
  for (std::size_t v = 0; v < vectors; ++v) {
    const std::span<const Bit> row(flat.data() + v * pis, pis);
    const Waveform wf = oracle.step(row);
    for (auto& s : sims) s->step(row);
    for (NetId po : nl.primary_outputs()) {
      const Bit expect = wf.final_value(po);
      oracle_finals.push_back(expect);
      for (auto& s : sims) {
        const Bit got = s->final_value(po);
        if (got != expect) {
          ADD_FAILURE() << "engine '" << engine_name(s->kind())
                        << "' disagrees with oracle on net '" << nl.net(po).name
                        << "' at vector " << v << ": got " << int(got)
                        << ", expected " << int(expect) << "\n"
                        << describe(seed, params, nl);
          return false;
        }
      }
    }
  }

  // Batch layer: one engine kind per case (rotating), sharded across a
  // seed-dependent thread count, must reproduce the oracle stream exactly.
  const EngineKind bk = kAllEngines[seed % std::size(kAllEngines)];
  const auto batch_sim = make_simulator(nl, bk);
  const BatchResult br = batch_sim->run_batch(flat, 1 + seed % 4);
  if (br.values != oracle_finals) {
    ADD_FAILURE() << "run_batch(" << engine_name(bk) << ", threads="
                  << 1 + seed % 4 << ") disagrees with oracle stream\n"
                  << describe(seed, params, nl);
    return false;
  }
  return true;
}

TEST(DifferentialFuzz, AllEnginesAgreeWithOracleOnRandomCircuits) {
  // Fixed seed range: failures name the exact seed, and
  //   run_case(<seed>)
  // in isolation reproduces them.
  for (std::uint64_t seed = 1000; seed < 1040; ++seed) {
    if (!run_case(seed)) break;  // one readable dump, not forty
  }
}

TEST(DifferentialFuzz, NativeBackendAgreesWithOracleOnRandomCircuits) {
  // Native leg of the fuzz harness (DESIGN.md §5h): the dlopen'd machine
  // code must agree with OracleSim on the same seeded random DAGs the IR
  // engines are fuzzed with. Fewer seeds than the IR sweep — each case
  // shells out to the C compiler — but the same reproduction contract: a
  // failure names the seed, the netlist, and the emitted C file.
  NativeOptions opts;
  opts.compile_flags = "-O0";
  opts.keep_source = true;
  if (!native_available(opts)) {
    GTEST_SKIP() << "no usable C compiler (UDSIM_CC) on this machine";
  }
  for (std::uint64_t seed = 1000; seed < 1006; ++seed) {
    const RandomDagParams params = fuzz_params(seed);
    const Netlist nl = random_dag(params);
    OracleSim oracle(nl);
    NativeSimulator native(nl, opts);
    RandomVectorSource src(nl.primary_inputs().size(), seed + 0x5151);
    std::vector<Bit> row(nl.primary_inputs().size());
    for (int v = 0; v < 6; ++v) {
      src.next(row);
      const Waveform wf = oracle.step(row);
      native.step(row);
      for (NetId po : nl.primary_outputs()) {
        ASSERT_EQ(wf.final_value(po), native.final_value(po))
            << "native backend disagrees with oracle on net '"
            << nl.net(po).name << "' at vector " << v << "\n"
            << "emitted C: " << native.module().source_path() << "\n"
            << describe(seed, params, nl);
      }
    }
  }
}

TEST(DifferentialFuzz, WideLanesAgreeWithOracleOnRandomCircuits) {
  // Wide-word leg (DESIGN.md §5j): the compiled engines at every dispatched
  // lane width — and the packed LCC runner, which fills every lane with an
  // independent vector — must reproduce the oracle stream on seeded random
  // DAGs. Failures name the seed, the width, and the full netlist.
  const std::vector<int> widths = supported_widths();
  constexpr EngineKind kWideEngines[] = {
      EngineKind::ZeroDelayLcc, EngineKind::PCSet, EngineKind::ParallelCombined};
  for (std::uint64_t seed = 2000; seed < 2012; ++seed) {
    const RandomDagParams params = fuzz_params(seed);
    const Netlist nl = random_dag(params);
    const std::size_t pis = nl.primary_inputs().size();

    Rng r(seed ^ 0xfeedface);
    const std::size_t vectors = 5 + r.below(6);
    RandomVectorSource src(pis, seed + 0x5151);
    std::vector<Bit> flat(pis * vectors);
    for (std::size_t v = 0; v < vectors; ++v) {
      src.next(std::span<Bit>(flat.data() + v * pis, pis));
    }

    OracleSim oracle(nl);
    std::vector<Bit> expect;  // row-major vectors × POs
    for (std::size_t v = 0; v < vectors; ++v) {
      const Waveform wf = oracle.step(
          std::span<const Bit>(flat.data() + v * pis, pis));
      for (NetId po : nl.primary_outputs()) expect.push_back(wf.final_value(po));
    }

    for (int w : widths) {
      for (EngineKind k : kWideEngines) {
        const auto sim = make_simulator(nl, k, w);
        const BatchResult br = sim->run_batch(flat, 1);
        ASSERT_EQ(br.values, expect)
            << "engine '" << engine_name(k) << "' at " << w
            << "-bit lanes disagrees with oracle\n"
            << describe(seed, params, nl);
      }
      const PackedRunResult pr = run_packed_lcc(nl, flat, w);
      ASSERT_EQ(pr.values, expect)
          << "packed LCC at " << w << "-bit lanes disagrees with oracle\n"
          << describe(seed, params, nl);
    }
  }
}

TEST(DifferentialFuzz, WideShallowAndNarrowDeepExtremes) {
  // Structural extremes the uniform sampler rarely hits.
  for (std::uint64_t seed : {7001ull, 7002ull, 7003ull, 7004ull}) {
    RandomDagParams p = fuzz_params(seed);
    if (seed % 2 == 0) {
      p.inputs = 24;
      p.depth = 3;
      p.gates = 120;
    } else {
      p.inputs = 3;
      p.depth = 14;
      p.gates = 40;
      p.reach = 3.0;
    }
    const Netlist nl = random_dag(p);
    OracleSim oracle(nl);
    std::vector<std::unique_ptr<Simulator>> sims;
    for (EngineKind k : kAllEngines) sims.push_back(make_simulator(nl, k));
    RandomVectorSource src(nl.primary_inputs().size(), seed);
    std::vector<Bit> row(nl.primary_inputs().size());
    for (int v = 0; v < 8; ++v) {
      src.next(row);
      const Waveform wf = oracle.step(row);
      for (auto& s : sims) {
        s->step(row);
        for (NetId po : nl.primary_outputs()) {
          ASSERT_EQ(wf.final_value(po), s->final_value(po))
              << engine_name(s->kind()) << " vector " << v << "\n"
              << describe(seed, p, nl);
        }
      }
    }
  }
}

}  // namespace
}  // namespace udsim
