// PC-set algorithm tests (paper §2), including the Lemma 1 property:
// a net's actual change times are always a subset of its PC-set.
#include <gtest/gtest.h>

#include "analysis/pcset.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(PCSet, Fig4Sets) {
  const Netlist nl = test::fig4_network();
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  EXPECT_EQ(pc.of(*nl.find_net("A")).to_vector(), (std::vector<int>{0}));
  EXPECT_EQ(pc.of(*nl.find_net("D")).to_vector(), (std::vector<int>{1}));
  // E has paths of length 1 (via C) and 2 (via A/B through D).
  EXPECT_EQ(pc.of(*nl.find_net("E")).to_vector(), (std::vector<int>{1, 2}));
}

TEST(PCSet, Fig2StyleGate) {
  // A gate whose inputs have PC-sets {2}, {3}, {2,4} -> output {3,4,5}
  // (paper Fig. 2). Build with buffer chains and a 3-input AND.
  Netlist nl("fig2");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const auto chain = [&](int len, const std::string& tag) {
    NetId cur = a;
    for (int i = 0; i < len; ++i) {
      const NetId n = nl.add_net(tag + std::to_string(i));
      nl.add_gate(GateType::Buf, {cur}, n);
      cur = n;
    }
    return cur;
  };
  const NetId i2 = chain(2, "p");
  const NetId i3 = chain(3, "q");
  // Third input with PC-set {2,4}: a 2-chain ORed (wired) with a 4-chain.
  const NetId w = nl.add_net("w");
  nl.set_wired(w, WiredKind::Or);
  const NetId c2 = chain(1, "r");
  nl.add_gate(GateType::Buf, {c2}, w);  // length 2 path
  const NetId c4 = chain(3, "s");
  nl.add_gate(GateType::Buf, {c4}, w);  // length 4 path
  const NetId out = nl.add_net("out");
  nl.add_gate(GateType::And, {i2, i3, w}, out);
  nl.mark_primary_output(out);

  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  EXPECT_EQ(pc.of(i2).to_vector(), (std::vector<int>{2}));
  EXPECT_EQ(pc.of(i3).to_vector(), (std::vector<int>{3}));
  EXPECT_EQ(pc.of(w).to_vector(), (std::vector<int>{2, 4}));
  EXPECT_EQ(pc.of(out).to_vector(), (std::vector<int>{3, 4, 5}));
}

TEST(PCSet, SizeBoundedByLevelRange) {
  RandomDagParams p;
  p.inputs = 14;
  p.gates = 200;
  p.depth = 14;
  p.seed = 5;
  p.reach = 2.0;
  const Netlist nl = random_dag(p);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const NetId id{n};
    const auto v = pc.of(id).to_vector();
    ASSERT_FALSE(v.empty());
    // "The PC-set contains both the level and the minlevel of a net" and its
    // size is at most level - minlevel + 1.
    EXPECT_EQ(v.front(), lv.minlevel(id));
    EXPECT_EQ(v.back(), lv.level(id));
    EXPECT_LE(v.size(),
              static_cast<std::size_t>(lv.level(id) - lv.minlevel(id) + 1));
  }
}

TEST(PCSet, Lemma1ChangesOnlyAtPCTimes) {
  // Oracle-simulated change times must be a subset of the PC-set.
  RandomDagParams p;
  p.inputs = 12;
  p.gates = 150;
  p.depth = 12;
  p.seed = 77;
  p.reach = 1.5;
  const Netlist nl = random_dag(p);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  OracleSim sim(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 3);
  std::vector<Bit> v(nl.primary_inputs().size());
  // Warm-up: the all-zero construction state is inconsistent, and Lemma 1
  // presumes the previous vector settled; the first vector may glitch at
  // arbitrary times while the inconsistency drains.
  src.next(v);
  (void)sim.step(v);
  for (int i = 0; i < 30; ++i) {
    src.next(v);
    const Waveform wf = sim.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      for (int t : wf.change_times(NetId{n})) {
        EXPECT_TRUE(pc.of(NetId{n}).test(static_cast<std::size_t>(t)))
            << "net " << nl.net(NetId{n}).name << " changed at non-PC time " << t;
      }
    }
  }
}

TEST(PCSet, ZeroInsertionFig3) {
  // Fig. 2/3: inputs with minlevels {2,3,2} -> the minlevel-3 input gets 0.
  Netlist nl("fig3");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  NetId b2 = a, b3 = a;
  for (int i = 0; i < 2; ++i) {
    const NetId n = nl.add_net("b2_" + std::to_string(i));
    nl.add_gate(GateType::Buf, {b2}, n);
    b2 = n;
  }
  for (int i = 0; i < 3; ++i) {
    const NetId n = nl.add_net("b3_" + std::to_string(i));
    nl.add_gate(GateType::Buf, {b3}, n);
    b3 = n;
  }
  const NetId out = nl.add_net("out");
  nl.add_gate(GateType::And, {b2, b3}, out);
  nl.mark_primary_output(out);

  const Levelization lv = levelize(nl);
  PCSets pc = compute_pc_sets(nl, lv);
  const std::vector<NetId> mon = {out};
  const std::vector<NetId> zeroed = insert_zeros(nl, lv, mon, pc);
  ASSERT_EQ(zeroed.size(), 1u);
  EXPECT_EQ(zeroed[0], b3);
  EXPECT_EQ(pc.of(b3).to_vector(), (std::vector<int>{0, 3}));
  EXPECT_EQ(pc.of(b2).to_vector(), (std::vector<int>{2}));
}

TEST(PCSet, ZeroInsertionGuaranteesOperands) {
  // After insertion, every gate PC element t has, for every input, an
  // element strictly below t (the codegen guarantee).
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 120;
  p.depth = 10;
  p.seed = 21;
  p.reach = 2.5;
  const Netlist nl = random_dag(p);
  const Levelization lv = levelize(nl);
  PCSets pc = compute_pc_sets(nl, lv);
  insert_zeros(nl, lv, nl.primary_outputs(), pc);
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    for (int t : pc.of(GateId{gi}).to_vector()) {
      if (t == 0) continue;
      for (NetId in : g.inputs) {
        EXPECT_GE(pc.of(in).max_bit_below(static_cast<std::size_t>(t)), 0);
      }
    }
  }
}

TEST(PCSet, DuplicatePinsCountedPerPin) {
  // The worklist must decrement per pin (paper's step 4d note).
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Xor, {a, a}, o);
  nl.mark_primary_output(o);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  EXPECT_EQ(pc.of(o).to_vector(), (std::vector<int>{1}));
}

}  // namespace
}  // namespace udsim
