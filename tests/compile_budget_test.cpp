// CompileBudget / BudgetExceeded: the cost model's accuracy contract (the
// prediction stays within 2x of the emitted program on every ISCAS-85
// profile) and the guarded compilers' enforcement semantics.
#include <gtest/gtest.h>

#include "analysis/compile_budget.h"
#include "gen/iscas_profiles.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

constexpr EngineKind kCompiledKinds[] = {
    EngineKind::ZeroDelayLcc,
    EngineKind::PCSet,
    EngineKind::Parallel,
    EngineKind::ParallelTrimmed,
    EngineKind::ParallelPathTracing,
    EngineKind::ParallelCycleBreaking,
    EngineKind::ParallelCombined,
};

ParallelOptions options_for(EngineKind k) {
  ParallelOptions o;
  switch (k) {
    case EngineKind::ParallelTrimmed:
      o.trimming = true;
      break;
    case EngineKind::ParallelPathTracing:
      o.shift_elim = ShiftElim::PathTracing;
      break;
    case EngineKind::ParallelCycleBreaking:
      o.shift_elim = ShiftElim::CycleBreaking;
      break;
    case EngineKind::ParallelCombined:
      o.trimming = true;
      o.shift_elim = ShiftElim::PathTracing;
      break;
    default:
      break;
  }
  return o;
}

/// Compile `kind` for real and measure the emitted program's cost.
CompileCostEstimate actual_cost(const Netlist& nl, EngineKind kind) {
  switch (kind) {
    case EngineKind::ZeroDelayLcc: {
      const LccCompiled c = compile_lcc(nl);
      return measure_compile_cost(c.program, kind, nl.net_count());
    }
    case EngineKind::PCSet: {
      const PCSetCompiled c = compile_pcset(nl);
      return measure_compile_cost(c.program, kind, nl.net_count());
    }
    default: {
      const ParallelCompiled c = compile_parallel(nl, options_for(kind));
      return measure_compile_cost(c.program, kind, nl.net_count());
    }
  }
}

class BudgetAccuracy : public ::testing::TestWithParam<const char*> {};

// The acceptance bound of the cost model: for every compiled engine over
// every ISCAS-85 profile, the structural prediction is within a factor of
// two of the emitted program's arena and op cost (and of the derived peak
// bytes), in both directions.
TEST_P(BudgetAccuracy, PredictionWithin2xOfEmitted) {
  const Netlist nl = make_iscas85_like(GetParam());
  for (EngineKind kind : kCompiledKinds) {
    const CompileCostEstimate est = estimate_compile_cost(nl, kind);
    const CompileCostEstimate act = actual_cost(nl, kind);
    ASSERT_GT(act.arena_words, 0u);
    ASSERT_GT(act.ops, 0u);
    EXPECT_EQ(est.kind, kind);
    EXPECT_LE(est.arena_words, 2 * act.arena_words)
        << GetParam() << " " << engine_name(kind);
    EXPECT_LE(act.arena_words, 2 * est.arena_words)
        << GetParam() << " " << engine_name(kind);
    EXPECT_LE(est.ops, 2 * act.ops) << GetParam() << " " << engine_name(kind);
    EXPECT_LE(act.ops, 2 * est.ops) << GetParam() << " " << engine_name(kind);
    EXPECT_LE(est.peak_bytes, 2 * act.peak_bytes)
        << GetParam() << " " << engine_name(kind);
    EXPECT_LE(act.peak_bytes, 2 * est.peak_bytes)
        << GetParam() << " " << engine_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Iscas85, BudgetAccuracy,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c2670", "c3540", "c5315",
                                           "c6288", "c7552"));

// The LCC and PC-set estimates replicate their compilers' allocation loops,
// so they are exact, not merely within 2x.
TEST(BudgetAccuracy, LccAndPcsetPredictionsAreExact) {
  for (const char* name : {"c432", "c880", "c2670"}) {
    const Netlist nl = make_iscas85_like(name);
    for (EngineKind kind : {EngineKind::ZeroDelayLcc, EngineKind::PCSet}) {
      const CompileCostEstimate est = estimate_compile_cost(nl, kind);
      const CompileCostEstimate act = actual_cost(nl, kind);
      EXPECT_EQ(est.arena_words, act.arena_words) << name << " " << engine_name(kind);
      EXPECT_EQ(est.ops, act.ops) << name << " " << engine_name(kind);
    }
  }
}

TEST(Budget, ZeroLimitsMeanUnlimited) {
  const CompileBudget b;
  EXPECT_TRUE(b.unlimited());
  const CompileCostEstimate huge{EngineKind::PCSet, 1u << 30, 1u << 30, 1u << 30};
  EXPECT_EQ(budget_violation(b, huge), nullptr);
}

TEST(Budget, ViolationNamesTheFirstLimitCrossed) {
  CompileBudget b{.max_arena_words = 10, .max_ops = 10, .max_peak_bytes = 10};
  EXPECT_STREQ(budget_violation(b, {EngineKind::PCSet, 11, 0, 0}), "arena words");
  EXPECT_STREQ(budget_violation(b, {EngineKind::PCSet, 5, 11, 0}), "ops");
  EXPECT_STREQ(budget_violation(b, {EngineKind::PCSet, 5, 5, 11}), "peak bytes");
  EXPECT_EQ(budget_violation(b, {EngineKind::PCSet, 10, 10, 10}), nullptr);
}

// Every guarded compiler rejects a tiny budget with a *predicted* (pre-
// emission) BudgetExceeded that carries the engine, the cost, and the limit.
TEST(Budget, EachCompilerThrowsPredictedBudgetExceeded) {
  const Netlist nl = test::fig4_network();
  const CompileGuard guard{CompileBudget{.max_arena_words = 1}, nullptr};

  const auto expect_throw = [&](auto&& compile, EngineKind kind) {
    try {
      compile();
      FAIL() << "expected BudgetExceeded from " << engine_name(kind);
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.kind(), kind);
      EXPECT_TRUE(e.predicted());
      EXPECT_EQ(e.limit(), "arena words");
      EXPECT_GT(e.cost().arena_words, e.budget().max_arena_words);
      EXPECT_NE(std::string(e.what()).find("predicted"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("arena words"), std::string::npos);
    }
  };
  expect_throw([&] { (void)compile_lcc(nl, false, 32, guard); },
               EngineKind::ZeroDelayLcc);
  expect_throw([&] { (void)compile_pcset(nl, {}, false, 32, guard); },
               EngineKind::PCSet);
  expect_throw(
      [&] {
        (void)compile_parallel(nl, options_for(EngineKind::ParallelCombined),
                               guard);
      },
      EngineKind::ParallelCombined);
}

// A budget exactly at the emitted cost passes both the prediction (which
// never exceeds 2x) only if it fits; a budget at the actual cost with an
// over-predicting model must still compile when the budget admits the
// prediction.
TEST(Budget, GenerousBudgetCompilesAndMatchesUnguarded) {
  const Netlist nl = make_iscas85_like("c432");
  for (EngineKind kind : kCompiledKinds) {
    const CompileCostEstimate est = estimate_compile_cost(nl, kind);
    const CompileGuard guard{CompileBudget{.max_arena_words = 2 * est.arena_words,
                                           .max_ops = 2 * est.ops},
                             nullptr};
    switch (kind) {
      case EngineKind::ZeroDelayLcc: {
        const LccCompiled g = compile_lcc(nl, false, 32, guard);
        EXPECT_EQ(g.program.ops.size(), compile_lcc(nl).program.ops.size());
        break;
      }
      case EngineKind::PCSet: {
        const PCSetCompiled g = compile_pcset(nl, {}, false, 32, guard);
        EXPECT_EQ(g.program.ops.size(), compile_pcset(nl).program.ops.size());
        break;
      }
      default: {
        const ParallelCompiled g = compile_parallel(nl, options_for(kind), guard);
        EXPECT_EQ(g.program.ops.size(),
                  compile_parallel(nl, options_for(kind)).program.ops.size());
        break;
      }
    }
  }
}

// Event engines have no compiled program: prediction reports zero arena/ops
// and only an interpreter footprint.
TEST(Budget, EventEnginesPredictNoCompiledCost) {
  const Netlist nl = test::fig4_network();
  for (EngineKind kind : {EngineKind::Event2, EngineKind::Event3}) {
    const CompileCostEstimate est = estimate_compile_cost(nl, kind);
    EXPECT_EQ(est.arena_words, 0u);
    EXPECT_EQ(est.ops, 0u);
    EXPECT_GT(est.peak_bytes, 0u);
  }
}

}  // namespace
}  // namespace udsim
