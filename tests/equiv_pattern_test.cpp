// Equivalence-checker and pattern-file tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/equivalence.h"
#include "core/pattern_io.h"
#include "gen/random_dag.h"
#include "gen/trees.h"
#include "lcc/lcc.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Equivalence, IdenticalCircuitsAreEquivalentExhaustively) {
  const Netlist a = test::fig4_network();
  const Netlist b = test::fig4_network();
  const EquivalenceResult r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.vectors_checked, 8u);  // 2^3
}

TEST(Equivalence, DeMorganPairsAreEquivalent) {
  // NAND(a,b) == OR(NOT a, NOT b).
  Netlist x("x");
  const NetId xa = x.add_net("a"), xb = x.add_net("b"), xo = x.add_net("o");
  x.mark_primary_input(xa);
  x.mark_primary_input(xb);
  x.add_gate(GateType::Nand, {xa, xb}, xo);
  x.mark_primary_output(xo);
  Netlist y("y");
  const NetId ya = y.add_net("a"), yb = y.add_net("b");
  const NetId na = y.add_net("na"), nb = y.add_net("nb"), yo = y.add_net("o");
  y.mark_primary_input(ya);
  y.mark_primary_input(yb);
  y.add_gate(GateType::Not, {ya}, na);
  y.add_gate(GateType::Not, {yb}, nb);
  y.add_gate(GateType::Or, {na, nb}, yo);
  y.mark_primary_output(yo);
  const EquivalenceResult r = check_equivalence(x, y);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
}

TEST(Equivalence, FindsCounterexample) {
  Netlist x("x");
  const NetId xa = x.add_net("a"), xb = x.add_net("b"), xo = x.add_net("o");
  x.mark_primary_input(xa);
  x.mark_primary_input(xb);
  x.add_gate(GateType::And, {xa, xb}, xo);
  x.mark_primary_output(xo);
  Netlist y("y");
  const NetId ya = y.add_net("a"), yb = y.add_net("b"), yo = y.add_net("o");
  y.mark_primary_input(ya);
  y.mark_primary_input(yb);
  y.add_gate(GateType::Or, {ya, yb}, yo);
  y.mark_primary_output(yo);
  const EquivalenceResult r = check_equivalence(x, y);
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  const auto& cex = *r.counterexample;
  EXPECT_EQ(cex.output, "o");
  // The counterexample must actually distinguish them.
  LccSim<> sx(x), sy(y);
  sx.step(cex.inputs);
  sy.step(cex.inputs);
  EXPECT_NE(sx.value(xo), sy.value(yo));
  EXPECT_EQ(sx.value(xo), cex.value_a);
  EXPECT_EQ(sy.value(yo), cex.value_b);
}

TEST(Equivalence, InterfaceMismatchReported) {
  const Netlist a = test::fig4_network();
  const Netlist b = parity_tree(4);
  const EquivalenceResult r = check_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.error.empty());
}

TEST(Equivalence, TransformsPreserveEquivalence) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 120;
  p.depth = 9;
  p.seed = 77;
  const Netlist nl = random_dag(p);
  const SweepResult swept = sweep_dead_logic(nl);
  EquivalenceOptions opts;
  opts.exhaustive_limit = 10;
  const EquivalenceResult r1 = check_equivalence(nl, swept.netlist, opts);
  EXPECT_TRUE(r1.equivalent) << r1.error;
  const ConstPropResult cp = propagate_constants(nl);
  const EquivalenceResult r2 = check_equivalence(nl, cp.netlist, opts);
  EXPECT_TRUE(r2.equivalent) << r2.error;
}

TEST(Equivalence, RandomizedPathForWideCircuits) {
  const Netlist a = parity_tree(20);
  const Netlist b = parity_tree(20);
  EquivalenceOptions opts;
  opts.exhaustive_limit = 16;  // 20 inputs -> randomized
  opts.random_vectors = 512;
  const EquivalenceResult r = check_equivalence(a, b, opts);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_EQ(r.vectors_checked, 512u);
}

TEST(PatternIo, RoundTrip) {
  const Netlist nl = test::fig4_network();
  PatternSet ps;
  ps.inputs = 3;
  ps.bits = {1, 0, 1, 0, 1, 1};
  std::ostringstream os;
  write_patterns(os, nl, ps);
  std::istringstream is(os.str());
  const PatternSet back = read_patterns(is, nl);
  EXPECT_EQ(back.bits, ps.bits);
  EXPECT_EQ(back.count(), 2u);
}

TEST(PatternIo, HeaderReordersColumns) {
  const Netlist nl = test::fig4_network();  // inputs A, B, C
  std::istringstream is("inputs C A B\n101\n");
  const PatternSet ps = read_patterns(is, nl);
  ASSERT_EQ(ps.count(), 1u);
  // Column 0 -> C=1, column 1 -> A=0, column 2 -> B=1.
  EXPECT_EQ(ps.row(0)[0], 0);  // A
  EXPECT_EQ(ps.row(0)[1], 1);  // B
  EXPECT_EQ(ps.row(0)[2], 1);  // C
}

TEST(PatternIo, Errors) {
  const Netlist nl = test::fig4_network();
  {
    std::istringstream is("10\n");  // wrong width
    EXPECT_THROW((void)read_patterns(is, nl), PatternParseError);
  }
  {
    std::istringstream is("1x1\n");
    EXPECT_THROW((void)read_patterns(is, nl), PatternParseError);
  }
  {
    std::istringstream is("inputs A B\n11\n");  // header incomplete
    EXPECT_THROW((void)read_patterns(is, nl), PatternParseError);
  }
  {
    std::istringstream is("111\ninputs A B C\n");  // header after vectors
    EXPECT_THROW((void)read_patterns(is, nl), PatternParseError);
  }
}

TEST(PatternIo, CommentsAndBlanksIgnored) {
  const Netlist nl = test::fig4_network();
  std::istringstream is("# hi\n\n111 # trailing\n000\n");
  const PatternSet ps = read_patterns(is, nl);
  EXPECT_EQ(ps.count(), 2u);
}

TEST(PatternIo, ResponsesFormat) {
  const Netlist nl = test::fig4_network();
  const Bit resp[] = {1, 0};
  std::ostringstream os;
  write_responses(os, nl, resp);
  EXPECT_EQ(os.str(), "outputs E\n1\n0\n");
}

TEST(BenchIo, DelayDirectiveRoundTrip) {
  Netlist nl("md");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  nl.set_delay(nl.add_gate(GateType::Not, {a}, x), 3);
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::Buf, {x}, y);
  nl.mark_primary_output(y);

  std::ostringstream os;
  write_bench(os, nl);
  EXPECT_NE(os.str().find("#!delay x 3"), std::string::npos);
  std::istringstream is(os.str());
  const Netlist back = read_bench(is, "md");
  const GateId not_gate = back.net(*back.find_net("x")).drivers.front();
  EXPECT_EQ(back.delay(not_gate), 3);
  const GateId buf_gate = back.net(*back.find_net("y")).drivers.front();
  EXPECT_EQ(back.delay(buf_gate), 1);
}

}  // namespace
}  // namespace udsim
