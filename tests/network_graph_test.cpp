// Undirected network graph tests (paper §4, Figs. 13-16).
#include <gtest/gtest.h>

#include "analysis/network_graph.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(NetworkGraph, BuildFig11) {
  const Netlist nl = test::fig11_network();
  const UndirectedNetworkGraph g = build_network_graph(nl);
  // 3 nets + 2 gates; edges: NOT(in A, out B) = 2, AND(in A, in B, out C) = 3.
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edges.size(), 5u);
  // One fundamental cycle: F = E - V + C = 5 - 5 + 1.
  EXPECT_EQ(fundamental_cycle_count(g), 1u);
}

TEST(NetworkGraph, Fig13CycleWeightIsOne) {
  // The A-NOT-B-AND cycle of Fig. 11/13 has weight +-1.
  const Netlist nl = test::fig11_network();
  const UndirectedNetworkGraph g = build_network_graph(nl);
  // Find the edges of the simple cycle A-NOT-B-AND-A.
  const auto edge_between = [&](std::uint32_t gate, const std::string& net,
                                bool is_input) {
    const NetId n = *nl.find_net(net);
    for (std::uint32_t e = 0; e < g.edges.size(); ++e) {
      if (g.edges[e].gate == gate && g.edges[e].net == n.value &&
          g.edges[e].is_input == is_input) {
        return e;
      }
    }
    ADD_FAILURE() << "edge not found";
    return 0u;
  };
  // Gate 0 = NOT, gate 1 = AND. Cycle: A -(in)- NOT -(out)- B -(in)- AND -(in)- A.
  const std::vector<std::uint32_t> cycle = {
      edge_between(0, "A", true), edge_between(0, "B", false),
      edge_between(1, "B", true), edge_between(1, "A", true)};
  const int w = cycle_weight(nl, g, cycle);
  EXPECT_EQ(std::abs(w), 1);
}

TEST(NetworkGraph, UnbalancedCycleWeightMatchesPathDifference) {
  // Cycle through a k-gate chain and a 1-gate branch weighs k - 1
  // (paper Fig. 12: weight 3 or -3 depending on direction).
  for (int k : {2, 3, 4, 6}) {
    const Netlist nl = test::unbalanced_reconvergence(k);
    const UndirectedNetworkGraph g = build_network_graph(nl);
    EXPECT_EQ(fundamental_cycle_count(g), 1u) << k;
    // Build the unique simple cycle by walking: A -> chain -> OUT gate -> M -> NOT -> A.
    // Rather than hand-assembling, use the fact that removing any chain and
    // re-deriving is complex; instead check via alignments in alignment_test.
    // Here: count parity only for k = 4 (Fig. 12's 3-vs-1 configuration).
    (void)g;
  }
}

TEST(NetworkGraph, BalancedReconvergenceCycleWeighsZero) {
  // Two equal-length paths: the cycle weight must be zero (no shift needed).
  Netlist nl("bal");
  const NetId a = nl.add_net("A");
  nl.mark_primary_input(a);
  const NetId p = nl.add_net("P");
  nl.add_gate(GateType::Buf, {a}, p);
  const NetId q = nl.add_net("Q");
  nl.add_gate(GateType::Not, {a}, q);
  const NetId o = nl.add_net("O");
  nl.add_gate(GateType::And, {p, q}, o);
  nl.mark_primary_output(o);
  const UndirectedNetworkGraph g = build_network_graph(nl);
  // Cycle: A -(in)- BUF -(out)- P -(in)- AND -(in)- Q -(out)- NOT -(in)- A.
  const auto find_edge = [&](std::uint32_t gate, const char* net, bool is_input) {
    const NetId n = *nl.find_net(net);
    for (std::uint32_t e = 0; e < g.edges.size(); ++e) {
      if (g.edges[e].gate == gate && g.edges[e].net == n.value &&
          g.edges[e].is_input == is_input) {
        return e;
      }
    }
    return ~0u;
  };
  const std::vector<std::uint32_t> cycle = {
      find_edge(0, "A", true),  find_edge(0, "P", false), find_edge(2, "P", true),
      find_edge(2, "Q", true),  find_edge(1, "Q", false), find_edge(1, "A", true)};
  for (std::uint32_t e : cycle) ASSERT_NE(e, ~0u);
  EXPECT_EQ(cycle_weight(nl, g, cycle), 0);
}

TEST(NetworkGraph, FanoutFreeTreeIsAcyclic) {
  const Netlist nl = test::fig4_network();
  const UndirectedNetworkGraph g = build_network_graph(nl);
  EXPECT_EQ(fundamental_cycle_count(g), 0u);
}

TEST(NetworkGraph, DirectionOnlyFlipsSign) {
  const Netlist nl = test::fig11_network();
  const UndirectedNetworkGraph g = build_network_graph(nl);
  const auto edge_between = [&](std::uint32_t gate, const std::string& net,
                                bool is_input) {
    const NetId n = *nl.find_net(net);
    for (std::uint32_t e = 0; e < g.edges.size(); ++e) {
      if (g.edges[e].gate == gate && g.edges[e].net == n.value &&
          g.edges[e].is_input == is_input) {
        return e;
      }
    }
    return ~0u;
  };
  std::vector<std::uint32_t> cycle = {
      edge_between(0, "A", true), edge_between(0, "B", false),
      edge_between(1, "B", true), edge_between(1, "A", true)};
  const int w1 = cycle_weight(nl, g, cycle);
  std::reverse(cycle.begin(), cycle.end());
  const int w2 = cycle_weight(nl, g, cycle);
  EXPECT_EQ(w1, -w2);
  EXPECT_EQ(std::abs(w1), 1);
}

}  // namespace
}  // namespace udsim
