// Cross-width differential matrix (DESIGN.md §5j) — the lockdown for the
// SIMD-wide executors: every ISCAS-85 profile × production compiled engine
// × dispatched lane width must be bit-identical to the interpreted oracle
// (and hence to the historical 32-bit path), with the exact-counter
// invariant exec.ops == compile.ops × vectors holding at every width. The
// packed LCC runner must reproduce the same rows while retiring word_bits
// vectors per pass — lane independence at every width.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "core/kernel_runner.h"
#include "core/packed_runner.h"
#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "ir/program.h"
#include "ir/wide_word.h"
#include "lcc/lcc.h"
#include "obs/metrics.h"
#include "oracle/oracle.h"

namespace udsim {
namespace {

constexpr EngineKind kCompiledEngines[] = {
    EngineKind::ZeroDelayLcc, EngineKind::PCSet, EngineKind::ParallelCombined};

std::vector<Bit> make_stream(const Netlist& nl, std::size_t count,
                             std::uint64_t seed) {
  RandomVectorSource src(nl.primary_inputs().size(), seed);
  std::vector<Bit> flat(count * nl.primary_inputs().size());
  const std::size_t pis = nl.primary_inputs().size();
  for (std::size_t v = 0; v < count; ++v) {
    src.next(std::span<Bit>(flat.data() + v * pis, pis));
  }
  return flat;
}

/// Oracle settled outputs for the stream, row-major (the same layout
/// BatchResult::values uses).
std::vector<Bit> oracle_rows(const Netlist& nl, std::span<const Bit> flat,
                             std::size_t count) {
  OracleSim oracle(nl);
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> rows;
  rows.reserve(count * nl.primary_outputs().size());
  for (std::size_t v = 0; v < count; ++v) {
    const Waveform wf = oracle.step(flat.subspan(v * pis, pis));
    for (NetId po : nl.primary_outputs()) rows.push_back(wf.final_value(po));
  }
  return rows;
}

class WidthMatrixTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { ::unsetenv("UDSIM_FORCE_WIDTH"); }
};

TEST_P(WidthMatrixTest, EveryEngineAndWidthMatchesTheOracle) {
  constexpr std::size_t kVectors = 8;
  const Netlist nl = make_iscas85_like(GetParam());
  const std::vector<Bit> flat = make_stream(nl, kVectors, 0xa5a5ull);
  const std::vector<Bit> expect = oracle_rows(nl, flat, kVectors);

  for (int w : supported_widths()) {
    for (EngineKind kind : kCompiledEngines) {
      MetricsRegistry reg;
      const CompileGuard guard{CompileBudget{}, nullptr, &reg};
      const auto sim = make_simulator(nl, kind, guard, w);
      ASSERT_NE(sim->compiled_program(), nullptr);
      ASSERT_EQ(sim->compiled_program()->word_bits, w)
          << engine_name(kind) << " did not dispatch at " << w << " bits";

      const BatchResult r = sim->run_batch(flat, 1);
      ASSERT_EQ(r.values, expect)
          << GetParam() << " × " << engine_name(kind) << " × " << w
          << "-bit lanes diverges from the oracle";

      // The counters stay exact at every width: a straight-line program
      // executes every op on every pass, whatever the lane width.
      const auto snap = reg.snapshot();
      ASSERT_TRUE(snap.contains("compile.ops"));
      EXPECT_EQ(snap.at("sim.vectors"), kVectors)
          << engine_name(kind) << " @ " << w;
      EXPECT_EQ(snap.at("exec.ops"), snap.at("compile.ops") * kVectors)
          << engine_name(kind) << " @ " << w;
      EXPECT_EQ(snap.at("dispatch.width"), static_cast<std::uint64_t>(w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIscas85, WidthMatrixTest,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c2670", "c3540", "c5315",
                                           "c6288", "c7552"),
                         [](const auto& info) { return info.param; });

TEST(WidthMatrix, WideBatchIsThreadCountInvariant) {
  // Seam replay at wide words: the sharded batch layer must reproduce the
  // sequential rows for every thread count at every width (the seam pass
  // reconstructs retained state in the wide arena).
  ::unsetenv("UDSIM_FORCE_WIDTH");
  constexpr std::size_t kVectors = 70;  // several shards at min_chunk 16
  const Netlist nl = make_iscas85_like("c880");
  const std::vector<Bit> flat = make_stream(nl, kVectors, 0x5151ull);
  for (int w : supported_widths()) {
    const auto sim = make_simulator(nl, EngineKind::ParallelCombined, w);
    const BatchResult seq = sim->run_batch(flat, 1);
    for (unsigned threads : {2u, 4u}) {
      const BatchResult par = sim->run_batch(flat, threads);
      EXPECT_EQ(par.values, seq.values)
          << w << "-bit lanes, " << threads << " threads";
    }
  }
}

TEST(WidthMatrix, PackedRunnerMatchesScalarRowsAtEveryWidth) {
  // Lane independence: word_bits concurrent vectors per pass settle to the
  // same rows the scalar path produces one vector at a time.
  ::unsetenv("UDSIM_FORCE_WIDTH");
  for (const char* name : {"c432", "c880", "c1355"}) {
    const Netlist nl = make_iscas85_like(name);
    // Deliberately not a multiple of any lane count: the tail pass runs
    // partially filled.
    constexpr std::size_t kVectors = 70;
    const std::vector<Bit> flat = make_stream(nl, kVectors, 0x77ull);
    const std::vector<Bit> expect = oracle_rows(nl, flat, kVectors);
    for (int w : supported_widths()) {
      MetricsRegistry reg;
      const PackedRunResult r = run_packed_lcc(nl, flat, w, &reg);
      EXPECT_EQ(r.word_bits, w);
      EXPECT_EQ(r.vectors, kVectors);
      EXPECT_EQ(r.passes,
                (kVectors + static_cast<std::size_t>(w) - 1) /
                    static_cast<std::size_t>(w))
          << "one pass settles word_bits vectors";
      ASSERT_EQ(r.values, expect)
          << name << " packed @ " << w << "-bit lanes diverges";
      EXPECT_EQ(reg.counter("packed.lanes").value(),
                static_cast<std::uint64_t>(w));
      EXPECT_EQ(reg.counter("packed.vectors").value(), kVectors);
    }
  }
}

/// Save a mid-stream arena into the uint64 carrier, restore it into a fresh
/// runner, continue both — every probe and the whole arena must agree.
template <class Word>
void roundtrip_arena_at(const Netlist& nl) {
  const int bits = static_cast<int>(sizeof(Word) * 8);
  const LccCompiled c = compile_lcc(nl, /*packed=*/false, bits);
  KernelRunner<Word> live(c.program);
  RandomVectorSource src(nl.primary_inputs().size(), 0x42);
  std::vector<Bit> row(nl.primary_inputs().size());
  std::vector<Word> in(nl.primary_inputs().size());
  const auto advance = [&](KernelRunner<Word>* a, KernelRunner<Word>* b) {
    src.next(row);
    for (std::size_t i = 0; i < row.size(); ++i) {
      in[i] = static_cast<Word>(static_cast<std::uint64_t>(row[i] & 1u));
    }
    if (a) a->run(in);
    if (b) b->run(in);
  };
  for (int v = 0; v < 4; ++v) advance(&live, nullptr);

  std::vector<std::uint64_t> saved;
  live.save_arena(saved);
  ASSERT_EQ(saved.size(), c.program.arena_words * kWordU64Lanes<Word>)
      << bits << "-bit words carry " << kWordU64Lanes<Word> << " lanes each";
  KernelRunner<Word> restored(c.program);
  restored.load_arena(saved);

  for (int v = 0; v < 3; ++v) advance(&live, &restored);
  for (NetId po : nl.primary_outputs()) {
    const std::uint32_t var = c.net_var[po.value];
    EXPECT_EQ(live.bit(var, 0), restored.bit(var, 0))
        << bits << "-bit lanes, net " << nl.net(po).name;
  }
  std::vector<std::uint64_t> a, b;
  live.save_arena(a);
  restored.save_arena(b);
  EXPECT_EQ(a, b) << bits << "-bit arenas diverged after restore";
}

TEST(WidthMatrix, CheckpointCarrierRoundTripsWideArenas) {
  // The uint64 carrier holds word_bits/64 lanes per arena word; a runner
  // restored from a wide snapshot must continue bit-identically.
  ::unsetenv("UDSIM_FORCE_WIDTH");
  const Netlist nl = make_iscas85_like("c432");
  roundtrip_arena_at<std::uint32_t>(nl);
  roundtrip_arena_at<std::uint64_t>(nl);
#if UDSIM_HAS_W128
  if (width_available(128)) roundtrip_arena_at<u128>(nl);
#endif
  if (width_available(256)) roundtrip_arena_at<u256>(nl);
}

}  // namespace
}  // namespace udsim
