// Multi-delay timing-model tests: the generalization of every algorithm
// from unit delay to arbitrary per-gate integer delays (the paper's stated
// future-work direction). All engines must still agree with the oracle.
#include <gtest/gtest.h>

#include <map>

#include "core/simulator.h"
#include "eventsim/event_sim.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

/// A -> [d=2] N0 -> [d=3] N1, plus A -> [d=1] M; OUT = AND(N1, M) [d=2].
Netlist delay_network() {
  Netlist nl("mdelay");
  const NetId a = nl.add_net("A");
  nl.mark_primary_input(a);
  const NetId n0 = nl.add_net("N0");
  nl.set_delay(nl.add_gate(GateType::Buf, {a}, n0), 2);
  const NetId n1 = nl.add_net("N1");
  nl.set_delay(nl.add_gate(GateType::Not, {n0}, n1), 3);
  const NetId m = nl.add_net("M");
  nl.add_gate(GateType::Buf, {a}, m);  // unit delay
  const NetId out = nl.add_net("OUT");
  nl.set_delay(nl.add_gate(GateType::And, {n1, m}, out), 2);
  nl.mark_primary_output(out);
  return nl;
}

TEST(MultiDelay, SetDelayValidation) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  const GateId g = nl.add_gate(GateType::Not, {a}, o);
  EXPECT_EQ(nl.delay(g), 1);
  nl.set_delay(g, 5);
  EXPECT_EQ(nl.delay(g), 5);
  EXPECT_THROW(nl.set_delay(g, 0), NetlistError);
  EXPECT_EQ(nl.max_delay(), 5);
  EXPECT_FALSE(nl.is_unit_delay());
}

TEST(MultiDelay, LevelsArePathDelaySums) {
  const Netlist nl = delay_network();
  const Levelization lv = levelize(nl);
  EXPECT_EQ(lv.level(*nl.find_net("N0")), 2);
  EXPECT_EQ(lv.level(*nl.find_net("N1")), 5);
  EXPECT_EQ(lv.level(*nl.find_net("M")), 1);
  EXPECT_EQ(lv.level(*nl.find_net("OUT")), 7);
  EXPECT_EQ(lv.minlevel(*nl.find_net("OUT")), 3);  // via M + AND(2)
  EXPECT_EQ(lv.depth, 7);
}

TEST(MultiDelay, PCSetsShiftByGateDelay) {
  const Netlist nl = delay_network();
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  EXPECT_EQ(pc.of(*nl.find_net("N0")).to_vector(), (std::vector<int>{2}));
  EXPECT_EQ(pc.of(*nl.find_net("N1")).to_vector(), (std::vector<int>{5}));
  EXPECT_EQ(pc.of(*nl.find_net("OUT")).to_vector(), (std::vector<int>{3, 7}));
}

TEST(MultiDelay, OracleWaveformShape) {
  const Netlist nl = delay_network();
  OracleSim sim(nl);
  const NetId out = *nl.find_net("OUT");
  const Bit v0[] = {0};
  (void)sim.step(v0);  // settle: N1 = 1, M = 0, OUT = 0
  const Bit v1[] = {1};
  const Waveform wf = sim.step(v1);
  // M rises at 1, so OUT = N1(old 1) & M sees 1&1 at t=3; N1 falls at 5, so
  // OUT falls at 7: a pulse [3, 7).
  EXPECT_EQ(wf.at(out, 2), 0);
  EXPECT_EQ(wf.at(out, 3), 1);
  EXPECT_EQ(wf.at(out, 6), 1);
  EXPECT_EQ(wf.at(out, 7), 0);
  EXPECT_EQ(wf.change_times(out), (std::vector<int>{3, 7}));
}

TEST(MultiDelay, EventSimChangesMatchOracle) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 120;
  p.depth = 10;
  p.seed = 45;
  p.max_delay = 4;
  const Netlist nl = random_dag(p);
  EXPECT_FALSE(nl.is_unit_delay());
  OracleSim oracle(nl);
  EventSim2 ev(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 6);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 15; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    ev.step(v, true);
    std::map<std::pair<std::uint32_t, int>, Bit> expect, got;
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      for (int t : wf.change_times(NetId{n})) expect[{n, t}] = wf.at(NetId{n}, t);
    }
    for (const auto& c : ev.last_changes()) {
      if (c.time) got[{c.net.value, c.time}] = c.value;
    }
    ASSERT_EQ(got, expect) << "vector " << i;
  }
}

struct MdCase {
  const char* label;
  ParallelOptions options;
};

class MultiDelayParallel : public ::testing::TestWithParam<MdCase> {};

TEST_P(MultiDelayParallel, WaveformsMatchOracle) {
  for (auto [seed, max_delay] : {std::pair{1, 2}, {2, 3}, {3, 7}}) {
    RandomDagParams p;
    p.inputs = 10;
    p.outputs = 5;
    p.gates = 100;
    p.depth = 8;
    p.seed = static_cast<std::uint64_t>(seed);
    p.max_delay = max_delay;
    p.xor_fraction = 0.25;
    const Netlist nl = random_dag(p);
    OracleSim oracle(nl);
    ParallelSim<> sim(nl, GetParam().options);
    RandomVectorSource src(nl.primary_inputs().size(), 11);
    std::vector<Bit> v(nl.primary_inputs().size());
    for (int i = 0; i < 10; ++i) {
      src.next(v);
      const Waveform wf = oracle.step(v);
      sim.step(v);
      if (i == 0) continue;  // settle the construction state
      for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
        const int a = sim.compiled().plan.net_align[n];
        for (int t = std::max(a, 0); t <= oracle.depth(); ++t) {
          ASSERT_EQ(sim.value_at(NetId{n}, t), wf.at(NetId{n}, t))
              << nl.net(NetId{n}).name << " t=" << t << " max_delay=" << max_delay;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MultiDelayParallel,
    ::testing::Values(MdCase{"unopt", {false, ShiftElim::None, 32}},
                      MdCase{"trim", {true, ShiftElim::None, 32}},
                      MdCase{"pt", {false, ShiftElim::PathTracing, 32}},
                      MdCase{"pt_trim", {true, ShiftElim::PathTracing, 32}},
                      MdCase{"cb", {false, ShiftElim::CycleBreaking, 32}}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(MultiDelay, PCSetSimMatchesOracle) {
  RandomDagParams p;
  p.inputs = 9;
  p.outputs = 4;
  p.gates = 80;
  p.depth = 7;
  p.seed = 91;
  p.max_delay = 3;
  const Netlist nl = random_dag(p);
  std::vector<NetId> all;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) all.push_back(NetId{n});
  OracleSim oracle(nl);
  PCSetSim<> sim(nl, all);
  RandomVectorSource src(nl.primary_inputs().size(), 2);
  std::vector<Bit> v(nl.primary_inputs().size());
  src.next(v);
  (void)oracle.step(v);
  sim.step(v);
  for (int i = 0; i < 15; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      for (int t = 0; t <= oracle.depth(); ++t) {
        ASSERT_EQ(sim.value_at(NetId{n}, t), wf.at(NetId{n}, t))
            << nl.net(NetId{n}).name << " t=" << t;
      }
    }
  }
}

TEST(MultiDelay, AllEnginesAgreeOnFinals) {
  RandomDagParams p;
  p.inputs = 12;
  p.outputs = 6;
  p.gates = 150;
  p.depth = 9;
  p.seed = 33;
  p.max_delay = 5;
  const Netlist nl = random_dag(p);
  OracleSim oracle(nl);
  std::vector<std::unique_ptr<Simulator>> sims;
  for (EngineKind k :
       {EngineKind::Event2, EngineKind::Event3, EngineKind::PCSet,
        EngineKind::Parallel, EngineKind::ParallelTrimmed,
        EngineKind::ParallelPathTracing, EngineKind::ParallelCycleBreaking,
        EngineKind::ParallelCombined, EngineKind::ZeroDelayLcc}) {
    sims.push_back(make_simulator(nl, k));
  }
  RandomVectorSource src(nl.primary_inputs().size(), 13);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    for (auto& s : sims) {
      s->step(v);
      for (NetId po : nl.primary_outputs()) {
        ASSERT_EQ(wf.final_value(po), s->final_value(po))
            << engine_name(s->kind()) << " " << nl.net(po).name;
      }
    }
  }
}

TEST(MultiDelay, WiredNetsWithMixedDelays) {
  Netlist nl("wired_md");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  const NetId w = nl.add_net("w");
  nl.set_wired(w, WiredKind::Or);
  nl.set_delay(nl.add_gate(GateType::Buf, {a}, w), 3);
  nl.set_delay(nl.add_gate(GateType::Not, {b}, w), 1);
  nl.mark_primary_output(w);
  Netlist low = nl;
  lower_wired_nets(low);
  OracleSim oracle(low);
  ParallelSim<> sim(low);
  RandomVectorSource src(2, 21);
  std::vector<Bit> v(2);
  for (int i = 0; i < 16; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    if (i == 0) continue;
    const NetId wn = *low.find_net("w");
    for (int t = 0; t <= oracle.depth(); ++t) {
      ASSERT_EQ(sim.value_at(wn, t), wf.at(wn, t)) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace udsim
