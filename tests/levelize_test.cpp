// Unit tests for levelization and minlevel (paper §1-2).
#include <gtest/gtest.h>

#include "analysis/levelize.h"
#include "gen/random_dag.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Levelize, Fig4Levels) {
  const Netlist nl = test::fig4_network();
  const Levelization lv = levelize(nl);
  EXPECT_EQ(lv.level(*nl.find_net("A")), 0);
  EXPECT_EQ(lv.level(*nl.find_net("B")), 0);
  EXPECT_EQ(lv.level(*nl.find_net("C")), 0);
  EXPECT_EQ(lv.level(*nl.find_net("D")), 1);
  EXPECT_EQ(lv.level(*nl.find_net("E")), 2);
  EXPECT_EQ(lv.depth, 2);
  // E's minlevel is 1: the shortest path is C -> E.
  EXPECT_EQ(lv.minlevel(*nl.find_net("E")), 1);
  EXPECT_EQ(lv.minlevel(*nl.find_net("D")), 1);
}

TEST(Levelize, UnbalancedReconvergence) {
  const Netlist nl = test::unbalanced_reconvergence(3);
  const Levelization lv = levelize(nl);
  const NetId out = *nl.find_net("OUT");
  EXPECT_EQ(lv.level(out), 4);     // through the 3-buffer chain + AND
  EXPECT_EQ(lv.minlevel(out), 2);  // through the inverter + AND
}

TEST(Levelize, ConstantsAreLevelZero) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId k = nl.add_net("k");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Const1, {}, k);
  nl.add_gate(GateType::And, {a, k}, o);
  nl.mark_primary_output(o);
  const Levelization lv = levelize(nl);
  EXPECT_EQ(lv.level(k), 0);
  EXPECT_EQ(lv.minlevel(k), 0);
  EXPECT_EQ(lv.level(o), 1);
}

TEST(Levelize, WiredNetTakesMaxAndMinOfDrivers) {
  const Netlist nl = test::wired_network();
  const Levelization lv = levelize(nl);
  const NetId w = *nl.find_net("W");
  EXPECT_EQ(lv.level(w), 1);
  EXPECT_EQ(lv.minlevel(w), 1);
  // After lowering, levels of original nets are unchanged (resolvers are
  // zero-delay).
  Netlist lowered = test::wired_network();
  lower_wired_nets(lowered);
  const Levelization lv2 = levelize(lowered);
  EXPECT_EQ(lv2.level(*lowered.find_net("W")), 1);
  EXPECT_EQ(lv2.level(*lowered.find_net("O")), 2);
}

TEST(Levelize, DeepWiredChainWithDifferingDriverLevels) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  NetId cur = a;
  for (int i = 0; i < 4; ++i) {
    const NetId n = nl.add_net("c" + std::to_string(i));
    nl.add_gate(GateType::Buf, {cur}, n);
    cur = n;
  }
  const NetId w = nl.add_net("w");
  nl.set_wired(w, WiredKind::Or);
  nl.add_gate(GateType::Buf, {a}, w);    // level 1 driver
  nl.add_gate(GateType::Buf, {cur}, w);  // level 5 driver
  nl.mark_primary_output(w);
  const Levelization lv = levelize(nl);
  EXPECT_EQ(lv.level(w), 5);
  EXPECT_EQ(lv.minlevel(w), 1);
}

TEST(Levelize, TopologicalGateOrderRespectsDependencies) {
  RandomDagParams p;
  p.inputs = 12;
  p.gates = 150;
  p.depth = 12;
  p.seed = 9;
  const Netlist nl = random_dag(p);
  const std::vector<GateId> order = topological_gate_order(nl);
  ASSERT_EQ(order.size(), nl.gate_count());
  std::vector<int> pos(nl.gate_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i].value] = static_cast<int>(i);
  }
  for (GateId g : order) {
    for (NetId in : nl.gate(g).inputs) {
      for (GateId drv : nl.net(in).drivers) {
        EXPECT_LT(pos[drv.value], pos[g.value]);
      }
    }
  }
}

TEST(Levelize, LevelIsLongestPathProperty) {
  // level(gate output) == 1 + max(level(inputs)) for unit-delay gates.
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 120;
  p.depth = 10;
  p.seed = 11;
  const Netlist nl = random_dag(p);
  const Levelization lv = levelize(nl);
  for (const Gate& g : nl.gates()) {
    int hi = 0, lo = 1 << 30;
    for (NetId in : g.inputs) {
      hi = std::max(hi, lv.level(in));
      lo = std::min(lo, lv.minlevel(in));
    }
    EXPECT_EQ(lv.level(g.output), hi + 1);
    EXPECT_EQ(lv.minlevel(g.output), lo + 1);
  }
}

TEST(Levelize, ThrowsOnCycle) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::And, {a, y}, x);
  nl.add_gate(GateType::Buf, {x}, y);
  EXPECT_THROW((void)levelize(nl), NetlistError);
}

}  // namespace
}  // namespace udsim
