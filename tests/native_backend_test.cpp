// Cross-backend differential suite for the native-code backend (ISSUE PR 6,
// DESIGN.md §5h): the dlopen'd machine code must be *bit-identical* to the
// in-process IR executor — the semantic reference — on every ISCAS-85
// profile, for every base compiler (LCC, PC-set, parallel-combined) and both
// word sizes. The comparison is the strongest one available: full arenas
// after every vector, driven by arbitrary random input words (not just 0/1
// in bit 0), so every op's full-width behavior is exercised.
//
// Also covered here: the object cache (hit/miss counters, shared-object
// reuse), the whole-stream `udsim_kernel_run` entry vs the per-vector step
// loop, the Simulator facade (exec.ops == compile.ops × passes, batch
// equivalence), and cooperative cancellation at native sites.
//
// Every test skips (not fails) when the machine has no usable C compiler.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "ir/executor.h"
#include "lcc/lcc.h"
#include "native/native_sim.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "resilience/cancel.h"

namespace udsim {
namespace {

namespace fs = std::filesystem;

/// One cache directory per test-binary run: within the run, re-constructing
/// the same program is a cache hit, while stale objects from *other* builds
/// of the emitter can never leak in (the fingerprint keys the program, not
/// the emitter version).
const std::string& test_cache_dir() {
  static const std::string dir = [] {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    return (tmp / ("udsim-native-tests-" + std::to_string(::getpid())))
        .string();
  }();
  return dir;
}

NativeOptions test_native_options() {
  NativeOptions opts;
  opts.compile_flags = "-O0";  // differential correctness, not throughput
  opts.cache_dir = test_cache_dir();
  opts.max_cache_entries = 0;  // no eviction mid-suite
  opts.keep_source = true;     // mismatch forensics point at the .c file
  return opts;
}

#define SKIP_WITHOUT_NATIVE()                                            \
  if (!native_available(test_native_options())) {                        \
    GTEST_SKIP() << "no usable C compiler (UDSIM_CC) on this machine";   \
  }

/// Drive `p` through the IR executor and the dlopen'd module in lockstep
/// and require identical arenas after init and after every vector.
template <class Word>
void expect_native_matches_ir(const Program& p, const std::string& label) {
  MetricsRegistry reg;
  const NativeModule mod(p, label, test_native_options(), &reg);

  std::vector<Word> ir(p.arena_words, Word{0});
  std::vector<Word> nat(p.arena_words, ~Word{0});  // init must zero this
  initialize_arena(p, std::span<Word>(ir));
  mod.init(nat.data());
  ASSERT_EQ(ir, nat) << label << ": arenas differ after init"
                     << " (source: " << mod.source_path() << ")";

  std::vector<Word> in(p.input_words);
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int v = 0; v < 4; ++v) {
    for (Word& w : in) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      w = static_cast<Word>(x);
    }
    execute<Word>(p, in, ir);
    mod.step(nat.data(), in.data());
    ASSERT_EQ(ir, nat) << label << ": arenas differ after vector " << v
                       << " (source: " << mod.source_path() << ")";
  }
}

void expect_native_matches_ir_both_widths(const Netlist& nl,
                                          const std::string& circuit) {
  for (const int wb : {32, 64}) {
    const std::string suffix = "-w" + std::to_string(wb);
    ParallelOptions popts;
    popts.trimming = true;
    popts.shift_elim = ShiftElim::PathTracing;
    popts.word_bits = wb;
    const Program lcc = compile_lcc(nl, /*packed=*/false, wb).program;
    const Program pcset = compile_pcset(nl, {}, /*packed=*/false, wb).program;
    const Program parallel = compile_parallel(nl, popts).program;
    if (wb == 32) {
      expect_native_matches_ir<std::uint32_t>(lcc, circuit + "-lcc" + suffix);
      expect_native_matches_ir<std::uint32_t>(pcset,
                                              circuit + "-pcset" + suffix);
      expect_native_matches_ir<std::uint32_t>(
          parallel, circuit + "-parallel-combined" + suffix);
    } else {
      expect_native_matches_ir<std::uint64_t>(lcc, circuit + "-lcc" + suffix);
      expect_native_matches_ir<std::uint64_t>(pcset,
                                              circuit + "-pcset" + suffix);
      expect_native_matches_ir<std::uint64_t>(
          parallel, circuit + "-parallel-combined" + suffix);
    }
  }
}

class NativeDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NativeDifferentialTest, BitIdenticalToIrExecutor) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like(GetParam(), /*seed=*/1);
  expect_native_matches_ir_both_widths(nl, GetParam());
}

std::vector<std::string> all_profile_names() {
  std::vector<std::string> names;
  for (const IscasProfile& p : iscas85_profiles()) {
    names.push_back(p.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, NativeDifferentialTest,
                         ::testing::ValuesIn(all_profile_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Object cache.

TEST(NativeCacheTest, SecondConstructionHitsTheCache) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  const Program p = compile_parallel(nl, {}).program;
  NativeOptions opts = test_native_options();
  opts.cache_dir = test_cache_dir() + "/hit-miss";

  MetricsRegistry reg;
  const NativeModule first(p, "cache-test", opts, &reg);
  EXPECT_FALSE(first.from_cache());
  const NativeModule second(p, "cache-test", opts, &reg);
  EXPECT_TRUE(second.from_cache());
  EXPECT_EQ(first.so_path(), second.so_path());

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("native.cache.miss"), 1u);
  EXPECT_EQ(snap.at("native.cache.hit"), 1u);
  EXPECT_EQ(snap.at("native.builds"), 1u) << "a hit must not recompile";
}

TEST(NativeCacheTest, KeySeparatesEngineAndWordSize) {
  const Netlist nl = make_iscas85_like("c432", 1);
  const Program p32 = compile_parallel(nl, {}).program;
  ParallelOptions o64;
  o64.word_bits = 64;
  const Program p64 = compile_parallel(nl, o64).program;
  EXPECT_NE(native_cache_key(p32, "lcc"), native_cache_key(p32, "pcset"));
  EXPECT_NE(native_cache_key(p32, "lcc"), native_cache_key(p64, "lcc"));
  // Label sanitization: anything non-alphanumeric becomes '-'.
  EXPECT_EQ(native_cache_key(p32, "a b/c"), native_cache_key(p32, "a-b-c"));
}

TEST(NativeCacheTest, FingerprintTracksProgramContent) {
  const Netlist nl = make_iscas85_like("c432", 1);
  Program p = compile_parallel(nl, {}).program;
  const std::uint64_t before = program_fingerprint(p);
  EXPECT_EQ(before, program_fingerprint(p)) << "fingerprint must be stable";
  ASSERT_FALSE(p.ops.empty());
  p.ops.back().dst ^= 1;
  EXPECT_NE(before, program_fingerprint(p))
      << "a changed op must change the cache key";
}

// ---------------------------------------------------------------------------
// Whole-stream entry.

TEST(NativeRunEntryTest, RunMatchesStepLoop) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  const Program p = compile_parallel(nl, {}).program;
  const NativeModule mod(p, "run-entry", test_native_options());

  constexpr std::uint64_t kVectors = 16;
  std::vector<std::uint32_t> stream(kVectors * p.input_words);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint32_t& w : stream) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = static_cast<std::uint32_t>(x);
  }

  std::vector<std::uint32_t> stepped(p.arena_words);
  std::vector<std::uint32_t> streamed(p.arena_words);
  mod.init(stepped.data());
  mod.init(streamed.data());
  for (std::uint64_t v = 0; v < kVectors; ++v) {
    mod.step(stepped.data(), stream.data() + v * p.input_words);
  }
  mod.run(streamed.data(), stream.data(), kVectors);
  EXPECT_EQ(stepped, streamed)
      << "udsim_kernel_run must equal " << kVectors << " udsim_kernel calls";
}

// ---------------------------------------------------------------------------
// Simulator facade.

TEST(NativeSimulatorTest, StepMatchesParallelCombinedFacade) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c880", 1);
  NativeSimulator native(nl, test_native_options());
  auto ir = make_simulator(nl, EngineKind::ParallelCombined);
  ASSERT_EQ(native.kind(), EngineKind::Native);

  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> row(pis);
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (int v = 0; v < 8; ++v) {
    for (Bit& b : row) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<Bit>(x & 1);
    }
    native.step(row);
    ir->step(row);
    for (NetId po : nl.primary_outputs()) {
      ASSERT_EQ(native.final_value(po), ir->final_value(po))
          << "PO " << po.value << " diverged at vector " << v;
    }
  }
}

TEST(NativeSimulatorTest, RunBatchMatchesStepLoopAndCountsChunks) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c499", 1);
  NativeOptions opts = test_native_options();
  opts.batch_chunk = 4;
  NativeSimulator sim(nl, opts);
  MetricsRegistry reg;
  sim.set_metrics(&reg);

  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kVectors = 10;
  std::vector<Bit> stream(kVectors * pis);
  std::uint64_t x = 7;
  for (Bit& b : stream) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  const BatchResult batch = sim.run_batch(stream, /*num_threads=*/3);
  EXPECT_EQ(batch.vectors, kVectors);
  EXPECT_EQ(batch.threads, 1u) << "native batch is in-process sequential";

  auto oracle = make_simulator(nl, EngineKind::ParallelCombined);
  for (std::size_t v = 0; v < kVectors; ++v) {
    oracle->step(std::span<const Bit>(stream).subspan(v * pis, pis));
    for (std::size_t o = 0; o < batch.outputs.size(); ++o) {
      ASSERT_EQ(batch.value(v, o), oracle->final_value(batch.outputs[o]))
          << "vector " << v << " output " << o;
    }
  }
  // 10 vectors / chunk 4 → boundaries at v = 0, 4, 8.
  EXPECT_EQ(reg.snapshot().at("native.batch.chunks"), 3u);
}

TEST(NativeSimulatorTest, ExecOpsEqualsCompileOpsTimesPasses) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  MetricsRegistry reg;
  SimPolicy policy = native_sim_policy(test_native_options());
  policy.metrics = &reg;
  auto sim = make_simulator_with_fallback(nl, policy);
  ASSERT_EQ(sim->kind(), EngineKind::Native)
      << "with a working toolchain the chain must pick native";

  constexpr std::uint64_t kPasses = 5;
  std::vector<Bit> row(nl.primary_inputs().size(), 1);
  for (std::uint64_t i = 0; i < kPasses; ++i) sim->step(row);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.at("compile.ops"), 0u);
  EXPECT_EQ(snap.at("exec.ops"), snap.at("compile.ops") * kPasses)
      << "the facade invariant must hold on the native path too";
}

TEST(NativeSimulatorTest, StreamEntryMatchesStepOnTheFacade) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c1355", 1);
  NativeSimulator stepped(nl, test_native_options());
  NativeSimulator streamed(nl, test_native_options());

  const std::size_t pis = nl.primary_inputs().size();
  const Program& p = streamed.compiled().program;
  ASSERT_EQ(p.input_words, pis);
  constexpr std::uint64_t kVectors = 6;
  std::vector<Bit> row(pis);
  std::vector<std::uint32_t> words(kVectors * pis);
  std::uint64_t x = 3;
  for (std::uint64_t v = 0; v < kVectors; ++v) {
    for (std::size_t i = 0; i < pis; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      row[i] = static_cast<Bit>(x & 1);
      words[v * pis + i] = row[i];
    }
    stepped.step(row);
  }
  streamed.run_stream(words, kVectors);
  for (NetId po : nl.primary_outputs()) {
    EXPECT_EQ(stepped.final_value(po), streamed.final_value(po))
        << "PO " << po.value;
  }
}

// ---------------------------------------------------------------------------
// Cancellation at native sites (resilience contract).

TEST(NativeCancelTest, StepThrowsAtNativeStepSite) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeSimulator sim(nl, test_native_options());
  CancelToken token;
  sim.set_cancel(&token);
  std::vector<Bit> row(nl.primary_inputs().size(), 0);
  sim.step(row);  // not cancelled yet
  token.request_cancel();
  try {
    sim.step(row);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), StopReason::Cancelled);
    EXPECT_EQ(c.site(), "native.step");
    EXPECT_EQ(c.vector_index(), 2u) << "the second pass was the one stopped";
  }
}

TEST(NativeCancelTest, RunBatchThrowsAtChunkBoundary) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeSimulator sim(nl, test_native_options());
  CancelToken token;
  token.request_cancel();
  sim.set_cancel(&token);
  const std::vector<Bit> stream(4 * nl.primary_inputs().size(), 0);
  try {
    (void)sim.run_batch(stream, 1);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.site(), "native.batch");
    EXPECT_EQ(c.vector_index(), 0u) << "pre-cancelled: stop before vector 0";
  }
}

TEST(NativeCancelTest, RunStreamThrowsAtNativeRunSite) {
  SKIP_WITHOUT_NATIVE();
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeSimulator sim(nl, test_native_options());
  CancelToken token;
  token.request_cancel();
  sim.set_cancel(&token);
  const std::vector<std::uint32_t> words(2 * sim.compiled().program.input_words,
                                         0);
  EXPECT_THROW(sim.run_stream(words, 2), Cancelled);
}

}  // namespace
}  // namespace udsim
