// Golden-metrics fixtures: the deterministic counter set (everything except
// wall-clock "*.ns" keys) for three ISCAS-85 profiles, compiled by the three
// production engines and driven through a fixed 8-vector stream, diffed
// against checked-in JSON under tests/golden/.
//
// A counter drifting is either a regression (an optimization silently
// stopped firing) or an intentional change — in which case refresh with
//
//   ./udsim_observability_tests --update-golden        (or set
//   UDSIM_UPDATE_GOLDEN=1) and commit the diff.
//
// This file also provides main() for the observability test binary so the
// refresh flag can be intercepted before gtest sees it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "golden_flag.h"
#include "obs/metrics.h"

namespace udsim {
namespace {

constexpr std::size_t kVectors = 8;

/// One registry accumulating compile + runtime counters for every engine,
/// with per-engine disambiguation left to the engine-agnostic counter names
/// (the sums are what the fixture pins down).
std::string collect_metrics(const std::string& circuit, int word_bits = 0) {
  const Netlist nl = make_iscas85_like(circuit, /*seed=*/1);
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  for (EngineKind kind : {EngineKind::ParallelCombined, EngineKind::PCSet,
                          EngineKind::ZeroDelayLcc}) {
    auto sim = make_simulator(nl, kind, guard, word_bits);
    const std::size_t pis = nl.primary_inputs().size();
    std::vector<Bit> row(pis);
    std::uint64_t x = 0x243f6a8885a308d3ull;
    for (std::size_t v = 0; v < kVectors; ++v) {
      for (Bit& b : row) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = static_cast<Bit>(x & 1);
      }
      sim->step(row);
    }
  }
  return reg.to_json(/*include_timings=*/false) + "\n";
}

std::string golden_path(const std::string& circuit) {
  return std::string(UDSIM_GOLDEN_DIR) + "/metrics_" + circuit + ".json";
}

class GoldenMetricsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenMetricsTest, MatchesFixture) {
  const std::string circuit = GetParam();
  const std::string actual = collect_metrics(circuit);
  const std::string path = golden_path(circuit);
  if (test::g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "refreshed " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " — run with --update-golden to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "metrics drifted from " << path
      << " — a counter regression, or refresh with --update-golden";
}

INSTANTIATE_TEST_SUITE_P(Circuits, GoldenMetricsTest,
                         ::testing::Values("c432", "c880", "c6288"),
                         [](const auto& info) { return info.param; });

/// Per-width fixtures (DESIGN.md §5j): the same collection driven at each
/// wide lane width. The counter set is deterministic *per width* — the
/// parallel compiler packs gates into wider words, so compile.ops itself
/// legitimately differs across widths and each fixture pins its own shape.
/// Widths this build/CPU cannot execute are skipped, never failed.
class GoldenMetricsWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenMetricsWidthTest, MatchesFixtureAtWidth) {
  const int width = GetParam();
  if (!width_available(width)) {
    GTEST_SKIP() << width << "-bit lane unavailable on this build/CPU";
  }
  const std::string actual = collect_metrics("c432", width);
  const std::string path = std::string(UDSIM_GOLDEN_DIR) + "/metrics_c432_w" +
                           std::to_string(width) + ".json";
  if (test::g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "refreshed " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " — run with --update-golden to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "metrics drifted from " << path
      << " — a counter regression, or refresh with --update-golden";
}

INSTANTIATE_TEST_SUITE_P(WideLanes, GoldenMetricsWidthTest,
                         ::testing::Values(64, 128, 256),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace udsim

int main(int argc, char** argv) {
  udsim::test::consume_update_golden_flag(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
