// Event-driven baseline tests: exact change-history equivalence with the
// oracle, three-valued settling, zero-delay selective trace.
#include <gtest/gtest.h>

#include <map>

#include "eventsim/event_sim.h"
#include "eventsim/zero_delay_sim.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(EventSim, ChangeHistoryMatchesOracleExactly) {
  RandomDagParams p;
  p.inputs = 12;
  p.gates = 160;
  p.depth = 12;
  p.seed = 31;
  p.reach = 1.8;
  const Netlist nl = random_dag(p);
  OracleSim oracle(nl);
  EventSim2 ev(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 4);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 25; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    ev.step(v, /*record=*/true);
    // Collect oracle changes (net, time) -> value; t=0 changes are PI edges.
    std::map<std::pair<std::uint32_t, int>, Bit> expect;
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      for (int t : wf.change_times(NetId{n})) {
        expect[{n, t}] = wf.at(NetId{n}, t);
      }
    }
    std::map<std::pair<std::uint32_t, int>, Bit> got;
    for (const auto& c : ev.last_changes()) {
      if (c.time == 0) continue;  // PI application, not a gate change
      got[{c.net.value, c.time}] = c.value;
    }
    ASSERT_EQ(got, expect) << "vector " << i;
  }
}

TEST(EventSim, ThreeValuedSettlesToTwoValued) {
  RandomDagParams p;
  p.inputs = 8;
  p.gates = 90;
  p.depth = 9;
  p.seed = 13;
  const Netlist nl = random_dag(p);
  OracleSim oracle(nl);
  EventSim3 ev(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 4);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 10; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    ev.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      ASSERT_NE(ev.value(NetId{n}), Tri::X) << nl.net(NetId{n}).name;
      EXPECT_EQ(ev.value(NetId{n}) == Tri::One ? 1 : 0, wf.final_value(NetId{n}));
    }
  }
}

TEST(EventSim, NoEventsWhenInputsRepeat) {
  const Netlist nl = test::fig4_network();
  EventSim2 ev(nl);
  const Bit v[] = {1, 0, 1};
  ev.step(v);
  const auto before = ev.stats().events;
  ev.step(v, true);
  EXPECT_EQ(ev.stats().events, before);
  EXPECT_TRUE(ev.last_changes().empty());
}

TEST(EventSim, CancellationOnGlitchFreeReconvergence) {
  // F = A XOR A is constantly 0; but the two pins see the same change, so
  // the evaluation is a single event that produces no output change.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Xor, {a, a}, o);
  nl.mark_primary_output(o);
  EventSim2 ev(nl);
  const Bit v0[] = {0};
  ev.step(v0);
  const Bit v1[] = {1};
  ev.step(v1, true);
  for (const auto& c : ev.last_changes()) {
    EXPECT_NE(c.net, o);  // o never actually changes
  }
  EXPECT_EQ(ev.value(o), 0);
}

TEST(EventSim, WiredZeroDelayWaves) {
  Netlist nl = test::wired_network(WiredKind::Or);
  lower_wired_nets(nl);
  OracleSim oracle(nl);
  EventSim2 ev(nl);
  RandomVectorSource src(3, 99);
  std::vector<Bit> v(3);
  for (int i = 0; i < 16; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    ev.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      EXPECT_EQ(ev.value(NetId{n}), wf.final_value(NetId{n}));
    }
  }
}

TEST(EventSim, StatsCountWork) {
  const Netlist nl = test::fig4_network();
  EventSim2 ev(nl);
  const Bit v[] = {1, 1, 1};
  ev.step(v);
  EXPECT_GT(ev.stats().gate_evals, 0u);
  EXPECT_EQ(ev.stats().vectors, 1u);
}

TEST(ZeroDelaySim, MatchesOracleFinals) {
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 120;
  p.depth = 10;
  p.seed = 55;
  const Netlist nl = random_dag(p);
  OracleSim oracle(nl);
  ZeroDelayEventSim zd(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 6);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    zd.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      ASSERT_EQ(zd.value(NetId{n}), wf.final_value(NetId{n}))
          << nl.net(NetId{n}).name << " vector " << i;
    }
  }
}

TEST(ZeroDelaySim, SelectiveTraceSkipsQuietLogic) {
  // Flipping one input of a wide circuit must evaluate far fewer gates than
  // the whole netlist (after the initial settling pass).
  RandomDagParams p;
  p.inputs = 32;
  p.gates = 400;
  p.depth = 10;
  p.seed = 8;
  const Netlist nl = random_dag(p);
  ZeroDelayEventSim zd(nl);
  std::vector<Bit> v(nl.primary_inputs().size(), 0);
  zd.step(v);  // settle
  const auto base = zd.gate_evals();
  v[0] = 1;
  zd.step(v);
  EXPECT_LT(zd.gate_evals() - base, nl.gate_count() / 2);
}

}  // namespace
}  // namespace udsim
