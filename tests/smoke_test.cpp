// Build-out smoke test: cross-engine agreement on a small random circuit.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"

namespace udsim {
namespace {

TEST(Smoke, AllEnginesAgreeOnFinals) {
  RandomDagParams p;
  p.name = "smoke";
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 80;
  p.depth = 9;
  p.seed = 42;
  const Netlist nl = random_dag(p);

  OracleSim oracle(nl);
  std::vector<std::unique_ptr<Simulator>> sims;
  for (EngineKind k : {EngineKind::Event2, EngineKind::Event3, EngineKind::PCSet,
                       EngineKind::Parallel, EngineKind::ParallelTrimmed,
                       EngineKind::ParallelPathTracing,
                       EngineKind::ParallelCycleBreaking,
                       EngineKind::ParallelCombined, EngineKind::ZeroDelayLcc}) {
    sims.push_back(make_simulator(nl, k));
  }

  RandomVectorSource src(nl.primary_inputs().size(), 7);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 50; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    for (auto& s : sims) s->step(v);
    for (NetId po : nl.primary_outputs()) {
      for (auto& s : sims) {
        ASSERT_EQ(wf.final_value(po), s->final_value(po))
            << "engine " << engine_name(s->kind()) << " net " << nl.net(po).name
            << " vector " << i;
      }
    }
  }
}

}  // namespace
}  // namespace udsim
