// SimService soak test (ISSUE 7 acceptance): N concurrent clients × mixed
// circuits × injected faults × random cancellations against one service,
// holding the exactly-once contract:
//
//   1. every submitted request's future resolves (no hang, no drop);
//   2. the per-outcome counters sum to exactly the submission count (no
//      double completion — resolve() is exactly-once);
//   3. every Completed response is bit-identical to a direct run_batch of
//      the same circuit and stream;
//   4. overload surfaces as structured QueueFull/Rejected, never a crash.
//
// All randomness is seeded (per-client mt19937), so a failure reproduces.
// The tier-1 profile stays small (<30 s, TSAN included); set UDSIM_SOAK_LONG=1
// for the opt-in long profile (more clients, more requests, bigger streams).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "resilience/fault_injection.h"
#include "service/sim_service.h"

namespace udsim {
namespace {

struct SoakProfile {
  unsigned clients = 4;
  unsigned requests_per_client = 10;
  std::vector<std::size_t> vector_counts{32, 64, 96};
};

SoakProfile active_profile() {
  SoakProfile p;
  const char* lng = std::getenv("UDSIM_SOAK_LONG");
  if (lng != nullptr && lng[0] != '\0' && lng[0] != '0') {
    p.clients = 8;
    p.requests_per_client = 40;
    p.vector_counts = {64, 128, 256, 512};
  }
  return p;
}

/// One workload: a circuit and a fixed deterministic stream per length.
struct Workload {
  std::shared_ptr<const Netlist> netlist;
  std::map<std::size_t, std::vector<Bit>> streams;   ///< by vector count
  std::map<std::size_t, BatchResult> references;     ///< direct run_batch
};

std::vector<Bit> make_stream(const Netlist& nl, std::size_t n,
                             std::uint64_t seed) {
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> bits(n * pis);
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bits[i] = static_cast<Bit>(x & 1);
  }
  return bits;
}

TEST(ServiceSoakTest, ConcurrentClientsFaultsAndCancellations) {
  const SoakProfile profile = active_profile();

  // Mixed circuits, reference rows precomputed through the direct path.
  const char* names[] = {"c432", "c499", "c880"};
  std::vector<Workload> workloads;
  for (std::size_t w = 0; w < std::size(names); ++w) {
    Workload wl;
    wl.netlist =
        std::make_shared<Netlist>(make_iscas85_like(names[w], 1));
    for (const std::size_t n : profile.vector_counts) {
      wl.streams[n] = make_stream(*wl.netlist, n, 0x5eed + w);
      auto sim = make_simulator_with_fallback(*wl.netlist, SimPolicy{}, nullptr);
      wl.references[n] = sim->run_batch(wl.streams[n], 2);
    }
    workloads.push_back(std::move(wl));
  }

  // Deterministic faults on attempts <= 1: shard retries always run clean
  // eventually, so the retry machinery — not the injector — decides every
  // outcome.
  FaultInjector inject(0x50a4);
  inject.set_rate(FaultSite::WorkerThrow, 120, 1);
  inject.set_rate(FaultSite::ArenaCorrupt, 80, 1);
  inject.set_rate(FaultSite::AllocFail, 60, 1);

  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.queue_capacity = 8;  // small: backpressure and shedding must trigger
  cfg.batch_threads = 2;
  cfg.inject = &inject;
  // Full telemetry stack engaged during the soak (ISSUE 10): the rolling
  // window and JSONL event log ride the same resolve() edge as the outcome
  // counters, so the assertion phase below can hold their invariants
  // against the exactly-once contract under real concurrency.
  const std::string event_log_path =
      "service_soak_events_" + std::to_string(::getpid()) + ".jsonl";
  std::remove(event_log_path.c_str());
  cfg.telemetry.event_log_path = event_log_path;
  cfg.telemetry.event_log_capacity = 4096;  // soak bursts must not drop
  SimService svc(cfg);

  struct Submitted {
    ServiceTicket ticket;
    std::size_t workload = 0;
    std::size_t vectors = 0;
  };
  std::mutex all_mu;
  std::vector<Submitted> all;

  const std::uint64_t total =
      std::uint64_t{profile.clients} * profile.requests_per_client;
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < profile.clients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(1000 + c);
      const SessionId sid = svc.open_session("soak-" + std::to_string(c));
      for (unsigned i = 0; i < profile.requests_per_client; ++i) {
        const std::size_t w = rng() % workloads.size();
        const std::size_t n =
            profile.vector_counts[rng() % profile.vector_counts.size()];
        SimRequest req{.netlist = workloads[w].netlist,
                       .vectors = workloads[w].streams.at(n)};
        const unsigned dice = rng() % 10;
        if (dice == 0) {
          req.deadline = std::chrono::nanoseconds(1);  // certain expiry
        } else if (dice == 1) {
          req.deadline = std::chrono::seconds(120);  // generous, must not trip
        }
        ServiceTicket t = svc.submit(sid, std::move(req));
        const bool cancel_it = rng() % 5 == 0;
        if (cancel_it) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(rng() % 500));
          (void)svc.cancel(t.id);  // may race completion; both are valid
        }
        {
          std::lock_guard lock(all_mu);
          all.push_back({std::move(t), w, n});
        }
        if (rng() % 3 == 0) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(all.size(), total);

  // Invariant 1: everything resolves. A future that is not ready within the
  // guard window is a hang — the exact failure mode the service excludes.
  std::map<Outcome, std::uint64_t> outcomes;
  for (Submitted& s : all) {
    ASSERT_EQ(s.ticket.result.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "request " << s.ticket.id << " hung";
    const SimResponse r = s.ticket.result.get();
    ++outcomes[r.outcome];
    // Invariant 3: admitted work is bit-identical to the direct path.
    if (r.outcome == Outcome::Completed) {
      const BatchResult& ref = workloads[s.workload].references.at(s.vectors);
      ASSERT_EQ(r.batch.values, ref.values)
          << "request " << s.ticket.id << " rows diverged from direct "
          << "run_batch";
      EXPECT_EQ(r.vectors_done, s.vectors);
    }
    if (r.outcome != Outcome::Completed) {
      EXPECT_FALSE(r.detail.empty() && r.outcome != Outcome::Cancelled)
          << outcome_name(r.outcome) << " without a detail string";
    }
  }

  // Invariant 2: outcome counters sum exactly to submissions (exactly-once).
  const auto snap = svc.metrics().snapshot();
  std::uint64_t counter_sum = 0;
  for (const auto& [name, value] : snap) {
    if (name.rfind("service.outcome.", 0) == 0) counter_sum += value;
  }
  EXPECT_EQ(counter_sum, total);
  EXPECT_EQ(snap.at("service.submitted"), total);
  std::uint64_t future_sum = 0;
  for (const auto& [outcome, count] : outcomes) future_sum += count;
  EXPECT_EQ(future_sum, total);

  // With faults clean from attempt 2 on, nothing should exhaust retries.
  EXPECT_EQ(outcomes[Outcome::Failed], 0u);
  // The mix must actually exercise the machinery.
  EXPECT_GT(outcomes[Outcome::Completed], 0u);

  // Deterministic deadline coverage: with the backlog fully drained (every
  // future above resolved), a 1 ns deadline cannot be beaten to the worker
  // and cannot hit backpressure — it must expire, with a reason.
  for (int i = 0; i < 2; ++i) {
    ServiceTicket probe = svc.submit(
        0, SimRequest{.netlist = workloads[0].netlist,
                      .vectors = workloads[0].streams.at(
                          profile.vector_counts.front()),
                      .deadline = std::chrono::nanoseconds(1)});
    ASSERT_EQ(probe.result.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_EQ(probe.result.get().outcome, Outcome::DeadlineExpired);
  }
  const std::uint64_t grand_total = total + 2;

  svc.shutdown();
  // Exactly-once survives shutdown: counters are final and still sum.
  const auto final_snap = svc.metrics().snapshot();
  std::uint64_t final_sum = 0;
  for (const auto& [name, value] : final_snap) {
    if (name.rfind("service.outcome.", 0) == 0) final_sum += value;
  }
  EXPECT_EQ(final_sum, grand_total);
  EXPECT_EQ(final_snap.at("service.submitted"), grand_total);

  // Telemetry assertion phase (ISSUE 10). The rolling window's cumulative
  // totals are bumped on the same exactly-once edge as the outcome
  // counters, so after the soak they must agree slot by slot — no request
  // counted twice, none missed, regardless of interleaving.
  ASSERT_NE(svc.window(), nullptr);
  const std::vector<std::uint64_t> window_totals = svc.window()->totals();
  constexpr std::size_t kSlots =
      static_cast<std::size_t>(Outcome::ShutDown) + 1;
  ASSERT_EQ(window_totals.size(), kSlots);
  std::uint64_t window_sum = 0;
  for (std::size_t s = 0; s < kSlots; ++s) {
    const std::string counter =
        "service.outcome." +
        std::string(outcome_name(static_cast<Outcome>(s)));
    const auto it = final_snap.find(counter);
    const std::uint64_t expect = it == final_snap.end() ? 0 : it->second;
    EXPECT_EQ(window_totals[s], expect)
        << "rolling-window total diverged from " << counter;
    window_sum += window_totals[s];
  }
  EXPECT_EQ(window_sum, grand_total);

  // Every resolution appears exactly once in the event log or in its drop
  // counter — and with soak-sized capacity, nothing should have dropped.
  ASSERT_NE(svc.event_log(), nullptr);
  svc.event_log()->flush();
  const std::uint64_t written = svc.event_log()->written();
  const std::uint64_t dropped = svc.event_log()->dropped();
  EXPECT_EQ(written + dropped, grand_total);
  EXPECT_EQ(dropped, 0u) << "soak-sized event-log queue should not drop";

  // The status document renders the same numbers for a scraper.
  const JsonValue status = JsonValue::parse(svc.status_json());
  std::uint64_t wire_sum = 0;
  for (const auto& [name, v] : status.at("outcomes").object) {
    ASSERT_TRUE(v.is_integer) << name;
    wire_sum += v.as_u64();
  }
  EXPECT_EQ(wire_sum, grand_total);
  std::remove(event_log_path.c_str());
}

// Toolchain-outage phase (ISSUE 9): the same exactly-once contract with
// native enabled and the external compiler wedged solid. Every build
// attempt must die at compile_timeout, the breaker must trip and stop the
// bleeding, every request must still resolve via the IR chain with rows
// bit-identical to the direct path, and the health model must name the
// limping dependency while the outage lasts.
TEST(ServiceSoakTest, ToolchainOutagePhase) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  const fs::path dir =
      tmp / ("udsim-soak-outage-" + std::to_string(::getpid()));
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  const std::string fake_cc = (dir / "hungcc.sh").string();
  {
    std::ofstream f(fake_cc);
    f << "#!/bin/sh\nsleep 30\n";
  }
  fs::permissions(fs::path(fake_cc), fs::perms::owner_all,
                  fs::perm_options::replace, ec);

  // Six distinct circuits: more program-cache misses than the breaker
  // threshold + worker count, so some builds must be attempted after the
  // breaker opens — those are the short-circuited ones the test asserts.
  const char* names[] = {"c432", "c499", "c880"};
  std::vector<Workload> workloads;
  for (std::size_t w = 0; w < 6; ++w) {
    Workload wl;
    wl.netlist = std::make_shared<Netlist>(
        make_iscas85_like(names[w % std::size(names)], 1 + w / std::size(names)));
    wl.streams[32] = make_stream(*wl.netlist, 32, 0xfeed + w);
    auto sim = make_simulator_with_fallback(*wl.netlist, SimPolicy{}, nullptr);
    wl.references[32] = sim->run_batch(wl.streams[32], 2);
    workloads.push_back(std::move(wl));
  }

  ServiceConfig cfg;
  cfg.workers = 3;
  cfg.enable_native = true;
  cfg.native.compiler = fake_cc;
  cfg.native.compile_timeout = std::chrono::milliseconds(200);
  cfg.native.cache_dir = (dir / "cache").string();
  cfg.native_breaker.failure_threshold = 2;
  cfg.native_breaker.cooldown = std::chrono::seconds(60);
  SimService svc(cfg);

  constexpr unsigned kClients = 3;
  constexpr unsigned kPerClient = 8;
  struct Submitted {
    ServiceTicket ticket;
    std::size_t workload = 0;
  };
  std::mutex all_mu;
  std::vector<Submitted> all;
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SessionId sid = svc.open_session("outage-" + std::to_string(c));
      for (unsigned i = 0; i < kPerClient; ++i) {
        // Round-robin with a per-client offset: every circuit is requested
        // by every client, deterministically.
        const std::size_t w = (i + c) % workloads.size();
        ServiceTicket t =
            svc.submit(sid, SimRequest{.netlist = workloads[w].netlist,
                                       .vectors = workloads[w].streams.at(32),
                                       .deadline = std::chrono::seconds(60)});
        std::lock_guard lock(all_mu);
        all.push_back({std::move(t), w});
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const std::uint64_t total = std::uint64_t{kClients} * kPerClient;
  ASSERT_EQ(all.size(), total);
  std::uint64_t completed = 0;
  for (Submitted& s : all) {
    ASSERT_EQ(s.ticket.result.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "request " << s.ticket.id << " hung during the toolchain outage";
    const SimResponse r = s.ticket.result.get();
    ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
    EXPECT_NE(r.engine, EngineKind::Native)
        << "no native engine can exist while the toolchain hangs";
    ASSERT_EQ(r.batch.values, workloads[s.workload].references.at(32).values)
        << "request " << s.ticket.id << " diverged from the direct path";
    ++completed;
  }
  EXPECT_EQ(completed, total);

  const auto snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.at("service.outcome.completed"), total);
  EXPECT_GE(snap.at("breaker.toolchain.opened"), 1u);
  // Every build that ran was killed at the timeout, and the breaker capped
  // the bleeding: with 3 workers racing the open transition, at most
  // threshold + workers - 1 builds can start before everyone short-circuits.
  EXPECT_EQ(snap.at("native.builds"), snap.at("native.compile_timeout"));
  EXPECT_LE(snap.at("native.builds"),
            std::uint64_t{cfg.native_breaker.failure_threshold} + cfg.workers -
                1);
  EXPECT_GE(snap.at("native.breaker_skipped"), 1u);

  // The outage is visible while it lasts: Degraded, breaker named.
  const SimService::HealthReport h = svc.health();
  EXPECT_EQ(h.state, HealthState::Degraded);
  bool breaker_named = false;
  for (const auto& c : h.components) {
    if (c.name == "toolchain.breaker") {
      breaker_named = c.state == HealthState::Degraded &&
                      c.detail.find("toolchain") != std::string::npos;
    }
  }
  EXPECT_TRUE(breaker_named) << svc.health_json();

  // Mid-outage scrape (ISSUE 10): the telemetry surfaces must carry the
  // live degraded state — a monitoring agent polling during the outage sees
  // the open breaker in both the status document and the exposition, and
  // both stay well-formed while the service is limping.
  const JsonValue status = JsonValue::parse(svc.status_json());
  EXPECT_EQ(status.at("service").at("breaker").string, "open")
      << svc.status_json();
  EXPECT_NE(status.at("health").at("state").string, "healthy");
  const std::string expo = svc.prometheus_text();
  std::string why;
  EXPECT_TRUE(validate_prometheus_text(expo, &why)) << why;
  EXPECT_NE(expo.find("udsim_service_breaker_state 1"), std::string::npos)
      << "open breaker (state 1) not visible in the exposition";

  svc.shutdown();
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace udsim
