// Forced-failure tests for every stage of the native pipeline (DESIGN.md
// §5h failure taxonomy): a bad compiler path (Compile), an unusable cache
// directory (Cache), a corrupted cached shared object (Load) and a cached
// object missing the entry points (Symbol). Each stage is asserted twice —
// directly (NativeModule throws a NativeError carrying the right stage) and
// through the engine chain (native_sim_policy falls back to the IR path
// with a DiagCode::NativeFallback record, a native.fallback counter, and
// the exec.ops == compile.ops × passes invariant intact on the engine that
// actually runs).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "native/native_sim.h"
#include "netlist/diagnostics.h"
#include "parsim/parallel_sim.h"

namespace udsim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per call, under the system temp dir.
std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  const fs::path dir = tmp / ("udsim-fallback-" + std::to_string(::getpid()) +
                              "-" + tag + "-" + std::to_string(counter++));
  fs::create_directories(dir, ec);
  return dir.string();
}

/// The base program the facade's native engine compiles (must mirror
/// native_sim.cpp's native_base_options so cache keys line up).
Program facade_base_program(const Netlist& nl) {
  ParallelOptions o;
  o.trimming = true;
  o.shift_elim = ShiftElim::PathTracing;
  o.word_bits = 32;
  return compile_parallel(nl, o).program;
}

/// Path the facade's native engine will probe in `cache_dir` for `nl`.
std::string facade_cached_so(const Netlist& nl, const std::string& cache_dir) {
  return (fs::path(cache_dir) /
          (native_cache_key(facade_base_program(nl), "parallel-combined") +
           ".so"))
      .string();
}

/// Walk the native-first chain expecting the native attempt to fail: the
/// selected engine must be the IR first choice, the failure must be a
/// structured NativeFallback record ahead of EngineSelected, the counter
/// must tick, and the compile/exec counters must describe the engine that
/// runs, not the abandoned native attempt.
void expect_structured_fallback(const Netlist& nl, const NativeOptions& opts,
                                NativeStage stage) {
  MetricsRegistry reg;
  Diagnostics diag;
  SimPolicy policy = native_sim_policy(opts);
  policy.metrics = &reg;
  auto sim = make_simulator_with_fallback(nl, policy, &diag);
  ASSERT_NE(sim, nullptr);
  EXPECT_EQ(sim->kind(), EngineKind::ParallelCombined)
      << "the chain must land on the first IR engine";

  std::size_t fallback_at = diag.records().size();
  std::size_t selected_at = diag.records().size();
  for (std::size_t i = 0; i < diag.records().size(); ++i) {
    const Diagnostic& d = diag.records()[i];
    if (d.code == DiagCode::NativeFallback && fallback_at == diag.records().size()) {
      fallback_at = i;
      EXPECT_EQ(d.severity, DiagSeverity::Warning);
      EXPECT_EQ(d.subject, "native (dlopen)");
      EXPECT_NE(d.message.find(std::string(native_stage_name(stage)) +
                               " stage failed"),
                std::string::npos)
          << "message must carry the failing stage: " << d.message;
    }
    if (d.code == DiagCode::EngineSelected) selected_at = i;
  }
  ASSERT_LT(fallback_at, diag.records().size()) << "no NativeFallback record";
  ASSERT_LT(selected_at, diag.records().size()) << "no EngineSelected record";
  EXPECT_LT(fallback_at, selected_at)
      << "fallback must be recorded before selection";
  EXPECT_NE(diag.records()[selected_at].message.find("after native fallback"),
            std::string::npos)
      << diag.records()[selected_at].message;

  auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("native.fallback"), 1u);
  // The abandoned native attempt compiled its own base program; the
  // rollback in the chain walk must leave compile.ops describing only the
  // engine that runs, so the facade invariant survives the fallback.
  ASSERT_NE(sim->compiled_program(), nullptr);
  EXPECT_EQ(snap.at("compile.ops"), sim->compiled_program()->ops.size());
  constexpr std::uint64_t kPasses = 2;
  std::vector<Bit> row(nl.primary_inputs().size(), 1);
  for (std::uint64_t i = 0; i < kPasses; ++i) sim->step(row);
  snap = reg.snapshot();
  EXPECT_EQ(snap.at("exec.ops"), snap.at("compile.ops") * kPasses);
}

TEST(NativeFallbackTest, BadCompilerFailsTheCompileStage) {
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeOptions opts;
  opts.compiler = "/nonexistent/udsim-no-such-cc";
  opts.cache_dir = fresh_dir("compile");
  try {
    NativeModule mod(facade_base_program(nl), "parallel-combined", opts);
    FAIL() << "expected NativeError";
  } catch (const NativeError& e) {
    EXPECT_EQ(e.stage(), NativeStage::Compile);
    EXPECT_NE(std::string(e.what()).find("compile stage"), std::string::npos);
  }
  expect_structured_fallback(nl, opts, NativeStage::Compile);
}

TEST(NativeFallbackTest, FileAsCacheDirFailsTheCacheStage) {
  const Netlist nl = make_iscas85_like("c432", 1);
  const std::string dir = fresh_dir("cache");
  const std::string file = dir + "/not-a-directory";
  { std::ofstream(file) << "occupied\n"; }
  NativeOptions opts;
  opts.cache_dir = file;  // a regular file: create_directories must fail
  try {
    NativeModule mod(facade_base_program(nl), "parallel-combined", opts);
    FAIL() << "expected NativeError";
  } catch (const NativeError& e) {
    EXPECT_EQ(e.stage(), NativeStage::Cache);
  }
  expect_structured_fallback(nl, opts, NativeStage::Cache);
}

/// Write an executable /bin/sh script into `dir` and return its path.
std::string write_fake_cc(const std::string& dir, const std::string& body) {
  const std::string path = dir + "/fakecc.sh";
  { std::ofstream f(path); f << "#!/bin/sh\n" << body; }
  std::error_code ec;
  fs::permissions(path,
                  fs::perms::owner_all | fs::perms::group_read |
                      fs::perms::others_read,
                  fs::perm_options::replace, ec);
  return path;
}

// A corrupted *cached* object is corruption, not failure: the backend must
// evict it, recompile as a miss, and bump native.cache.corrupt — the bad
// entry never surfaces to the caller (ISSUE 7 satellite: cache corruption
// recovery). A bit-flipped ELF header is the classic torn-write shape.
TEST(NativeFallbackTest, BitFlippedCachedObjectIsEvictedAndRebuilt) {
  NativeOptions probe;
  if (!native_available(probe)) GTEST_SKIP() << "no usable C compiler";
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeOptions opts;
  opts.compile_flags = "-O0";
  opts.cache_dir = fresh_dir("load");

  // Populate the cache with a good build, then flip a bit of the ELF magic
  // in place so dlopen must reject the entry.
  const Program p = facade_base_program(nl);
  { const NativeModule good(p, "parallel-combined", opts); }
  const std::string so = facade_cached_so(nl, opts.cache_dir);
  ASSERT_TRUE(fs::exists(so));
  {
    std::fstream f(so, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(0);
    f.write(&byte, 1);
  }

  MetricsRegistry reg;
  const NativeModule mod(p, "parallel-combined", opts, &reg);
  EXPECT_FALSE(mod.from_cache()) << "recovery must rebuild, not reuse";
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("native.cache.corrupt"), 1u);
  EXPECT_EQ(snap.at("native.cache.hit"), 1u);   // the poisoned probe
  EXPECT_EQ(snap.at("native.cache.miss"), 1u);  // the recovery rebuild
  // The rebuilt object is the real kernel: entry points resolve and run.
  std::vector<std::uint32_t> arena(p.arena_words, 0xdeadbeefu);
  mod.init(arena.data());
  const std::vector<std::uint32_t> in(p.input_words, 0);
  mod.step(arena.data(), in.data());

  // A second construction is a clean hit of the recovered entry.
  MetricsRegistry reg2;
  const NativeModule again(p, "parallel-combined", opts, &reg2);
  EXPECT_TRUE(again.from_cache());
  EXPECT_EQ(reg2.snapshot().count("native.cache.corrupt"), 0u);
}

// Same recovery when dlopen succeeds but dlsym cannot resolve the entry
// points (a valid shared object that is not ours at the cache path).
TEST(NativeFallbackTest, WrongSymbolCachedObjectIsEvictedAndRebuilt) {
  NativeOptions opts;
  if (!native_available(opts)) GTEST_SKIP() << "no usable C compiler";
  const Netlist nl = make_iscas85_like("c432", 1);
  opts.compile_flags = "-O0";
  opts.cache_dir = fresh_dir("symbol");

  // Hand-plant a valid shared object with the wrong symbols at the exact
  // cache path the backend will probe: dlopen succeeds, dlsym must not.
  const std::string so = facade_cached_so(nl, opts.cache_dir);
  const std::string src = opts.cache_dir + "/decoy.c";
  { std::ofstream(src) << "int udsim_decoy_symbol;\n"; }
  const std::string cmd = resolved_compiler(opts) + " -shared -fPIC -o \"" +
                          so + "\" \"" + src + "\"";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  MetricsRegistry reg;
  const NativeModule mod(facade_base_program(nl), "parallel-combined", opts,
                         &reg);
  EXPECT_FALSE(mod.from_cache());
  EXPECT_EQ(reg.snapshot().at("native.cache.corrupt"), 1u);
}

// A *freshly built* object that dlopen rejects is a real Load-stage failure
// (nothing left to retry against) — the taxonomy contract of §5h survives
// the recovery path. A fake compiler that exits 0 but emits garbage forces
// it deterministically.
TEST(NativeFallbackTest, FreshBuildLoadFailureStillEscapes) {
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeOptions opts;
  opts.cache_dir = fresh_dir("freshload");
  opts.compiler = write_fake_cc(opts.cache_dir,
                                "out=\n"
                                "while [ $# -gt 0 ]; do\n"
                                "  if [ \"$1\" = \"-o\" ]; then out=$2; shift; fi\n"
                                "  shift\n"
                                "done\n"
                                "[ -n \"$out\" ] && echo garbage > \"$out\"\n"
                                "exit 0\n");
  try {
    NativeModule mod(facade_base_program(nl), "parallel-combined", opts);
    FAIL() << "expected NativeError";
  } catch (const NativeError& e) {
    EXPECT_EQ(e.stage(), NativeStage::Load);
    EXPECT_EQ(std::string(e.what()).find("[cached object]"), std::string::npos)
        << "a fresh build must not be blamed on the cache: " << e.what();
  }
  expect_structured_fallback(nl, opts, NativeStage::Load);
}

// A freshly built object missing the entry points fails the Symbol stage —
// a fake compiler that builds a decoy source instead of ours forces it.
TEST(NativeFallbackTest, FreshBuildSymbolFailureStillEscapes) {
  NativeOptions probe;
  if (!native_available(probe)) GTEST_SKIP() << "no usable C compiler";
  const Netlist nl = make_iscas85_like("c432", 1);
  NativeOptions opts;
  opts.cache_dir = fresh_dir("freshsymbol");
  opts.compiler = write_fake_cc(
      opts.cache_dir,
      "out=\n"
      "while [ $# -gt 0 ]; do\n"
      "  if [ \"$1\" = \"-o\" ]; then out=$2; shift; fi\n"
      "  shift\n"
      "done\n"
      "if [ -n \"$out\" ]; then\n"
      "  echo 'int udsim_decoy_symbol;' > \"$out.decoy.c\"\n"
      "  exec " +
          resolved_compiler(probe) + " -shared -fPIC -o \"$out\" \"$out.decoy.c\"\n"
          "fi\n"
          "exit 0\n");
  try {
    NativeModule mod(facade_base_program(nl), "parallel-combined", opts);
    FAIL() << "expected NativeError";
  } catch (const NativeError& e) {
    EXPECT_EQ(e.stage(), NativeStage::Symbol);
    EXPECT_NE(std::string(e.what()).find("udsim_kernel"), std::string::npos);
  }
  expect_structured_fallback(nl, opts, NativeStage::Symbol);
}

TEST(NativeFallbackTest, StageNamesAreStable) {
  // The stage names are part of the diagnostic surface (DESIGN.md §5h).
  EXPECT_EQ(native_stage_name(NativeStage::Emit), "emit");
  EXPECT_EQ(native_stage_name(NativeStage::Compile), "compile");
  EXPECT_EQ(native_stage_name(NativeStage::Cache), "cache");
  EXPECT_EQ(native_stage_name(NativeStage::Load), "load");
  EXPECT_EQ(native_stage_name(NativeStage::Symbol), "symbol");
}

}  // namespace
}  // namespace udsim
