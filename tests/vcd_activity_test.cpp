// VCD writer and switching-activity tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/activity.h"
#include "core/vcd.h"
#include "gen/random_dag.h"
#include "gen/rng.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Vcd, HeaderAndChanges) {
  const Netlist nl = test::fig4_network();
  OracleSim sim(nl);
  std::ostringstream os;
  {
    VcdWriter vcd(os, nl);
    const Bit v1[] = {1, 1, 1};
    vcd.add_vector(sim.step(v1));
    const Bit v2[] = {0, 1, 1};
    vcd.add_vector(sim.step(v2));
    EXPECT_EQ(vcd.current_time(), 6u);  // two vectors x (depth 2 + 1)
  }
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1 ! A $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
  // First vector: A,B,C rise at #0, D at #1, E at #2.
  EXPECT_NE(s.find("#0\n1!"), std::string::npos);
  EXPECT_NE(s.find("#6\n"), std::string::npos);  // closing timestamp
  // No value is emitted twice in a row for the same signal.
  // (Spot check: between #0 and #1 there is exactly one '1' for D's id.)
}

TEST(Vcd, OnlyChangesEmitted) {
  const Netlist nl = test::fig4_network();
  OracleSim sim(nl);
  std::ostringstream os;
  VcdWriter vcd(os, nl);
  const Bit v[] = {1, 1, 1};
  vcd.add_vector(sim.step(v));
  const auto size_after_first = os.str().size();
  vcd.add_vector(sim.step(v));  // identical vector: nothing changes
  vcd.finish();
  const std::string tail = os.str().substr(size_after_first);
  // Only the closing timestamp may appear.
  EXPECT_EQ(tail.find('!'), std::string::npos);
}

TEST(Vcd, SubsetOfNets) {
  const Netlist nl = test::fig4_network();
  const NetId e = *nl.find_net("E");
  std::ostringstream os;
  const NetId nets[] = {e};
  OracleSim sim(nl);
  VcdWriter vcd(os, nl, nets);
  const Bit v[] = {1, 1, 1};
  vcd.add_vector(sim.step(v));
  vcd.finish();
  const std::string s = os.str();
  EXPECT_NE(s.find(" E $end"), std::string::npos);
  EXPECT_EQ(s.find(" D $end"), std::string::npos);
}

TEST(Activity, FieldTransitionsMatchBitScan) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const int width = 1 + static_cast<int>(rng.below(90));
    std::vector<std::uint32_t> field((static_cast<std::size_t>(width) + 31) / 32);
    for (auto& w : field) w = static_cast<std::uint32_t>(rng.next());
    int expect = 0;
    const auto bit = [&](int i) {
      return (field[static_cast<std::size_t>(i) / 32] >> (i % 32)) & 1u;
    };
    for (int i = 1; i < width; ++i) expect += bit(i) != bit(i - 1);
    EXPECT_EQ(ToggleCounter::transitions_in_field<std::uint32_t>(field, width),
              static_cast<std::uint64_t>(expect))
        << "width " << width;
  }
}

class ActivityEquivalence : public ::testing::TestWithParam<ShiftElim> {};

TEST_P(ActivityEquivalence, ParallelTogglesMatchOracle) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 120;
  p.depth = 12;
  p.seed = 23;
  p.xor_fraction = 0.3;
  const Netlist nl = random_dag(p);
  ParallelOptions o;
  o.shift_elim = GetParam();
  OracleSim oracle(nl);
  ParallelSim<> sim(nl, o);
  ToggleCounter from_oracle(nl.net_count());
  ToggleCounter from_fields(nl.net_count());
  RandomVectorSource src(nl.primary_inputs().size(), 3);
  std::vector<Bit> v(nl.primary_inputs().size());
  // Warm-up vector (uncounted) so both sides see settled state.
  src.next(v);
  (void)oracle.step(v);
  sim.step(v);
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    from_oracle.accumulate(wf);
    from_fields.accumulate(sim, nl);
  }
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(NetId{n}).is_primary_input) continue;
    ASSERT_EQ(from_fields.toggles(NetId{n}), from_oracle.toggles(NetId{n}))
        << nl.net(NetId{n}).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ActivityEquivalence,
                         ::testing::Values(ShiftElim::None, ShiftElim::PathTracing,
                                           ShiftElim::CycleBreaking),
                         [](const auto& info) {
                           switch (info.param) {
                             case ShiftElim::None:
                               return "unopt";
                             case ShiftElim::PathTracing:
                               return "pt";
                             default:
                               return "cb";
                           }
                         });

}  // namespace
}  // namespace udsim
