// Static-timing tests: critical/shortest paths and output windows.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/timing.h"
#include "gen/arithmetic.h"
#include "gen/random_dag.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Timing, CriticalPathOfChain) {
  const Netlist nl = test::unbalanced_reconvergence(3);
  const Levelization lv = levelize(nl);
  const NetId out = *nl.find_net("OUT");
  const TimingPath cp = critical_path(nl, lv, out);
  EXPECT_EQ(cp.delay, 4);                 // 3 buffers + AND
  EXPECT_EQ(cp.gates.size(), 4u);
  EXPECT_EQ(cp.nets.front(), *nl.find_net("A"));
  EXPECT_EQ(cp.nets.back(), out);
  const TimingPath sp = shortest_path(nl, lv, out);
  EXPECT_EQ(sp.delay, 2);                 // NOT + AND
  EXPECT_EQ(sp.gates.size(), 2u);
}

TEST(Timing, PathDelaysAreConsistentWithLevels) {
  RandomDagParams p;
  p.inputs = 12;
  p.outputs = 6;
  p.gates = 150;
  p.depth = 14;
  p.seed = 3;
  p.max_delay = 3;
  const Netlist nl = random_dag(p);
  const Levelization lv = levelize(nl);
  for (NetId po : nl.primary_outputs()) {
    const TimingPath cp = critical_path(nl, lv, po);
    EXPECT_EQ(cp.delay, lv.level(po)) << nl.net(po).name;
    const TimingPath sp = shortest_path(nl, lv, po);
    EXPECT_EQ(sp.delay, lv.minlevel(po)) << nl.net(po).name;
    // Path structure: nets/gates interleave and each hop is a real edge.
    ASSERT_EQ(cp.nets.size(), cp.gates.size() + 1);
    for (std::size_t i = 0; i < cp.gates.size(); ++i) {
      const Gate& g = nl.gate(cp.gates[i]);
      EXPECT_EQ(g.output, cp.nets[i + 1]);
      EXPECT_NE(std::find(g.inputs.begin(), g.inputs.end(), cp.nets[i]),
                g.inputs.end());
    }
  }
}

TEST(Timing, OutputWindows) {
  const Netlist nl = test::fig4_network();
  const Levelization lv = levelize(nl);
  const auto windows = output_timing(nl, lv);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].earliest, 1);
  EXPECT_EQ(windows[0].latest, 2);
}

TEST(Timing, ReportMentionsCriticalPath) {
  const Netlist nl = ripple_carry_adder(4);
  const Levelization lv = levelize(nl);
  std::ostringstream os;
  print_timing_report(os, nl, lv);
  const std::string s = os.str();
  EXPECT_NE(s.find("critical path"), std::string::npos);
  EXPECT_NE(s.find("output arrival windows"), std::string::npos);
  // The adder's critical path runs through the carry chain to cout.
  EXPECT_NE(s.find("depth " + std::to_string(lv.depth)), std::string::npos);
}

TEST(Timing, MultiDelayPathSums) {
  Netlist nl("md");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  nl.set_delay(nl.add_gate(GateType::Buf, {a}, x), 4);
  const NetId y = nl.add_net("y");
  nl.set_delay(nl.add_gate(GateType::Not, {x}, y), 5);
  nl.mark_primary_output(y);
  const Levelization lv = levelize(nl);
  const TimingPath cp = critical_path(nl, lv, y);
  EXPECT_EQ(cp.delay, 9);
  EXPECT_EQ(cp.gates.size(), 2u);
}

}  // namespace
}  // namespace udsim
