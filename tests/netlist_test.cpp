// Unit tests for the netlist data model, validation, and wired-net lowering.
#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "netlist/stats.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Netlist, BasicConstruction) {
  Netlist nl = test::fig4_network();
  EXPECT_EQ(nl.net_count(), 5u);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
  const NetId d = *nl.find_net("D");
  EXPECT_EQ(nl.net(d).drivers.size(), 1u);
  EXPECT_EQ(nl.net(d).fanout.size(), 1u);
}

TEST(Netlist, DuplicateNamesRejected) {
  Netlist nl;
  (void)nl.add_net("x");
  EXPECT_THROW((void)nl.add_net("x"), NetlistError);
  EXPECT_EQ(nl.get_or_add_net("x").value, 0u);
}

TEST(Netlist, DoubleDriverRequiresWired) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Not, {a}, o);
  EXPECT_THROW(nl.add_gate(GateType::Buf, {a}, o), NetlistError);
  nl.set_wired(o, WiredKind::Or);
  EXPECT_NO_THROW(nl.add_gate(GateType::Buf, {a}, o));
}

TEST(Netlist, CannotDrivePrimaryInput) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  EXPECT_THROW(nl.add_gate(GateType::Not, {b}, a), NetlistError);
}

TEST(Netlist, ValidateCatchesUndrivenNet) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");  // never driven, not a PI
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::And, {a, b}, o);
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, ValidateCatchesPinCount) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::Not, {a, b}, o);  // NOT with two pins
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, ValidateCatchesDff) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId q = nl.add_net("q");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Dff, {a}, q);
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, AcyclicityCheck) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::And, {a, y}, x);
  nl.add_gate(GateType::Buf, {x}, y);
  EXPECT_FALSE(nl.is_acyclic());
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Netlist, DuplicatePinsAllowed) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Xor, {a, a}, o);  // always 0
  nl.mark_primary_output(o);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_TRUE(nl.is_acyclic());
  EXPECT_EQ(nl.net(a).fanout.size(), 2u);  // one entry per pin
}

TEST(Netlist, LowerWiredNets) {
  Netlist nl = test::wired_network(WiredKind::And);
  EXPECT_NO_THROW(nl.validate());
  const std::size_t lowered = lower_wired_nets(nl);
  EXPECT_EQ(lowered, 1u);
  EXPECT_NO_THROW(nl.validate());
  // Every net now has at most one driver; a WiredAnd resolver exists.
  std::size_t resolvers = 0;
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::WiredAnd) ++resolvers;
  }
  EXPECT_EQ(resolvers, 1u);
  for (const Net& n : nl.nets()) {
    EXPECT_LE(n.drivers.size(), 1u);
  }
  // The resolver is a zero-delay pseudo-gate, excluded from real_gate_count.
  EXPECT_EQ(nl.real_gate_count(), nl.gate_count() - 1);
  // Idempotent.
  EXPECT_EQ(lower_wired_nets(nl), 0u);
}

TEST(Netlist, StatsBasics) {
  const Netlist nl = test::fig4_network();
  const CircuitStats st = circuit_stats(nl);
  EXPECT_EQ(st.primary_inputs, 3u);
  EXPECT_EQ(st.primary_outputs, 1u);
  EXPECT_EQ(st.gates, 2u);
  EXPECT_EQ(st.depth, 2);
  EXPECT_EQ(st.pins, 4u);
  EXPECT_EQ(st.max_fanout, 1u);
}

}  // namespace
}  // namespace udsim
