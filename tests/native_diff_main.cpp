// Standalone native-vs-IR differential harness, wired into ctest twice
// (label "native"): once as a plain pass on c880, and once with
// --inject-miscompare as a WILL_FAIL test proving the harness actually
// detects a native/IR divergence — a differential suite that cannot fail
// verifies nothing.
//
//   udsim_native_diff <circuit> [--vectors N] [--inject-miscompare]
//
// Exit codes: 0 = bit-identical, 1 = miscompare (details on stderr),
// 77 = skipped (no usable C compiler; ctest SKIP_RETURN_CODE).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "native/native_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  std::string circuit = "c880";
  std::size_t vectors = 32;
  bool inject = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--inject-miscompare") == 0) {
      inject = true;
    } else if (std::strcmp(argv[i], "--vectors") == 0 && i + 1 < argc) {
      vectors = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      circuit = argv[i];
    }
  }

  NativeOptions opts;
  opts.compile_flags = "-O0";
  opts.keep_source = true;  // a miscompare report points at the .c file
  if (!native_available(opts)) {
    std::fprintf(stderr, "skip: no usable C compiler (UDSIM_CC)\n");
    return 77;
  }

  const Netlist nl = make_iscas85_like(circuit, /*seed=*/1);
  NativeSimulator native(nl, opts);
  auto ir = make_simulator(nl, EngineKind::ParallelCombined);

  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> row(pis);
  std::uint64_t x = 0x243f6a8885a308d3ull;
  std::size_t miscompares = 0;
  for (std::size_t v = 0; v < vectors; ++v) {
    for (Bit& b : row) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<Bit>(x & 1);
    }
    native.step(row);
    ir->step(row);
    for (NetId po : nl.primary_outputs()) {
      Bit expected = ir->final_value(po);
      if (inject && v == vectors / 2 && po == nl.primary_outputs().front()) {
        expected = static_cast<Bit>(expected ^ 1);  // forced divergence
      }
      const Bit got = native.final_value(po);
      if (got != expected) {
        ++miscompares;
        std::fprintf(stderr,
                     "MISCOMPARE %s vector %zu net %u: native=%d ir=%d\n",
                     circuit.c_str(), v, po.value, int(got), int(expected));
      }
    }
  }
  if (miscompares != 0) {
    std::fprintf(stderr, "%zu miscompare(s); emitted source: %s\n",
                 miscompares, native.module().source_path().c_str());
    return 1;
  }
  std::printf("%s: %zu vectors bit-identical (native %s)\n", circuit.c_str(),
              vectors, native.module().from_cache() ? "cached" : "built");
  return 0;
}
