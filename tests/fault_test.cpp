// Fault-simulation tests: the two bit-parallel organizations against the
// serial reference, plus known-coverage circuits.
#include <gtest/gtest.h>

#include "fault/fault_sim.h"
#include "gen/random_dag.h"
#include "gen/trees.h"
#include "netlist/bench_io.h"
#include "netlist/transform.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(FaultSim, EnumerateSkipsConstants) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId k = nl.add_net("k");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Const1, {}, k);
  nl.add_gate(GateType::And, {a, k}, o);
  nl.mark_primary_output(o);
  const auto faults = enumerate_faults(nl);
  EXPECT_EQ(faults.size(), 4u);  // a and o, two polarities each
  for (const Fault& f : faults) EXPECT_NE(f.net, k);
}

TEST(FaultSim, XorChainFullyTestable) {
  // Every stuck fault on an odd-length XOR chain propagates to the output
  // (even length would make the shared B input's faults cancel: B enters
  // the parity an even number of times). Random 64 patterns suffice.
  const Netlist nl = test::xor_chain(11);
  const auto faults = enumerate_faults(nl);
  FaultSimulator<> sim(nl);
  const auto r = sim.run_ppsfp(faults, 64, 5);
  EXPECT_EQ(r.detected_count(), faults.size());
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(FaultSim, RedundantLogicUndetectable) {
  // o = a AND (NOT a) is constant 0: stuck-at-0 on o is undetectable.
  const Netlist nl = test::fig11_network();
  const NetId c = *nl.find_net("C");
  const Fault sa0{c, 0};
  const Fault sa1{c, 1};
  FaultSimulator<> sim(nl);
  const std::vector<Fault> faults = {sa0, sa1};
  const auto r = sim.run_ppsfp(faults, 128, 9);
  EXPECT_FALSE(r.detected[0]);  // C is always 0; sticking it at 0 is invisible
  EXPECT_TRUE(r.detected[1]);
}

class FaultEngineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FaultEngineAgreement, AllThreeEnginesDetectTheSameFaults) {
  RandomDagParams p;
  p.inputs = 8;
  p.outputs = 5;
  p.gates = 60;
  p.depth = 7;
  p.seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = random_dag(p);
  const auto faults = enumerate_faults(nl);
  constexpr std::size_t kPatterns = 64;  // multiple of the lane count
  constexpr std::uint64_t kSeed = 17;

  const auto serial = run_serial_fault_sim(nl, faults, kPatterns, kSeed);
  FaultSimulator<> sim(nl);
  const auto ppsfp = sim.run_ppsfp(faults, kPatterns, kSeed);
  const auto pfsp = sim.run_pfsp(faults, kPatterns, kSeed);
  ASSERT_EQ(serial.detected.size(), faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    EXPECT_EQ(ppsfp.detected[f], serial.detected[f])
        << "ppsfp fault " << nl.net(faults[f].net).name << " sa"
        << int{faults[f].stuck_at};
    EXPECT_EQ(pfsp.detected[f], serial.detected[f])
        << "pfsp fault " << nl.net(faults[f].net).name << " sa"
        << int{faults[f].stuck_at};
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultEngineAgreement, ::testing::Values(1, 2, 3, 4));

TEST(FaultSim, SixtyFourBitLanes) {
  const Netlist nl = test::xor_chain(10);
  const auto faults = enumerate_faults(nl);
  FaultSimulator<std::uint64_t> sim64(nl);
  FaultSimulator<std::uint32_t> sim32(nl);
  const auto r64 = sim64.run_pfsp(faults, 64, 3);
  const auto r32 = sim32.run_pfsp(faults, 64, 3);
  EXPECT_EQ(r64.detected, r32.detected);
}

TEST(FaultSim, CoverageGrowsWithPatterns) {
  RandomDagParams p;
  p.inputs = 12;
  p.outputs = 6;
  p.gates = 150;
  p.depth = 10;
  p.seed = 77;
  const Netlist nl = random_dag(p);
  const auto faults = enumerate_faults(nl);
  FaultSimulator<> sim(nl);
  const auto r32 = sim.run_ppsfp(faults, 32, 4);
  const auto r256 = sim.run_ppsfp(faults, 256, 4);
  EXPECT_GE(r256.detected_count(), r32.detected_count());
  // Every fault detected at 32 patterns stays detected at 256 (same stream).
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (r32.detected[f]) {
      EXPECT_TRUE(r256.detected[f]);
    }
  }
}

TEST(FaultSim, C17KnownCoverage) {
  // c17 is fully testable: 100% single-stuck-at coverage is reachable with
  // modest random patterns.
  const Netlist nl = read_bench_file(std::string(UDSIM_DATA_DIR) + "/c17.bench");
  const auto faults = enumerate_faults(nl);
  FaultSimulator<> sim(nl);
  const auto r = sim.run_ppsfp(faults, 32, 1);
  EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
}

TEST(FaultSim, CompactionPreservesCoverage) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 100;
  p.depth = 9;
  p.seed = 5;
  const Netlist nl = random_dag(p);
  const auto faults = enumerate_faults(nl);
  FaultSimulator<> sim(nl);
  const auto full = sim.run_ppsfp(faults, 256, 77);
  const auto kept = compact_patterns(full);
  EXPECT_LE(kept.size(), full.patterns);
  EXPECT_LE(kept.size(), full.detected_count());
  // Re-simulating only the kept patterns detects the same fault set: build
  // the reduced pattern stream by replaying the generator is internal, so
  // check the defining property instead: every detected fault's first
  // detector is in the kept set.
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (full.detected[f]) {
      EXPECT_NE(std::find(kept.begin(), kept.end(), full.first_detection[f]),
                kept.end());
    } else {
      EXPECT_EQ(full.first_detection[f], FaultSimResult::kUndetected);
    }
  }
}

TEST(FaultSim, FirstDetectionAgreesAcrossEngines) {
  RandomDagParams p;
  p.inputs = 8;
  p.outputs = 4;
  p.gates = 60;
  p.depth = 7;
  p.seed = 6;
  const Netlist nl = random_dag(p);
  const auto faults = enumerate_faults(nl);
  FaultSimulator<> sim(nl);
  const auto serial = run_serial_fault_sim(nl, faults, 64, 3);
  const auto ppsfp = sim.run_ppsfp(faults, 64, 3);
  const auto pfsp = sim.run_pfsp(faults, 64, 3);
  EXPECT_EQ(ppsfp.first_detection, serial.first_detection);
  EXPECT_EQ(pfsp.first_detection, serial.first_detection);
}

TEST(Transform, InjectStuckAtForcesValue) {
  const Netlist nl = test::fig4_network();
  const NetId d = *nl.find_net("D");
  const Netlist faulty = inject_stuck_at(nl, d, 1);
  EXPECT_NO_THROW(faulty.validate());
  LccSim<> sim(faulty);
  const Bit v[] = {0, 0, 1};  // A&B = 0, but D stuck at 1 -> E = 1
  sim.step(v);
  EXPECT_EQ(sim.value(*faulty.find_net("D")), 1);
  EXPECT_EQ(sim.value(*faulty.find_net("E")), 1);
}

}  // namespace
}  // namespace udsim
