// Program profiler (obs/profiler.h): the lossless-decomposition invariant —
// per-level costs plus the unattributed bucket sum *exactly* to
// program_pass_cost — over every ISCAS profile × parallel variant, the
// shift-site ledger against the compiler's own counters, the LCC and PC-set
// attributions, top-K ordering, and the Simulator facade surface.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compile_budget.h"
#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "lcc/lcc.h"
#include "obs/metrics.h"
#include "obs/pass_cost.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {
namespace {

ProgramPassCost sum_profile(const ProgramProfile& prof) {
  ProgramPassCost sum = prof.unattributed.cost;
  for (const ProfileLevel& l : prof.levels) sum += l.cost;
  return sum;
}

void expect_lossless(const ProgramProfile& prof, const Program& program,
                     const std::string& what) {
  const ProgramPassCost expect = program_pass_cost(program);
  EXPECT_TRUE(prof.total == expect) << what << ": total != program_pass_cost";
  EXPECT_TRUE(sum_profile(prof) == expect)
      << what << ": levels + unattributed do not sum to program_pass_cost";
}

// The tentpole invariant (ISSUE 5): the profile is exact by construction
// for every paper circuit and every parallel-technique variant.
TEST(Profiler, LevelCostsSumToPassCostAcrossProfilesAndVariants) {
  const std::vector<std::pair<std::string, ParallelOptions>> variants = {
      {"parallel", {}},
      {"trimmed", {.trimming = true}},
      {"path-tracing", {.shift_elim = ShiftElim::PathTracing}},
      {"cycle-breaking", {.shift_elim = ShiftElim::CycleBreaking}},
      {"combined", {.trimming = true, .shift_elim = ShiftElim::PathTracing}},
  };
  for (const IscasProfile& p : iscas85_profiles()) {
    const Netlist nl = make_iscas85_like(p.name);
    for (const auto& [vname, options] : variants) {
      const ParallelCompiled c = compile_parallel(nl, options);
      const ProfileAttribution attr = attribution_for(c, nl);
      const ProgramProfile prof = profile_program(c.program, attr);
      expect_lossless(prof, c.program, p.name + "/" + vname);
      EXPECT_EQ(prof.levels.size(), static_cast<std::size_t>(attr.depth) + 1);
    }
  }
}

// The ledger is the same walk as the compiler's record_shift_sites: its
// per-level sums must equal the compile.shift_sites_* counters.
TEST(Profiler, ShiftSiteLedgerMatchesCompileCounters) {
  for (const char* name : {"c432", "c880", "c1908"}) {
    const Netlist nl = make_iscas85_like(name);
    for (const ShiftElim elim :
         {ShiftElim::None, ShiftElim::PathTracing, ShiftElim::CycleBreaking}) {
      MetricsRegistry reg;
      const CompileGuard guard{CompileBudget{}, nullptr, &reg};
      const ParallelCompiled c =
          compile_parallel(nl, {.shift_elim = elim}, guard);
      const ProfileAttribution attr = attribution_for(c, nl);
      std::uint64_t retained = 0, eliminated = 0;
      for (const std::uint64_t v : attr.level_shift_sites_retained) retained += v;
      for (const std::uint64_t v : attr.level_shift_sites_eliminated) {
        eliminated += v;
      }
      EXPECT_EQ(retained, reg.counter("compile.shift_sites_retained").value())
          << name;
      EXPECT_EQ(eliminated, reg.counter("compile.shift_sites_eliminated").value())
          << name;
      // The same sums flow through profile_program into the level rows.
      const ProgramProfile prof = profile_program(c.program, attr);
      std::uint64_t prof_retained = 0;
      for (const ProfileLevel& l : prof.levels) {
        prof_retained += l.shift_sites_retained;
      }
      EXPECT_EQ(prof_retained, retained) << name;
    }
  }
}

TEST(Profiler, LccAttributionIsLossless) {
  const Netlist nl = make_iscas85_like("c880");
  const LccCompiled c = compile_lcc(nl);
  const ProfileAttribution attr = attribution_for(c, nl);
  const ProgramProfile prof = profile_program(c.program, attr);
  expect_lossless(prof, c.program, "c880/lcc");
  // One variable word per net in the zero-delay compiled form.
  for (const ProfileNet& n : prof.top_by_arena_words) {
    EXPECT_EQ(n.arena_words, 1u);
  }
}

TEST(Profiler, PCSetAttributionIsLossless) {
  const Netlist nl = make_iscas85_like("c499");
  const PCSetCompiled c = compile_pcset(nl);
  const ProfileAttribution attr = attribution_for(c, nl);
  const ProgramProfile prof = profile_program(c.program, attr);
  expect_lossless(prof, c.program, "c499/pcset");
  // PC-set variables exist at distinct times; the hottest nets by arena
  // words are the ones with the widest PC-sets.
  ASSERT_FALSE(prof.top_by_arena_words.empty());
  EXPECT_GE(prof.top_by_arena_words.front().arena_words, 1u);
}

TEST(Profiler, TopKIsOrderedBoundedAndNonZero) {
  const Netlist nl = make_iscas85_like("c1355");
  const ParallelCompiled c = compile_parallel(nl, {.trimming = true});
  const ProgramProfile prof =
      profile_program(c.program, attribution_for(c, nl), /*top_k=*/5);
  EXPECT_LE(prof.top_by_ops.size(), 5u);
  EXPECT_LE(prof.top_by_arena_words.size(), 5u);
  ASSERT_FALSE(prof.top_by_ops.empty());
  for (std::size_t i = 1; i < prof.top_by_ops.size(); ++i) {
    EXPECT_GE(prof.top_by_ops[i - 1].ops, prof.top_by_ops[i].ops);
  }
  for (std::size_t i = 1; i < prof.top_by_arena_words.size(); ++i) {
    EXPECT_GE(prof.top_by_arena_words[i - 1].arena_words,
              prof.top_by_arena_words[i].arena_words);
  }
  for (const ProfileNet& n : prof.top_by_ops) {
    EXPECT_GT(n.ops, 0u);
    EXPECT_FALSE(n.name.empty());
  }
}

TEST(Profiler, ToJsonCarriesTheDecomposition) {
  const Netlist nl = make_iscas85_like("c432");
  const ParallelCompiled c = compile_parallel(nl);
  const ProgramProfile prof = profile_program(c.program, attribution_for(c, nl));
  const std::string j = prof.to_json();
  EXPECT_NE(j.find("\"total\""), std::string::npos);
  EXPECT_NE(j.find("\"levels\""), std::string::npos);
  EXPECT_NE(j.find("\"unattributed\""), std::string::npos);
  EXPECT_NE(j.find("\"top_by_ops\""), std::string::npos);
  EXPECT_NE(j.find("\"top_by_arena_words\""), std::string::npos);
}

TEST(Profiler, SimulatorFacadeExposesProfiles) {
  const Netlist nl = make_iscas85_like("c432");
  for (const EngineKind kind :
       {EngineKind::ZeroDelayLcc, EngineKind::PCSet, EngineKind::Parallel,
        EngineKind::ParallelTrimmed, EngineKind::ParallelCombined}) {
    auto sim = make_simulator(nl, kind);
    const ProgramProfile prof = sim->program_profile();
    EXPECT_TRUE(prof.engaged()) << engine_name(kind);
    ASSERT_NE(sim->compiled_program(), nullptr);
    expect_lossless(prof, *sim->compiled_program(),
                    std::string(engine_name(kind)));
  }
  // Interpreted event engines have no compiled program: disengaged profile.
  auto ev = make_simulator(nl, EngineKind::Event2);
  EXPECT_FALSE(ev->program_profile().engaged());
}

}  // namespace
}  // namespace udsim
