// Reference-simulator tests, including the paper's Fig. 7 bit-field values.
#include <gtest/gtest.h>

#include "oracle/oracle.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Oracle, Fig7History) {
  // Paper Figs. 6/7 simulate the Fig. 4 network. With all-zero state and the
  // vector A=B=C=1, D rises at t=1 and E at t=2.
  const Netlist nl = test::fig4_network();
  OracleSim sim(nl);
  const NetId d = *nl.find_net("D");
  const NetId e = *nl.find_net("E");
  const Bit v1[] = {1, 1, 1};
  Waveform wf = sim.step(v1);
  EXPECT_EQ(wf.at(d, 0), 0);
  EXPECT_EQ(wf.at(d, 1), 1);
  EXPECT_EQ(wf.at(d, 2), 1);
  EXPECT_EQ(wf.at(e, 0), 0);
  EXPECT_EQ(wf.at(e, 1), 0);
  EXPECT_EQ(wf.at(e, 2), 1);
  // Drop A: D falls at 1, E falls at 2; E's time-1 value is recomputed from
  // D(0)=1, C(0)=1 so it holds at 1 briefly — the unit-delay glitch world.
  const Bit v2[] = {0, 1, 1};
  wf = sim.step(v2);
  EXPECT_EQ(wf.at(d, 0), 1);
  EXPECT_EQ(wf.at(d, 1), 0);
  EXPECT_EQ(wf.at(e, 0), 1);
  EXPECT_EQ(wf.at(e, 1), 1);
  EXPECT_EQ(wf.at(e, 2), 0);
}

TEST(Oracle, GlitchOnReconvergence) {
  // A AND (NOT A): settles to 0 but pulses when A rises.
  const Netlist nl = test::fig11_network();
  OracleSim sim(nl);
  const NetId c = *nl.find_net("C");
  const Bit v0[] = {0};
  (void)sim.step(v0);  // settle: A=0, B=1, C=0
  const Bit v1[] = {1};
  const Waveform wf = sim.step(v1);
  // t0: A=1 (changed), B=1 (old), C=0; t1: C = A(0)&B(0)... times:
  // C(1) = A(0) & B(0) = 1 & 1 = 1 -> glitch; C(2) = A(1) & B(1) = 1 & 0 = 0.
  EXPECT_EQ(wf.at(c, 0), 0);
  EXPECT_EQ(wf.at(c, 1), 1);
  EXPECT_EQ(wf.at(c, 2), 0);
  EXPECT_EQ(wf.transition_count(c), 2u);
}

TEST(Oracle, StateCarriesAcrossVectors) {
  const Netlist nl = test::fig4_network();
  OracleSim sim(nl);
  const NetId e = *nl.find_net("E");
  const Bit v1[] = {1, 1, 1};
  (void)sim.step(v1);
  EXPECT_EQ(sim.state(e), 1);
  const Bit v2[] = {1, 1, 0};
  const Waveform wf = sim.step(v2);
  EXPECT_EQ(wf.at(e, 0), 1);  // retained from the previous vector
  EXPECT_EQ(sim.state(e), 0);
}

TEST(Oracle, ResetRestoresConstants) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId k = nl.add_net("k");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Const1, {}, k);
  nl.add_gate(GateType::And, {a, k}, o);
  nl.mark_primary_output(o);
  OracleSim sim(nl);
  EXPECT_EQ(sim.state(k), 1);
  sim.reset(0);
  EXPECT_EQ(sim.state(k), 1);  // constants pinned
  const Bit v[] = {1};
  const Waveform wf = sim.step(v);
  EXPECT_EQ(wf.final_value(o), 1);
}

TEST(Oracle, WiredAndResolution) {
  Netlist nl = test::wired_network(WiredKind::And);
  OracleSim sim(nl);
  const NetId w = *nl.find_net("W");
  // W = AND(a&b, ~c). a=1,b=1,c=0 -> 1.
  const Bit v1[] = {1, 1, 0};
  Waveform wf = sim.step(v1);
  EXPECT_EQ(wf.final_value(w), 1);
  const Bit v2[] = {1, 0, 0};
  wf = sim.step(v2);
  EXPECT_EQ(wf.final_value(w), 0);
  // Lowered netlist gives identical waveforms on the original nets.
  Netlist low = test::wired_network(WiredKind::And);
  lower_wired_nets(low);
  OracleSim sim2(low);
  sim2.reset(0);
  OracleSim sim3(nl);
  for (const auto& v : {std::vector<Bit>{1, 1, 0}, {1, 0, 0}, {0, 1, 1}, {1, 1, 1}}) {
    const Waveform w1 = sim3.step(v);
    const Waveform w2 = sim2.step(v);
    for (const char* name : {"A", "B", "C", "W", "O"}) {
      const NetId n1 = *nl.find_net(name);
      const NetId n2 = *low.find_net(name);
      for (int t = 0; t <= sim3.depth(); ++t) {
        EXPECT_EQ(w1.at(n1, t), w2.at(n2, t)) << name << " t=" << t;
      }
    }
  }
}

TEST(Oracle, WaveformChangeTimes) {
  Waveform wf(1, 5);
  wf.set(NetId{0}, 0, 0);
  wf.set(NetId{0}, 1, 1);
  wf.set(NetId{0}, 2, 1);
  wf.set(NetId{0}, 3, 0);
  wf.set(NetId{0}, 4, 0);
  wf.set(NetId{0}, 5, 0);
  EXPECT_EQ(wf.change_times(NetId{0}), (std::vector<int>{1, 3}));
  EXPECT_EQ(wf.final_value(NetId{0}), 0);
}

}  // namespace
}  // namespace udsim
