// Generator tests: arithmetic circuits verified against integer arithmetic,
// parity/ECC against software models, random-DAG structural invariants, and
// the ISCAS-85 profile calibration.
#include <gtest/gtest.h>

#include "analysis/pcset.h"
#include "gen/arithmetic.h"
#include "gen/iscas_profiles.h"
#include "gen/random_dag.h"
#include "gen/rng.h"
#include "gen/trees.h"
#include "lcc/lcc.h"
#include "netlist/stats.h"

namespace udsim {
namespace {

TEST(Gen, RippleCarryAdderAddsCorrectly) {
  const int bits = 8;
  const Netlist nl = ripple_carry_adder(bits);
  LccSim<> sim(nl);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(256));
    const unsigned b = static_cast<unsigned>(rng.below(256));
    const unsigned cin = static_cast<unsigned>(rng.bit());
    std::vector<Bit> v;
    for (int i = 0; i < bits; ++i) {
      v.push_back((a >> i) & 1u);
      v.push_back((b >> i) & 1u);
    }
    v.push_back(static_cast<Bit>(cin));
    sim.step(v);
    const unsigned expect = a + b + cin;
    unsigned got = 0;
    for (int i = 0; i < bits; ++i) {
      got |= static_cast<unsigned>(sim.value(*nl.find_net("fa" + std::to_string(i) + "_s")))
             << i;
    }
    got |= static_cast<unsigned>(
               sim.value(*nl.find_net("fa" + std::to_string(bits - 1) + "_c")))
           << bits;
    ASSERT_EQ(got, expect) << a << "+" << b << "+" << cin;
  }
}

TEST(Gen, ArrayMultiplierMultipliesCorrectly) {
  const Netlist nl = array_multiplier(8, 8);
  LccSim<> sim(nl);
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(256));
    const unsigned b = static_cast<unsigned>(rng.below(256));
    std::vector<Bit> v;
    for (int i = 0; i < 8; ++i) v.push_back((a >> i) & 1u);
    for (int i = 0; i < 8; ++i) v.push_back((b >> i) & 1u);
    sim.step(v);
    unsigned got = 0;
    const auto& pos = nl.primary_outputs();
    for (std::size_t i = 0; i < pos.size(); ++i) {
      got |= static_cast<unsigned>(sim.value(pos[i])) << i;
    }
    ASSERT_EQ(got, a * b) << a << "*" << b;
  }
}

TEST(Gen, ParityTreeComputesParity) {
  const Netlist nl = parity_tree(13);
  LccSim<> sim(nl);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Bit> v;
    int parity = 0;
    for (int i = 0; i < 13; ++i) {
      v.push_back(static_cast<Bit>(rng.bit()));
      parity ^= v.back();
    }
    sim.step(v);
    ASSERT_EQ(sim.value(nl.primary_outputs()[0]), parity);
  }
}

TEST(Gen, EccCorrectorFixesSingleBitErrors) {
  const int data_bits = 16;
  const Netlist nl = ecc_corrector(data_bits);
  const int sbits = static_cast<int>(nl.primary_inputs().size()) - data_bits;
  LccSim<> sim(nl);
  Rng rng(8);
  // Software model of the syndrome encoding used by the generator.
  const auto check_bits_for = [&](unsigned data) {
    std::vector<Bit> c(static_cast<std::size_t>(sbits), 0);
    for (int s = 0; s < sbits; ++s) {
      int par = 0;
      for (int i = 0; i < data_bits; ++i) {
        const bool covered = s == 0 || ((i >> (s - 1)) & 1);
        if (covered) par ^= (data >> i) & 1u;
      }
      c[static_cast<std::size_t>(s)] = static_cast<Bit>(par);
    }
    return c;
  };
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = static_cast<unsigned>(rng.below(1u << data_bits));
    auto check = check_bits_for(data);
    // Flip one data bit (or none).
    unsigned corrupted = data;
    if (trial % 4 != 0) {
      const int flip = static_cast<int>(rng.below(data_bits));
      corrupted ^= 1u << flip;
    }
    std::vector<Bit> v;
    for (int i = 0; i < data_bits; ++i) v.push_back((corrupted >> i) & 1u);
    for (Bit c : check) v.push_back(c);
    sim.step(v);
    unsigned got = 0;
    for (int i = 0; i < data_bits; ++i) {
      got |= static_cast<unsigned>(sim.value(*nl.find_net("o" + std::to_string(i)))) << i;
    }
    ASSERT_EQ(got, data) << "trial " << trial;
  }
}

TEST(Gen, MuxTreeSelects) {
  const Netlist nl = mux_tree(3);
  LccSim<> sim(nl);
  for (unsigned sel = 0; sel < 8; ++sel) {
    for (unsigned pattern : {0x5au, 0xa5u, 0xffu, 0x01u}) {
      std::vector<Bit> v;
      for (int i = 0; i < 8; ++i) v.push_back((pattern >> i) & 1u);
      for (int s = 0; s < 3; ++s) v.push_back((sel >> s) & 1u);
      sim.step(v);
      ASSERT_EQ(sim.value(nl.primary_outputs()[0]), (pattern >> sel) & 1u);
    }
  }
}

TEST(Gen, ComparatorComparesCorrectly) {
  const Netlist nl = comparator(6);
  LccSim<> sim(nl);
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(64));
    const unsigned b = static_cast<unsigned>(rng.below(64));
    std::vector<Bit> v;
    for (int i = 0; i < 6; ++i) {
      v.push_back((a >> i) & 1u);
      v.push_back((b >> i) & 1u);
    }
    sim.step(v);
    ASSERT_EQ(sim.value(nl.primary_outputs()[0]), a == b ? 1 : 0);
    ASSERT_EQ(sim.value(nl.primary_outputs()[1]), a > b ? 1 : 0);
  }
}

TEST(Gen, RandomDagMeetsStructuralContract) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    RandomDagParams p;
    p.inputs = 20;
    p.outputs = 10;
    p.gates = 250;
    p.depth = 17;
    p.seed = seed;
    const Netlist nl = random_dag(p);
    EXPECT_NO_THROW(nl.validate());
    EXPECT_EQ(nl.real_gate_count(), p.gates + 0u);  // exact when PIs drain
    const Levelization lv = levelize(nl);
    EXPECT_EQ(lv.depth, p.depth);
    // Every PI feeds something; every sink is a PO.
    for (NetId pi : nl.primary_inputs()) {
      EXPECT_FALSE(nl.net(pi).fanout.empty());
    }
    for (const Net& n : nl.nets()) {
      if (n.fanout.empty() && !n.is_primary_input) {
        EXPECT_TRUE(n.is_primary_output);
      }
    }
    EXPECT_GE(nl.primary_outputs().size(), p.outputs);
  }
}

TEST(Gen, RandomDagIsDeterministicPerSeed) {
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 80;
  p.depth = 8;
  p.seed = 1234;
  const Netlist a = random_dag(p);
  const Netlist b = random_dag(p);
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (std::uint32_t g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(GateId{g}).type, b.gate(GateId{g}).type);
    EXPECT_EQ(a.gate(GateId{g}).inputs.size(), b.gate(GateId{g}).inputs.size());
  }
}

TEST(Gen, ReachControlsPCSetWidth) {
  RandomDagParams p;
  p.inputs = 12;
  p.gates = 200;
  p.depth = 15;
  p.seed = 4;
  p.reach = 0.2;
  const Netlist narrow = random_dag(p);
  p.reach = 3.0;
  const Netlist wide = random_dag(p);
  const auto total_pc = [](const Netlist& nl) {
    const Levelization lv = levelize(nl);
    return compute_pc_sets(nl, lv).total_net_pc_size();
  };
  EXPECT_GT(total_pc(wide), total_pc(narrow));
}

TEST(Gen, Iscas85ProfilesMatchPublishedShape) {
  for (const IscasProfile& p : iscas85_profiles()) {
    const Netlist nl = make_iscas85_like(p.name);
    const CircuitStats st = circuit_stats(nl);
    EXPECT_EQ(st.primary_inputs, p.inputs) << p.name;
    if (!p.multiplier) {
      EXPECT_EQ(st.gates, p.gates) << p.name;
      EXPECT_EQ(st.depth + 1, p.levels) << p.name;
      EXPECT_GE(st.primary_outputs, p.outputs) << p.name;
    } else {
      // The multiplier is structural, not fitted: ~4% of the published gate
      // count and within one 32-bit word of the published level count.
      EXPECT_NEAR(static_cast<double>(st.gates), static_cast<double>(p.gates),
                  0.05 * static_cast<double>(p.gates))
          << p.name;
      EXPECT_EQ((st.depth + 1 + 31) / 32, (p.levels + 31) / 32) << p.name;
    }
  }
}

}  // namespace
}  // namespace udsim
