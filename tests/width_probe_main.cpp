// Standalone lane-width probe (DESIGN.md §5j), the ctest leg that covers
// what an in-process gtest cannot promise on arbitrary hardware:
//
//   width_probe <bits>    — dispatch at <bits>, run c432 at that width and
//                           diff the rows against the 32-bit run. Exit 77
//                           (ctest SKIP_RETURN_CODE) when this build/CPU
//                           genuinely lacks the lane.
//   width_probe fallback  — verify a genuine *hardware* step-down: request
//                           the widest compiled lane on a machine that
//                           cannot run it and require the WidthFallback
//                           diagnostic. Exit 77 on machines where every
//                           compiled lane is executable (nothing to
//                           observe).
//
// Exit 0 = verified, 1 = divergence/missing diagnostic, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "ir/program.h"
#include "netlist/diagnostics.h"

namespace {

std::vector<udsim::Bit> run_rows(const udsim::Netlist& nl, int word_bits,
                                 std::size_t vectors) {
  using namespace udsim;
  RandomVectorSource src(nl.primary_inputs().size(), 0xbeef);
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> flat(vectors * pis);
  for (std::size_t v = 0; v < vectors; ++v) {
    src.next(std::span<Bit>(flat.data() + v * pis, pis));
  }
  const auto sim = make_simulator(nl, EngineKind::ZeroDelayLcc, word_bits);
  if (sim->compiled_program()->word_bits != word_bits) {
    std::fprintf(stderr, "requested %d-bit lanes, dispatched %d\n", word_bits,
                 sim->compiled_program()->word_bits);
    std::exit(1);
  }
  return sim->run_batch(flat, 1).values;
}

int probe_width(int bits) {
  using namespace udsim;
  if (!width_available(bits)) {
    std::fprintf(stderr,
                 "skip: %d-bit lane unavailable on this build/CPU "
                 "(compiled=%d)\n",
                 bits, width_compiled(bits) ? 1 : 0);
    return 77;
  }
  ::unsetenv("UDSIM_FORCE_WIDTH");
  const Netlist nl = make_iscas85_like("c432");
  constexpr std::size_t kVectors = 24;
  const std::vector<Bit> wide = run_rows(nl, bits, kVectors);
  const std::vector<Bit> narrow = run_rows(nl, 32, kVectors);
  if (wide != narrow) {
    std::fprintf(stderr, "FAIL: %d-bit rows diverge from the 32-bit oracle\n",
                 bits);
    return 1;
  }
  std::printf("ok: c432 × %zu vectors bit-identical at %d-bit lanes\n",
              kVectors, bits);
  return 0;
}

int probe_fallback() {
  using namespace udsim;
  ::unsetenv("UDSIM_FORCE_WIDTH");
  // Find a compiled lane the CPU cannot execute (e.g. a -mavx2 build on a
  // non-AVX2 machine). When every compiled lane runs, there is no genuine
  // hardware fallback to observe — the gtest suite covers the synthetic
  // (unknown-width) ladder instead.
  int blocked = 0;
  for (int bits : {128, 256}) {
    if (width_compiled(bits) && !width_available(bits)) blocked = bits;
  }
  if (blocked == 0) {
    std::fprintf(stderr,
                 "skip: every compiled lane is executable on this CPU; no "
                 "hardware fallback to observe\n");
    return 77;
  }
  Diagnostics diag;
  const WidthChoice c = dispatch_width(blocked, &diag);
  if (!c.fell_back || c.word_bits >= blocked) {
    std::fprintf(stderr, "FAIL: %d-bit request did not step down (got %d)\n",
                 blocked, c.word_bits);
    return 1;
  }
  if (!diag.has(DiagCode::WidthFallback)) {
    std::fprintf(stderr, "FAIL: fallback produced no WidthFallback record\n");
    return 1;
  }
  std::printf("ok: %d-bit request stepped down to %d with a diagnostic\n",
              blocked, c.word_bits);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: width_probe <bits>|fallback\n");
    return 2;
  }
  if (std::strcmp(argv[1], "fallback") == 0) return probe_fallback();
  const int bits = std::atoi(argv[1]);
  if (bits <= 0) {
    std::fprintf(stderr, "usage: width_probe <bits>|fallback\n");
    return 2;
  }
  return probe_width(bits);
}
