// Shared --update-golden plumbing for test binaries that own golden
// fixtures (udsim_observability_tests, udsim_native_tests). Each binary's
// main() calls consume_update_golden_flag() before InitGoogleTest so the
// flag never reaches gtest's argument parser; tests read g_update_golden.
//
//   ./<binary> --update-golden      (or UDSIM_UPDATE_GOLDEN=1)
#pragma once

#include <cstdlib>
#include <string>

namespace udsim::test {

inline bool g_update_golden = false;

/// Strip --update-golden from argv (compacting in place) and honor the
/// UDSIM_UPDATE_GOLDEN environment variable. Sets and returns
/// g_update_golden.
inline bool consume_update_golden_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("UDSIM_UPDATE_GOLDEN");
      env && *env && std::string(env) != "0") {
    g_update_golden = true;
  }
  return g_update_golden;
}

}  // namespace udsim::test
