// Cross-engine integration sweep: every engine agrees on final values over
// the ISCAS-85-like profile suite, c17, and assorted generators — the
// end-to-end guarantee behind every benchmark table.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gen/arithmetic.h"
#include "gen/iscas_profiles.h"
#include "gen/trees.h"
#include "harness/vectors.h"
#include "netlist/bench_io.h"
#include "oracle/oracle.h"

namespace udsim {
namespace {

constexpr EngineKind kAllEngines[] = {
    EngineKind::Event2,
    EngineKind::Event3,
    EngineKind::PCSet,
    EngineKind::Parallel,
    EngineKind::ParallelTrimmed,
    EngineKind::ParallelPathTracing,
    EngineKind::ParallelCycleBreaking,
    EngineKind::ParallelCombined,
    EngineKind::ZeroDelayLcc,
};

void sweep(const Netlist& nl, int vectors, std::uint64_t seed) {
  OracleSim oracle(nl);
  std::vector<std::unique_ptr<Simulator>> sims;
  for (EngineKind k : kAllEngines) sims.push_back(make_simulator(nl, k));
  RandomVectorSource src(nl.primary_inputs().size(), seed);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < vectors; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    for (auto& s : sims) s->step(v);
    for (NetId po : nl.primary_outputs()) {
      const Bit expect = wf.final_value(po);
      for (auto& s : sims) {
        ASSERT_EQ(expect, s->final_value(po))
            << nl.name() << " engine " << engine_name(s->kind()) << " net "
            << nl.net(po).name << " vector " << i;
      }
    }
  }
}

class ProfileSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweep, AllEnginesAgreeOnProfile) {
  const Netlist nl = make_iscas85_like(GetParam());
  sweep(nl, 8, 0xabcdefull);
}

// The full ten-profile sweep; the two largest get fewer vectors via the
// shared `vectors` parameter above but still cross all nine engines.
INSTANTIATE_TEST_SUITE_P(Iscas85, ProfileSweep,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c2670", "c3540", "c5315",
                                           "c6288", "c7552"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Integration, GenuineC17) {
  const Netlist nl = read_bench_file(std::string(UDSIM_DATA_DIR) + "/c17.bench");
  sweep(nl, 64, 3);
}

TEST(Integration, ArithmeticCircuits) {
  sweep(ripple_carry_adder(16), 24, 4);
  sweep(array_multiplier(6, 6), 16, 5);
}

TEST(Integration, TreeCircuits) {
  sweep(parity_tree(32), 24, 6);
  sweep(ecc_corrector(16), 24, 7);
  sweep(mux_tree(4), 24, 8);
  sweep(comparator(8), 24, 9);
}

TEST(Integration, FacadeEngineNamesAreDistinct) {
  std::set<std::string_view> names;
  for (EngineKind k : kAllEngines) names.insert(engine_name(k));
  EXPECT_EQ(names.size(), std::size(kAllEngines));
}

TEST(Integration, FacadeKindRoundTrip) {
  const Netlist nl = parity_tree(4);
  for (EngineKind k : kAllEngines) {
    EXPECT_EQ(make_simulator(nl, k)->kind(), k);
  }
}

}  // namespace
}  // namespace udsim
