// Transition-fault (delay-fault) simulation tests.
#include <gtest/gtest.h>

#include "fault/transition.h"
#include "gen/random_dag.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(TransitionFault, EnumerationPairsPolarity) {
  const Netlist nl = test::fig4_network();
  const auto faults = enumerate_transition_faults(nl);
  EXPECT_EQ(faults.size(), 2 * nl.net_count());
  std::size_t rising = 0;
  for (const auto& f : faults) rising += f.rising;
  EXPECT_EQ(rising, faults.size() / 2);
}

TEST(TransitionFault, PackedMatchesSerial) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RandomDagParams p;
    p.inputs = 8;
    p.outputs = 4;
    p.gates = 60;
    p.depth = 7;
    p.seed = seed;
    p.xor_fraction = 0.3;
    const Netlist nl = random_dag(p);
    const auto faults = enumerate_transition_faults(nl);
    const auto fast = run_transition_fault_sim(nl, faults, 64, 9);
    const auto slow = run_transition_fault_sim_serial(nl, faults, 64, 9);
    ASSERT_EQ(fast.detected.size(), slow.detected.size());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      EXPECT_EQ(fast.detected[f], slow.detected[f])
          << nl.net(faults[f].net).name << (faults[f].rising ? " str" : " stf")
          << " seed " << seed;
    }
  }
}

TEST(TransitionFault, RequiresLaunchNotJustObservability) {
  // Tie one input pattern column: o = XOR(a, b) where b never toggles in
  // the pattern stream cannot launch a transition on b even though b's
  // stuck-at faults are trivially observable.
  Netlist nl("launch");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_gate(GateType::Xor, {a, b}, o);
  nl.mark_primary_output(o);
  // Serial engine with a handcrafted pattern set is not exposed; use the
  // seeded stream but a 1-pattern run: no pairs, nothing detectable.
  const auto faults = enumerate_transition_faults(nl);
  const auto r = run_transition_fault_sim(nl, faults, 1, 5);
  EXPECT_EQ(r.pattern_pairs, 0u);
  EXPECT_EQ(r.detected_count(), 0u);
  // With many patterns, everything on this fully-sensitized XOR is caught.
  const auto r2 = run_transition_fault_sim(nl, faults, 64, 5);
  EXPECT_DOUBLE_EQ(r2.coverage(), 1.0);
}

TEST(TransitionFault, CoverageBelowStuckAtOnRedundantLogic) {
  // fig11's C is constant 0: no transition can ever launch on it.
  const Netlist nl = test::fig11_network();
  const NetId c = *nl.find_net("C");
  const std::vector<TransitionFault> faults = {{c, true}, {c, false}};
  const auto r = run_transition_fault_sim(nl, faults, 128, 3);
  EXPECT_EQ(r.detected_count(), 0u);
}

TEST(TransitionFault, CoverageGrowsWithPatterns) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 120;
  p.depth = 9;
  p.seed = 4;
  const Netlist nl = random_dag(p);
  const auto faults = enumerate_transition_faults(nl);
  const auto r32 = run_transition_fault_sim(nl, faults, 32, 8);
  const auto r256 = run_transition_fault_sim(nl, faults, 256, 8);
  EXPECT_GE(r256.detected_count(), r32.detected_count());
  EXPECT_GT(r256.detected_count(), 0u);
}

}  // namespace
}  // namespace udsim
