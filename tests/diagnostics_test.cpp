// Diagnostics sink: structured warnings from the .bench parser, the
// collecting netlist validator, and cycle naming in every cycle error.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/levelize.h"
#include "netlist/bench_io.h"
#include "netlist/diagnostics.h"
#include "netlist/netlist.h"
#include "test_util.h"

namespace udsim {
namespace {

Netlist parse(const std::string& text, Diagnostics* diag = nullptr) {
  std::istringstream in(text);
  return read_bench(in, "t", diag);
}

TEST(Diagnostics, RecordsAreQueryable) {
  Diagnostics diag;
  EXPECT_TRUE(diag.empty());
  diag.report(DiagCode::UndrivenNet, DiagSeverity::Warning, "G7", "no driver", 3);
  diag.report(DiagCode::BudgetDowngrade, DiagSeverity::Warning, "engine", "over");
  diag.report(DiagCode::EngineSelected, DiagSeverity::Note, "engine", "picked");
  EXPECT_EQ(diag.size(), 3u);
  EXPECT_EQ(diag.count(DiagCode::UndrivenNet), 1u);
  EXPECT_EQ(diag.count(DiagSeverity::Warning), 2u);
  EXPECT_EQ(diag.count(DiagSeverity::Note), 1u);
  EXPECT_TRUE(diag.has(DiagCode::BudgetDowngrade));
  EXPECT_FALSE(diag.has(DiagCode::CombinationalCycle));
  ASSERT_NE(diag.first(DiagCode::UndrivenNet), nullptr);
  EXPECT_EQ(diag.first(DiagCode::UndrivenNet)->line, 3u);
  EXPECT_EQ(diag.first(DiagCode::CombinationalCycle), nullptr);
  diag.clear();
  EXPECT_TRUE(diag.empty());
}

TEST(Diagnostics, ToStringNamesCodeSubjectAndLine) {
  const Diagnostic d{DiagCode::UndrivenNet, DiagSeverity::Warning, "G7",
                     "referenced but never driven", 12};
  const std::string s = d.to_string();
  EXPECT_NE(s.find("warning"), std::string::npos) << s;
  EXPECT_NE(s.find("undriven-net"), std::string::npos) << s;
  EXPECT_NE(s.find("'G7'"), std::string::npos) << s;
  EXPECT_NE(s.find("line 12"), std::string::npos) << s;

  Diagnostics diag;
  diag.report(d);
  std::ostringstream out;
  diag.print(out);
  EXPECT_EQ(out.str(), s + "\n");
}

// ---- .bench parser warnings ------------------------------------------------

TEST(BenchDiagnostics, UndrivenInputNetIsWarned) {
  Diagnostics diag;
  const Netlist nl = parse(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "y = AND(a, ghost)\n",
      &diag);
  ASSERT_TRUE(diag.has(DiagCode::UndrivenNet));
  EXPECT_EQ(diag.first(DiagCode::UndrivenNet)->subject, "ghost");
  EXPECT_EQ(nl.net_count(), 3u);
}

TEST(BenchDiagnostics, DanglingOutputIsWarnedWithItsLine) {
  Diagnostics diag;
  (void)parse(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "OUTPUT(ghost)\n"
      "y = AND(a, ghost)\n",
      &diag);
  ASSERT_TRUE(diag.has(DiagCode::DanglingOutput));
  EXPECT_EQ(diag.first(DiagCode::DanglingOutput)->subject, "ghost");
  EXPECT_EQ(diag.first(DiagCode::DanglingOutput)->line, 3u);

  // An OUTPUT of a net no statement ever mentions is a hard parse error.
  diag.clear();
  EXPECT_THROW((void)parse("INPUT(a)\nOUTPUT(nowhere)\n", &diag),
               BenchParseError);
}

TEST(BenchDiagnostics, FanoutFreeGateIsWarned) {
  Diagnostics diag;
  (void)parse(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "y = BUFF(a)\n"
      "dead = NOT(a)\n",
      &diag);
  ASSERT_TRUE(diag.has(DiagCode::FanoutFreeGate));
  EXPECT_EQ(diag.first(DiagCode::FanoutFreeGate)->subject, "dead");
}

TEST(BenchDiagnostics, DuplicateDeclarationsAreWarned) {
  Diagnostics diag;
  (void)parse(
      "INPUT(a)\n"
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "OUTPUT(y)\n"
      "y = BUFF(a)\n",
      &diag);
  EXPECT_EQ(diag.count(DiagCode::DuplicateDecl), 2u);
  EXPECT_EQ(diag.first(DiagCode::DuplicateDecl)->line, 2u);
}

TEST(BenchDiagnostics, CleanCircuitProducesNoRecords) {
  Diagnostics diag;
  (void)parse(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "y = AND(a, b)\n",
      &diag);
  EXPECT_TRUE(diag.empty());
}

TEST(BenchDiagnostics, NullSinkKeepsHistoricalBehaviour) {
  const Netlist nl = parse(
      "INPUT(a)\n"
      "OUTPUT(y)\n"
      "y = AND(a, ghost)\n");
  EXPECT_EQ(nl.net_count(), 3u);  // parsed fine, warnings dropped
}

// ---- collecting validator --------------------------------------------------

TEST(ValidateDiagnostics, CollectsEveryViolationAtOnce) {
  Netlist nl("bad");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId u = nl.add_net("u");  // undriven, not a PI
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::And, {a, u}, y);
  const NetId w = nl.add_net("w");
  nl.set_wired(w, WiredKind::And);
  nl.add_gate(GateType::Not, {y}, w);
  nl.add_gate(GateType::Buf, {a}, w);
  nl.set_wired(w, WiredKind::None);  // two drivers, resolution revoked
  nl.mark_primary_output(y);
  // w's fanout is empty and it is not an output: dead logic, twice.

  Diagnostics diag;
  const std::size_t errors = nl.validate(diag);
  EXPECT_GE(errors, 2u);
  EXPECT_EQ(errors, diag.count(DiagSeverity::Error));
  EXPECT_TRUE(diag.has(DiagCode::UndrivenNet));
  EXPECT_EQ(diag.first(DiagCode::UndrivenNet)->subject, "u");
  EXPECT_TRUE(diag.has(DiagCode::MultiDriverNet));
  EXPECT_EQ(diag.first(DiagCode::MultiDriverNet)->subject, "w");
  EXPECT_TRUE(diag.has(DiagCode::FanoutFreeGate));

  // The throwing validate still throws on the same netlist.
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(ValidateDiagnostics, ValidNetlistAddsNoErrors) {
  const Netlist nl = test::fig4_network();
  Diagnostics diag;
  EXPECT_EQ(nl.validate(diag), 0u);
  EXPECT_EQ(diag.count(DiagSeverity::Error), 0u);
}

// ---- cycle naming (satellite: cycle errors name a net on the cycle) --------

Netlist ring_netlist() {
  Netlist nl("ring");
  const NetId a = nl.add_net("ring_a");
  const NetId b = nl.add_net("ring_b");
  const NetId c = nl.add_net("ring_c");
  const NetId pi = nl.add_net("pi");
  nl.mark_primary_input(pi);
  nl.add_gate(GateType::And, {c, pi}, a);
  nl.add_gate(GateType::Buf, {a}, b);
  nl.add_gate(GateType::Buf, {b}, c);
  nl.mark_primary_output(c);
  return nl;
}

TEST(CycleNaming, FindCycleReturnsAClosedRing) {
  const Netlist nl = ring_netlist();
  const std::vector<NetId> cycle = nl.find_cycle();
  ASSERT_EQ(cycle.size(), 3u);
  // Each successive net is reachable from the previous through one gate,
  // and the last closes back on the first.
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Net& from = nl.net(cycle[i]);
    const NetId to = cycle[(i + 1) % cycle.size()];
    bool edge = false;
    for (GateId g : from.fanout) edge |= nl.gate(g).output == to;
    EXPECT_TRUE(edge) << "no gate edge " << from.name << " -> "
                      << nl.net(to).name;
  }
  EXPECT_TRUE(test::fig4_network().find_cycle().empty());
}

TEST(CycleNaming, ValidateErrorNamesCycleNets) {
  const Netlist nl = ring_netlist();
  try {
    nl.validate();
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ring_a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("->"), std::string::npos) << msg;
  }
}

TEST(CycleNaming, CollectingValidateNamesCycleNets) {
  const Netlist nl = ring_netlist();
  Diagnostics diag;
  EXPECT_GE(nl.validate(diag), 1u);
  ASSERT_TRUE(diag.has(DiagCode::CombinationalCycle));
  EXPECT_NE(diag.first(DiagCode::CombinationalCycle)->message.find("ring_a"),
            std::string::npos);
}

TEST(CycleNaming, LevelizeStallNamesCycleNets) {
  const Netlist nl = ring_netlist();
  try {
    (void)levelize(nl);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ring_a"), std::string::npos) << msg;
  }
}

TEST(CycleNaming, LongCycleDescriptionIsCapped) {
  Netlist nl("bigring");
  const NetId pi = nl.add_net("pi");
  nl.mark_primary_input(pi);
  std::vector<NetId> ring;
  for (int i = 0; i < 20; ++i) ring.push_back(nl.add_net("r" + std::to_string(i)));
  nl.add_gate(GateType::And, {ring.back(), pi}, ring.front());
  for (int i = 0; i + 1 < 20; ++i) {
    nl.add_gate(GateType::Buf, {ring[i]}, ring[i + 1]);
  }
  nl.mark_primary_output(ring.back());
  const std::string desc = nl.describe_cycle();
  EXPECT_NE(desc.find("more)"), std::string::npos) << desc;
  EXPECT_NE(desc.find("->"), std::string::npos) << desc;
}

}  // namespace
}  // namespace udsim
