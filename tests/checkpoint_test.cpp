// Checkpoint/resume correctness and durability (DESIGN.md §5f).
//
// The load-bearing property: a run interrupted at any point and resumed from
// its snapshot is bit-identical to the uninterrupted run — verified here for
// every ISCAS-85 profile × {zero-delay LCC, PC-set, parallel-combined} ×
// thread counts {1, 2, 5}, at both word sizes. The durability half
// fuzz-checks the wire format: truncations at every prefix, single-byte
// flips at every offset, version skew and geometry mismatches must all load
// as structured CheckpointError, never as a crash or a partial object.
#include "resilience/checkpoint.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "gen/iscas_profiles.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "resilience/fault_injection.h"

namespace udsim {
namespace {

std::vector<std::uint64_t> random_inputs(std::size_t pis, std::size_t count,
                                         std::uint64_t seed) {
  RandomVectorSource src(pis, seed);
  std::vector<Bit> row(pis);
  std::vector<std::uint64_t> in(pis * count);
  for (std::size_t v = 0; v < count; ++v) {
    src.next(row);
    for (std::size_t i = 0; i < pis; ++i) in[v * pis + i] = row[i];
  }
  return in;
}

template <class Word>
std::vector<Bit> sequential_replay(const Program& p,
                                   const std::vector<ArenaProbe>& probes,
                                   const std::vector<std::uint64_t>& in,
                                   std::size_t count) {
  KernelRunner<Word> runner(p);
  std::vector<Word> row(p.input_words);
  std::vector<Bit> out;
  out.reserve(count * probes.size());
  for (std::size_t v = 0; v < count; ++v) {
    for (std::size_t i = 0; i < p.input_words; ++i) {
      row[i] = static_cast<Word>(in[v * p.input_words + i]);
    }
    runner.run(row);
    for (const ArenaProbe& pr : probes) out.push_back(runner.bit(pr.word, pr.bit));
  }
  return out;
}

struct CompiledCase {
  const char* engine;
  Program program;
  std::vector<ArenaProbe> probes;
};

std::vector<CompiledCase> compile_all(const Netlist& nl) {
  std::vector<CompiledCase> cases;
  {
    CompiledCase c{.engine = "lcc"};
    LccCompiled lcc = compile_lcc(nl);
    for (NetId po : nl.primary_outputs()) c.probes.push_back({lcc.net_var[po.value], 0});
    c.program = std::move(lcc.program);
    cases.push_back(std::move(c));
  }
  {
    CompiledCase c{.engine = "pcset"};
    PCSetCompiled pc = compile_pcset(nl);
    for (NetId po : nl.primary_outputs()) c.probes.push_back({pc.final_var(po), 0});
    c.program = std::move(pc.program);
    cases.push_back(std::move(c));
  }
  {
    CompiledCase c{.engine = "parallel-combined"};
    ParallelCompiled par = compile_parallel(
        nl, {.trimming = true, .shift_elim = ShiftElim::PathTracing});
    for (NetId po : nl.primary_outputs()) {
      const auto pr = par.final_probe(po);
      c.probes.push_back({pr.word, pr.bit});
    }
    c.program = std::move(par.program);
    cases.push_back(std::move(c));
  }
  return cases;
}

/// Interrupt a run mid-shard via an injected deadline overrun, round-trip
/// the checkpoint through the wire format, resume on a fresh runner, and
/// demand the combined output equal the uninterrupted sequential replay.
template <class Word>
void expect_resume_bit_identical(const CompiledCase& c,
                                 const std::vector<std::uint64_t>& in,
                                 std::size_t count,
                                 const std::vector<Bit>& expect, unsigned nt,
                                 const char* circuit) {
  const BatchOptions base{.num_threads = nt, .min_chunk = 8};
  std::size_t shards = 0;
  {
    BatchRunner probe_runner(c.program, c.probes, base);
    shards = probe_runner.shard_count(count);
  }
  // Stop the last shard a vector after its seam: exercises the mid-stream
  // arena capture, and with nt > 1 leaves earlier shards complete.
  const std::size_t quot = count / shards;
  const std::size_t rem = count % shards;
  const std::size_t s = shards - 1;
  const std::size_t begin = s * quot + std::min(s, rem);
  FaultInjector inject(7);
  inject.add_site({FaultSite::DeadlineOverrun, s, begin + 1, 0});

  BatchOptions interrupted = base;
  interrupted.inject = &inject;
  BatchRunner first(c.program, c.probes, interrupted);
  ResilientBatch stopped = first.run_resilient(in, count);
  ASSERT_EQ(stopped.status, RunStatus::DeadlineExpired)
      << circuit << "/" << c.engine << " nt=" << nt;
  ASSERT_LT(stopped.vectors_done, count);
  ASSERT_GT(stopped.vectors_done, 0u);

  // Wire round-trip: what resumes is what a process restart would see.
  const std::string bytes = checkpoint_to_bytes(stopped.checkpoint);
  const BatchCheckpoint reloaded = checkpoint_from_bytes(bytes);
  ASSERT_EQ(reloaded.vectors_done(), stopped.checkpoint.vectors_done());

  BatchRunner second(c.program, c.probes, base);
  ResilientBatch resumed = second.run_resilient(in, count, &reloaded);
  ASSERT_EQ(resumed.status, RunStatus::Complete);
  EXPECT_EQ(resumed.vectors_done, count);
  ASSERT_EQ(resumed.values, expect)
      << circuit << "/" << c.engine << " resumed run differs at nt=" << nt;
}

TEST(CheckpointResume, BitIdenticalForEveryProfileEngineAndThreadCount) {
  for (const IscasProfile& profile : iscas85_profiles()) {
    const Netlist nl = make_iscas85_like(profile.name, 3);
    const std::size_t pis = nl.primary_inputs().size();
    const std::size_t count = 60;
    const auto in = random_inputs(pis, count, 0xC0FFEE ^ profile.gates);
    for (const CompiledCase& c : compile_all(nl)) {
      const auto expect =
          sequential_replay<std::uint32_t>(c.program, c.probes, in, count);
      for (unsigned nt : {1u, 2u, 5u}) {
        expect_resume_bit_identical<std::uint32_t>(c, in, count, expect, nt,
                                                   profile.name.c_str());
      }
    }
  }
}

TEST(CheckpointResume, SixtyFourBitWordPrograms) {
  const Netlist nl = make_iscas85_like("c432", 5);
  const std::size_t count = 60;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 99);
  ParallelCompiled par = compile_parallel(nl, {.word_bits = 64});
  CompiledCase c{.engine = "parallel64"};
  for (NetId po : nl.primary_outputs()) {
    const auto pr = par.final_probe(po);
    c.probes.push_back({pr.word, pr.bit});
  }
  c.program = std::move(par.program);
  const auto expect =
      sequential_replay<std::uint64_t>(c.program, c.probes, in, count);
  for (unsigned nt : {1u, 2u, 5u}) {
    expect_resume_bit_identical<std::uint64_t>(c, in, count, expect, nt, "c432");
  }
}

// ---- durability ------------------------------------------------------------

/// A small real checkpoint (mid-stream arena, completed rows, several
/// shards) to fuzz the wire format with.
BatchCheckpoint sample_checkpoint() {
  RandomDagParams p;
  p.name = "ck";
  p.inputs = 6;
  p.outputs = 4;
  p.gates = 60;
  p.depth = 6;
  p.seed = 17;
  const Netlist nl = random_dag(p);
  LccCompiled lcc = compile_lcc(nl);
  std::vector<ArenaProbe> probes;
  for (NetId po : nl.primary_outputs()) probes.push_back({lcc.net_var[po.value], 0});
  const std::size_t count = 40;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 4);
  FaultInjector inject(1);
  inject.add_site({FaultSite::DeadlineOverrun, 2, 25, 0});
  BatchRunner runner(lcc.program, probes,
                     BatchOptions{.num_threads = 4, .min_chunk = 4,
                                  .inject = &inject});
  ResilientBatch stopped = runner.run_resilient(in, count);
  EXPECT_EQ(stopped.status, RunStatus::DeadlineExpired);
  return stopped.checkpoint;
}

TEST(CheckpointWire, RoundTripPreservesEveryField) {
  const BatchCheckpoint ck = sample_checkpoint();
  const BatchCheckpoint re = checkpoint_from_bytes(checkpoint_to_bytes(ck));
  EXPECT_EQ(re.word_bits, ck.word_bits);
  EXPECT_EQ(re.arena_words, ck.arena_words);
  EXPECT_EQ(re.input_words, ck.input_words);
  EXPECT_EQ(re.probe_count, ck.probe_count);
  EXPECT_EQ(re.num_vectors, ck.num_vectors);
  ASSERT_EQ(re.shards.size(), ck.shards.size());
  for (std::size_t i = 0; i < ck.shards.size(); ++i) {
    EXPECT_EQ(re.shards[i].begin, ck.shards[i].begin);
    EXPECT_EQ(re.shards[i].end, ck.shards[i].end);
    EXPECT_EQ(re.shards[i].next, ck.shards[i].next);
    EXPECT_EQ(re.shards[i].arena, ck.shards[i].arena);
    EXPECT_EQ(re.shards[i].rows, ck.shards[i].rows);
  }
  EXPECT_EQ(re.vectors_done(), ck.vectors_done());
  EXPECT_FALSE(re.complete());
}

TEST(CheckpointWire, StreamVariantsMatchByteVariants) {
  const BatchCheckpoint ck = sample_checkpoint();
  std::ostringstream out;
  save_checkpoint(out, ck);
  EXPECT_EQ(out.str(), checkpoint_to_bytes(ck));
  std::istringstream in(out.str());
  const BatchCheckpoint re = load_checkpoint(in);
  EXPECT_EQ(re.num_vectors, ck.num_vectors);
  EXPECT_EQ(re.vectors_done(), ck.vectors_done());
}

TEST(CheckpointWire, EveryTruncationIsAStructuredError) {
  const std::string bytes = checkpoint_to_bytes(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)checkpoint_from_bytes(bytes.substr(0, len)),
                 CheckpointError)
        << "prefix length " << len << " of " << bytes.size();
  }
}

TEST(CheckpointWire, EverySingleByteFlipIsAStructuredError) {
  const std::string bytes = checkpoint_to_bytes(sample_checkpoint());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    EXPECT_THROW((void)checkpoint_from_bytes(mutated), CheckpointError)
        << "flip at offset " << i;
  }
}

TEST(CheckpointWire, TrailingGarbageIsRejected) {
  const std::string bytes = checkpoint_to_bytes(sample_checkpoint());
  EXPECT_THROW((void)checkpoint_from_bytes(bytes + '\0'), CheckpointError);
}

TEST(CheckpointWire, VersionSkewIsUnsupportedVersion) {
  std::string bytes = checkpoint_to_bytes(sample_checkpoint());
  // Offset 4: the version u32 follows the magic.
  bytes[4] = static_cast<char>(BatchCheckpoint::kVersion + 1);
  try {
    (void)checkpoint_from_bytes(bytes);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::UnsupportedVersion);
    EXPECT_EQ(checkpoint_error_name(e.kind()), "unsupported-version");
  }
}

TEST(CheckpointWire, NotACheckpointIsBadMagic) {
  try {
    (void)checkpoint_from_bytes("this is not a checkpoint, sorry");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::BadMagic);
  }
}

TEST(CheckpointResume, GeometryMismatchIsStructuredNotWrong) {
  RandomDagParams p;
  p.name = "geo";
  p.inputs = 5;
  p.outputs = 3;
  p.gates = 40;
  p.depth = 5;
  p.seed = 23;
  const Netlist nl = random_dag(p);
  LccCompiled lcc = compile_lcc(nl);
  std::vector<ArenaProbe> probes;
  for (NetId po : nl.primary_outputs()) probes.push_back({lcc.net_var[po.value], 0});
  const std::size_t count = 32;
  const auto in = random_inputs(nl.primary_inputs().size(), count, 6);
  FaultInjector inject(2);
  inject.add_site({FaultSite::DeadlineOverrun, 0, 10, 0});
  BatchRunner runner(lcc.program, probes,
                     BatchOptions{.num_threads = 2, .min_chunk = 4,
                                  .inject = &inject});
  const ResilientBatch stopped = runner.run_resilient(in, count);
  ASSERT_NE(stopped.status, RunStatus::Complete);

  const auto expect_geometry = [&](BatchRunner& r, std::size_t n) {
    try {
      (void)r.run_resilient(in, n, &stopped.checkpoint);
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.kind(), CheckpointError::Kind::Geometry) << e.what();
    }
  };
  // Different vector count.
  BatchRunner same(lcc.program, probes,
                   BatchOptions{.num_threads = 2, .min_chunk = 4});
  expect_geometry(same, count - 8);
  // Different shard boundaries (thread count changed).
  BatchRunner other(lcc.program, probes,
                    BatchOptions{.num_threads = 4, .min_chunk = 4});
  expect_geometry(other, count);
}

}  // namespace
}  // namespace udsim
