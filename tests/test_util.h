// Shared fixtures: the paper's example networks and waveform comparators.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/waveform.h"
#include "netlist/netlist.h"

namespace udsim::test {

/// Paper Figs. 2/4/10: A,B -> AND -> D; D,C -> AND -> E.
inline Netlist fig4_network() {
  Netlist nl("fig4");
  const NetId a = nl.add_net("A");
  const NetId b = nl.add_net("B");
  const NetId c = nl.add_net("C");
  const NetId d = nl.add_net("D");
  const NetId e = nl.add_net("E");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  nl.add_gate(GateType::And, {a, b}, d);
  nl.add_gate(GateType::And, {d, c}, e);
  nl.mark_primary_output(e);
  return nl;
}

/// Paper Fig. 11: A -> NOT -> B; A,B -> AND -> C. Requires one shift.
inline Netlist fig11_network() {
  Netlist nl("fig11");
  const NetId a = nl.add_net("A");
  const NetId b = nl.add_net("B");
  const NetId c = nl.add_net("C");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Not, {a}, b);
  nl.add_gate(GateType::And, {a, b}, c);
  nl.mark_primary_output(c);
  return nl;
}

/// Reconvergent fanout along paths of unequal length (the situation behind
/// paper Figs. 11-12): A reaches the output gate through a `long_len`-gate
/// chain and through a single inverter; the resulting undirected cycle has
/// weight long_len - 1, so at least one shift must be retained.
inline Netlist unbalanced_reconvergence(int long_len = 3) {
  Netlist nl("unbal");
  const NetId a = nl.add_net("A");
  nl.mark_primary_input(a);
  NetId cur = a;
  for (int i = 0; i < long_len; ++i) {
    const NetId nxt = nl.add_net("N" + std::to_string(i));
    nl.add_gate(GateType::Buf, {cur}, nxt);
    cur = nxt;
  }
  const NetId m = nl.add_net("M");
  nl.add_gate(GateType::Not, {a}, m);
  const NetId out = nl.add_net("OUT");
  nl.add_gate(GateType::And, {cur, m}, out);
  nl.mark_primary_output(out);
  return nl;
}

/// XOR chain: every net glitches a lot; good for hazard tests.
inline Netlist xor_chain(int len) {
  Netlist nl("xchain");
  const NetId a = nl.add_net("A");
  const NetId b = nl.add_net("B");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  NetId cur = a;
  for (int i = 0; i < len; ++i) {
    const NetId nxt = nl.add_net("X" + std::to_string(i));
    nl.add_gate(GateType::Xor, {cur, b}, nxt);
    cur = nxt;
  }
  nl.mark_primary_output(cur);
  return nl;
}

/// Wired-AND example: two drivers onto one net.
inline Netlist wired_network(WiredKind kind = WiredKind::And) {
  Netlist nl("wired");
  const NetId a = nl.add_net("A");
  const NetId b = nl.add_net("B");
  const NetId c = nl.add_net("C");
  const NetId w = nl.add_net("W");
  const NetId o = nl.add_net("O");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  nl.set_wired(w, kind);
  nl.add_gate(GateType::And, {a, b}, w);
  nl.add_gate(GateType::Not, {c}, w);
  nl.add_gate(GateType::Or, {w, a}, o);
  nl.mark_primary_output(o);
  return nl;
}

}  // namespace udsim::test
