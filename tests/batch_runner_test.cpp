// Batch-layer determinism properties: BatchRunner output is bit-identical
// for every thread count and equal to a sequential KernelRunner replay, over
// random DAGs with fixed seeds — the guarantee DESIGN.md §5c states.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/batch_runner.h"
#include "core/simulator.h"
#include "core/thread_pool.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {
namespace {

std::vector<unsigned> thread_counts() {
  return {1u, 2u, 5u, ThreadPool::hardware_threads()};
}

Netlist test_dag(std::uint64_t seed, int max_delay = 1) {
  RandomDagParams p;
  p.name = "batch" + std::to_string(seed);
  p.inputs = 8;
  p.outputs = 6;
  p.gates = 150;
  p.depth = 10;
  p.seed = seed;
  p.reach = 1.6;
  p.max_delay = max_delay;
  return random_dag(p);
}

/// Row-major uint64 input matrix: one 0/1 word per PI per vector.
std::vector<std::uint64_t> random_inputs(std::size_t pis, std::size_t count,
                                         std::uint64_t seed) {
  RandomVectorSource src(pis, seed);
  std::vector<Bit> row(pis);
  std::vector<std::uint64_t> in(pis * count);
  for (std::size_t v = 0; v < count; ++v) {
    src.next(row);
    for (std::size_t i = 0; i < pis; ++i) in[v * pis + i] = row[i];
  }
  return in;
}

template <class Word>
std::vector<Bit> sequential_replay(const Program& p,
                                   const std::vector<ArenaProbe>& probes,
                                   const std::vector<std::uint64_t>& in,
                                   std::size_t count) {
  KernelRunner<Word> runner(p);
  std::vector<Word> row(p.input_words);
  std::vector<Bit> out;
  out.reserve(count * probes.size());
  for (std::size_t v = 0; v < count; ++v) {
    for (std::size_t i = 0; i < p.input_words; ++i) {
      row[i] = static_cast<Word>(in[v * p.input_words + i]);
    }
    runner.run(row);
    for (const ArenaProbe& pr : probes) out.push_back(runner.bit(pr.word, pr.bit));
  }
  return out;
}

template <class Word>
void expect_batch_matches_sequential(const Program& program,
                                     const std::vector<ArenaProbe>& probes,
                                     const Netlist& nl, std::size_t count,
                                     std::uint64_t vec_seed,
                                     const char* what) {
  const auto in = random_inputs(nl.primary_inputs().size(), count, vec_seed);
  const auto expect = sequential_replay<Word>(program, probes, in, count);
  for (unsigned nt : thread_counts()) {
    BatchRunner batch(program, probes, BatchOptions{.num_threads = nt});
    const auto got = batch.run(in, count);
    ASSERT_EQ(expect, got) << what << " differs from sequential replay at "
                           << nt << " threads (" << nl.name() << ")";
  }
}

std::vector<ArenaProbe> parallel_probes(const ParallelCompiled& c,
                                        const Netlist& nl) {
  std::vector<ArenaProbe> probes;
  for (NetId po : nl.primary_outputs()) {
    const auto pr = c.final_probe(po);
    probes.push_back({pr.word, pr.bit});
  }
  return probes;
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable after a failed batch.
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 8);
}

TEST(BatchRunner, ParallelVariantsBitIdenticalAcrossThreadCounts) {
  const ParallelOptions variants[] = {
      {},
      {.trimming = true},
      {.shift_elim = ShiftElim::PathTracing},
      {.shift_elim = ShiftElim::CycleBreaking},
      {.trimming = true, .shift_elim = ShiftElim::PathTracing},
  };
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const Netlist nl = test_dag(seed);
    for (const ParallelOptions& opt : variants) {
      const ParallelCompiled c = compile_parallel(nl, opt);
      expect_batch_matches_sequential<std::uint32_t>(
          c.program, parallel_probes(c, nl), nl, 257, seed * 977,
          "parallel program");
    }
  }
}

TEST(BatchRunner, PCSetProgramBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    const Netlist nl = test_dag(seed);
    const PCSetCompiled c = compile_pcset(nl);
    std::vector<ArenaProbe> probes;
    for (NetId po : nl.primary_outputs()) probes.push_back({c.final_var(po), 0});
    expect_batch_matches_sequential<std::uint32_t>(c.program, probes, nl, 201,
                                                   seed * 977, "PC-set program");
  }
}

TEST(BatchRunner, LccProgramBitIdenticalAcrossThreadCounts) {
  const Netlist nl = test_dag(31);
  const LccCompiled c = compile_lcc(nl);
  std::vector<ArenaProbe> probes;
  for (NetId po : nl.primary_outputs()) probes.push_back({c.net_var[po.value], 0});
  expect_batch_matches_sequential<std::uint32_t>(c.program, probes, nl, 130,
                                                 7777, "LCC program");
}

TEST(BatchRunner, MultiDelayProgramBitIdenticalAcrossThreadCounts) {
  const Netlist nl = test_dag(41, /*max_delay=*/3);
  const ParallelCompiled c = compile_parallel(nl, {.trimming = true});
  expect_batch_matches_sequential<std::uint32_t>(
      c.program, parallel_probes(c, nl), nl, 160, 4141, "multi-delay program");
}

TEST(BatchRunner, SixtyFourBitWordProgram) {
  const Netlist nl = test_dag(51);
  const ParallelCompiled c = compile_parallel(nl, {.word_bits = 64});
  ASSERT_EQ(c.program.word_bits, 64);
  expect_batch_matches_sequential<std::uint64_t>(
      c.program, parallel_probes(c, nl), nl, 97, 5151, "64-bit program");
}

TEST(BatchRunner, EdgeCaseVectorCounts) {
  const Netlist nl = test_dag(61);
  const ParallelCompiled c = compile_parallel(nl, {});
  const auto probes = parallel_probes(c, nl);
  BatchRunner batch(c.program, probes, BatchOptions{.num_threads = 5});
  // Zero vectors: empty result, no shards.
  EXPECT_TRUE(batch.run({}, 0).empty());
  EXPECT_EQ(batch.shard_count(0), 0u);
  // Fewer vectors than threads, including exactly one.
  for (std::size_t count : {std::size_t{1}, std::size_t{3}}) {
    const auto in = random_inputs(nl.primary_inputs().size(), count, 616);
    EXPECT_EQ(batch.run(in, count),
              (sequential_replay<std::uint32_t>(c.program, probes, in, count)));
  }
  // min_chunk keeps shards from shrinking below a replay-worthy size.
  BatchRunner coarse(c.program, probes,
                     BatchOptions{.num_threads = 8, .min_chunk = 100});
  EXPECT_EQ(coarse.shard_count(150), 2u);
  EXPECT_EQ(coarse.shard_count(99), 1u);
  EXPECT_LE(batch.shard_count(1000), 5u);
}

TEST(BatchRunner, RejectsMalformedRequests) {
  const Netlist nl = test_dag(71);
  const ParallelCompiled c = compile_parallel(nl, {});
  EXPECT_THROW(BatchRunner(c.program, {{c.program.arena_words, 0}}),
               std::invalid_argument);
  EXPECT_THROW(BatchRunner(c.program, {{0, 32}}), std::invalid_argument);
  BatchRunner batch(c.program, parallel_probes(c, nl));
  const auto in = random_inputs(nl.primary_inputs().size(), 2, 1);
  EXPECT_THROW((void)batch.run(in, 3), std::invalid_argument);
}

TEST(SimulatorFacade, RunBatchMatchesStepReplayForEveryEngine) {
  constexpr EngineKind kAll[] = {
      EngineKind::Event2,        EngineKind::Event3,
      EngineKind::PCSet,         EngineKind::Parallel,
      EngineKind::ParallelTrimmed, EngineKind::ParallelPathTracing,
      EngineKind::ParallelCycleBreaking, EngineKind::ParallelCombined,
      EngineKind::ZeroDelayLcc,
  };
  const Netlist nl = test_dag(81);
  const std::size_t pis = nl.primary_inputs().size();
  const std::size_t count = 40;
  RandomVectorSource src(pis, 818);
  std::vector<Bit> flat(pis * count);
  for (std::size_t v = 0; v < count; ++v) {
    src.next(std::span<Bit>(flat.data() + v * pis, pis));
  }
  for (EngineKind kind : kAll) {
    const auto sim = make_simulator(nl, kind);
    const BatchResult r = sim->run_batch(flat, 3);
    ASSERT_EQ(r.vectors, count);
    ASSERT_EQ(r.outputs, nl.primary_outputs());
    ASSERT_EQ(&sim->netlist(), &nl);
    const auto replay = make_simulator(nl, kind);
    for (std::size_t v = 0; v < count; ++v) {
      replay->step(std::span<const Bit>(flat.data() + v * pis, pis));
      for (std::size_t o = 0; o < r.outputs.size(); ++o) {
        ASSERT_EQ(r.value(v, o), replay->final_value(r.outputs[o]))
            << engine_name(kind) << " vector " << v << " output " << o;
      }
    }
    // run_batch starts from the reset state and must ignore (and preserve)
    // the instance's incremental step() state.
    sim->step(std::span<const Bit>(flat.data(), pis));
    const BatchResult again = sim->run_batch(flat, 2);
    EXPECT_EQ(r.values, again.values) << engine_name(kind);
  }
}

TEST(SimulatorFacade, RunBatchRejectsRaggedStream) {
  const Netlist nl = test_dag(91);
  const auto sim = make_simulator(nl, EngineKind::Parallel);
  const std::vector<Bit> ragged(nl.primary_inputs().size() + 1, 0);
  EXPECT_THROW((void)sim->run_batch(ragged, 1), std::invalid_argument);
}

}  // namespace
}  // namespace udsim
