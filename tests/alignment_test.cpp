// Shift-elimination alignment tests (paper §4, Figs. 10-18).
#include <gtest/gtest.h>

#include "analysis/alignment.h"
#include "gen/iscas_profiles.h"
#include "gen/random_dag.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Alignment, UnoptimizedRetainsOneShiftPerGate) {
  const Netlist nl = test::fig4_network();
  const Levelization lv = levelize(nl);
  const AlignmentPlan plan = align_unoptimized(nl, lv);
  const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
  EXPECT_EQ(st.retained_shift_sites, nl.real_gate_count());
  EXPECT_EQ(st.left_shift_sites, nl.real_gate_count());
  check_alignment_plan(nl, lv, plan);
}

TEST(Alignment, Fig10PathTracingEliminatesAllShifts) {
  // Paper Fig. 10: E aligned to 1, C/D to 0, A/B to -1; zero shifts; width 2.
  const Netlist nl = test::fig4_network();
  const Levelization lv = levelize(nl);
  const AlignmentPlan plan = align_path_tracing(nl, lv);
  check_alignment_plan(nl, lv, plan);
  EXPECT_EQ(plan.net_align[nl.find_net("E")->value], 1);
  EXPECT_EQ(plan.net_align[nl.find_net("D")->value], 0);
  EXPECT_EQ(plan.net_align[nl.find_net("C")->value], 0);
  EXPECT_EQ(plan.net_align[nl.find_net("A")->value], -1);
  EXPECT_EQ(plan.net_align[nl.find_net("B")->value], -1);
  const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
  EXPECT_EQ(st.retained_shift_sites, 0u);
  // "it is also possible to reduce the width of the bit-fields from 3 to 2"
  EXPECT_EQ(st.max_width_bits, 2);
}

TEST(Alignment, Fig11RequiresExactlyOneShift) {
  const Netlist nl = test::fig11_network();
  const Levelization lv = levelize(nl);
  for (const AlignmentPlan& plan :
       {align_path_tracing(nl, lv), align_cycle_breaking(nl, lv)}) {
    check_alignment_plan(nl, lv, plan);
    const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
    EXPECT_EQ(st.retained_shift_sites, 1u);
  }
}

TEST(Alignment, UnbalancedReconvergenceMultiBitShift) {
  // Paths of length k+1 and 2 reconverge: the undirected cycle has weight
  // k-1, so k-1 bits of shift must survive somewhere (paper §4: "shifts are
  // no longer restricted to one bit").
  for (int k : {2, 3, 5}) {
    const Netlist nl = test::unbalanced_reconvergence(k);
    const Levelization lv = levelize(nl);
    for (auto [plan, label] :
         {std::pair{align_path_tracing(nl, lv), "pt"},
          std::pair{align_cycle_breaking(nl, lv), "cb"}}) {
      check_alignment_plan(nl, lv, plan);
      int total_input_shift = 0;
      for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
        const Gate& g = nl.gate(GateId{gi});
        for (NetId in : g.inputs) {
          total_input_shift += std::abs(plan.input_shift(nl, GateId{gi}, in));
        }
        total_input_shift += std::abs(plan.output_shift(nl, GateId{gi}));
      }
      // The cycle weight is conserved: total retained shift magnitude along
      // the cycle equals the path-length difference k - 1.
      EXPECT_EQ(total_input_shift, k - 1) << label << " k=" << k;
      const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
      EXPECT_GE(st.retained_shift_sites, 1u) << label << " k=" << k;
    }
  }
}

TEST(Alignment, PathTracingNeverExpandsBitField) {
  for (const char* name : {"c432", "c880", "c1908"}) {
    const Netlist nl = make_iscas85_like(name);
    const Levelization lv = levelize(nl);
    const AlignmentPlan plan = align_path_tracing(nl, lv);
    check_alignment_plan(nl, lv, plan);
    const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
    EXPECT_LE(st.max_width_bits, lv.depth + 1) << name;
    // Only right shifts.
    EXPECT_EQ(st.left_shift_sites, 0u) << name;
  }
}

TEST(Alignment, PathTracingFanoutFreeRegionsShiftFree) {
  // "any fanout-free region of the circuit will be simulated without
  // shifts": a pure tree retains no shifts at all.
  Netlist nl("tree");
  std::vector<NetId> leaves;
  for (int i = 0; i < 8; ++i) {
    const NetId n = nl.add_net("i" + std::to_string(i));
    nl.mark_primary_input(n);
    leaves.push_back(n);
  }
  int id = 0;
  while (leaves.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      const NetId o = nl.add_net("t" + std::to_string(id++));
      nl.add_gate(GateType::Nand, {leaves[i], leaves[i + 1]}, o);
      next.push_back(o);
    }
    leaves = std::move(next);
  }
  nl.mark_primary_output(leaves[0]);
  const Levelization lv = levelize(nl);
  const AlignmentPlan plan = align_path_tracing(nl, lv);
  const AlignmentStats st = alignment_stats(nl, lv, plan, 32);
  EXPECT_EQ(st.retained_shift_sites, 0u);
}

TEST(Alignment, CycleBreakingLegalOnProfiles) {
  for (const char* name : {"c432", "c499", "c880"}) {
    const Netlist nl = make_iscas85_like(name);
    const Levelization lv = levelize(nl);
    const AlignmentPlan plan = align_cycle_breaking(nl, lv);
    EXPECT_NO_THROW(check_alignment_plan(nl, lv, plan)) << name;
  }
}

TEST(Alignment, PathTracingRetainsFewerShiftsThanUnoptimized) {
  for (const char* name : {"c432", "c880", "c2670"}) {
    const Netlist nl = make_iscas85_like(name);
    const Levelization lv = levelize(nl);
    const AlignmentStats unopt =
        alignment_stats(nl, lv, align_unoptimized(nl, lv), 32);
    const AlignmentStats pt =
        alignment_stats(nl, lv, align_path_tracing(nl, lv), 32);
    EXPECT_LT(pt.retained_shift_sites, unopt.retained_shift_sites) << name;
  }
}

TEST(Alignment, DeadLogicStillGetsLegalAlignments) {
  // A net that reaches no primary output must still be aligned legally.
  Netlist nl("dead");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId live = nl.add_net("live");
  nl.add_gate(GateType::Not, {a}, live);
  nl.mark_primary_output(live);
  const NetId dead1 = nl.add_net("dead1");
  nl.add_gate(GateType::Buf, {a}, dead1);
  const NetId dead2 = nl.add_net("dead2");
  nl.add_gate(GateType::And, {dead1, a}, dead2);  // no fanout, not a PO
  const Levelization lv = levelize(nl);
  const AlignmentPlan plan = align_path_tracing(nl, lv);
  EXPECT_NO_THROW(check_alignment_plan(nl, lv, plan));
  EXPECT_LE(plan.net_align[dead2.value], lv.minlevel(dead2));
}

}  // namespace
}  // namespace udsim
