// PC-set method tests: generated-code shape (paper Fig. 4), full waveform
// agreement with the oracle, the PRINT output routine, and the
// data-parallel multi-stream mode.
#include <gtest/gtest.h>

#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "ir/c_emitter.h"
#include "oracle/oracle.h"
#include "pcsim/pcset_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(PCSetSim, Fig4GeneratedCode) {
  const Netlist nl = test::fig4_network();
  const NetId mon[] = {*nl.find_net("E")};
  const PCSetCompiled c = compile_pcset(nl, mon);
  // Variables: A_0 B_0 C_0 D_0 D_1 E_1 E_2 (paper Fig. 4).
  EXPECT_EQ(c.variable_count, 7u);
  CEmitOptions opts;
  opts.comments = false;
  std::vector<std::string> stmts;
  for (const Op& op : c.program.ops) stmts.push_back(op_to_c(c.program, op, opts));
  // First statement is the retained-value init D_0 = D_1.
  const auto var = [&](const char* name) {
    for (std::uint32_t i = 0; i < c.program.names.size(); ++i) {
      if (c.program.names[i] == name) return i;
    }
    ADD_FAILURE() << "no variable " << name;
    return 0u;
  };
  ASSERT_EQ(stmts.size(), 7u);  // 1 init + 3 loads + 3 gate sims
  EXPECT_EQ(stmts[0], "udsim_arena[" + std::to_string(var("D_0")) +
                          "] = udsim_arena[" + std::to_string(var("D_1")) + "];");
  // Gate sims: D_1 = A_0 & B_0; E_1 = D_0 & C_0; E_2 = D_1 & C_0.
  EXPECT_NE(std::find(stmts.begin(), stmts.end(),
                      "udsim_arena[" + std::to_string(var("E_1")) +
                          "] = udsim_arena[" + std::to_string(var("D_0")) +
                          "] & udsim_arena[" + std::to_string(var("C_0")) + "];"),
            stmts.end());
  EXPECT_NE(std::find(stmts.begin(), stmts.end(),
                      "udsim_arena[" + std::to_string(var("E_2")) +
                          "] = udsim_arena[" + std::to_string(var("D_1")) +
                          "] & udsim_arena[" + std::to_string(var("C_0")) + "];"),
            stmts.end());
}

TEST(PCSetSim, MonitoredWaveformMatchesOracle) {
  RandomDagParams p;
  p.inputs = 12;
  p.gates = 170;
  p.depth = 13;
  p.seed = 23;
  p.reach = 2.0;
  const Netlist nl = random_dag(p);
  // Monitor everything: zero insertion then makes every net's history
  // reconstructible at every time.
  std::vector<NetId> all;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) all.push_back(NetId{n});
  OracleSim oracle(nl);
  PCSetSim<> sim(nl, all);
  RandomVectorSource src(nl.primary_inputs().size(), 9);
  std::vector<Bit> v(nl.primary_inputs().size());
  // Warm-up: value_at reconstructs history only from PC-time variables,
  // which presumes a settled previous state.
  src.next(v);
  (void)oracle.step(v);
  sim.step(v);
  for (int i = 0; i < 25; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      for (int t = 0; t <= oracle.depth(); ++t) {
        ASSERT_EQ(sim.value_at(NetId{n}, t), wf.at(NetId{n}, t))
            << nl.net(NetId{n}).name << " t=" << t << " vector " << i;
      }
    }
  }
}

TEST(PCSetSim, PrintRoutineProducesOutputHistory) {
  const Netlist nl = test::fig4_network();
  const NetId e = *nl.find_net("E");
  const NetId mon[] = {e};
  const PCSetCompiled c = compile_pcset(nl, mon);
  // E's PC-set is {1,2}: two output vectors per input vector.
  EXPECT_EQ(c.print_times, (std::vector<int>{1, 2}));
  ASSERT_EQ(c.print_vars.size(), 2u);
  PCSetSim<> sim(nl, mon);
  OracleSim oracle(nl);
  RandomVectorSource src(3, 14);
  std::vector<Bit> v(3);
  src.next(v);
  (void)oracle.step(v);
  sim.step(v);
  for (int i = 0; i < 10; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    for (std::size_t k = 0; k < c.print_times.size(); ++k) {
      EXPECT_EQ(sim.value_at(e, c.print_times[k]), wf.at(e, c.print_times[k]));
    }
  }
}

TEST(PCSetSim, CodeSizeTracksTotalPCSetSize) {
  // "one gate-simulation is generated for each element of the gate's
  // PC-set": op count grows with the total PC-set size, not gate count.
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 100;
  p.depth = 10;
  p.seed = 2;
  p.reach = 0.2;
  const Netlist narrow = random_dag(p);
  p.reach = 3.0;
  p.seed = 3;
  const Netlist wide = random_dag(p);
  const auto ops_per_gate = [](const Netlist& nl) {
    const PCSetCompiled c = compile_pcset(nl);
    return static_cast<double>(c.program.size()) /
           static_cast<double>(nl.gate_count());
  };
  EXPECT_GT(ops_per_gate(wide), ops_per_gate(narrow));
}

TEST(PCSetSim, DataParallelLanesMatchScalarStreams) {
  RandomDagParams p;
  p.inputs = 8;
  p.gates = 90;
  p.depth = 9;
  p.seed = 6;
  const Netlist nl = random_dag(p);
  const PCSetCompiled c = compile_pcset(nl, {}, /*packed=*/true);
  KernelRunner<std::uint32_t> packed(c.program);
  std::vector<std::unique_ptr<PCSetSim<>>> scalars;
  for (int l = 0; l < 32; ++l) {
    scalars.push_back(std::make_unique<PCSetSim<>>(nl));
  }
  RandomVectorSource src(nl.primary_inputs().size(), 16);
  std::vector<Bit> lane_v(nl.primary_inputs().size());
  for (int step = 0; step < 6; ++step) {
    std::vector<std::uint32_t> packed_in(nl.primary_inputs().size(), 0);
    for (unsigned lane = 0; lane < 32; ++lane) {
      src.next(lane_v);
      for (std::size_t i = 0; i < lane_v.size(); ++i) {
        packed_in[i] |= static_cast<std::uint32_t>(lane_v[i] & 1u) << lane;
      }
      scalars[lane]->step(lane_v);
    }
    packed.run(packed_in);
    for (unsigned lane = 0; lane < 32; ++lane) {
      for (NetId po : nl.primary_outputs()) {
        ASSERT_EQ(packed.bit(c.final_var(po), lane), scalars[lane]->final_value(po))
            << "lane " << lane;
      }
    }
  }
}

TEST(PCSetSim, RequiresLoweredWiredNets) {
  const Netlist nl = test::wired_network();
  EXPECT_THROW((void)compile_pcset(nl), NetlistError);
  Netlist low = test::wired_network();
  lower_wired_nets(low);
  EXPECT_NO_THROW((void)compile_pcset(low));
}

TEST(PCSetSim, WiredNetHistoryCorrect) {
  Netlist nl = test::wired_network(WiredKind::And);
  lower_wired_nets(nl);
  std::vector<NetId> all;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) all.push_back(NetId{n});
  OracleSim oracle(nl);
  PCSetSim<> sim(nl, all);
  RandomVectorSource src(3, 44);
  std::vector<Bit> v(3);
  src.next(v);
  (void)oracle.step(v);
  sim.step(v);
  const NetId w = *nl.find_net("W");
  for (int i = 0; i < 12; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    for (int t = 0; t <= oracle.depth(); ++t) {
      ASSERT_EQ(sim.value_at(w, t), wf.at(w, t)) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace udsim
