// Unit tests for two-/three-valued gate evaluation and type names.
#include <gtest/gtest.h>

#include "netlist/logic.h"

namespace udsim {
namespace {

std::vector<Bit> bits(std::initializer_list<int> v) {
  std::vector<Bit> out;
  for (int x : v) out.push_back(static_cast<Bit>(x));
  return out;
}

TEST(Logic, TwoValuedBasicGates) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const auto in = bits({a, b});
      EXPECT_EQ(eval2(GateType::And, in), a & b);
      EXPECT_EQ(eval2(GateType::Or, in), a | b);
      EXPECT_EQ(eval2(GateType::Xor, in), a ^ b);
      EXPECT_EQ(eval2(GateType::Nand, in), 1 - (a & b));
      EXPECT_EQ(eval2(GateType::Nor, in), 1 - (a | b));
      EXPECT_EQ(eval2(GateType::Xnor, in), 1 - (a ^ b));
      EXPECT_EQ(eval2(GateType::WiredAnd, in), a & b);
      EXPECT_EQ(eval2(GateType::WiredOr, in), a | b);
    }
    EXPECT_EQ(eval2(GateType::Not, bits({a})), 1 - a);
    EXPECT_EQ(eval2(GateType::Buf, bits({a})), a);
  }
  EXPECT_EQ(eval2(GateType::Const0, {}), 0);
  EXPECT_EQ(eval2(GateType::Const1, {}), 1);
}

TEST(Logic, TwoValuedNary) {
  EXPECT_EQ(eval2(GateType::And, bits({1, 1, 1, 1})), 1);
  EXPECT_EQ(eval2(GateType::And, bits({1, 1, 0, 1})), 0);
  EXPECT_EQ(eval2(GateType::Nand, bits({1, 1, 1})), 0);
  EXPECT_EQ(eval2(GateType::Or, bits({0, 0, 0})), 0);
  EXPECT_EQ(eval2(GateType::Nor, bits({0, 0, 1})), 0);
  // XOR over n pins is parity.
  EXPECT_EQ(eval2(GateType::Xor, bits({1, 1, 1})), 1);
  EXPECT_EQ(eval2(GateType::Xor, bits({1, 1, 1, 1})), 0);
  EXPECT_EQ(eval2(GateType::Xnor, bits({1, 1, 1, 1})), 1);
  // Degenerate single-pin reductions.
  EXPECT_EQ(eval2(GateType::And, bits({1})), 1);
  EXPECT_EQ(eval2(GateType::Nand, bits({1})), 0);
}

TEST(Logic, ThreeValuedDominance) {
  const Tri x = Tri::X;
  const Tri z = Tri::Zero;
  const Tri o = Tri::One;
  // A controlling value beats X.
  EXPECT_EQ(eval3(GateType::And, std::vector<Tri>{z, x}), z);
  EXPECT_EQ(eval3(GateType::Or, std::vector<Tri>{o, x}), o);
  EXPECT_EQ(eval3(GateType::Nand, std::vector<Tri>{z, x}), o);
  EXPECT_EQ(eval3(GateType::Nor, std::vector<Tri>{o, x}), z);
  // Otherwise X propagates.
  EXPECT_EQ(eval3(GateType::And, std::vector<Tri>{o, x}), x);
  EXPECT_EQ(eval3(GateType::Or, std::vector<Tri>{z, x}), x);
  EXPECT_EQ(eval3(GateType::Xor, std::vector<Tri>{o, x}), x);
  EXPECT_EQ(eval3(GateType::Not, std::vector<Tri>{x}), x);
  EXPECT_EQ(eval3(GateType::Not, std::vector<Tri>{z}), o);
}

TEST(Logic, ThreeValuedAgreesWithTwoValuedOnBinary) {
  const GateType types[] = {GateType::And,  GateType::Or,   GateType::Nand,
                            GateType::Nor,  GateType::Xor,  GateType::Xnor};
  for (GateType t : types) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        for (int c = 0; c <= 1; ++c) {
          const auto in2 = bits({a, b, c});
          const std::vector<Tri> in3 = {static_cast<Tri>(a), static_cast<Tri>(b),
                                        static_cast<Tri>(c)};
          EXPECT_EQ(static_cast<int>(eval3(t, in3)), eval2(t, in2))
              << gate_type_name(t) << " " << a << b << c;
        }
      }
    }
  }
}

TEST(Logic, WordParallelMatchesScalar) {
  const GateType types[] = {GateType::And, GateType::Or,  GateType::Nand,
                            GateType::Nor, GateType::Xor, GateType::Xnor};
  for (GateType t : types) {
    // Pack the 4 two-input combinations into one word, lanes 0..3.
    const std::uint32_t a = 0b0101;
    const std::uint32_t b = 0b0011;
    const std::uint32_t w = eval_word<std::uint32_t>(t, std::vector<std::uint32_t>{a, b});
    for (int lane = 0; lane < 4; ++lane) {
      const auto in = bits({(a >> lane) & 1, (b >> lane) & 1});
      EXPECT_EQ((w >> lane) & 1u, eval2(t, in)) << gate_type_name(t) << lane;
    }
  }
  EXPECT_EQ(eval_word<std::uint32_t>(GateType::Const1, {}), ~0u);
  EXPECT_EQ(eval_word<std::uint32_t>(GateType::Not, std::vector<std::uint32_t>{0x0f0fu}),
            ~0x0f0fu);
}

TEST(Logic, GateDelays) {
  EXPECT_EQ(gate_delay(GateType::And), 1);
  EXPECT_EQ(gate_delay(GateType::Not), 1);
  EXPECT_EQ(gate_delay(GateType::Buf), 1);
  EXPECT_EQ(gate_delay(GateType::WiredAnd), 0);
  EXPECT_EQ(gate_delay(GateType::WiredOr), 0);
}

TEST(Logic, TypeNamesRoundTrip) {
  const GateType all[] = {GateType::And,    GateType::Or,     GateType::Nand,
                          GateType::Nor,    GateType::Xor,    GateType::Xnor,
                          GateType::Not,    GateType::Buf,    GateType::Const0,
                          GateType::Const1, GateType::WiredAnd, GateType::WiredOr,
                          GateType::Dff};
  for (GateType t : all) {
    GateType back{};
    ASSERT_TRUE(parse_gate_type(gate_type_name(t), back));
    EXPECT_EQ(back, t);
  }
  GateType g{};
  EXPECT_TRUE(parse_gate_type("NAND", g));
  EXPECT_EQ(g, GateType::Nand);
  EXPECT_TRUE(parse_gate_type("BUFF", g));  // .bench spelling
  EXPECT_EQ(g, GateType::Buf);
  EXPECT_FALSE(parse_gate_type("tristate", g));
}

}  // namespace
}  // namespace udsim
