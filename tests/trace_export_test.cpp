// Chrome Trace Event export (MetricsRegistry::trace_to_json): the emitted
// document must parse as JSON, carry "X" complete events with pid/tid/ts/dur
// in microseconds, include the compile-phase spans, and — for a
// multi-threaded run_batch — events from at least two distinct thread
// ordinals (the acceptance gate of ISSUE 5).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "analysis/compile_budget.h"
#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace udsim {
namespace {

std::vector<Bit> stream_for(const Netlist& nl, std::size_t vectors) {
  std::vector<Bit> bits(vectors * nl.primary_inputs().size());
  std::uint64_t x = 88172645463325252ull;
  for (auto& b : bits) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  return bits;
}

TEST(TraceExport, EmptyRegistryEmitsValidEmptyDocument) {
  MetricsRegistry reg;
  const JsonValue doc = JsonValue::parse(reg.trace_to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(TraceExport, CompileSpansAreValidCompleteEvents) {
  const Netlist nl = make_iscas85_like("c432");
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);

  const JsonValue doc = JsonValue::parse(reg.trace_to_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());
  std::set<std::string> names;
  for (const JsonValue& e : events.array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_GT(e.at("tid").as_u64(), 0u);
    names.insert(e.at("name").string);
  }
  // The compiler traces its phases through the guard's registry.
  EXPECT_TRUE(names.contains("compile.levelize"));
  EXPECT_TRUE(names.contains("compile.emit"));
}

TEST(TraceExport, TimestampsAreMicrosecondsWithSubMicrosecondDigits) {
  MetricsRegistry reg;
  // 1234567 ns = 1234.567 µs; 500 ns = 0.500 µs.
  reg.record_trace(TraceEvent{"a", 1234567, 1234567, 3, {}});
  reg.record_trace(TraceEvent{"b", 0, 500, 3, {{"k", 7}}});
  const std::string j = reg.trace_to_json();
  EXPECT_NE(j.find("1234.567"), std::string::npos);
  EXPECT_NE(j.find("0.500"), std::string::npos);
  const JsonValue doc = JsonValue::parse(j);
  const JsonValue& b = doc.at("traceEvents").array.at(1);
  EXPECT_DOUBLE_EQ(b.at("dur").as_double(), 0.5);
  EXPECT_EQ(b.at("args").at("k").as_u64(), 7u);
}

// Acceptance gate: a 2-thread run_batch exports a valid Chrome trace whose
// batch.shard events carry >= 2 distinct tids. One pool worker can drain
// both shards on a busy host, so the run retries with fresh pools.
TEST(TraceExport, TwoThreadBatchTraceHasTwoDistinctTids) {
  const Netlist nl = make_iscas85_like("c880");
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  const std::vector<Bit> bits = stream_for(nl, 2048);

  std::set<std::uint64_t> tids;
  for (int attempt = 0; attempt < 20 && tids.size() < 2; ++attempt) {
    reg.clear_trace();
    (void)sim->run_batch(bits, 2);
    const JsonValue doc = JsonValue::parse(reg.trace_to_json());
    tids.clear();
    for (const JsonValue& e : doc.at("traceEvents").array) {
      if (e.at("name").string == "batch.shard") {
        tids.insert(e.at("tid").as_u64());
      }
    }
  }
  EXPECT_GE(tids.size(), 2u);
}

TEST(TraceExport, ClearTraceEmptiesTheBuffer) {
  MetricsRegistry reg;
  { TraceSpan span(&reg, "x"); }
  EXPECT_FALSE(reg.trace_events().empty());
  reg.clear_trace();
  EXPECT_TRUE(reg.trace_events().empty());
  // Counters survive a trace clear.
  EXPECT_EQ(reg.counter("x.calls").value(), 1u);
}

}  // namespace
}  // namespace udsim
