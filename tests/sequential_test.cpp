// Sequential-circuit support tests: flip-flop breaking (paper §1) and
// multi-cycle simulation of the broken core with the compiled engines.
#include <gtest/gtest.h>

#include "gen/rng.h"
#include "gen/iscas_profiles.h"
#include "gen/sequential.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"

namespace udsim {
namespace {

/// Drive a broken sequential core for one clock with engine `sim`:
/// inputs = external PIs followed by register state; returns next state.
template <class Sim>
std::vector<Bit> clock_once(Sim& sim, const Netlist& comb,
                            const std::vector<BrokenRegister>& regs,
                            std::vector<Bit> external, std::vector<Bit> state) {
  std::vector<Bit> v = std::move(external);
  v.insert(v.end(), state.begin(), state.end());
  sim.step(v);
  std::vector<Bit> next;
  next.reserve(regs.size());
  for (const BrokenRegister& r : regs) next.push_back(sim.final_value(r.d));
  (void)comb;
  return next;
}

TEST(Sequential, BreakFlipFlopsMakesAcyclicCore) {
  const Netlist seq = counter(4);
  EXPECT_FALSE(seq.is_acyclic());
  const BrokenCircuit bc = break_flip_flops(seq);
  EXPECT_TRUE(bc.comb.is_acyclic());
  EXPECT_NO_THROW(bc.comb.validate());
  EXPECT_EQ(bc.regs.size(), 4u);
  // q nets became primary inputs, d nets primary outputs.
  for (const BrokenRegister& r : bc.regs) {
    EXPECT_TRUE(bc.comb.net(r.q).is_primary_input);
    EXPECT_TRUE(bc.comb.net(r.d).is_primary_output);
  }
}

TEST(Sequential, CounterCountsThroughLcc) {
  const Netlist seq = counter(4);
  const BrokenCircuit bc = break_flip_flops(seq);
  struct LccAdapter {
    LccSim<> sim;
    explicit LccAdapter(const Netlist& nl) : sim(nl) {}
    void step(std::span<const Bit> v) { sim.step(v); }
    Bit final_value(NetId n) const { return sim.value(n); }
  } sim(bc.comb);

  std::vector<Bit> state(4, 0);
  for (unsigned cycle = 1; cycle <= 20; ++cycle) {
    state = clock_once(sim, bc.comb, bc.regs, {1}, state);
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<unsigned>(state[static_cast<std::size_t>(i)]) << i;
    ASSERT_EQ(value, cycle % 16) << "cycle " << cycle;
  }
  // Disabled: holds.
  const std::vector<Bit> held = clock_once(sim, bc.comb, bc.regs, {0}, state);
  EXPECT_EQ(held, state);
}

TEST(Sequential, CounterThroughParallelTechnique) {
  // The unit-delay engine also works as the per-cycle core; final values
  // after settling are what latch into the registers.
  const Netlist seq = counter(3);
  const BrokenCircuit bc = break_flip_flops(seq);
  struct ParAdapter {
    ParallelSim<> sim;
    explicit ParAdapter(const Netlist& nl) : sim(nl) {}
    void step(std::span<const Bit> v) { sim.step(v); }
    Bit final_value(NetId n) const { return sim.final_value(n); }
  } sim(bc.comb);
  std::vector<Bit> state(3, 0);
  for (unsigned cycle = 1; cycle <= 10; ++cycle) {
    state = clock_once(sim, bc.comb, bc.regs, {1}, state);
    unsigned value = 0;
    for (int i = 0; i < 3; ++i) value |= static_cast<unsigned>(state[static_cast<std::size_t>(i)]) << i;
    ASSERT_EQ(value, cycle % 8);
  }
}

TEST(Sequential, LfsrMatchesSoftwareModel) {
  const int bits = 8;
  const std::vector<int> taps = {8, 6, 5, 4};
  const Netlist seq = lfsr(bits, taps);
  const BrokenCircuit bc = break_flip_flops(seq);
  struct LccAdapter {
    LccSim<> sim;
    explicit LccAdapter(const Netlist& nl) : sim(nl) {}
    void step(std::span<const Bit> v) { sim.step(v); }
    Bit final_value(NetId n) const { return sim.value(n); }
  } sim(bc.comb);

  // Software model: q0 <= xor(taps) ^ seed; qi <= q(i-1).
  std::vector<Bit> state(static_cast<std::size_t>(bits), 0);
  std::vector<Bit> model = state;
  for (int cycle = 0; cycle < 40; ++cycle) {
    const Bit seed_in = cycle == 0 ? 1 : 0;  // kick it out of all-zero
    state = clock_once(sim, bc.comb, bc.regs, {seed_in}, state);
    std::vector<Bit> next(model.size());
    Bit fb = seed_in;
    for (int t : taps) fb = static_cast<Bit>(fb ^ model[static_cast<std::size_t>(t - 1)]);
    next[0] = fb;
    for (int i = 1; i < bits; ++i) next[static_cast<std::size_t>(i)] = model[static_cast<std::size_t>(i - 1)];
    model = next;
    // Register order in regs matches DFF creation order: q0 first.
    std::vector<Bit> got;
    for (std::size_t i = 0; i < bc.regs.size(); ++i) got.push_back(state[i]);
    ASSERT_EQ(got, model) << "cycle " << cycle;
  }
}

TEST(Sequential, SequentialDagBreaksAndRuns) {
  SequentialDagParams p;
  p.inputs = 6;
  p.outputs = 4;
  p.registers = 10;
  p.gates = 120;
  p.depth = 8;
  p.seed = 3;
  const Netlist seq = sequential_dag(p);
  EXPECT_FALSE(seq.is_acyclic());
  EXPECT_EQ(seq.primary_inputs().size(), p.inputs);
  const BrokenCircuit bc = break_flip_flops(seq);
  EXPECT_EQ(bc.regs.size(), p.registers);
  EXPECT_NO_THROW(bc.comb.validate());
  EXPECT_EQ(bc.comb.primary_inputs().size(), p.inputs + p.registers);
}

TEST(Sequential, StateSequenceAgreesAcrossEngines) {
  SequentialDagParams p;
  p.inputs = 5;
  p.outputs = 3;
  p.registers = 8;
  p.gates = 90;
  p.depth = 7;
  p.seed = 9;
  const Netlist seq = sequential_dag(p);
  const BrokenCircuit bc = break_flip_flops(seq);

  LccSim<> lcc(bc.comb);
  ParallelSim<> par(bc.comb);
  Rng rng(2);
  std::vector<Bit> s_lcc(p.registers, 0), s_par(p.registers, 0);
  for (int cycle = 0; cycle < 40; ++cycle) {
    std::vector<Bit> ext(p.inputs);
    for (Bit& x : ext) x = static_cast<Bit>(rng.bit());
    std::vector<Bit> v1 = ext, v2 = ext;
    v1.insert(v1.end(), s_lcc.begin(), s_lcc.end());
    v2.insert(v2.end(), s_par.begin(), s_par.end());
    lcc.step(v1);
    par.step(v2);
    for (std::size_t r = 0; r < p.registers; ++r) {
      s_lcc[r] = lcc.value(bc.regs[r].d);
      s_par[r] = par.final_value(bc.regs[r].d);
    }
    ASSERT_EQ(s_lcc, s_par) << "cycle " << cycle;
    for (NetId po : bc.comb.primary_outputs()) {
      ASSERT_EQ(lcc.value(po), par.final_value(po));
    }
  }
}

class Iscas89Sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(Iscas89Sweep, ProfileBreaksAndSimulates) {
  const Netlist seq = make_iscas89_like(GetParam());
  const Iscas89Profile& p = iscas89_profile(GetParam());
  EXPECT_EQ(seq.primary_inputs().size(), p.inputs);
  EXPECT_EQ(seq.real_gate_count(), p.gates + p.registers);  // DFFs count
  const BrokenCircuit bc = break_flip_flops(seq);
  EXPECT_EQ(bc.regs.size(), p.registers);
  EXPECT_NO_THROW(bc.comb.validate());
  // Drive a few clock cycles with two engines and compare state sequences.
  LccSim<> lcc(bc.comb);
  ParallelSim<> par(bc.comb);
  Rng rng(11);
  std::vector<Bit> s1(p.registers, 0), s2(p.registers, 0);
  for (int cycle = 0; cycle < 6; ++cycle) {
    std::vector<Bit> ext(p.inputs);
    for (Bit& x : ext) x = static_cast<Bit>(rng.bit());
    std::vector<Bit> v1 = ext, v2 = ext;
    v1.insert(v1.end(), s1.begin(), s1.end());
    v2.insert(v2.end(), s2.begin(), s2.end());
    lcc.step(v1);
    par.step(v2);
    for (std::size_t r = 0; r < p.registers; ++r) {
      s1[r] = lcc.value(bc.regs[r].d);
      s2[r] = par.final_value(bc.regs[r].d);
    }
    ASSERT_EQ(s1, s2) << GetParam() << " cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, Iscas89Sweep,
                         ::testing::Values("s27", "s298", "s344", "s386",
                                           "s641", "s1196", "s1488", "s5378"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Sequential, SequentialDagIsDeterministic) {
  SequentialDagParams p;
  p.seed = 77;
  const Netlist a = sequential_dag(p);
  const Netlist b = sequential_dag(p);
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (std::uint32_t g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(GateId{g}).type, b.gate(GateId{g}).type);
  }
}

}  // namespace
}  // namespace udsim
