// Dual-rail compiled three-valued simulation tests.
#include <gtest/gtest.h>

#include "analysis/levelize.h"
#include "gen/random_dag.h"
#include "gen/rng.h"
#include "gen/sequential.h"
#include "lcc/lcc3.h"
#include "test_util.h"

namespace udsim {
namespace {

/// Independent reference: direct three-valued evaluation in topological
/// order with eval3.
std::vector<Tri> tri_evaluate(const Netlist& nl, std::span<const Tri> pi) {
  std::vector<Tri> vals(nl.net_count(), Tri::X);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    vals[nl.primary_inputs()[i].value] = pi[i];
  }
  std::vector<Tri> pins;
  for (GateId g : topological_gate_order(nl)) {
    const Gate& gate = nl.gate(g);
    pins.clear();
    for (NetId in : gate.inputs) pins.push_back(vals[in.value]);
    vals[gate.output.value] = eval3(gate.type, pins);
  }
  return vals;
}

TEST(Lcc3, BinaryInputsMatchTwoValued) {
  const Netlist nl = test::fig4_network();
  Lcc3Sim<> sim(nl);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        const Tri v[] = {static_cast<Tri>(a), static_cast<Tri>(b),
                         static_cast<Tri>(c)};
        sim.step(v);
        EXPECT_EQ(sim.value(*nl.find_net("E")),
                  static_cast<Tri>(a & b & c));
      }
    }
  }
}

TEST(Lcc3, XPropagationAndDominance) {
  const Netlist nl = test::fig4_network();
  Lcc3Sim<> sim(nl);
  // X AND 0 = 0 (controlling value beats X); X AND 1 = X.
  const Tri v1[] = {Tri::X, Tri::Zero, Tri::One};
  sim.step(v1);
  EXPECT_EQ(sim.value(*nl.find_net("D")), Tri::Zero);
  EXPECT_EQ(sim.value(*nl.find_net("E")), Tri::Zero);
  const Tri v2[] = {Tri::X, Tri::One, Tri::One};
  sim.step(v2);
  EXPECT_EQ(sim.value(*nl.find_net("D")), Tri::X);
  EXPECT_EQ(sim.value(*nl.find_net("E")), Tri::X);
}

TEST(Lcc3, MatchesDirectEvaluationOnRandomCircuits) {
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    RandomDagParams p;
    p.inputs = 10;
    p.outputs = 5;
    p.gates = 120;
    p.depth = 10;
    p.seed = seed;
    p.xor_fraction = 0.3;
    const Netlist nl = random_dag(p);
    Lcc3Sim<> sim(nl);
    Rng rng(seed);
    std::vector<Tri> v(nl.primary_inputs().size());
    for (int trial = 0; trial < 40; ++trial) {
      for (Tri& x : v) {
        const auto r = rng.below(3);
        x = r == 0 ? Tri::Zero : (r == 1 ? Tri::One : Tri::X);
      }
      sim.step(v);
      const std::vector<Tri> expect = tri_evaluate(nl, v);
      for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
        ASSERT_EQ(sim.value(NetId{n}), expect[n])
            << nl.net(NetId{n}).name << " trial " << trial;
      }
    }
  }
}

TEST(Lcc3, XorChainPessimism) {
  // X ^ X = X in three-valued logic even though the chain is x ^ x = 0 in
  // reality — the encoding is sound but pessimistic, like any 3-valued sim.
  Netlist nl("xx");
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.mark_primary_input(a);
  nl.add_gate(GateType::Xor, {a, a}, o);
  nl.mark_primary_output(o);
  Lcc3Sim<> sim(nl);
  const Tri v[] = {Tri::X};
  sim.step(v);
  EXPECT_EQ(sim.value(o), Tri::X);
}

TEST(Lcc3, CounterNeedsEnableToInitialize) {
  // With enable low, q <= q ^ 0 = q: X state persists forever. With enable
  // high the XOR still feeds X back: a plain counter never self-initializes
  // (no reset input) — exactly what x_initialization should report.
  const Netlist seq = counter(3);
  const BrokenCircuit bc = break_flip_flops(seq);
  const Tri en_low[] = {Tri::Zero};
  const XInitResult r = x_initialization(bc, en_low, 16);
  EXPECT_FALSE(r.fully_initialized);
  EXPECT_EQ(r.unresolved.size(), 3u);
}

TEST(Lcc3, ResettableRegisterInitializes) {
  // q' = d AND NOT reset: asserting reset drives the register to 0
  // regardless of the X state.
  Netlist seq("resettable");
  const NetId rst = seq.add_net("rst");
  const NetId d_in = seq.add_net("din");
  seq.mark_primary_input(rst);
  seq.mark_primary_input(d_in);
  const NetId q = seq.add_net("q");
  const NetId rst_n = seq.add_net("rst_n");
  seq.add_gate(GateType::Not, {rst}, rst_n);
  const NetId next = seq.add_net("next");
  seq.add_gate(GateType::And, {d_in, rst_n}, next);
  const NetId d = seq.add_net("d");
  seq.add_gate(GateType::Or, {next, q}, d);  // sticky once set... but reset
  const NetId gated = seq.add_net("gated");
  seq.add_gate(GateType::And, {d, rst_n}, gated);
  seq.add_gate(GateType::Dff, {gated}, q);
  seq.mark_primary_output(q);
  const BrokenCircuit bc = break_flip_flops(seq);
  const Tri reset_on[] = {Tri::One, Tri::X};
  const XInitResult r = x_initialization(bc, reset_on, 8);
  EXPECT_TRUE(r.fully_initialized);
  EXPECT_EQ(r.state[0], Tri::Zero);
  EXPECT_LE(r.cycles, 3);
}

}  // namespace
}  // namespace udsim
