// SimService behavior tests (DESIGN.md §5i): admitted requests are
// bit-identical to a direct run_batch, the compiled-program cache is
// single-flight, backpressure and admission produce structured outcomes
// (QueueFull / Rejected), deadlines and cancellation resolve exactly once,
// load-shed degrades then rejects with a visible reason, shutdown resolves
// every outstanding request, and a checkpoint taken through the service
// path resumes through a *fresh* service bit-identically (ISSUE 7
// satellite: checkpoint/resume through the service).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_injection.h"
#include "service/shed_policy.h"
#include "service/sim_service.h"

namespace udsim {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const Netlist> circuit(const char* name, unsigned seed = 1) {
  return std::make_shared<Netlist>(make_iscas85_like(name, seed));
}

/// Deterministic row-major stream: `n` vectors over `nl`'s primary inputs.
std::vector<Bit> stream_for(const Netlist& nl, std::size_t n,
                            std::uint64_t seed = 7) {
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> bits(n * pis);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bits[i] = static_cast<Bit>(x & 1);
  }
  return bits;
}

/// Reference rows via the library's direct path (same default chain).
BatchResult direct_run(const Netlist& nl, std::span<const Bit> stream,
                       unsigned threads = 2) {
  auto sim = make_simulator_with_fallback(nl, SimPolicy{}, nullptr);
  return sim->run_batch(stream, threads);
}

/// Wait for the response with a hang guard: a future that never resolves is
/// a test failure, not a suite timeout.
SimResponse get_or_die(ServiceTicket& t,
                       std::chrono::seconds limit = std::chrono::seconds(60)) {
  if (t.result.wait_for(limit) != std::future_status::ready) {
    ADD_FAILURE() << "request " << t.id << " never resolved";
    return SimResponse{};
  }
  return t.result.get();
}

/// Spin until the single worker has the blocker in hand (running, queue
/// empty) so subsequent submissions land in the queue deterministically.
bool wait_until_running(SimService& svc, std::chrono::seconds limit = 5s) {
  const auto until = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < until) {
    const SimService::Stats s = svc.stats();
    if (s.active_requests >= 1 && s.queue_depth == 0) return true;
    std::this_thread::yield();
  }
  return false;
}

TEST(ServiceTest, CompletedRequestMatchesDirectRunBatch) {
  const auto nl = circuit("c880");
  const std::vector<Bit> stream = stream_for(*nl, 64);
  const BatchResult expect = direct_run(*nl, stream);

  SimService svc;
  const SessionId sid = svc.open_session("client-a");
  SimResponse r = svc.run(sid, SimRequest{.netlist = nl, .vectors = stream});
  ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
  EXPECT_EQ(r.batch.values, expect.values);
  EXPECT_EQ(r.batch.outputs, expect.outputs);
  EXPECT_EQ(r.vectors_done, stream.size() / nl->primary_inputs().size());
  EXPECT_FALSE(r.resumable);
  EXPECT_EQ(r.attempts, 1u);
}

TEST(ServiceTest, ProgramCacheIsSingleFlightAcrossConcurrentRequests) {
  const auto nl = circuit("c499");
  const std::vector<Bit> stream = stream_for(*nl, 32);

  ServiceConfig cfg;
  cfg.workers = 4;
  SimService svc(cfg);
  std::vector<ServiceTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(svc.submit(0, SimRequest{.netlist = nl, .vectors = stream}));
  }
  const BatchResult expect = direct_run(*nl, stream);
  bool hit_seen = false;
  for (auto& t : tickets) {
    SimResponse r = get_or_die(t);
    ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
    EXPECT_EQ(r.batch.values, expect.values);
    hit_seen = hit_seen || r.cache_hit;
  }
  EXPECT_TRUE(hit_seen);
  const auto snap = svc.metrics().snapshot();
  // Four identical requests, exactly one build, whatever the interleaving.
  EXPECT_EQ(snap.at("service.cache.build"), 1u);
  EXPECT_EQ(snap.at("service.cache.miss"), 1u);
  EXPECT_EQ(snap.at("service.cache.hit"), 3u);
  EXPECT_EQ(svc.stats().cache_entries, 1u);
  EXPECT_GT(svc.stats().cache_bytes, 0u);
}

TEST(ServiceTest, CachedEntryOutlivesBuildingClientsNetlist) {
  // The cache key is the *structural* fingerprint, so a second client with
  // its own (structurally identical) netlist object hits the entry built
  // from the first client's — after the first client destroyed its netlist.
  // The entry must own the netlist it compiled from; before it did, this
  // test dereferenced freed memory (caught under ASan).
  const std::vector<Bit> stream = stream_for(*circuit("c499"), 32);
  SimService svc;
  {
    const auto first = circuit("c499");
    SimResponse r = svc.run(0, SimRequest{.netlist = first, .vectors = stream});
    ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
    EXPECT_FALSE(r.cache_hit);
  }  // first client's netlist destroyed; the cached entry must not care

  const auto second = circuit("c499");
  const BatchResult expect = direct_run(*second, stream);
  SimResponse r = svc.run(0, SimRequest{.netlist = second, .vectors = stream});
  ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
  EXPECT_TRUE(r.cache_hit) << "identical structure must hit the cache";
  EXPECT_EQ(r.batch.values, expect.values);
}

TEST(ServiceTest, BackpressureProducesStructuredQueueFull) {
  const auto heavy = circuit("c6288");
  const std::vector<Bit> heavy_stream = stream_for(*heavy, 50000);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.batch_threads = 1;
  SimService svc(cfg);

  ServiceTicket blocker =
      svc.submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  ASSERT_TRUE(wait_until_running(svc)) << "blocker never scheduled";

  ServiceTicket q1 =
      svc.submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  ServiceTicket q2 =
      svc.submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  ASSERT_EQ(svc.stats().queue_depth, 2u);

  // Third submission: the bounded queue is full — a structured refusal,
  // resolved immediately, not a block and not a drop.
  ServiceTicket q3 =
      svc.submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  SimResponse r3 = get_or_die(q3, 5s);
  EXPECT_EQ(r3.outcome, Outcome::QueueFull);
  EXPECT_NE(r3.detail.find("capacity"), std::string::npos);

  // Cancel the queued pair first (they resolve when popped), then the
  // blocker; everything resolves exactly once.
  EXPECT_TRUE(svc.cancel(q1.id));
  EXPECT_TRUE(svc.cancel(q2.id));
  EXPECT_TRUE(svc.cancel(blocker.id));
  EXPECT_EQ(get_or_die(q1).outcome, Outcome::Cancelled);
  EXPECT_EQ(get_or_die(q2).outcome, Outcome::Cancelled);
  const SimResponse rb = get_or_die(blocker);
  EXPECT_TRUE(rb.outcome == Outcome::Cancelled ||
              rb.outcome == Outcome::Completed)
      << outcome_name(rb.outcome);

  const auto snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.at("service.outcome.queue_full"), 1u);
  EXPECT_EQ(snap.at("service.backpressure.full"), 1u);
  EXPECT_GE(snap.at("service.queue.peak"), 2u);
  // Unknown / already-resolved ids are a clean false.
  EXPECT_FALSE(svc.cancel(q3.id));
  EXPECT_FALSE(svc.cancel(999999));
}

TEST(ServiceTest, AdmissionBudgetRejectsStructurally) {
  ServiceConfig cfg;
  cfg.admission.max_peak_bytes = 1;  // nothing fits, not even Event2
  SimService svc(cfg);
  const auto nl = circuit("c432");
  ServiceTicket t =
      svc.submit(0, SimRequest{.netlist = nl, .vectors = stream_for(*nl, 8)});
  SimResponse r = get_or_die(t, 5s);
  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_NE(r.detail.find("admission"), std::string::npos) << r.detail;
  EXPECT_EQ(svc.metrics().snapshot().at("service.admission.rejected"), 1u);
}

TEST(ServiceTest, MalformedRequestsAreRejectedNotRun) {
  SimService svc;
  const auto nl = circuit("c432");
  // Ragged stream (not a multiple of the PI count).
  std::vector<Bit> ragged(nl->primary_inputs().size() + 1, 0);
  ServiceTicket t1 = svc.submit(0, SimRequest{.netlist = nl, .vectors = ragged});
  SimResponse r1 = get_or_die(t1, 5s);
  EXPECT_EQ(r1.outcome, Outcome::Rejected);
  EXPECT_NE(r1.detail.find("multiple"), std::string::npos) << r1.detail;
  // No netlist at all.
  ServiceTicket t2 = svc.submit(0, SimRequest{});
  EXPECT_EQ(get_or_die(t2, 5s).outcome, Outcome::Rejected);
}

TEST(ServiceTest, DeadlineExpiresWhileQueued) {
  SimService svc;
  const auto nl = circuit("c432");
  ServiceTicket t = svc.submit(
      0, SimRequest{.netlist = nl,
                    .vectors = stream_for(*nl, 64),
                    .deadline = std::chrono::nanoseconds(1)});
  SimResponse r = get_or_die(t, 10s);
  EXPECT_EQ(r.outcome, Outcome::DeadlineExpired) << r.detail;
}

TEST(ServiceTest, LoadShedDegradesThenRejects) {
  // Custom ladder: one shed level that closes compile admission at 20%
  // fill. With capacity 4 and two requests queued behind a blocker, the
  // first popped request schedules at depth 1 (fill 0.25) — shed level 1,
  // cache miss, structured rejection; the second schedules at depth 0 —
  // level 0, runs normally.
  const auto heavy = circuit("c6288");
  const std::vector<Bit> heavy_stream = stream_for(*heavy, 50000);
  const auto small = circuit("c432");
  const std::vector<Bit> small_stream = stream_for(*small, 16);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.batch_threads = 1;
  cfg.shed.levels = {
      ShedLevel{.queue_fill = 0.0},
      ShedLevel{.queue_fill = 0.20, .batch_threads = 1, .cache_only = true},
  };
  SimService svc(cfg);

  ServiceTicket blocker =
      svc.submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  ASSERT_TRUE(wait_until_running(svc));
  ServiceTicket shed_victim =
      svc.submit(0, SimRequest{.netlist = small, .vectors = small_stream});
  ServiceTicket survivor =
      svc.submit(0, SimRequest{.netlist = small, .vectors = small_stream});
  ASSERT_EQ(svc.stats().queue_depth, 2u);
  ASSERT_TRUE(svc.cancel(blocker.id));
  (void)get_or_die(blocker);

  SimResponse rv = get_or_die(shed_victim);
  EXPECT_EQ(rv.outcome, Outcome::Rejected) << rv.detail;
  EXPECT_EQ(rv.shed_level, 1u);
  EXPECT_NE(rv.detail.find("load-shed"), std::string::npos) << rv.detail;

  SimResponse rs = get_or_die(survivor);
  EXPECT_EQ(rs.outcome, Outcome::Completed) << rs.detail;
  EXPECT_EQ(rs.shed_level, 0u);
  EXPECT_EQ(rs.batch.values, direct_run(*small, small_stream).values);

  const auto snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.at("service.shed.rejected"), 1u);
  EXPECT_GE(snap.at("service.shed.degraded"), 1u);
}

TEST(ServiceTest, DefaultShedTableSteps) {
  const LoadShedPolicy policy;
  EXPECT_EQ(policy.decide(0, 64), 0u);
  EXPECT_EQ(policy.decide(16, 64), 0u);
  EXPECT_EQ(policy.decide(32, 64), 1u);
  EXPECT_EQ(policy.decide(48, 64), 2u);
  EXPECT_EQ(policy.decide(58, 64), 3u);
  EXPECT_EQ(policy.decide(64, 64), 3u);
  // The ladder degrades before it rejects: only the last level closes
  // admission, and thread caps shrink monotonically.
  ASSERT_EQ(policy.levels.size(), 4u);
  EXPECT_FALSE(policy.levels[0].cache_only);
  EXPECT_FALSE(policy.levels[1].cache_only);
  EXPECT_FALSE(policy.levels[2].cache_only);
  EXPECT_TRUE(policy.levels[3].cache_only);
  EXPECT_TRUE(policy.levels[1].drop_native);
}

TEST(ServiceTest, ShutdownResolvesEverythingExactlyOnce) {
  const auto heavy = circuit("c6288");
  const std::vector<Bit> heavy_stream = stream_for(*heavy, 50000);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.batch_threads = 1;
  auto svc = std::make_unique<SimService>(cfg);
  std::vector<ServiceTicket> tickets;
  tickets.push_back(
      svc->submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream}));
  ASSERT_TRUE(wait_until_running(*svc));
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(
        svc->submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream}));
  }
  svc->shutdown();

  std::uint64_t resolved = 0;
  for (auto& t : tickets) {
    const SimResponse r = get_or_die(t);
    ++resolved;
    EXPECT_TRUE(r.outcome == Outcome::Cancelled ||
                r.outcome == Outcome::ShutDown ||
                r.outcome == Outcome::Completed)
        << outcome_name(r.outcome);
  }
  EXPECT_EQ(resolved, tickets.size());

  // Post-shutdown submissions resolve as ShutDown, still exactly once.
  ServiceTicket late =
      svc->submit(0, SimRequest{.netlist = heavy, .vectors = heavy_stream});
  EXPECT_EQ(get_or_die(late, 5s).outcome, Outcome::ShutDown);

  const auto snap = svc->metrics().snapshot();
  std::uint64_t outcome_sum = 0;
  for (const auto& [name, value] : snap) {
    if (name.rfind("service.outcome.", 0) == 0) outcome_sum += value;
  }
  EXPECT_EQ(outcome_sum, snap.at("service.submitted"));
  svc.reset();  // destructor path is a second (idempotent) shutdown
}

TEST(ServiceTest, SessionReportIsClientScoped) {
  SimService svc;
  const SessionId a = svc.open_session("alpha");
  const SessionId b = svc.open_session();
  const auto nl = circuit("c432");
  const std::vector<Bit> stream = stream_for(*nl, 16);
  ASSERT_EQ(svc.run(a, SimRequest{.netlist = nl, .vectors = stream}).outcome,
            Outcome::Completed);
  ASSERT_EQ(svc.run(a, SimRequest{.netlist = nl, .vectors = stream}).outcome,
            Outcome::Completed);

  const std::string ra = svc.session_report(a);
  EXPECT_NE(ra.find("\"session.outcome.completed\": 2"), std::string::npos)
      << ra;
  EXPECT_NE(ra.find("session.latency.us"), std::string::npos);
  const std::string rb = svc.session_report(b);
  EXPECT_EQ(rb.find("session.outcome.completed"), std::string::npos) << rb;
  EXPECT_EQ(svc.session_report(999), "{}");
}

TEST(ServiceTest, TransientFaultsRetryWithBackoffThenComplete) {
  // An AllocFail that fires only on the first attempt of shard 0 is
  // absorbed by the shard retry layer; push the rate high enough across
  // attempts and the whole-run retry takes over. Plant a deterministic
  // worker throw that survives shard retries by firing on every attempt of
  // one vector... instead, verify the cheap invariant: with faults injected
  // at attempt<=1, requests still complete and results stay bit-identical.
  const auto nl = circuit("c880");
  const std::vector<Bit> stream = stream_for(*nl, 96);
  const BatchResult expect = direct_run(*nl, stream);

  FaultInjector inject(0xfeedbeef);
  inject.set_rate(FaultSite::WorkerThrow, 400, 1);
  inject.set_rate(FaultSite::ArenaCorrupt, 300, 1);
  inject.set_rate(FaultSite::AllocFail, 200, 1);

  ServiceConfig cfg;
  cfg.inject = &inject;
  SimService svc(cfg);
  SimResponse r = svc.run(0, SimRequest{.netlist = nl, .vectors = stream});
  ASSERT_EQ(r.outcome, Outcome::Completed) << r.detail;
  EXPECT_EQ(r.batch.values, expect.values);
  EXPECT_GT(inject.fired_total(), 0u) << "the injector never fired";
}

// ---- checkpoint/resume through the service path (ISSUE 7 satellite) ------

TEST(ServiceTest, CheckpointTakenByServiceResumesThroughFreshService) {
  const auto nl = circuit("c880");
  constexpr unsigned kThreads = 2;  // checkpoint geometry is thread-exact
  const std::vector<Bit> stream = stream_for(*nl, 64);
  const BatchResult expect = direct_run(*nl, stream, kThreads);

  // A deterministic mid-batch stop: an injected deadline overrun in shard 0
  // drives the checkpoint path without a real clock.
  FaultInjector inject(42);
  inject.add_site({FaultSite::DeadlineOverrun, 0, 10, 0});

  BatchCheckpoint taken;
  {
    ServiceConfig cfg;
    cfg.inject = &inject;
    SimService svc(cfg);
    SimResponse r = svc.run(
        0, SimRequest{.netlist = nl, .vectors = stream,
                      .batch_threads = kThreads});
    ASSERT_EQ(r.outcome, Outcome::DeadlineExpired) << r.detail;
    ASSERT_TRUE(r.resumable);
    EXPECT_LT(r.vectors_done, 64u);
    taken = r.checkpoint;
  }

  // Round-trip the snapshot through the wire format, as a client persisting
  // it across service restarts would.
  const std::string bytes = checkpoint_to_bytes(taken);
  auto restored =
      std::make_shared<BatchCheckpoint>(checkpoint_from_bytes(bytes));

  SimService fresh;
  SimResponse done = fresh.run(
      0, SimRequest{.netlist = nl, .vectors = stream,
                    .resume = restored, .batch_threads = kThreads});
  ASSERT_EQ(done.outcome, Outcome::Completed) << done.detail;
  EXPECT_EQ(done.batch.values, expect.values)
      << "resume through a fresh service must be bit-identical";

  // A geometry-mismatched resume is a structured failure, not a wrong
  // answer: different thread count, same checkpoint.
  SimResponse bad = fresh.run(
      0, SimRequest{.netlist = nl, .vectors = stream,
                    .resume = restored, .batch_threads = kThreads + 1});
  EXPECT_EQ(bad.outcome, Outcome::Failed);
  EXPECT_FALSE(bad.detail.empty());
}

}  // namespace
}  // namespace udsim
