// Golden-shape test for the C emitter: the exact statement op_to_c produces
// for every opcode at both word sizes, plus the full translation unit
// emit_c produces in both layouts (historical global-arena and the native
// backend's batch-entry mode), diffed against tests/golden/emitted_c_ops.txt.
//
// The emitted text is ABI: the native backend compiles it with the system C
// compiler and the cache keys assume equal programs emit equal C. A drift
// here is either a codegen regression or an intentional change — refresh
// with
//
//   ./udsim_native_tests --update-golden      (or UDSIM_UPDATE_GOLDEN=1)
//
// and commit the diff.
//
// This file also provides main() for the native test binary so the refresh
// flag is intercepted before gtest sees it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "golden_flag.h"
#include "ir/c_emitter.h"
#include "ir/program.h"

namespace udsim {
namespace {

struct OpCase {
  const char* label;
  Op op;
};

/// Every opcode once, operands chosen so the statement is legal at both
/// word sizes (shift immediates stay below 32).
const OpCase kOpCases[] = {
    {"Const0", {OpCode::Const, 0, 2, 0, 0}},
    {"Const1", {OpCode::Const, 1, 2, 0, 0}},
    {"Copy", {OpCode::Copy, 0, 2, 0, 0}},
    {"Not", {OpCode::Not, 0, 2, 0, 0}},
    {"And", {OpCode::And, 0, 2, 0, 1}},
    {"Or", {OpCode::Or, 0, 2, 0, 1}},
    {"Xor", {OpCode::Xor, 0, 2, 0, 1}},
    {"Nand", {OpCode::Nand, 0, 2, 0, 1}},
    {"Nor", {OpCode::Nor, 0, 2, 0, 1}},
    {"Xnor", {OpCode::Xnor, 0, 2, 0, 1}},
    {"AccAnd", {OpCode::AccAnd, 0, 2, 0, 0}},
    {"AccOr", {OpCode::AccOr, 0, 2, 0, 0}},
    {"AccXor", {OpCode::AccXor, 0, 2, 0, 0}},
    {"MaskedCopy", {OpCode::MaskedCopy, 0, 2, 0, 1}},
    {"LoadBit", {OpCode::LoadBit, 0, 2, 1, 0}},
    {"LoadBcast", {OpCode::LoadBcast, 0, 2, 1, 0}},
    {"LoadWord", {OpCode::LoadWord, 0, 2, 1, 0}},
    {"ExtractBit", {OpCode::ExtractBit, 5, 2, 0, 0}},
    {"BcastBit", {OpCode::BcastBit, 5, 2, 0, 0}},
    {"Shl", {OpCode::Shl, 3, 2, 0, 0}},
    {"Shr", {OpCode::Shr, 3, 2, 0, 0}},
    {"ShlOr", {OpCode::ShlOr, 3, 2, 0, 0}},
    {"MaskShlOr", {OpCode::MaskShlOr, 3, 2, 0, 0}},
    {"FunnelL", {OpCode::FunnelL, 3, 2, 0, 1}},
    {"FunnelR", {OpCode::FunnelR, 3, 2, 0, 1}},
};

/// Small fixed program exercising names, init words and input loads.
Program tiny_program(int word_bits) {
  Program p;
  p.word_bits = word_bits;
  p.arena_words = 4;
  p.input_words = 2;
  p.ops = {
      {OpCode::LoadBit, 0, 0, 0, 0},
      {OpCode::LoadBit, 0, 1, 1, 0},
      {OpCode::Nand, 0, 2, 0, 1},
  };
  p.arena_init = {{3, 1}};
  p.names = {"", "", "G3"};
  return p;
}

std::string render_golden() {
  std::ostringstream os;
  for (const int wb : {32, 64}) {
    Program p;
    p.word_bits = wb;
    p.arena_words = 4;
    p.input_words = 2;
    CEmitOptions opts;
    opts.arena_name = "w";
    opts.comments = false;
    os << "== op_to_c w" << wb << " ==\n";
    for (const OpCase& c : kOpCases) {
      os << c.label << ": " << op_to_c(p, c.op, opts) << "\n";
    }
  }
  for (const int wb : {32, 64}) {
    const Program p = tiny_program(wb);
    os << "== emit_c w" << wb << " (historical layout) ==\n";
    CEmitOptions opts;
    emit_c(os, p, opts);
    os << "== emit_c w" << wb << " (batch entry) ==\n";
    opts.function_name = "udsim_kernel";
    opts.arena_name = "a";
    opts.comments = false;
    opts.batch_entry = true;
    emit_c(os, p, opts);
  }
  return os.str();
}

TEST(EmittedCGoldenTest, MatchesFixture) {
  const std::string actual = render_golden();
  const std::string path =
      std::string(UDSIM_GOLDEN_DIR) + "/emitted_c_ops.txt";
  if (test::g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    SUCCEED() << "refreshed " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " — run with --update-golden to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "emitted C drifted from " << path
      << " — a codegen regression, or refresh with --update-golden";
}

}  // namespace
}  // namespace udsim

int main(int argc, char** argv) {
  udsim::test::consume_update_golden_flag(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
