// Unit + property tests for DynBitset, the PC-set representation.
#include <gtest/gtest.h>

#include <set>

#include "analysis/bitset.h"
#include "gen/rng.h"

namespace udsim {
namespace {

TEST(DynBitset, SetTestCount) {
  DynBitset s(130);
  EXPECT_FALSE(s.any());
  s.set(0);
  s.set(64);
  s.set(129);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(129));
  EXPECT_FALSE(s.test(1));
  EXPECT_FALSE(s.test(500));  // out of range reads as false
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min_bit(), 0);
  EXPECT_EQ(s.max_bit(), 129);
  EXPECT_EQ(s.to_vector(), (std::vector<int>{0, 64, 129}));
}

TEST(DynBitset, EmptySet) {
  DynBitset s(40);
  EXPECT_EQ(s.min_bit(), -1);
  EXPECT_EQ(s.max_bit(), -1);
  EXPECT_EQ(s.max_bit_below(10), -1);
  EXPECT_TRUE(s.to_vector().empty());
}

TEST(DynBitset, MaxBitBelow) {
  DynBitset s(200);
  s.set(3);
  s.set(70);
  s.set(150);
  EXPECT_EQ(s.max_bit_below(0), -1);
  EXPECT_EQ(s.max_bit_below(3), -1);
  EXPECT_EQ(s.max_bit_below(4), 3);
  EXPECT_EQ(s.max_bit_below(70), 3);
  EXPECT_EQ(s.max_bit_below(71), 70);
  EXPECT_EQ(s.max_bit_below(150), 70);
  EXPECT_EQ(s.max_bit_below(151), 150);
  EXPECT_EQ(s.max_bit_below(10000), 150);
}

TEST(DynBitset, OrWithShifted) {
  DynBitset a(100), b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  a.or_with_shifted(b, 1);
  EXPECT_EQ(a.to_vector(), (std::vector<int>{1, 64, 65}));
  a.or_with_shifted(b, 0);
  EXPECT_EQ(a.to_vector(), (std::vector<int>{0, 1, 63, 64, 65}));
  DynBitset c(100);
  c.or_with_shifted(b, 35);  // cross-word shift
  EXPECT_EQ(c.to_vector(), (std::vector<int>{35, 98, 99}));
}

TEST(DynBitsetProperty, MatchesStdSetModel) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t bits = 1 + rng.below(300);
    DynBitset s(bits);
    std::set<int> model;
    for (int i = 0; i < 40; ++i) {
      const auto v = static_cast<int>(rng.below(bits));
      s.set(static_cast<std::size_t>(v));
      model.insert(v);
    }
    EXPECT_EQ(s.count(), model.size());
    EXPECT_EQ(s.min_bit(), *model.begin());
    EXPECT_EQ(s.max_bit(), *model.rbegin());
    const std::vector<int> expect(model.begin(), model.end());
    EXPECT_EQ(s.to_vector(), expect);
    // max_bit_below agrees with the model at random probes.
    for (int probe = 0; probe < 20; ++probe) {
      const auto limit = rng.below(bits + 10);
      auto it = model.lower_bound(static_cast<int>(limit));
      const int expect_bit = it == model.begin() ? -1 : *std::prev(it);
      EXPECT_EQ(s.max_bit_below(limit), expect_bit) << "limit " << limit;
    }
    // Shifted union agrees with the shifted model.
    const std::size_t shift = rng.below(bits);
    DynBitset t(bits + 512);
    DynBitset s2(bits + 512);
    for (int v : model) s2.set(static_cast<std::size_t>(v));
    t.or_with_shifted(s2, shift);
    std::vector<int> expect2;
    for (int v : model) expect2.push_back(v + static_cast<int>(shift));
    EXPECT_EQ(t.to_vector(), expect2);
  }
}

}  // namespace
}  // namespace udsim
