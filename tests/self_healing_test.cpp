// Self-healing execution (DESIGN.md §5k): the hung-toolchain scenario end
// to end — a fake compiler that sleeps forever is killed at
// NativeOptions::compile_timeout, the toolchain circuit breaker trips after
// its threshold and native.builds stops growing, every request still
// resolves exactly once via the IR chain inside its deadline, and health()
// reports Degraded naming the breaker — plus the poison-request quarantine
// and the explicit transient/deterministic retry classification.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "native/native_backend.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_injection.h"
#include "resilience/program_validator.h"
#include "resilience/resilient_run.h"
#include "service/sim_service.h"

namespace udsim {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  const fs::path dir =
      tmp / ("udsim-selfheal-" + std::to_string(::getpid()) + "-" + tag + "-" +
             std::to_string(counter++));
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string write_fake_cc(const std::string& dir, const std::string& body) {
  const std::string path = dir + "/fakecc.sh";
  {
    std::ofstream f(path);
    f << "#!/bin/sh\n" << body;
  }
  std::error_code ec;
  fs::permissions(path,
                  fs::perms::owner_all | fs::perms::group_read |
                      fs::perms::others_read,
                  fs::perm_options::replace, ec);
  return path;
}

std::vector<Bit> make_stream(const Netlist& nl, std::size_t n,
                             std::uint64_t seed) {
  const std::size_t pis = nl.primary_inputs().size();
  std::vector<Bit> bits(n * pis);
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    bits[i] = static_cast<Bit>(x & 1);
  }
  return bits;
}

const HealthState* find_component_state(const SimService::HealthReport& r,
                                        const std::string& name) {
  for (const auto& c : r.components) {
    if (c.name == name) return &c.state;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// The ISSUE 9 acceptance scenario.
// ---------------------------------------------------------------------------

TEST(SelfHealingTest, HungToolchainKilledBreakerTripsIrServesHealthDegrades) {
  const std::string dir = fresh_dir("hung");
  ServiceConfig cfg;
  cfg.workers = 1;  // serialize builds: breaker transitions are deterministic
  cfg.enable_native = true;
  cfg.native.compiler = write_fake_cc(dir, "sleep 30\n");
  cfg.native.compile_timeout = 200ms;
  cfg.native.cache_dir = dir + "/cache";
  cfg.native_breaker.name = "toolchain";
  cfg.native_breaker.failure_threshold = 2;
  cfg.native_breaker.cooldown = 60s;  // stays open for the whole test
  SimService svc(cfg);
  const SessionId sid = svc.open_session("hung-toolchain");

  // Distinct circuits so each request is a program-cache miss that must
  // attempt its own native build — the axis native.builds is counted on.
  constexpr std::size_t kCircuits = 5;
  for (std::size_t i = 0; i < kCircuits; ++i) {
    const auto nl =
        std::make_shared<Netlist>(make_iscas85_like("c432", 100 + i));
    const std::vector<Bit> stream = make_stream(*nl, 16, 0xabc + i);
    auto direct = make_simulator_with_fallback(*nl, SimPolicy{}, nullptr);
    const BatchResult ref = direct->run_batch(stream, 2);

    const auto start = std::chrono::steady_clock::now();
    SimResponse r = svc.run(
        sid, SimRequest{.netlist = nl, .vectors = stream, .deadline = 30s});
    const auto elapsed = std::chrono::steady_clock::now() - start;

    // Exactly-once resolution via the IR chain, inside the deadline, with
    // rows bit-identical to the direct path — a wedged toolchain costs at
    // most one compile_timeout, never the request.
    ASSERT_EQ(r.outcome, Outcome::Completed)
        << "circuit " << i << ": " << r.detail;
    EXPECT_NE(r.engine, EngineKind::Native) << "circuit " << i;
    EXPECT_EQ(r.batch.values, ref.values) << "circuit " << i;
    EXPECT_LT(elapsed, 30s);
  }

  const auto snap = svc.metrics().snapshot();
  // Builds 1 and 2 each hit the 200 ms kill; the breaker opens at the
  // threshold and the remaining circuits skip native untried — native.builds
  // stops growing the moment the breaker opens.
  EXPECT_EQ(snap.at("native.builds"), 2u);
  EXPECT_EQ(snap.at("native.compile_timeout"), 2u);
  EXPECT_EQ(snap.at("breaker.toolchain.opened"), 1u);
  EXPECT_EQ(snap.at("native.breaker_skipped"), kCircuits - 2);
  EXPECT_EQ(snap.at("breaker.toolchain.short_circuited"), kCircuits - 2);
  EXPECT_EQ(snap.at("service.outcome.completed"), kCircuits);

  EXPECT_EQ(svc.stats().breaker, BreakerState::Open);

  // Health: Degraded overall, with the breaker component naming the breaker
  // and its state.
  const SimService::HealthReport h = svc.health();
  EXPECT_EQ(h.state, HealthState::Degraded);
  const HealthState* breaker_state =
      find_component_state(h, "toolchain.breaker");
  ASSERT_NE(breaker_state, nullptr) << svc.health_json();
  EXPECT_EQ(*breaker_state, HealthState::Degraded);
  const std::string json = svc.health_json();
  EXPECT_NE(json.find("\"state\": \"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("toolchain.breaker"), std::string::npos) << json;
  EXPECT_NE(json.find("'toolchain' open"), std::string::npos) << json;
}

TEST(SelfHealingTest, BreakerProbeReclosesWhenTheToolchainRecovers) {
  NativeOptions probe;
  if (!native_available(probe)) GTEST_SKIP() << "no usable C compiler";
  const std::string dir = fresh_dir("recover");
  const std::string flag = dir + "/toolchain-fixed";
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_native = true;
  // Fails fast until the flag file appears, then is the real compiler.
  cfg.native.compiler = write_fake_cc(
      dir, "if [ -f \"" + flag + "\" ]; then exec " +
               resolved_compiler(probe) +
               " \"$@\"\nfi\necho 'toolchain down' >&2\nexit 1\n");
  cfg.native.cache_dir = dir + "/cache";
  cfg.native_breaker.failure_threshold = 1;
  cfg.native_breaker.cooldown = 50ms;
  SimService svc(cfg);
  const SessionId sid = svc.open_session("recovery");

  const auto nl_a = std::make_shared<Netlist>(make_iscas85_like("c432", 7));
  const std::vector<Bit> stream_a = make_stream(*nl_a, 8, 1);
  SimResponse r1 = svc.run(sid, SimRequest{.netlist = nl_a, .vectors = stream_a});
  ASSERT_EQ(r1.outcome, Outcome::Completed) << r1.detail;
  EXPECT_NE(r1.engine, EngineKind::Native);
  ASSERT_EQ(svc.stats().breaker, BreakerState::Open);

  // Toolchain comes back; after the cooldown the next miss is the half-open
  // probe, succeeds, and re-closes the breaker — native service resumes
  // without a restart.
  { std::ofstream(flag) << "fixed\n"; }
  std::this_thread::sleep_for(80ms);
  const auto nl_b = std::make_shared<Netlist>(make_iscas85_like("c432", 8));
  const std::vector<Bit> stream_b = make_stream(*nl_b, 8, 2);
  SimResponse r2 = svc.run(sid, SimRequest{.netlist = nl_b, .vectors = stream_b});
  ASSERT_EQ(r2.outcome, Outcome::Completed) << r2.detail;
  EXPECT_EQ(r2.engine, EngineKind::Native);
  EXPECT_EQ(svc.stats().breaker, BreakerState::Closed);
  const auto snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.at("breaker.toolchain.probes"), 1u);
  EXPECT_EQ(snap.at("breaker.toolchain.closed"), 1u);
  EXPECT_EQ(svc.health().state, HealthState::Healthy);
}

// ---------------------------------------------------------------------------
// Poison-request quarantine.
// ---------------------------------------------------------------------------

TEST(SelfHealingTest, PoisonNetlistIsQuarantinedAfterRepeatedFailures) {
  const std::string dir = fresh_dir("poison");
  ServiceConfig cfg;
  cfg.workers = 1;
  // A chain of only the native engine with a compiler that always refuses:
  // every run of this config fails deterministically at compile.
  cfg.chain = {EngineKind::Native};
  cfg.native.compiler =
      write_fake_cc(dir, "echo 'fatal: refused' >&2\nexit 1\n");
  cfg.native.cache_dir = dir + "/cache";
  cfg.poison.strike_threshold = 2;
  cfg.poison.ttl = 60s;
  SimService svc(cfg);
  const SessionId sid = svc.open_session("poison");

  const auto poison = std::make_shared<Netlist>(make_iscas85_like("c432", 3));
  const auto healthy = std::make_shared<Netlist>(make_iscas85_like("c432", 4));
  const std::vector<Bit> stream = make_stream(*poison, 8, 5);

  // Strikes 1 and 2 pay the full failure; both are Failed, not Rejected.
  for (int i = 0; i < 2; ++i) {
    SimResponse r =
        svc.run(sid, SimRequest{.netlist = poison, .vectors = stream});
    ASSERT_EQ(r.outcome, Outcome::Failed) << "strike " << i << ": " << r.detail;
    EXPECT_NE(r.detail.find("compile failed"), std::string::npos) << r.detail;
  }

  // Strike threshold crossed: the third submission is a fast structured
  // Rejected from the ledger — no queue slot, no recompile.
  SimResponse r3 =
      svc.run(sid, SimRequest{.netlist = poison, .vectors = stream});
  EXPECT_EQ(r3.outcome, Outcome::Rejected);
  EXPECT_NE(r3.detail.find("poison quarantine"), std::string::npos)
      << r3.detail;

  // A different netlist is untouched by the quarantine: it still runs (and
  // fails on its own merits — this config cannot compile anything).
  SimResponse rh = svc.run(
      sid, SimRequest{.netlist = healthy, .vectors = make_stream(*healthy, 8, 6)});
  EXPECT_EQ(rh.outcome, Outcome::Failed);

  const auto snap = svc.metrics().snapshot();
  // Only the twice-failed netlist crossed the threshold; the other holds a
  // single strike.
  EXPECT_EQ(snap.at("service.poison.quarantined"), 1u);
  EXPECT_EQ(snap.at("service.poison.rejected"), 1u);
  EXPECT_GE(svc.stats().quarantined, 1u);

  const SimService::HealthReport h = svc.health();
  const HealthState* q = find_component_state(h, "quarantine");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(*q, HealthState::Degraded);
  EXPECT_GE(h.state, HealthState::Degraded);
}

TEST(SelfHealingTest, QuarantineExpiresAfterItsTtl) {
  const std::string dir = fresh_dir("ttl");
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.chain = {EngineKind::Native};
  cfg.native.compiler = write_fake_cc(dir, "exit 1\n");
  cfg.native.cache_dir = dir + "/cache";
  cfg.poison.strike_threshold = 1;
  cfg.poison.ttl = 150ms;
  SimService svc(cfg);
  const SessionId sid = svc.open_session("ttl");

  const auto nl = std::make_shared<Netlist>(make_iscas85_like("c432", 9));
  const std::vector<Bit> stream = make_stream(*nl, 8, 7);
  ASSERT_EQ(svc.run(sid, SimRequest{.netlist = nl, .vectors = stream}).outcome,
            Outcome::Failed);
  EXPECT_EQ(svc.run(sid, SimRequest{.netlist = nl, .vectors = stream}).outcome,
            Outcome::Rejected);

  // TTL lapses: the fingerprint gets a fresh hearing (and fails again on its
  // own merits rather than from the ledger).
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(svc.run(sid, SimRequest{.netlist = nl, .vectors = stream}).outcome,
            Outcome::Failed);
  EXPECT_GE(svc.metrics().snapshot().at("service.poison.expired"), 1u);
}

// ---------------------------------------------------------------------------
// Explicit retry classification.
// ---------------------------------------------------------------------------

TEST(FaultClassTest, ClassifierSeparatesTransientFromDeterministic) {
  EXPECT_EQ(classify_fault(InjectedFault(FaultSite::WorkerThrow, 0, 0, 1)),
            FaultClass::Transient);
  const std::bad_alloc oom;
  EXPECT_EQ(classify_fault(oom), FaultClass::Transient);
  const NativeError timeout(NativeStage::Compile, "killed at timeout",
                            /*timed_out=*/true);
  EXPECT_EQ(classify_fault(timeout), FaultClass::Transient);
  const NativeError verdict(NativeStage::Compile, "syntax error");
  EXPECT_EQ(classify_fault(verdict), FaultClass::Deterministic);
  const ProgramRejected rejected("validator said no");
  EXPECT_EQ(classify_fault(rejected), FaultClass::Deterministic);
  const std::runtime_error unknown("anything else");
  EXPECT_EQ(classify_fault(unknown), FaultClass::Deterministic);
  EXPECT_EQ(fault_class_name(FaultClass::Transient), "transient");
  EXPECT_EQ(fault_class_name(FaultClass::Deterministic), "deterministic");
}

TEST(FaultClassTest, TransientFaultsConsumeRetryAttemptsDeterministicDoNot) {
  const auto nl = std::make_shared<Netlist>(make_iscas85_like("c432", 11));
  const std::vector<Bit> stream = make_stream(*nl, 32, 9);

  // Transient: an injected fault firing on every shard attempt escapes the
  // shard retry/quarantine layer and hits the whole-run loop, which must
  // spend its full retry budget before conceding — max_retries backoffs,
  // max_retries + 1 attempts, a "retries exhausted" Failed.
  {
    FaultInjector inject(0x7a57);
    inject.set_rate(FaultSite::WorkerThrow, 10000, /*max_attempt=*/100);
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.inject = &inject;
    cfg.retry.max_retries = 2;
    cfg.retry.base_backoff = 1ms;
    SimService svc(cfg);
    SimResponse r = svc.run(0, SimRequest{.netlist = nl, .vectors = stream});
    ASSERT_EQ(r.outcome, Outcome::Failed) << r.detail;
    EXPECT_NE(r.detail.find("retries exhausted"), std::string::npos)
        << r.detail;
    EXPECT_EQ(r.attempts, 3u);
    const auto snap = svc.metrics().snapshot();
    EXPECT_EQ(snap.at("service.retry.attempts"), 2u);
    EXPECT_EQ(snap.at("service.fault.transient"), 3u);
    EXPECT_EQ(snap.count("service.fault.deterministic"), 0u);
  }

  // Deterministic: a geometry-mismatched resume fails identically on every
  // attempt — it must fail on attempt 1 with zero retry attempts consumed
  // (no backoff sleeps burned on a foregone conclusion).
  {
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.retry.max_retries = 2;
    SimService svc(cfg);
    auto bad = std::make_shared<BatchCheckpoint>();
    bad->word_bits = 32;
    bad->arena_words = 1;  // wrong shape for this program, deliberately
    bad->input_words = 1;
    bad->probe_count = 1;
    bad->num_vectors = 999;
    SimResponse r = svc.run(
        0, SimRequest{.netlist = nl, .vectors = stream, .resume = bad,
                      .batch_threads = 1});
    ASSERT_EQ(r.outcome, Outcome::Failed) << r.detail;
    EXPECT_EQ(r.attempts, 1u);
    const auto snap = svc.metrics().snapshot();
    EXPECT_EQ(snap.count("service.retry.attempts"), 0u);
    EXPECT_GE(snap.at("service.fault.deterministic"), 1u);
  }
}

// ---------------------------------------------------------------------------
// Health model states.
// ---------------------------------------------------------------------------

TEST(SelfHealingTest, HealthIsHealthyOnAnIdleServiceAndUnhealthyShutDown) {
  ServiceConfig cfg;
  cfg.workers = 1;
  SimService svc(cfg);
  EXPECT_EQ(svc.health().state, HealthState::Healthy);
  const std::string idle = svc.health_json();
  EXPECT_NE(idle.find("\"state\": \"healthy\""), std::string::npos) << idle;

  svc.shutdown();
  const SimService::HealthReport down = svc.health();
  EXPECT_EQ(down.state, HealthState::Unhealthy);
  const HealthState* lifecycle = find_component_state(down, "lifecycle");
  ASSERT_NE(lifecycle, nullptr);
  EXPECT_EQ(*lifecycle, HealthState::Unhealthy);
}

}  // namespace
}  // namespace udsim
