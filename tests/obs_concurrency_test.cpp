// Thread-safety of the observability sinks (run under TSAN via the
// `threads` ctest label): concurrent counter registration and bumps on one
// MetricsRegistry, concurrent Diagnostics::report from many threads, and a
// multi-threaded run_batch whose shards share a single registry. The
// assertions double as exactness checks — no update may be lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.h"
#include "gen/random_dag.h"
#include "netlist/diagnostics.h"
#include "obs/metrics.h"

namespace udsim {
namespace {

TEST(ObsConcurrency, RegistryRegistrationRace) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        // Every thread races to create the same counter names while others
        // bump them through cached handles.
        MetricCounter& c = reg.counter("name." + std::to_string(i % kNames));
        c.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (const auto& [name, value] : reg.snapshot()) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      reg.counter("w" + std::to_string(i++ % 4)).add(1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    (void)reg.snapshot();
    (void)reg.to_json();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ObsConcurrency, DiagnosticsConcurrentReport) {
  Diagnostics diag;
  constexpr int kThreads = 8;
  constexpr int kIters = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&diag, t] {
      for (int i = 0; i < kIters; ++i) {
        diag.report(DiagCode::GapWordFallback, DiagSeverity::Note,
                    "thread" + std::to_string(t), "record " + std::to_string(i));
      }
    });
  }
  // Concurrent readers of the aggregate views while writers run.
  std::thread reader([&diag] {
    for (int i = 0; i < 200; ++i) {
      (void)diag.size();
      (void)diag.count(DiagCode::GapWordFallback);
      (void)diag.first(DiagCode::GapWordFallback);
      std::ostringstream sink;
      diag.print(sink);
    }
  });
  for (auto& w : workers) w.join();
  reader.join();
  EXPECT_EQ(diag.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(diag.count(DiagCode::GapWordFallback),
            static_cast<std::size_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, SharedRegistryAcrossBatchShards) {
  RandomDagParams params;
  params.name = "obsconc";
  params.inputs = 8;
  params.outputs = 4;
  params.gates = 100;
  params.depth = 8;
  const Netlist nl = random_dag(params);
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kVectors = 128;
  std::vector<Bit> bits(kVectors * pis);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 2654435761u >> 7) & 1;
  const std::uint64_t static_ops = reg.counter("compile.ops").value();
  const BatchResult r = sim->run_batch(bits, 4);
  EXPECT_EQ(r.vectors, kVectors);
  // All shards bumped the same registry; nothing may be lost or doubled.
  EXPECT_EQ(reg.counter("sim.vectors").value(), kVectors);
  EXPECT_EQ(reg.counter("exec.ops").value(), static_ops * kVectors);
}

}  // namespace
}  // namespace udsim
