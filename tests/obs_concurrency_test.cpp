// Thread-safety of the observability sinks (run under TSAN via the
// `threads` ctest label): concurrent counter registration and bumps on one
// MetricsRegistry, concurrent Diagnostics::report from many threads, and a
// multi-threaded run_batch whose shards share a single registry. The
// assertions double as exactness checks — no update may be lost.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.h"
#include "gen/random_dag.h"
#include "netlist/diagnostics.h"
#include "obs/metrics.h"

namespace udsim {
namespace {

TEST(ObsConcurrency, RegistryRegistrationRace) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        // Every thread races to create the same counter names while others
        // bump them through cached handles.
        MetricCounter& c = reg.counter("name." + std::to_string(i % kNames));
        c.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (const auto& [name, value] : reg.snapshot()) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      reg.counter("w" + std::to_string(i++ % 4)).add(1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    (void)reg.snapshot();
    (void)reg.to_json();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ObsConcurrency, DiagnosticsConcurrentReport) {
  Diagnostics diag;
  constexpr int kThreads = 8;
  constexpr int kIters = 250;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&diag, t] {
      for (int i = 0; i < kIters; ++i) {
        diag.report(DiagCode::GapWordFallback, DiagSeverity::Note,
                    "thread" + std::to_string(t), "record " + std::to_string(i));
      }
    });
  }
  // Concurrent readers of the aggregate views while writers run.
  std::thread reader([&diag] {
    for (int i = 0; i < 200; ++i) {
      (void)diag.size();
      (void)diag.count(DiagCode::GapWordFallback);
      (void)diag.first(DiagCode::GapWordFallback);
      std::ostringstream sink;
      diag.print(sink);
    }
  });
  for (auto& w : workers) w.join();
  reader.join();
  EXPECT_EQ(diag.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(diag.count(DiagCode::GapWordFallback),
            static_cast<std::size_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, SharedRegistryAcrossBatchShards) {
  RandomDagParams params;
  params.name = "obsconc";
  params.inputs = 8;
  params.outputs = 4;
  params.gates = 100;
  params.depth = 8;
  const Netlist nl = random_dag(params);
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kVectors = 128;
  std::vector<Bit> bits(kVectors * pis);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 2654435761u >> 7) & 1;
  const std::uint64_t static_ops = reg.counter("compile.ops").value();
  const BatchResult r = sim->run_batch(bits, 4);
  EXPECT_EQ(r.vectors, kVectors);
  // All shards bumped the same registry; nothing may be lost or doubled.
  EXPECT_EQ(reg.counter("sim.vectors").value(), kVectors);
  EXPECT_EQ(reg.counter("exec.ops").value(), static_ops * kVectors);
}

// Satellite 2 (ISSUE 5): the trace spans batch shards emit must carry the
// worker thread's ordinal, so a multi-threaded run is attributable in
// Perfetto. On a loaded (or single-CPU) host one pool worker can drain
// every shard before the others wake, so the distinctness check retries
// with fresh pools; per-shard spans must exist on every attempt.
TEST(ObsConcurrency, BatchShardSpansCarryDistinctThreadIds) {
  RandomDagParams params;
  params.name = "obstid";
  params.inputs = 8;
  params.outputs = 4;
  params.gates = 400;
  params.depth = 10;
  const Netlist nl = random_dag(params);
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kVectors = 2048;  // ms-scale shards: workers overlap
  std::vector<Bit> bits(kVectors * pis);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 2654435761u >> 7) & 1;

  std::set<std::uint32_t> tids;
  for (int attempt = 0; attempt < 20 && tids.size() < 2; ++attempt) {
    reg.clear_trace();
    (void)sim->run_batch(bits, 2);
    tids.clear();
    std::size_t shard_spans = 0;
    for (const TraceEvent& e : reg.trace_events()) {
      if (e.name != "batch.shard") continue;
      ++shard_spans;
      EXPECT_GT(e.tid, 0u);
      tids.insert(e.tid);
      // Every shard span names its vector range.
      bool has_shard = false, has_begin = false, has_end = false;
      for (const auto& [k, v] : e.args) {
        has_shard |= k == "shard";
        has_begin |= k == "begin";
        has_end |= k == "end";
      }
      EXPECT_TRUE(has_shard && has_begin && has_end);
    }
    EXPECT_GE(shard_spans, 2u);  // 2048 vectors across 2 threads -> 2 shards
  }
  EXPECT_GE(tids.size(), 2u)
      << "no two batch shards ever landed on distinct workers";
}

}  // namespace
}  // namespace udsim
