// The toolchain circuit breaker (DESIGN.md §5k): the closed → open →
// half-open lifecycle, the single-probe contract, the abandoned-attempt
// release that keeps a probe slot from wedging, and the transition counters.
#include "resilience/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace udsim {
namespace {

using namespace std::chrono_literals;

CircuitBreakerConfig quick(unsigned threshold = 3,
                           std::chrono::nanoseconds cooldown = 50ms) {
  CircuitBreakerConfig cfg;
  cfg.name = "test";
  cfg.failure_threshold = threshold;
  cfg.cooldown = cooldown;
  return cfg;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  CircuitBreaker b(quick());
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow());
  EXPECT_EQ(b.cooldown_remaining(), 0ns);
}

TEST(CircuitBreakerTest, OpensAtTheFailureThreshold) {
  CircuitBreaker b(quick(3, 10s));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(b.allow());
    b.record_failure();
    EXPECT_EQ(b.state(), BreakerState::Closed) << "tripped early at " << i;
  }
  ASSERT_TRUE(b.allow());
  b.record_failure();
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allow());  // short-circuits during cooldown
  EXPECT_GT(b.cooldown_remaining(), 0ns);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b(quick(2, 10s));
  ASSERT_TRUE(b.allow());
  b.record_failure();
  ASSERT_TRUE(b.allow());
  b.record_success();
  ASSERT_TRUE(b.allow());
  b.record_failure();
  // Interleaved success broke the streak: still one failure short.
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 1u);
}

TEST(CircuitBreakerTest, CooldownAdmitsExactlyOneProbe) {
  CircuitBreaker b(quick(1, 30ms));
  ASSERT_TRUE(b.allow());
  b.record_failure();
  ASSERT_EQ(b.state(), BreakerState::Open);
  std::this_thread::sleep_for(60ms);
  EXPECT_TRUE(b.allow());   // the half-open probe
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(b.allow());  // everyone else stays short-circuited
  EXPECT_FALSE(b.allow());
}

TEST(CircuitBreakerTest, ProbeSuccessRecloses) {
  CircuitBreaker b(quick(1, 30ms));
  ASSERT_TRUE(b.allow());
  b.record_failure();
  std::this_thread::sleep_for(60ms);
  ASSERT_TRUE(b.allow());
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_TRUE(b.allow());
  EXPECT_EQ(b.consecutive_failures(), 0u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreaker b(quick(1, 30ms));
  ASSERT_TRUE(b.allow());
  b.record_failure();
  std::this_thread::sleep_for(60ms);
  ASSERT_TRUE(b.allow());
  b.record_failure();
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_FALSE(b.allow());
  EXPECT_GT(b.cooldown_remaining(), 0ns);
}

TEST(CircuitBreakerTest, AbandonedProbeDoesNotWedgeTheBreaker) {
  CircuitBreaker b(quick(1, 30ms));
  ASSERT_TRUE(b.allow());
  b.record_failure();
  std::this_thread::sleep_for(60ms);
  // Probe granted, but the attempt dies before reaching the dependency
  // (budget rejection, cancellation). Without the release the breaker would
  // report "probe in flight" forever and never close again.
  ASSERT_TRUE(b.allow());
  b.record_abandoned();
  EXPECT_TRUE(b.allow());  // a fresh probe is granted immediately
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerTest, ZeroThresholdNeverTrips) {
  CircuitBreaker b(quick(0, 1ms));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.allow());
    b.record_failure();
  }
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreakerTest, TransitionCountersAreExact) {
  MetricsRegistry m;
  CircuitBreaker b(quick(2, 30ms), &m);
  ASSERT_TRUE(b.allow());
  b.record_failure();
  ASSERT_TRUE(b.allow());
  b.record_failure();  // opens
  EXPECT_FALSE(b.allow());  // short-circuit
  std::this_thread::sleep_for(60ms);
  ASSERT_TRUE(b.allow());  // probe
  b.record_success();      // closes
  EXPECT_EQ(m.counter("breaker.test.failures").value(), 2u);
  EXPECT_EQ(m.counter("breaker.test.opened").value(), 1u);
  EXPECT_EQ(m.counter("breaker.test.short_circuited").value(), 1u);
  EXPECT_EQ(m.counter("breaker.test.probes").value(), 1u);
  EXPECT_EQ(m.counter("breaker.test.successes").value(), 1u);
  EXPECT_EQ(m.counter("breaker.test.closed").value(), 1u);
}

TEST(CircuitBreakerTest, DescribeNamesTheState) {
  CircuitBreaker b(quick(1, 10s));
  EXPECT_EQ(b.describe(), "closed");
  ASSERT_TRUE(b.allow());
  b.record_failure();
  EXPECT_NE(b.describe().find("open"), std::string::npos);
  EXPECT_NE(b.describe().find("1 consecutive failure"), std::string::npos);
}

TEST(CircuitBreakerTest, ConcurrentFailuresNeverDoubleOpen) {
  // Many threads hammering a closed breaker: it must open exactly once
  // (TSan also watches this path via the resilience label).
  MetricsRegistry m;
  CircuitBreaker b(quick(4, 10s), &m);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&b] {
      for (int i = 0; i < 16; ++i) {
        if (b.allow()) b.record_failure();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(m.counter("breaker.test.opened").value(), 1u);
}

}  // namespace
}  // namespace udsim
