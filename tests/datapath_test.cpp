// Datapath-generator tests against integer models, plus cross-engine runs.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "gen/datapath.h"
#include "gen/rng.h"
#include "lcc/lcc.h"
#include "oracle/oracle.h"

namespace udsim {
namespace {

unsigned read_bus(const LccSim<>& sim, const Netlist& nl, const char* prefix,
                  int width) {
  unsigned v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<unsigned>(
             sim.value(*nl.find_net(prefix + std::to_string(i))))
         << i;
  }
  return v;
}

TEST(Datapath, BarrelShifterRotates) {
  const int stages = 3;
  const int n = 1 << stages;
  const Netlist nl = barrel_shifter(stages);
  LccSim<> sim(nl);
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const unsigned d = static_cast<unsigned>(rng.below(1u << n));
    const unsigned s = static_cast<unsigned>(rng.below(static_cast<std::uint64_t>(n)));
    std::vector<Bit> v;
    for (int i = 0; i < n; ++i) v.push_back((d >> i) & 1u);
    for (int b = 0; b < stages; ++b) v.push_back((s >> b) & 1u);
    sim.step(v);
    const unsigned expect = ((d << s) | (d >> (n - s))) & ((1u << n) - 1);
    ASSERT_EQ(read_bus(sim, nl, "y", n), s ? expect : d)
        << "d=" << d << " s=" << s;
  }
}

TEST(Datapath, PriorityEncoderFindsHighestBit) {
  const int n = 12;
  const Netlist nl = priority_encoder(n);
  LccSim<> sim(nl);
  Rng rng(5);
  int enc_bits = 0;
  while ((1 << enc_bits) < n) ++enc_bits;
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned d = static_cast<unsigned>(rng.below(1u << n));
    std::vector<Bit> v;
    for (int i = 0; i < n; ++i) v.push_back((d >> i) & 1u);
    sim.step(v);
    const Bit any = sim.value(*nl.find_net("any"));
    if (d == 0) {
      EXPECT_EQ(any, 0);
      continue;
    }
    EXPECT_EQ(any, 1);
    int expect = 0;
    for (int i = 0; i < n; ++i) {
      if ((d >> i) & 1u) expect = i;
    }
    EXPECT_EQ(read_bus(sim, nl, "e", enc_bits), static_cast<unsigned>(expect))
        << "d=" << d;
  }
}

TEST(Datapath, AluComputesAllOps) {
  const int bits = 8;
  const Netlist nl = alu(bits);
  LccSim<> sim(nl);
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned a = static_cast<unsigned>(rng.below(256));
    const unsigned b = static_cast<unsigned>(rng.below(256));
    const unsigned op = static_cast<unsigned>(rng.below(4));
    std::vector<Bit> v;
    for (int i = 0; i < bits; ++i) {
      v.push_back((a >> i) & 1u);
      v.push_back((b >> i) & 1u);
    }
    v.push_back(op & 1u);
    v.push_back((op >> 1) & 1u);
    sim.step(v);
    unsigned expect = 0;
    switch (op) {
      case 0:
        expect = (a + b) & 0xffu;
        break;
      case 1:
        expect = a & b;
        break;
      case 2:
        expect = a | b;
        break;
      default:
        expect = a ^ b;
        break;
    }
    ASSERT_EQ(read_bus(sim, nl, "y", bits), expect)
        << "a=" << a << " b=" << b << " op=" << op;
    const Bit cout = sim.value(*nl.find_net("cout"));
    EXPECT_EQ(cout, op == 0 ? (a + b) >> 8 : 0u);
  }
}

TEST(Datapath, AllEnginesAgreeOnAlu) {
  const Netlist nl = alu(6);
  OracleSim oracle(nl);
  std::vector<std::unique_ptr<Simulator>> sims;
  for (EngineKind k : {EngineKind::Event3, EngineKind::PCSet,
                       EngineKind::ParallelCombined}) {
    sims.push_back(make_simulator(nl, k));
  }
  Rng rng(7);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 30; ++i) {
    for (Bit& x : v) x = static_cast<Bit>(rng.bit());
    const Waveform wf = oracle.step(v);
    for (auto& s : sims) {
      s->step(v);
      for (NetId po : nl.primary_outputs()) {
        ASSERT_EQ(wf.final_value(po), s->final_value(po));
      }
    }
  }
}

}  // namespace
}  // namespace udsim
