// The sandboxed subprocess runner (DESIGN.md §5k): structured results for
// every way a child can end — clean exit, non-zero exit, signal death,
// timeout escalation, launch failure — plus the stderr capture contract
// (full text, byte cap, always drained) and the no-shell argv semantics.
#include "resilience/subprocess.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace udsim {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class SubprocessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("udsim_subproc_" +
            std::to_string(static_cast<unsigned>(::getpid())) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// An executable shell script the runner can exec directly.
  std::string write_script(const std::string& body) {
    const fs::path p = dir_ / "script.sh";
    {
      std::ofstream out(p);
      out << "#!/bin/sh\n" << body << "\n";
    }
    fs::permissions(p, fs::perms::owner_all, fs::perm_options::add);
    return p.string();
  }

  fs::path dir_;
};

TEST_F(SubprocessTest, CleanExitIsOk) {
  const SubprocessResult r = run_subprocess({write_script("exit 0")});
  EXPECT_TRUE(r.launched);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.term_signal, 0);
}

TEST_F(SubprocessTest, NonZeroExitIsReported) {
  const SubprocessResult r = run_subprocess({write_script("exit 3")});
  EXPECT_TRUE(r.launched);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.describe(), "exit code 3");
}

TEST_F(SubprocessTest, StderrIsCapturedInFull) {
  const SubprocessResult r = run_subprocess({write_script(
      "echo line-one >&2\necho line-two >&2\necho line-three >&2\nexit 1")});
  EXPECT_EQ(r.exit_code, 1);
  // The std::system-era capture kept only the first line; the runner must
  // carry the whole transcript.
  EXPECT_NE(r.stderr_output.find("line-one"), std::string::npos);
  EXPECT_NE(r.stderr_output.find("line-three"), std::string::npos);
  EXPECT_FALSE(r.stderr_truncated);
}

TEST_F(SubprocessTest, StderrByteCapTruncatesButDrains) {
  // 64 KiB of stderr against a 512-byte cap: the child must still run to
  // completion (the pipe is drained past the cap, so it never blocks).
  SubprocessOptions opts;
  opts.stderr_cap = 512;
  const SubprocessResult r = run_subprocess(
      {write_script("i=0\nwhile [ $i -lt 1024 ]; do\n"
                    "  echo 0123456789012345678901234567890123456789012345678"
                    "90123456789 >&2\n"
                    "  i=$((i+1))\ndone\nexit 0")},
      opts);
  EXPECT_TRUE(r.ok()) << r.describe();
  EXPECT_LE(r.stderr_output.size(), 512u);
  EXPECT_TRUE(r.stderr_truncated);
}

TEST_F(SubprocessTest, TimeoutKillsTheChild) {
  SubprocessOptions opts;
  opts.timeout = 200ms;
  opts.kill_grace = 50ms;
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult r =
      run_subprocess({write_script("sleep 30")}, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(r.launched);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.ok());
  // Killed promptly — nowhere near the child's 30 s sleep.
  EXPECT_LT(elapsed, 5s);
  EXPECT_NE(r.describe().find("timed out"), std::string::npos);
}

TEST_F(SubprocessTest, TimeoutEscalatesToSigkillOnSigtermIgnorers) {
  SubprocessOptions opts;
  opts.timeout = 200ms;
  opts.kill_grace = 100ms;
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult r = run_subprocess(
      {write_script("trap '' TERM\nsleep 30")}, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed, 5s);
}

TEST_F(SubprocessTest, ProcessGroupKillReapsSpawnedChildren) {
  // The script backgrounds a grandchild then hangs; killing only the direct
  // child would leave the grandchild holding the stderr pipe open and the
  // runner draining forever. Group kill must end the whole family fast.
  SubprocessOptions opts;
  opts.timeout = 200ms;
  opts.kill_grace = 50ms;
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult r = run_subprocess(
      {write_script("sleep 30 &\nsleep 30")}, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(elapsed, 5s);
}

TEST_F(SubprocessTest, MissingBinaryIsAStructuredFailure) {
  const SubprocessResult r =
      run_subprocess({"udsim-definitely-not-a-real-binary"});
  EXPECT_FALSE(r.ok());
  // exec failure surfaces as the conventional exit 127 with the reason on
  // the stderr channel — not an exception, not a hang.
  EXPECT_TRUE(r.launched);
  EXPECT_EQ(r.exit_code, 127);
  EXPECT_NE(r.stderr_output.find("exec"), std::string::npos);
}

TEST_F(SubprocessTest, EmptyArgvThrows) {
  EXPECT_THROW((void)run_subprocess({}), std::invalid_argument);
}

TEST_F(SubprocessTest, ArgumentsAreDataNotShell) {
  // A metacharacter-laden argument must arrive verbatim: the script prints
  // its first argument to stderr, and nothing is interpolated or executed.
  const std::string script = write_script("echo \"arg:$1\" >&2\nexit 0");
  const fs::path canary = dir_ / "canary";
  const std::string evil = "; touch " + canary.string() + " #";
  const SubprocessResult r = run_subprocess({script, evil});
  EXPECT_TRUE(r.ok()) << r.describe();
  EXPECT_NE(r.stderr_output.find("arg:" + evil), std::string::npos);
  EXPECT_FALSE(fs::exists(canary)) << "argument was interpreted by a shell";
}

TEST(SplitCommandTest, SplitsOnWhitespaceOnly) {
  const std::vector<std::string> got = split_command("  -O2\t-fPIC \n -g  ");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "-O2");
  EXPECT_EQ(got[1], "-fPIC");
  EXPECT_EQ(got[2], "-g");
  EXPECT_TRUE(split_command("").empty());
  EXPECT_TRUE(split_command("   \t ").empty());
}

}  // namespace
}  // namespace udsim
