// Parameterized property sweeps over the ten ISCAS-85-like profiles: every
// compiled program verifies structurally, every alignment plan is legal,
// PC-sets bound actual changes, trimming invariants hold, and the static
// code statistics respect the paper's relationships.
#include <gtest/gtest.h>

#include "analysis/alignment.h"
#include "analysis/pcset.h"
#include "analysis/trimming.h"
#include "gen/iscas_profiles.h"
#include "ir/verify.h"
#include "lcc/lcc.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {
namespace {

class ProfileProperties : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { nl_ = make_iscas85_like(GetParam()); }
  Netlist nl_;
};

TEST_P(ProfileProperties, EveryCompiledProgramVerifies) {
  {
    const LccCompiled lcc = compile_lcc(nl_);
    EXPECT_EQ(verify_program(lcc.program, {lcc.net_var}), "");
  }
  {
    const PCSetCompiled pcs = compile_pcset(nl_);
    std::vector<std::uint32_t> persistent;
    for (const auto& vars : pcs.net_vars) {
      for (const auto& [t, w] : vars) persistent.push_back(w);
    }
    EXPECT_EQ(verify_program(pcs.program, {persistent}), "");
  }
  for (ShiftElim se :
       {ShiftElim::None, ShiftElim::PathTracing, ShiftElim::CycleBreaking}) {
    for (bool trim : {false, true}) {
      ParallelOptions o;
      o.shift_elim = se;
      o.trimming = trim;
      const ParallelCompiled par = compile_parallel(nl_, o);
      std::vector<std::uint32_t> persistent;
      for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
        for (std::uint32_t w = 0; w < par.net_words[n]; ++w) {
          persistent.push_back(par.net_base[n] + w);
        }
      }
      EXPECT_EQ(verify_program(par.program, {persistent}), "")
          << "shift_elim=" << static_cast<int>(se) << " trim=" << trim;
    }
  }
}

TEST_P(ProfileProperties, AlignmentPlansAreLegal) {
  const Levelization lv = levelize(nl_);
  for (const AlignmentPlan& plan :
       {align_unoptimized(nl_, lv), align_path_tracing(nl_, lv),
        align_cycle_breaking(nl_, lv)}) {
    EXPECT_NO_THROW(check_alignment_plan(nl_, lv, plan));
  }
  // Path tracing: right shifts only, no output shifts, no field expansion.
  const AlignmentPlan pt = align_path_tracing(nl_, lv);
  for (std::uint32_t gi = 0; gi < nl_.gate_count(); ++gi) {
    EXPECT_EQ(pt.output_shift(nl_, GateId{gi}), 0);
    for (NetId in : nl_.gate(GateId{gi}).inputs) {
      EXPECT_GE(pt.input_shift(nl_, GateId{gi}, in), 0);
    }
  }
  const AlignmentStats st = alignment_stats(nl_, lv, pt, 32);
  EXPECT_LE(st.max_width_bits, lv.depth + 1);
}

TEST_P(ProfileProperties, PCSetContainsLevelBounds) {
  const Levelization lv = levelize(nl_);
  const PCSets pc = compute_pc_sets(nl_, lv);
  for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
    const NetId id{n};
    EXPECT_EQ(pc.of(id).min_bit(), lv.minlevel(id));
    EXPECT_EQ(pc.of(id).max_bit(), lv.level(id));
  }
}

TEST_P(ProfileProperties, TrimClassesAreConsistent) {
  const Levelization lv = levelize(nl_);
  const PCSets pc = compute_pc_sets(nl_, lv);
  const AlignmentPlan plan = align_unoptimized(nl_, lv);
  const auto widths = field_widths(nl_, lv, plan, true);
  const TrimPlan tp = compute_trim_plan(nl_, lv, pc, plan, widths, 32);
  for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
    const auto& cls = tp.net_words[n];
    ASSERT_EQ(cls.size(), static_cast<std::size_t>((widths[n] + 31) / 32));
    if (nl_.net(NetId{n}).is_primary_input) continue;
    EXPECT_NE(cls.front(), WordClass::Gap);
    // Stable words lie strictly below the minlevel.
    for (std::size_t w = 0; w < cls.size(); ++w) {
      if (cls[w] == WordClass::StableLow) {
        EXPECT_LT(static_cast<int>(w + 1) * 32 - 1, lv.minlevel(NetId{n}));
      }
    }
  }
}

TEST_P(ProfileProperties, StatsRelationships) {
  const Levelization lv = levelize(nl_);
  // Unoptimized retained shifts = gate count (paper Fig. 21 column 1).
  const AlignmentStats unopt = alignment_stats(nl_, lv, align_unoptimized(nl_, lv), 32);
  EXPECT_EQ(unopt.retained_shift_sites, nl_.real_gate_count());
  // Both algorithms retain fewer shifts than the unoptimized baseline.
  const AlignmentStats pt = alignment_stats(nl_, lv, align_path_tracing(nl_, lv), 32);
  const AlignmentStats cb =
      alignment_stats(nl_, lv, align_cycle_breaking(nl_, lv), 32);
  EXPECT_LT(pt.retained_shift_sites, unopt.retained_shift_sites);
  EXPECT_LT(cb.retained_shift_sites, unopt.retained_shift_sites);
  // Trimming never makes the program bigger.
  const ParallelCompiled plain = compile_parallel(nl_, {});
  ParallelOptions o;
  o.trimming = true;
  const ParallelCompiled trimmed = compile_parallel(nl_, o);
  EXPECT_LE(trimmed.stats.total_ops, plain.stats.total_ops);
}

INSTANTIATE_TEST_SUITE_P(Iscas85, ProfileProperties,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c2670", "c3540", "c5315",
                                           "c6288", "c7552"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace udsim
