// Bit-field trimming analysis tests (paper §4, Fig. 9).
#include <gtest/gtest.h>

#include "analysis/trimming.h"
#include "gen/iscas_profiles.h"
#include "test_util.h"

namespace udsim {
namespace {

/// Chain of `len` buffers from one PI; with word_bits 8, deep nets develop
/// stable low words.
Netlist chain_circuit(int len) {
  Netlist nl("chain");
  const NetId a = nl.add_net("A");
  nl.mark_primary_input(a);
  NetId cur = a;
  for (int i = 0; i < len; ++i) {
    const NetId n = nl.add_net("n" + std::to_string(i));
    nl.add_gate(GateType::Buf, {cur}, n);
    cur = n;
  }
  nl.mark_primary_output(cur);
  return nl;
}

TEST(Trimming, StableLowWordsOnDeepNets) {
  const Netlist nl = chain_circuit(20);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  const AlignmentPlan plan = align_unoptimized(nl, lv);
  const auto widths = field_widths(nl, lv, plan, /*uniform=*/true);
  const TrimPlan tp = compute_trim_plan(nl, lv, pc, plan, widths, 8);
  // Net n15 has minlevel = level = 16 > 8: its word 0 (times 0-7) and word 1
  // (times 8-15) are stable; word 2 holds its only representative.
  const NetId n15 = *nl.find_net("n15");
  ASSERT_EQ(tp.net_words[n15.value].size(), 3u);  // 21 bits in 8-bit words
  EXPECT_EQ(tp.word_class(n15, 0), WordClass::StableLow);
  EXPECT_EQ(tp.word_class(n15, 1), WordClass::StableLow);
  EXPECT_EQ(tp.word_class(n15, 2), WordClass::Computed);
}

TEST(Trimming, GapWordsAboveShallowNets) {
  // A shallow net in a deep circuit: its high words have no representative.
  Netlist nl("mixed");
  const NetId a = nl.add_net("A");
  nl.mark_primary_input(a);
  const NetId shallow = nl.add_net("S");
  nl.add_gate(GateType::Not, {a}, shallow);
  nl.mark_primary_output(shallow);
  NetId cur = a;
  for (int i = 0; i < 20; ++i) {
    const NetId n = nl.add_net("n" + std::to_string(i));
    nl.add_gate(GateType::Buf, {cur}, n);
    cur = n;
  }
  nl.mark_primary_output(cur);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  const AlignmentPlan plan = align_unoptimized(nl, lv);
  const auto widths = field_widths(nl, lv, plan, true);
  const TrimPlan tp = compute_trim_plan(nl, lv, pc, plan, widths, 8);
  // Shallow net: PC = {1}; word 0 computed, words 1-2 gaps.
  ASSERT_EQ(tp.net_words[shallow.value].size(), 3u);
  EXPECT_EQ(tp.word_class(shallow, 0), WordClass::Computed);
  EXPECT_EQ(tp.word_class(shallow, 1), WordClass::Gap);
  EXPECT_EQ(tp.word_class(shallow, 2), WordClass::Gap);
}

TEST(Trimming, WordZeroNeverGap) {
  for (const char* name : {"c432", "c1908"}) {
    const Netlist nl = make_iscas85_like(name);
    const Levelization lv = levelize(nl);
    const PCSets pc = compute_pc_sets(nl, lv);
    const AlignmentPlan plan = align_unoptimized(nl, lv);
    const auto widths = field_widths(nl, lv, plan, true);
    const TrimPlan tp = compute_trim_plan(nl, lv, pc, plan, widths, 32);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      ASSERT_FALSE(tp.net_words[n].empty());
      EXPECT_NE(tp.net_words[n][0], WordClass::Gap);
    }
  }
}

TEST(Trimming, UniformWidthsMatchPaperWordCounts) {
  // Fig. 20's parenthetical word counts: 32-bit fields of n = depth+1 bits.
  struct Expect {
    const char* name;
    int words;
  };
  for (const Expect& e : {Expect{"c432", 1}, Expect{"c499", 1}, Expect{"c880", 1},
                          Expect{"c1908", 2}, Expect{"c3540", 2}}) {
    const Netlist nl = make_iscas85_like(e.name);
    const Levelization lv = levelize(nl);
    const AlignmentPlan plan = align_unoptimized(nl, lv);
    const auto widths = field_widths(nl, lv, plan, true);
    int max_words = 0;
    for (int w : widths) max_words = std::max(max_words, (w + 31) / 32);
    EXPECT_EQ(max_words, e.words) << e.name;
  }
}

TEST(Trimming, FullPlanIsAllComputed) {
  const Netlist nl = chain_circuit(10);
  const Levelization lv = levelize(nl);
  const AlignmentPlan plan = align_unoptimized(nl, lv);
  const auto widths = field_widths(nl, lv, plan, true);
  const TrimPlan tp = full_trim_plan(nl, widths, 8);
  EXPECT_EQ(tp.stable_words, 0u);
  EXPECT_EQ(tp.gap_words, 0u);
  for (const auto& words : tp.net_words) {
    for (WordClass c : words) EXPECT_EQ(c, WordClass::Computed);
  }
}

TEST(Trimming, TrimmingSavesWordsOnMultiwordProfiles) {
  const Netlist nl = make_iscas85_like("c1908");
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  const AlignmentPlan plan = align_unoptimized(nl, lv);
  const auto widths = field_widths(nl, lv, plan, true);
  const TrimPlan tp = compute_trim_plan(nl, lv, pc, plan, widths, 32);
  EXPECT_GT(tp.gap_words + tp.stable_words, 0u);
}

}  // namespace
}  // namespace udsim
