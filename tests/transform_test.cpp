// Netlist-transform tests: dead-logic sweep and constant propagation keep
// the observable behaviour; IR verifier catches malformed programs.
#include <gtest/gtest.h>

#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "ir/verify.h"
#include "lcc/lcc.h"
#include "netlist/transform.h"
#include "oracle/oracle.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(Transform, SweepRemovesUnreachableLogic) {
  Netlist nl("dead");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId live = nl.add_net("live");
  nl.add_gate(GateType::Not, {a}, live);
  nl.mark_primary_output(live);
  const NetId d1 = nl.add_net("d1");
  nl.add_gate(GateType::Buf, {a}, d1);
  const NetId d2 = nl.add_net("d2");
  nl.add_gate(GateType::And, {d1, a}, d2);
  const SweepResult r = sweep_dead_logic(nl);
  EXPECT_EQ(r.removed_gates, 2u);
  EXPECT_EQ(r.removed_nets, 2u);
  EXPECT_NO_THROW(r.netlist.validate());
  EXPECT_TRUE(r.remap[live.value].valid());
  EXPECT_FALSE(r.remap[d2.value].valid());
}

TEST(Transform, SweepPreservesOutputBehaviour) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 3;
  p.gates = 120;
  p.depth = 9;
  p.seed = 15;
  Netlist nl = random_dag(p);
  // random_dag makes all sinks POs; strip some so dead logic exists.
  Netlist pruned(nl.name());
  for (const Net& n : nl.nets()) (void)pruned.add_net(n.name);
  for (const Gate& g : nl.gates()) pruned.add_gate(g.type, g.inputs, g.output);
  for (NetId pi : nl.primary_inputs()) pruned.mark_primary_input(pi);
  for (std::size_t i = 0; i < 3 && i < nl.primary_outputs().size(); ++i) {
    pruned.mark_primary_output(nl.primary_outputs()[i]);
  }
  const SweepResult r = sweep_dead_logic(pruned);
  EXPECT_GT(r.removed_gates, 0u);

  OracleSim before(pruned);
  OracleSim after(r.netlist);
  RandomVectorSource src(pruned.primary_inputs().size(), 8);
  std::vector<Bit> v(pruned.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    const Waveform w1 = before.step(v);
    const Waveform w2 = after.step(v);
    for (NetId po : pruned.primary_outputs()) {
      ASSERT_EQ(w1.final_value(po), w2.final_value(r.remap[po.value]));
    }
  }
}

TEST(Transform, ConstantPropagationFolds) {
  Netlist nl("cp");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId zero = nl.add_net("zero");
  nl.add_gate(GateType::Const0, {}, zero);
  const NetId g1 = nl.add_net("g1");
  nl.add_gate(GateType::And, {a, zero}, g1);  // controlling 0 -> const 0
  const NetId g2 = nl.add_net("g2");
  nl.add_gate(GateType::Nor, {g1, zero}, g2);  // both const -> const 1
  const NetId out = nl.add_net("out");
  nl.add_gate(GateType::Xor, {a, g2}, out);  // stays live
  nl.mark_primary_output(out);
  const ConstPropResult r = propagate_constants(nl);
  EXPECT_EQ(r.folded_gates, 2u);
  EXPECT_NO_THROW(r.netlist.validate());
  // Behaviour preserved on settled values.
  LccSim<> s1(nl), s2(r.netlist);
  for (Bit v : {Bit{0}, Bit{1}}) {
    const Bit in[] = {v};
    s1.step(in);
    s2.step(in);
    EXPECT_EQ(s1.value(out), s2.value(out));
  }
}

TEST(Transform, ConstantPropagationPreservesFinalsOnRandomCircuits) {
  RandomDagParams p;
  p.inputs = 8;
  p.outputs = 4;
  p.gates = 90;
  p.depth = 8;
  p.seed = 19;
  Netlist nl = random_dag(p);
  // Tie two inputs to constants by rebuilding with const drivers.
  Netlist tied("tied");
  for (const Net& n : nl.nets()) (void)tied.add_net(n.name);
  const NetId pi0 = nl.primary_inputs()[0];
  const NetId pi1 = nl.primary_inputs()[1];
  tied.add_gate(GateType::Const0, {}, pi0);
  tied.add_gate(GateType::Const1, {}, pi1);
  for (const Gate& g : nl.gates()) tied.add_gate(g.type, g.inputs, g.output);
  for (std::size_t i = 2; i < nl.primary_inputs().size(); ++i) {
    tied.mark_primary_input(nl.primary_inputs()[i]);
  }
  for (NetId po : nl.primary_outputs()) tied.mark_primary_output(po);

  const ConstPropResult r = propagate_constants(tied);
  EXPECT_GT(r.folded_gates, 0u);
  LccSim<> s1(tied), s2(r.netlist);
  RandomVectorSource src(tied.primary_inputs().size(), 5);
  std::vector<Bit> v(tied.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    s1.step(v);
    s2.step(v);
    for (NetId po : tied.primary_outputs()) {
      ASSERT_EQ(s1.value(po), s2.value(po));
    }
  }
}

TEST(Verify, AcceptsEveryCompiledProgram) {
  const Netlist nl = test::fig4_network();
  EXPECT_EQ(verify_program(compile_lcc(nl).program), "");
  EXPECT_EQ(verify_program(compile_pcset(nl).program), "");
  for (ShiftElim se : {ShiftElim::None, ShiftElim::PathTracing, ShiftElim::CycleBreaking}) {
    for (bool trim : {false, true}) {
      ParallelOptions o;
      o.shift_elim = se;
      o.trimming = trim;
      EXPECT_EQ(verify_program(compile_parallel(nl, o).program), "");
    }
  }
}

TEST(Verify, CatchesOutOfBounds) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 2;
  p.input_words = 1;
  p.ops.push_back({OpCode::Copy, 0, 0, 5, 0});  // a out of bounds
  EXPECT_NE(verify_program(p), "");
  p.ops[0] = {OpCode::Copy, 0, 7, 1, 0};  // dst out of bounds
  EXPECT_NE(verify_program(p), "");
  p.ops[0] = {OpCode::LoadBit, 0, 0, 3, 0};  // input index out of bounds
  EXPECT_NE(verify_program(p), "");
}

TEST(Verify, CatchesBadShifts) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 3;
  p.ops.push_back({OpCode::Shl, 32, 0, 1, 0});  // shift == word size
  EXPECT_NE(verify_program(p), "");
  p.ops[0] = {OpCode::FunnelR, 0, 0, 1, 2};  // funnel by zero
  EXPECT_NE(verify_program(p), "");
  p.ops[0] = {OpCode::FunnelR, 31, 0, 1, 2};
  EXPECT_EQ(verify_program(p), "");
}

TEST(Verify, CatchesScratchReadBeforeWrite) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 3;  // word 0 persistent, 1-2 scratch
  p.ops.push_back({OpCode::Copy, 0, 0, 1, 0});  // read scratch 1 unwritten
  const std::uint32_t persistent[] = {0};
  EXPECT_NE(verify_program(p, {persistent}), "");
  p.ops.clear();
  p.ops.push_back({OpCode::Copy, 0, 1, 0, 0});  // write scratch 1 first
  p.ops.push_back({OpCode::Copy, 0, 0, 1, 0});
  EXPECT_EQ(verify_program(p, {persistent}), "");
}

}  // namespace
}  // namespace udsim
