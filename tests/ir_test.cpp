// IR executor and C emitter tests: every opcode, both word sizes.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "ir/c_emitter.h"
#include "ir/executor.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {
namespace {

template <class Word>
Word run_one(Op op, std::vector<Word> arena, std::vector<Word> in = {}) {
  Program p;
  p.word_bits = static_cast<int>(sizeof(Word) * 8);
  p.arena_words = static_cast<std::uint32_t>(arena.size());
  p.input_words = static_cast<std::uint32_t>(in.size());
  p.ops.push_back(op);
  execute<Word>(p, in, arena);
  return arena[op.dst];
}

TEST(Executor, BitwiseOps) {
  const std::uint32_t a = 0xf0f0a5a5u;
  const std::uint32_t b = 0x0ff033ccu;
  const std::vector<std::uint32_t> ar = {a, b, 0};
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::And, 0, 2, 0, 1}, ar), a & b);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Or, 0, 2, 0, 1}, ar), a | b);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Xor, 0, 2, 0, 1}, ar), a ^ b);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Nand, 0, 2, 0, 1}, ar), ~(a & b));
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Nor, 0, 2, 0, 1}, ar), ~(a | b));
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Xnor, 0, 2, 0, 1}, ar), ~(a ^ b));
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Not, 0, 2, 0, 0}, ar), ~a);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Copy, 0, 2, 1, 0}, ar), b);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Const, 1, 2, 0, 0}, ar), ~0u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Const, 0, 2, 0, 0}, ar), 0u);
}

TEST(Executor, AccumulateOps) {
  const std::vector<std::uint32_t> ar = {0xffff0000u, 0x00ffff00u};
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::AccAnd, 0, 0, 1, 0}, ar),
            0xffff0000u & 0x00ffff00u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::AccOr, 0, 0, 1, 0}, ar),
            0xffff0000u | 0x00ffff00u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::AccXor, 0, 0, 1, 0}, ar),
            0xffff0000u ^ 0x00ffff00u);
}

TEST(Executor, MaskedCopy) {
  const std::vector<std::uint32_t> ar = {0xaaaaaaaau, 0x55555555u, 0x0000ffffu};
  // dst = (dst & ~mask) | (a & mask)
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::MaskedCopy, 0, 0, 1, 2}, ar),
            (0xaaaaaaaau & ~0x0000ffffu) | (0x55555555u & 0x0000ffffu));
}

TEST(Executor, Loads) {
  const std::vector<std::uint32_t> in = {0x3u, 0x0u, 0xdeadbeefu};
  const std::vector<std::uint32_t> ar = {0u};
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::LoadBit, 0, 0, 0, 0}, ar, in), 1u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::LoadBcast, 0, 0, 0, 0}, ar, in), ~0u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::LoadBcast, 0, 0, 1, 0}, ar, in), 0u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::LoadWord, 0, 0, 2, 0}, ar, in),
            0xdeadbeefu);
}

TEST(Executor, BitExtractAndBroadcast) {
  const std::vector<std::uint32_t> ar = {0x80000001u, 0u};
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::ExtractBit, 31, 1, 0, 0}, ar), 1u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::ExtractBit, 30, 1, 0, 0}, ar), 0u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::BcastBit, 0, 1, 0, 0}, ar), ~0u);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::BcastBit, 1, 1, 0, 0}, ar), 0u);
}

TEST(Executor, Shifts) {
  const std::uint32_t a = 0x90000003u;
  const std::uint32_t lo = 0xc0000000u;
  const std::vector<std::uint32_t> ar = {a, lo, 0x000000ffu};
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Shl, 4, 2, 0, 0}, ar), a << 4);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::Shr, 4, 2, 0, 0}, ar), a >> 4);
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::ShlOr, 1, 2, 0, 0}, ar),
            0x000000ffu | (a << 1));
  // MaskShlOr: keep the low imm bits of dst, shift a over the rest.
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::MaskShlOr, 1, 2, 0, 0}, ar),
            (0x000000ffu & 1u) | (a << 1));
  // Funnels.
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::FunnelL, 1, 2, 0, 1}, ar),
            (a << 1) | (lo >> 31));
  EXPECT_EQ(run_one<std::uint32_t>({OpCode::FunnelR, 1, 2, 0, 1}, ar),
            (a >> 1) | (lo << 31));
}

TEST(Executor, SixtyFourBitWords) {
  const std::uint64_t a = 0xf0f0a5a5deadbeefull;
  std::vector<std::uint64_t> ar = {a, 0};
  Program p;
  p.word_bits = 64;
  p.arena_words = 2;
  p.ops.push_back({OpCode::FunnelR, 8, 1, 0, 0});
  execute<std::uint64_t>(p, {}, ar);
  EXPECT_EQ(ar[1], (a >> 8) | (a << 56));
}

TEST(Executor, ArenaInit) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 3;
  p.arena_init.push_back({1, 0xffffffffffffffffull});
  p.arena_init.push_back({2, 0x12345678ull});
  std::vector<std::uint32_t> ar(3, 0);
  initialize_arena<std::uint32_t>(p, ar);
  EXPECT_EQ(ar[0], 0u);
  EXPECT_EQ(ar[1], 0xffffffffu);  // truncated to word size
  EXPECT_EQ(ar[2], 0x12345678u);
}

TEST(Executor, ThreadedDispatchMatchesSwitchReference) {
  // Differential test: the computed-goto executor against the plain-switch
  // reference, over real generated programs of both techniques.
  const Netlist nl = make_iscas85_like("c432");
  RandomVectorSource src(nl.primary_inputs().size(), 19);
  std::vector<Bit> v(nl.primary_inputs().size());
  const ParallelCompiled par = compile_parallel(nl, {});
  const PCSetCompiled pcs = compile_pcset(nl);
  for (const Program* prog : {&par.program, &pcs.program}) {
    const Program& program = *prog;
    std::vector<std::uint32_t> a1(program.arena_words, 0), a2 = a1;
    initialize_arena<std::uint32_t>(program, a1);
    initialize_arena<std::uint32_t>(program, a2);
    std::vector<std::uint32_t> in(nl.primary_inputs().size());
    for (int step = 0; step < 10; ++step) {
      src.next(v);
      for (std::size_t i = 0; i < v.size(); ++i) in[i] = v[i];
      execute<std::uint32_t>(program, in, a1);
      execute_switch<std::uint32_t>(program, in, a2);
      ASSERT_EQ(a1, a2) << "step " << step;
    }
  }
}

TEST(CEmitter, StatementShapes) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 4;
  p.names = {"A", "B", "C", ""};
  CEmitOptions opts;
  opts.comments = false;
  opts.arena_name = "w";
  EXPECT_EQ(op_to_c(p, {OpCode::And, 0, 2, 0, 1}, opts), "w[2] = w[0] & w[1];");
  EXPECT_EQ(op_to_c(p, {OpCode::ShlOr, 1, 2, 0, 0}, opts), "w[2] |= w[0] << 1;");
  EXPECT_EQ(op_to_c(p, {OpCode::FunnelR, 4, 3, 0, 1}, opts),
            "w[3] = (w[0] >> 4) | (w[1] << 28);");
  EXPECT_EQ(op_to_c(p, {OpCode::LoadBit, 0, 0, 7, 0}, opts), "w[0] = in[7] & 1u;");
  EXPECT_EQ(op_to_c(p, {OpCode::ExtractBit, 31, 0, 1, 0}, opts),
            "w[0] = (w[1] >> 31) & 1u;");
}

TEST(CEmitter, FullProgramIsWellFormed) {
  Program p;
  p.word_bits = 32;
  p.arena_words = 2;
  p.input_words = 1;
  p.names = {"A", "B"};
  p.arena_init.push_back({1, 5});
  p.ops.push_back({OpCode::LoadBit, 0, 0, 0, 0});
  p.ops.push_back({OpCode::Not, 0, 1, 0, 0});
  std::ostringstream os;
  emit_c(os, p);
  const std::string s = os.str();
  EXPECT_NE(s.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(s.find("uint32_t udsim_arena[2];"), std::string::npos);
  EXPECT_NE(s.find("void udsim_step(const uint32_t *in)"), std::string::npos);
  EXPECT_NE(s.find("/* A */"), std::string::npos);
}

}  // namespace
}  // namespace udsim
