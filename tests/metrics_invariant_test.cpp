// Metrics-driven regression harness (ISSUE: observability layer).
//
// The counters are exact by construction — a straight-line program executes
// every op on every pass — so they double as correctness oracles:
//
//   1. exec.ops == compile.ops × sim.vectors, for random DAGs and for every
//      ISCAS-85 profile, across the compiled engines.
//   2. Shift-site ledger: retained + eliminated == total, the total matches
//      an independent structural recomputation from the netlist, and the
//      retained count matches the emitter's own tally.
//   3. run_batch payload counters are identical for 1, 2 and 5 worker
//      threads (seam-replay cost is attributed to batch.* separately).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "gen/random_dag.h"
#include "obs/metrics.h"
#include "parsim/parallel_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

std::vector<Bit> make_vectors(const Netlist& nl, std::size_t count) {
  std::vector<Bit> bits(count * nl.primary_inputs().size());
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (Bit& b : bits) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  return bits;
}

/// Drive `count` vectors through step() and check the dynamic-counter
/// identity against the compile-shape counters in the same registry.
/// `word_bits` follows the dispatch_width convention (0 = 32-bit default).
void check_step_identity(const Netlist& nl, EngineKind kind, std::size_t count,
                         int word_bits = 0) {
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, kind, guard, word_bits);
  const std::vector<Bit> bits = make_vectors(nl, count);
  const std::size_t pis = nl.primary_inputs().size();
  for (std::size_t v = 0; v < count; ++v) {
    sim->step(std::span<const Bit>(bits).subspan(v * pis, pis));
  }
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.contains("compile.ops")) << engine_name(kind);
  ASSERT_TRUE(snap.contains("exec.ops")) << engine_name(kind);
  EXPECT_EQ(snap.at("sim.vectors"), count) << engine_name(kind);
  EXPECT_EQ(snap.at("exec.ops"), snap.at("compile.ops") * count)
      << engine_name(kind) << " on " << nl.name();
  // Every op writes its destination word exactly once per pass.
  EXPECT_EQ(snap.at("exec.words_written"), snap.at("compile.ops") * count);
  // The compile traced its phases into the same registry.
  EXPECT_EQ(snap.at("compile.programs"), 1u);
  EXPECT_GE(snap.at("compile.total.calls"), 1u);
  EXPECT_GE(snap.at("compile.emit.calls"), 1u);
}

constexpr EngineKind kProfileEngines[] = {
    EngineKind::ParallelCombined, EngineKind::PCSet, EngineKind::ZeroDelayLcc};

class MetricsProfileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MetricsProfileTest, ExecutedOpsEqualStaticOpsTimesVectors) {
  const Netlist nl = make_iscas85_like(GetParam());
  for (EngineKind kind : kProfileEngines) {
    check_step_identity(nl, kind, 6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIscas85, MetricsProfileTest,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c2670", "c3540", "c5315",
                                           "c6288", "c7552"),
                         [](const auto& info) { return info.param; });

TEST(MetricsInvariant, ExecIdentityHoldsAtEveryLaneWidth) {
  // The counters are exact at 128/256-bit lanes too: lane width changes the
  // word type under the ops, never the op stream length (DESIGN.md §5j).
  for (const char* name : {"c432", "c880"}) {
    const Netlist nl = make_iscas85_like(name);
    for (int w : supported_widths()) {
      for (EngineKind kind : kProfileEngines) {
        check_step_identity(nl, kind, 4, w);
      }
    }
  }
}

TEST(MetricsInvariant, RandomDagsAcrossParallelVariants) {
  constexpr EngineKind kParallelKinds[] = {
      EngineKind::Parallel, EngineKind::ParallelTrimmed,
      EngineKind::ParallelPathTracing, EngineKind::ParallelCycleBreaking,
      EngineKind::ParallelCombined};
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    RandomDagParams params;
    params.name = "mdag" + std::to_string(seed);
    params.inputs = 12;
    params.outputs = 6;
    params.gates = 150;
    params.depth = 11;
    params.seed = seed;
    const Netlist nl = random_dag(params);
    for (EngineKind kind : kParallelKinds) {
      check_step_identity(nl, kind, 5);
    }
  }
}

TEST(MetricsInvariant, EventEnginesCountVectorsAndEvals) {
  const Netlist nl = test::fig4_network();
  MetricsRegistry reg;
  auto sim = make_simulator(nl, EngineKind::Event2);
  sim->set_metrics(&reg);
  const std::vector<Bit> v1{1, 1, 1};
  const std::vector<Bit> v2{0, 1, 1};
  sim->step(v1);
  sim->step(v2);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("sim.vectors"), 2u);
  EXPECT_GT(snap.at("event.gate_evals"), 0u);
  EXPECT_GT(snap.at("event.events"), 0u);
}

/// Independent structural recomputation of the shift-site total: one site
/// per distinct (gate, input net) pair plus one output site per
/// non-constant gate. The compiler must report the same universe no matter
/// which alignment it chose.
std::uint64_t structural_shift_sites(const Netlist& nl) {
  std::uint64_t total = 0;
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (is_constant(g.type)) continue;
    std::vector<std::uint32_t> seen;
    for (NetId in : g.inputs) {
      if (std::find(seen.begin(), seen.end(), in.value) != seen.end()) continue;
      seen.push_back(in.value);
      ++total;
    }
    ++total;
  }
  return total;
}

TEST(MetricsInvariant, ShiftSiteLedgerBalances) {
  std::vector<Netlist> circuits;
  circuits.push_back(test::fig11_network());
  circuits.push_back(test::unbalanced_reconvergence(4));
  circuits.push_back(make_iscas85_like("c432"));
  circuits.push_back(make_iscas85_like("c1355"));
  for (const Netlist& nl : circuits) {
    for (ShiftElim elim : {ShiftElim::None, ShiftElim::PathTracing,
                           ShiftElim::CycleBreaking}) {
      MetricsRegistry reg;
      const CompileGuard guard{CompileBudget{}, nullptr, &reg};
      ParallelOptions options;
      options.shift_elim = elim;
      const ParallelCompiled compiled = compile_parallel(nl, options, guard);
      const auto snap = reg.snapshot();
      const std::uint64_t total = snap.at("compile.shift_sites_total");
      const std::uint64_t retained = snap.at("compile.shift_sites_retained");
      const std::uint64_t eliminated = snap.at("compile.shift_sites_eliminated");
      EXPECT_EQ(retained + eliminated, total) << nl.name();
      EXPECT_EQ(total, structural_shift_sites(nl)) << nl.name();
      // The counter layer and the emitter tally retained sites
      // independently; they must agree.
      EXPECT_EQ(retained, compiled.stats.shift_sites) << nl.name();
    }
  }
}

TEST(MetricsInvariant, UnoptimizedModeRetainsEveryOutputSite) {
  // Paper §3: the unoptimized technique shifts after *every* gate, so every
  // output site is retained and no input site is (alignment = level - 1 on
  // every input path... except reconvergence keeps input shifts too). The
  // weaker, always-true statement: path tracing never retains more sites
  // than the unoptimized alignment.
  const Netlist nl = make_iscas85_like("c880");
  auto retained_for = [&](ShiftElim elim) {
    MetricsRegistry reg;
    const CompileGuard guard{CompileBudget{}, nullptr, &reg};
    ParallelOptions options;
    options.shift_elim = elim;
    (void)compile_parallel(nl, options, guard);
    return reg.snapshot().at("compile.shift_sites_retained");
  };
  EXPECT_LE(retained_for(ShiftElim::PathTracing), retained_for(ShiftElim::None));
}

/// Payload counters must be identical for every thread count; only batch.*
/// (seam replay, shard timings) and *.ns keys may differ.
std::map<std::string, std::uint64_t> filtered_snapshot(const MetricsRegistry& reg) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : reg.snapshot()) {
    if (name.size() >= 3 && name.compare(name.size() - 3, 3, ".ns") == 0) continue;
    if (name.rfind("batch.", 0) == 0) continue;
    out.emplace(name, value);
  }
  return out;
}

TEST(MetricsInvariant, BatchCountersAreThreadCountInvariant) {
  RandomDagParams params;
  params.name = "mbatch";
  params.inputs = 10;
  params.outputs = 5;
  params.gates = 120;
  params.depth = 9;
  const Netlist nl = random_dag(params);
  constexpr std::size_t kVectors = 90;  // 5 shards materialize at min_chunk 16
  const std::vector<Bit> bits = make_vectors(nl, kVectors);

  for (EngineKind kind : kProfileEngines) {
    MetricsRegistry compile_reg;
    const CompileGuard guard{CompileBudget{}, nullptr, &compile_reg};
    auto sim = make_simulator(nl, kind, guard);
    const std::uint64_t static_ops = compile_reg.snapshot().at("compile.ops");

    std::map<std::string, std::uint64_t> reference;
    for (unsigned threads : {1u, 2u, 5u}) {
      MetricsRegistry reg;
      sim->set_metrics(&reg);
      const BatchResult r = sim->run_batch(bits, threads);
      EXPECT_EQ(r.vectors, kVectors);
      const auto snap = filtered_snapshot(reg);
      EXPECT_EQ(snap.at("sim.vectors"), kVectors) << engine_name(kind);
      EXPECT_EQ(snap.at("exec.ops"), static_ops * kVectors) << engine_name(kind);
      if (threads == 1) {
        reference = snap;
      } else {
        EXPECT_EQ(snap, reference)
            << engine_name(kind) << " at " << threads << " threads";
      }
      // The sharding cost is visible, just attributed separately.
      const auto full = reg.snapshot();
      EXPECT_EQ(full.at("batch.runs"), 1u);
      if (threads == 5) {
        EXPECT_EQ(full.at("batch.shards"), 5u);
        EXPECT_EQ(full.at("batch.seam_vectors"), 4u);
        EXPECT_EQ(full.at("batch.seam_ops"), static_ops * 4);
      }
    }
  }
}

TEST(MetricsInvariant, DisabledMetricsLeaveNoTrace) {
  const Netlist nl = test::fig4_network();
  auto sim = make_simulator(nl, EngineKind::ParallelCombined);
  EXPECT_EQ(sim->metrics(), nullptr);
  const std::vector<Bit> v{1, 0, 1};
  sim->step(v);  // must not crash without a registry
  MetricsRegistry reg;
  sim->set_metrics(&reg);
  sim->step(v);
  EXPECT_EQ(reg.counter("sim.vectors").value(), 1u);
  sim->set_metrics(nullptr);
  sim->step(v);
  EXPECT_EQ(reg.counter("sim.vectors").value(), 1u);  // detached: unchanged
}

TEST(MetricsInvariant, TrimmingExtrasScaleWithVectors) {
  const Netlist nl = make_iscas85_like("c880");
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  const std::vector<Bit> bits = make_vectors(nl, 3);
  const std::size_t pis = nl.primary_inputs().size();
  for (std::size_t v = 0; v < 3; ++v) {
    sim->step(std::span<const Bit>(bits).subspan(v * pis, pis));
  }
  const auto snap = reg.snapshot();
  // Per-pass extras follow the same static × passes law.
  EXPECT_EQ(snap.at("exec.trimmed_stores_skipped"),
            snap.at("compile.suppressed_stores") * 3);
  EXPECT_EQ(snap.at("exec.gap_words_filled"), snap.at("compile.words_gap") * 3);
}

}  // namespace
}  // namespace udsim
