// Asynchronous (cyclic) event-driven simulation tests: latches built from
// cross-coupled gates, oscillation detection, and agreement with the
// synchronous engine on acyclic circuits.
#include <gtest/gtest.h>

#include "eventsim/async_sim.h"
#include "eventsim/event_sim.h"
#include "gen/random_dag.h"
#include "harness/vectors.h"
#include "test_util.h"

namespace udsim {
namespace {

/// Cross-coupled NOR SR latch: Q = NOR(R, QB), QB = NOR(S, Q).
Netlist sr_latch() {
  Netlist nl("sr");
  const NetId s = nl.add_net("S");
  const NetId r = nl.add_net("R");
  nl.mark_primary_input(s);
  nl.mark_primary_input(r);
  const NetId q = nl.add_net("Q");
  const NetId qb = nl.add_net("QB");
  nl.add_gate(GateType::Nor, {r, qb}, q);
  nl.add_gate(GateType::Nor, {s, q}, qb);
  nl.mark_primary_output(q);
  nl.mark_primary_output(qb);
  return nl;
}

TEST(Async, SrLatchSetHoldResetHold) {
  const Netlist nl = sr_latch();
  EXPECT_FALSE(nl.is_acyclic());
  AsyncEventSim sim(nl);
  const NetId q = *nl.find_net("Q");
  const NetId qb = *nl.find_net("QB");

  const Bit set[] = {1, 0};
  auto r = sim.step(set);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(sim.value(q), 1);
  EXPECT_EQ(sim.value(qb), 0);

  const Bit hold[] = {0, 0};
  r = sim.step(hold);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(sim.value(q), 1);  // state retained through the feedback loop
  EXPECT_EQ(sim.value(qb), 0);

  const Bit reset[] = {0, 1};
  r = sim.step(reset);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(sim.value(q), 0);
  EXPECT_EQ(sim.value(qb), 1);

  r = sim.step(hold);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(sim.value(q), 0);
  EXPECT_EQ(sim.value(qb), 1);
}

TEST(Async, SrLatchForbiddenRelease) {
  // S=R=1 drives Q=QB=0; releasing both simultaneously makes the
  // equal-delay latch oscillate (the classic metastability model).
  const Netlist nl = sr_latch();
  AsyncEventSim sim(nl);
  const Bit both[] = {1, 1};
  auto r = sim.step(both);
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(sim.value(*nl.find_net("Q")), 0);
  EXPECT_EQ(sim.value(*nl.find_net("QB")), 0);
  const Bit release[] = {0, 0};
  r = sim.step(release, 200);
  EXPECT_FALSE(r.settled);
  EXPECT_TRUE(r.oscillating);
}

TEST(Async, RingOscillatorDetected) {
  // NOT gate feeding itself through two buffers: period 6, never settles.
  Netlist nl("ring");
  const NetId en = nl.add_net("en");
  nl.mark_primary_input(en);
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  nl.add_gate(GateType::Nand, {en, c}, a);  // enable gate
  nl.add_gate(GateType::Buf, {a}, b);
  nl.add_gate(GateType::Buf, {b}, c);
  nl.mark_primary_output(c);
  AsyncEventSim sim(nl);
  const Bit off[] = {0};
  auto r = sim.step(off);
  EXPECT_TRUE(r.settled);  // disabled: a = 1, stable
  const Bit on[] = {1};
  r = sim.step(on, 500);
  EXPECT_TRUE(r.oscillating);
  EXPECT_FALSE(r.settled);
  EXPECT_GT(r.events, 100u);  // kept toggling until the bound
  // The 3-stage loop has a 6-gate-delay limit cycle.
  EXPECT_EQ(r.period, 6);
}

TEST(Async, SrRacePeriodDetected) {
  // The forbidden-release race toggles Q and QB in lockstep every delay:
  // a period-2 limit cycle.
  const Netlist nl = sr_latch();
  AsyncEventSim sim(nl);
  const Bit both[] = {1, 1};
  (void)sim.step(both);
  const Bit release[] = {0, 0};
  const auto r = sim.step(release, 100);
  EXPECT_TRUE(r.oscillating);
  EXPECT_EQ(r.period, 2);
}

TEST(Async, GateLevelDLatch) {
  // Transparent latch: Q = NOR(R', QB), QB = NOR(S', Q) with
  // S' = AND(D, EN), R' = AND(NOT D, EN).
  Netlist nl("dlatch");
  const NetId d = nl.add_net("D");
  const NetId en = nl.add_net("EN");
  nl.mark_primary_input(d);
  nl.mark_primary_input(en);
  const NetId dn = nl.add_net("DN");
  nl.add_gate(GateType::Not, {d}, dn);
  const NetId s = nl.add_net("S");
  nl.add_gate(GateType::And, {d, en}, s);
  const NetId r = nl.add_net("R");
  nl.add_gate(GateType::And, {dn, en}, r);
  const NetId q = nl.add_net("Q");
  const NetId qb = nl.add_net("QB");
  nl.add_gate(GateType::Nor, {r, qb}, q);
  nl.add_gate(GateType::Nor, {s, q}, qb);
  nl.mark_primary_output(q);

  AsyncEventSim sim(nl);
  // Load a 1, close the latch, change D: Q must hold.
  const Bit load1[] = {1, 1};
  EXPECT_TRUE(sim.step(load1).settled);
  EXPECT_EQ(sim.value(q), 1);
  const Bit close_d0[] = {0, 0};
  EXPECT_TRUE(sim.step(close_d0).settled);
  EXPECT_EQ(sim.value(q), 1);  // held
  const Bit load0[] = {0, 1};
  EXPECT_TRUE(sim.step(load0).settled);
  EXPECT_EQ(sim.value(q), 0);
  const Bit close_d1[] = {1, 0};
  EXPECT_TRUE(sim.step(close_d1).settled);
  EXPECT_EQ(sim.value(q), 0);  // held
}

TEST(Async, MatchesSynchronousEngineOnAcyclicCircuits) {
  RandomDagParams p;
  p.inputs = 10;
  p.outputs = 5;
  p.gates = 120;
  p.depth = 10;
  p.seed = 64;
  p.max_delay = 3;
  const Netlist nl = random_dag(p);
  AsyncEventSim async_sim(nl);
  EventSim2 sync_sim(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 12);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < 20; ++i) {
    src.next(v);
    const auto r = async_sim.step(v);
    ASSERT_TRUE(r.settled);
    sync_sim.step(v);
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      ASSERT_EQ(async_sim.value(NetId{n}), sync_sim.value(NetId{n}))
          << nl.net(NetId{n}).name;
    }
  }
}

TEST(Async, SettleTimeIsBoundedByCriticalPath) {
  const Netlist nl = test::xor_chain(20);
  AsyncEventSim sim(nl);
  const Bit v1[] = {1, 0};
  (void)sim.step(v1);
  const Bit v2[] = {1, 1};
  const auto r = sim.step(v2);
  EXPECT_TRUE(r.settled);
  EXPECT_LE(r.settle_time, 20);
  EXPECT_GT(r.settle_time, 0);
}

}  // namespace
}  // namespace udsim
