// The reporting subsystem end-to-end (obs/report.h, obs/bench_report.h):
// RunReport composition through the Simulator facade, and the
// bench-regression harness — collection, schema, exact-counter invariants,
// and the baseline checker's pass/drift/coverage/throughput verdicts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compile_budget.h"
#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "gen/iscas_profiles.h"
#include "netlist/bench_io.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace udsim {
namespace {

std::vector<Bit> stream_for(const Netlist& nl, std::size_t vectors) {
  std::vector<Bit> bits(vectors * nl.primary_inputs().size());
  std::uint64_t x = 88172645463325252ull;
  for (auto& b : bits) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  return bits;
}

TEST(RunReport, ComposesCountersHistogramsProfileAndTrace) {
  const Netlist nl = make_iscas85_like("c432");
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  (void)sim->run_batch(stream_for(nl, 32), 2);

  const JsonValue doc = JsonValue::parse(sim->report_to_json());
  EXPECT_EQ(doc.at("schema").string, "udsim-run-report-v1");
  EXPECT_EQ(doc.at("engine").string, engine_name(EngineKind::ParallelCombined));
  EXPECT_EQ(doc.at("circuit").string, nl.name());
  const JsonValue& counters = doc.at("counters");
  EXPECT_EQ(counters.at("sim.vectors").as_u64(), 32u);
  EXPECT_EQ(counters.at("exec.ops").as_u64(),
            counters.at("compile.ops").as_u64() * 32u);
  // Histograms: the per-shard latencies and the deterministic program-shape
  // distribution recorded at attach.
  const JsonValue& hists = doc.at("histograms");
  EXPECT_TRUE(hists.has("batch.shard.us"));
  EXPECT_TRUE(hists.has("exec.program_ops"));
  EXPECT_GE(hists.at("batch.shard.us").at("count").as_u64(), 1u);
  // Profile: levels plus unattributed sum to the total (spot-check ops).
  const JsonValue& profile = doc.at("profile");
  std::uint64_t level_ops = profile.at("unattributed").at("cost").at("ops").as_u64();
  for (const JsonValue& l : profile.at("levels").array) {
    level_ops += l.at("cost").at("ops").as_u64();
  }
  EXPECT_EQ(level_ops, profile.at("total").at("ops").as_u64());
  EXPECT_EQ(profile.at("total").at("ops").as_u64(),
            counters.at("compile.ops").as_u64());
  // Trace: compile spans and batch shards made it into the document.
  ASSERT_TRUE(doc.at("trace").is_array());
  EXPECT_FALSE(doc.at("trace").array.empty());
}

TEST(RunReport, DeterministicModeDropsTimingsAndTrace) {
  const Netlist nl = make_iscas85_like("c432");
  MetricsRegistry reg;
  const CompileGuard guard{CompileBudget{}, nullptr, &reg};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);
  (void)sim->run_batch(stream_for(nl, 16), 2);

  const std::string j = sim->report_to_json({.include_timings = false});
  const JsonValue doc = JsonValue::parse(j);
  EXPECT_FALSE(doc.has("trace"));
  for (const auto& [name, value] : doc.at("counters").object) {
    EXPECT_EQ(name.find(".ns"), std::string::npos) << name;
  }
  EXPECT_FALSE(doc.at("histograms").has("batch.shard.us"));
  EXPECT_TRUE(doc.at("histograms").has("exec.program_ops"));
}

TEST(RunReport, CarriesDiagnostics) {
  const Netlist nl = make_iscas85_like("c432");
  MetricsRegistry reg;
  auto sim = make_simulator(nl, EngineKind::ZeroDelayLcc);
  sim->set_metrics(&reg);
  Diagnostics diag;
  diag.report(DiagCode::GapWordFallback, DiagSeverity::Note, "subject",
              "message text");
  const JsonValue doc = JsonValue::parse(report_to_json(*sim, &diag));
  ASSERT_TRUE(doc.has("diagnostics"));
  ASSERT_EQ(doc.at("diagnostics").array.size(), 1u);
  EXPECT_EQ(doc.at("diagnostics").array[0].at("subject").string, "subject");
}

TEST(RunReport, DetachedRegistryStillYieldsProfile) {
  const Netlist nl = make_iscas85_like("c432");
  auto sim = make_simulator(nl, EngineKind::ParallelCombined);
  const JsonValue doc = JsonValue::parse(sim->report_to_json());
  EXPECT_TRUE(doc.at("counters").object.empty());
  EXPECT_TRUE(doc.has("profile"));
  EXPECT_GT(doc.at("profile").at("total").at("ops").as_u64(), 0u);
}

class BenchReportFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kVectors = 16;

  static const BenchReport& report() {
    static const BenchReport r = [] {
      static const Netlist c432 = make_iscas85_like("c432");
      static const Netlist c17 = read_bench_file(UDSIM_DATA_DIR "/c17.bench");
      BenchRunConfig cfg;
      cfg.vectors = kVectors;
      cfg.trials = 1;
      cfg.batch_threads = 2;
      return run_bench_report({{"c432", &c432}, {"c17", &c17}}, cfg);
    }();
    return r;
  }
};

TEST_F(BenchReportFixture, CoversCircuitsTimesEnginesWithSchema) {
  const BenchReport& r = report();
  const std::size_t widths = supported_widths().size();
  ASSERT_EQ(r.circuits.size(), 2u);
  for (const BenchCircuitResult& c : r.circuits) {
    // 3 sequential engines + 1 batch row (ParallelCombined @ 2 threads) +
    // one lcc-packed row per available lane width (DESIGN.md §5j).
    ASSERT_EQ(c.engines.size(), 4u + widths);
    EXPECT_GT(c.gates, 0u);
    EXPECT_EQ(c.engines[0].engine, "zero-delay-lcc");
    EXPECT_EQ(c.engines[1].engine, "pcset");
    EXPECT_EQ(c.engines[2].engine, "parallel-combined");
    EXPECT_EQ(c.engines[3].engine, "parallel-combined");
    EXPECT_EQ(c.engines[3].threads, 2u);
    for (std::size_t i = 0; i < widths; ++i) {
      EXPECT_EQ(c.engines[4 + i].engine, "lcc-packed");
      EXPECT_EQ(c.engines[4 + i].word_bits, supported_widths()[i]);
    }
  }
  const JsonValue doc = JsonValue::parse(r.to_json());
  EXPECT_EQ(doc.at("schema").string, kBenchReportSchema);
  for (const char* key :
       {"vectors", "seed", "trials", "batch_threads", "word_bits", "circuits"}) {
    EXPECT_TRUE(doc.has(key)) << key;
  }
  const JsonValue& row = doc.at("circuits").array[0].at("engines").array[0];
  for (const char* key : {"engine", "threads", "word_bits", "seconds",
                          "vectors_per_sec", "us_per_vector", "exact"}) {
    EXPECT_TRUE(row.has(key)) << key;
  }
}

TEST_F(BenchReportFixture, ExactCountersObeyTheCompiledInvariants) {
  for (const BenchCircuitResult& c : report().circuits) {
    for (const BenchEngineResult& e : c.engines) {
      ASSERT_TRUE(e.exact.contains("exec.ops")) << c.circuit << "/" << e.engine;
      ASSERT_TRUE(e.exact.contains("compile.ops"));
      ASSERT_TRUE(e.exact.contains("sim.vectors"));
      if (e.engine == "lcc-packed") {
        // Packed rows retire word_bits vectors per executor pass, so the
        // pass count — not the vector count — scales the dynamic cost.
        const std::uint64_t passes =
            (kVectors + static_cast<std::uint64_t>(e.word_bits) - 1) /
            static_cast<std::uint64_t>(e.word_bits);
        EXPECT_EQ(e.exact.at("sim.vectors"), passes)
            << c.circuit << " packed w" << e.word_bits;
        EXPECT_EQ(e.exact.at("exec.ops"), e.exact.at("compile.ops") * passes)
            << c.circuit << " packed w" << e.word_bits;
        EXPECT_EQ(e.exact.at("packed.vectors"), kVectors);
        EXPECT_EQ(e.exact.at("packed.lanes"),
                  static_cast<std::uint64_t>(e.word_bits));
        continue;
      }
      EXPECT_EQ(e.exact.at("sim.vectors"), kVectors);
      // The compiled-simulation law: dynamic cost = static cost × passes.
      EXPECT_EQ(e.exact.at("exec.ops"),
                e.exact.at("compile.ops") * kVectors)
          << c.circuit << "/" << e.engine << "@" << e.threads;
      EXPECT_TRUE(e.exact.contains("compile.peak_bytes"));
      EXPECT_GT(e.exact.at("compile.peak_bytes"), 0u);
    }
  }
}

TEST_F(BenchReportFixture, CheckFlagsDisappearedWidthRow) {
  // A previously-available lane width vanishing from the report is a
  // coverage loss, not a silent pass (acceptance: a baseline with a w256
  // row must fail --check on a build that lost the lane).
  BenchReport lost = report();
  const JsonValue baseline = JsonValue::parse(report().to_json());
  auto& engines = lost.circuits.front().engines;
  ASSERT_EQ(engines.back().engine, "lcc-packed");
  engines.pop_back();  // drop the widest packed row
  const auto violations = check_bench_report(lost, baseline);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("coverage"), std::string::npos);
}

TEST_F(BenchReportFixture, CheckPassesAgainstItsOwnSerialization) {
  const BenchReport& r = report();
  const JsonValue baseline = JsonValue::parse(r.to_json());
  EXPECT_TRUE(check_bench_report(r, baseline).empty());
}

TEST_F(BenchReportFixture, CheckFlagsInjectedCounterDrift) {
  BenchReport drifted = report();  // copy
  const JsonValue baseline = JsonValue::parse(report().to_json());
  drifted.circuits.front().engines.front().exact["exec.ops"] += 1;
  const auto violations = check_bench_report(drifted, baseline);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("exec.ops"), std::string::npos);
  EXPECT_NE(violations[0].find("drifted"), std::string::npos);
}

TEST_F(BenchReportFixture, CheckFlagsCoverageLossAndGeometryMismatch) {
  BenchReport shrunk = report();
  const JsonValue baseline = JsonValue::parse(report().to_json());
  shrunk.circuits.pop_back();
  const auto violations = check_bench_report(shrunk, baseline);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("coverage"), std::string::npos);

  BenchReport regeo = report();
  regeo.vectors += 1;
  const auto geo = check_bench_report(regeo, baseline);
  ASSERT_EQ(geo.size(), 1u);
  EXPECT_NE(geo[0].find("geometry"), std::string::npos);
}

TEST_F(BenchReportFixture, CheckFlagsThroughputRegressionOnlyWhenEnabled) {
  const BenchReport& r = report();
  JsonValue baseline = JsonValue::parse(r.to_json());
  // Pretend the baseline machine was 1000x faster than this run.
  for (auto& [ckey, circuit] : baseline.object) {
    if (ckey != "circuits") continue;
    for (JsonValue& c : circuit.array) {
      for (auto& [ekey, engines] : c.object) {
        if (ekey != "engines") continue;
        for (JsonValue& e : engines.array) {
          for (auto& [key, value] : e.object) {
            if (key == "vectors_per_sec") {
              value = JsonValue::make_double(value.as_double() * 1000.0 + 1e9);
            }
          }
        }
      }
    }
  }
  const auto violations = check_bench_report(r, baseline);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("throughput"), std::string::npos);
  EXPECT_TRUE(
      check_bench_report(r, baseline, {.check_throughput = false}).empty());
}

TEST(BenchReportCheck, RejectsForeignSchema) {
  const BenchReport empty;
  const JsonValue bad = JsonValue::parse(R"({"schema": "something-else"})");
  const auto violations = check_bench_report(empty, bad);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("schema"), std::string::npos);
  const auto not_report = check_bench_report(empty, JsonValue::parse("[]"));
  ASSERT_EQ(not_report.size(), 1u);
}

}  // namespace
}  // namespace udsim
