// Pattern-file round-trips and malformed-input diagnostics: a
// write → read → write cycle must be byte-identical, header reorders must
// remap columns, and every parse failure must carry its source line number.
#include "core/pattern_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "test_util.h"

namespace udsim {
namespace {

PatternSet patterns_of(const Netlist& nl, std::initializer_list<int> bits) {
  PatternSet ps;
  ps.inputs = nl.primary_inputs().size();
  for (int b : bits) ps.bits.push_back(static_cast<Bit>(b));
  return ps;
}

TEST(PatternIo, WriteReadWriteIsByteIdentical) {
  const Netlist nl = test::fig4_network();  // inputs A B C
  const PatternSet ps = patterns_of(nl, {1, 0, 1, 0, 1, 1, 0, 0, 0});
  std::ostringstream first;
  write_patterns(first, nl, ps);
  std::istringstream in(first.str());
  const PatternSet reread = read_patterns(in, nl);
  EXPECT_EQ(reread.inputs, ps.inputs);
  EXPECT_EQ(reread.bits, ps.bits);
  std::ostringstream second;
  write_patterns(second, nl, reread);
  EXPECT_EQ(first.str(), second.str());
}

TEST(PatternIo, HeaderReorderRemapsColumns) {
  const Netlist nl = test::fig4_network();
  std::istringstream in(
      "inputs C B A\n"
      "100\n");
  const PatternSet ps = read_patterns(in, nl);
  ASSERT_EQ(ps.count(), 1u);
  // Column 1 of the file is C=1; netlist order is A B C.
  EXPECT_EQ(ps.row(0)[0], 0);  // A
  EXPECT_EQ(ps.row(0)[1], 0);  // B
  EXPECT_EQ(ps.row(0)[2], 1);  // C
}

TEST(PatternIo, CommentsAndBlanksAreSkipped) {
  const Netlist nl = test::fig4_network();
  std::istringstream in(
      "# a comment\n"
      "\n"
      "101  # trailing comment\n");
  const PatternSet ps = read_patterns(in, nl);
  EXPECT_EQ(ps.count(), 1u);
}

void expect_parse_error(const Netlist& nl, const std::string& text,
                        const std::string& want_line,
                        const std::string& want_detail) {
  std::istringstream in(text);
  try {
    (void)read_patterns(in, nl);
    FAIL() << "expected PatternParseError for: " << text;
  } catch (const PatternParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(want_line), std::string::npos) << msg;
    EXPECT_NE(msg.find(want_detail), std::string::npos) << msg;
  }
}

TEST(PatternIo, MalformedInputsRaiseWithLineNumbers) {
  const Netlist nl = test::fig4_network();
  expect_parse_error(nl, "101\n1x1\n", "line 2", "bits must be 0 or 1");
  expect_parse_error(nl, "# c\n10\n", "line 2", "expected 3 bits");
  expect_parse_error(nl, "inputs A B NOPE\n", "line 1", "unknown input 'NOPE'");
  expect_parse_error(nl, "inputs A B\n", "line 1",
                     "header must name every primary input once");
  expect_parse_error(nl, "101\ninputs A B C\n", "line 2",
                     "header must precede all vectors");
  expect_parse_error(nl, "101 junk\n", "line 1", "trailing tokens");
}

TEST(PatternIo, RowWidthChangeMidStreamNamesBothWidthsAndLines) {
  const Netlist nl = test::fig4_network();  // 3 primary inputs
  // A narrower AND a wider row must both be diagnosed as a mid-stream width
  // change naming the offending width, the established width, and both line
  // numbers — not as a generic wrong-width row.
  expect_parse_error(nl, "101\n10\n", "line 2", "row width changed mid-stream");
  expect_parse_error(nl, "# c\n101\n\n1010\n", "line 4",
                     "4 bits here vs 3 on line 2");
  // Comments and blank lines between rows must not reset the tracking.
  expect_parse_error(nl, "101\n# note\n\n11\n", "line 4",
                     "2 bits here vs 3 on line 1");
}

TEST(PatternIo, ResponsesCarryOutputHeader) {
  const Netlist nl = test::fig4_network();  // one output: E
  std::ostringstream out;
  const std::vector<Bit> responses{1, 0, 1};
  write_responses(out, nl, responses);
  EXPECT_EQ(out.str(), "outputs E\n1\n0\n1\n");
}

}  // namespace
}  // namespace udsim
