// ThreadPool shutdown hardening (ISSUE 7 satellite): destruction under load
// drains deterministically (every queued task runs or was explicitly
// cancelled — captured state is never leaked into a detached thread),
// submit/parallel_for after shutdown throw instead of silently swallowing
// work, and shutdown(Cancel) reports exactly how many queued tasks it
// discarded. Runs in the `threads` label binary so -DUDSIM_TSAN=ON covers
// the teardown races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace udsim {
namespace {

TEST(ThreadPoolTest, DestructorDrainsEveryQueuedTask) {
  constexpr int kTasks = 200;
  auto ran = std::make_shared<std::atomic<int>>(0);
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran->fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruct immediately, with most tasks still queued: Drain mode must
    // run them all before joining.
  }
  EXPECT_EQ(ran->load(), kTasks);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopped());
  EXPECT_EQ(pool.shutdown(), 0u);
  EXPECT_TRUE(pool.stopped());
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}), std::runtime_error);
  // A zero-trip loop after shutdown is a no-op, not an error.
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) {}));
  // Idempotent: a second shutdown is a clean no-op.
  EXPECT_EQ(pool.shutdown(), 0u);
}

TEST(ThreadPoolTest, CancelShutdownDiscardsQueuedTasksDeterministically) {
  ThreadPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> ran{0};
  // Occupy the single worker, then queue tasks behind it. Wait for the
  // blocker to actually start: only a task already *dequeued* is exempt
  // from the Cancel-mode discard, so the count below is exact.
  pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  started.get_future().wait();
  constexpr int kQueued = 6;
  for (int i = 0; i < kQueued; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Cancel-mode shutdown from another thread: it swaps the queue out first
  // (so the count is exact), then blocks joining until the in-flight task
  // finishes.
  std::promise<std::size_t> discarded_p;
  std::thread t([&] {
    discarded_p.set_value(pool.shutdown(ThreadPool::ShutdownMode::Cancel));
  });
  // The queue swap and the stop flag flip in the same critical section, so
  // once stopped() reads true the discard has happened — only then release
  // the in-flight task and let the join finish.
  while (!pool.stopped()) std::this_thread::yield();
  release.set_value();
  t.join();
  EXPECT_EQ(discarded_p.get_future().get(), static_cast<std::size_t>(kQueued));
  EXPECT_EQ(ran.load(), 0) << "cancelled tasks must not run";
}

TEST(ThreadPoolTest, CancelledTaskStateIsDestroyedOnCallerThread) {
  // The captured shared_ptr of a discarded task must be released by
  // shutdown() itself — not leaked, not freed later by a dying worker.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.submit([gate] { gate.wait(); });
  auto captured = std::make_shared<int>(7);
  pool.submit([captured] {});
  std::weak_ptr<int> watch = captured;
  captured.reset();
  ASSERT_FALSE(watch.expired()) << "the queued task holds the state";
  std::thread t([&] { (void)pool.shutdown(ThreadPool::ShutdownMode::Cancel); });
  // The discard happens before the join blocks, so the state dies promptly
  // even while the in-flight task is still running.
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!watch.expired() && std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(watch.expired());
  release.set_value();
  t.join();
}

TEST(ThreadPoolTest, ParallelForSurvivesConcurrentDestructionRace) {
  // Hammer construction/destruction while parallel_for loops run: no UAF
  // on the body, every completed loop saw all its indices (TSAN holds the
  // memory side; the counters hold the logic side).
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(3);
    std::atomic<int> sum{0};
    pool.parallel_for(32, [&sum](std::size_t) {
      sum.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 32);
  }
}

}  // namespace
}  // namespace udsim
