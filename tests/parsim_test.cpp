// Parallel-technique tests: bit-field contents (paper Figs. 6-7), full
// waveform agreement with the oracle for every optimization combination and
// both word sizes, and generated-code statistics.
#include <gtest/gtest.h>

#include <set>

#include "gen/random_dag.h"
#include "ir/c_emitter.h"
#include "lcc/lcc.h"
#include "harness/vectors.h"
#include "oracle/oracle.h"
#include "parsim/parallel_sim.h"
#include "test_util.h"

namespace udsim {
namespace {

TEST(ParallelSim, Fig7BitFields) {
  // Paper Fig. 7: network of Fig. 2 (= our fig4), vector A=B=C=1 from the
  // all-zero state: A=B=C=111, D=110, E=100 (bit t = value at time t).
  const Netlist nl = test::fig4_network();
  ParallelSim<> sim(nl);
  const Bit v[] = {1, 1, 1};
  sim.step(v);
  const auto field_bits = [&](const char* name) {
    const NetId n = *nl.find_net(name);
    std::string s;
    for (int t = 0; t <= 2; ++t) s += sim.value_at(n, t) ? '1' : '0';
    return s;  // low bit (time 0) first
  };
  EXPECT_EQ(field_bits("A"), "111");
  EXPECT_EQ(field_bits("B"), "111");
  EXPECT_EQ(field_bits("C"), "111");
  EXPECT_EQ(field_bits("D"), "011");  // rises at t=1
  EXPECT_EQ(field_bits("E"), "001");  // rises at t=2
}

struct ParCase {
  const char* label;
  ParallelOptions options;
};

class ParallelEquivalence : public ::testing::TestWithParam<ParCase> {};

void check_waveforms(const Netlist& nl, const ParallelOptions& options,
                     int vectors, std::uint64_t seed) {
  OracleSim oracle(nl);
  ParallelSim<> sim(nl, options);
  RandomVectorSource src(nl.primary_inputs().size(), seed);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (int i = 0; i < vectors; ++i) {
    src.next(v);
    const Waveform wf = oracle.step(v);
    sim.step(v);
    // Vector 0 drains the (possibly inconsistent) all-zero construction
    // state; trimming's stable/gap broadcasts presume a settled state, so
    // assertions start at vector 1.
    if (i == 0) continue;
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      const int a = sim.compiled().plan.net_align[n];
      for (int t = std::max(a, 0); t <= oracle.depth(); ++t) {
        ASSERT_EQ(sim.value_at(NetId{n}, t), wf.at(NetId{n}, t))
            << nl.net(NetId{n}).name << " t=" << t << " vector " << i << " ["
            << nl.name() << "]";
      }
      // Times before the alignment carry the previous vector's final value.
      if (i > 0 && a > 0) {
        ASSERT_EQ(sim.value_at(NetId{n}, 0), wf.at(NetId{n}, 0));
      }
    }
  }
}

TEST_P(ParallelEquivalence, MatchesOracleOnSuite) {
  const ParallelOptions options = GetParam().options;
  // Small didactic networks.
  check_waveforms(test::fig4_network(), options, 12, 1);
  check_waveforms(test::fig11_network(), options, 12, 2);
  check_waveforms(test::unbalanced_reconvergence(3), options, 12, 3);
  check_waveforms(test::unbalanced_reconvergence(6), options, 12, 4);
  // Deep chain: multi-word fields even at 32-bit words.
  check_waveforms(test::xor_chain(70), options, 8, 5);
  // Wired nets (lowered).
  {
    Netlist w = test::wired_network(WiredKind::And);
    lower_wired_nets(w);
    check_waveforms(w, options, 16, 6);
    Netlist w2 = test::wired_network(WiredKind::Or);
    lower_wired_nets(w2);
    check_waveforms(w2, options, 16, 7);
  }
  // Random DAGs: narrow and wide PC-sets, one deeper than a word.
  for (auto [gates, depth, reach, seed] :
       {std::tuple{120, 10, 0.4, 10}, {120, 10, 2.5, 11}, {260, 40, 1.2, 12}}) {
    RandomDagParams p;
    p.inputs = 12;
    p.outputs = 6;
    p.gates = static_cast<std::size_t>(gates);
    p.depth = depth;
    p.reach = reach;
    p.seed = static_cast<std::uint64_t>(seed);
    p.xor_fraction = 0.2;
    check_waveforms(random_dag(p), options, 10, 13);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ParallelEquivalence,
    ::testing::Values(
        ParCase{"unopt", {false, ShiftElim::None, 32}},
        ParCase{"trim", {true, ShiftElim::None, 32}},
        ParCase{"pt", {false, ShiftElim::PathTracing, 32}},
        ParCase{"pt_trim", {true, ShiftElim::PathTracing, 32}},
        ParCase{"cb", {false, ShiftElim::CycleBreaking, 32}},
        ParCase{"cb_trim", {true, ShiftElim::CycleBreaking, 32}}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(ParallelSim, SixtyFourBitWordsMatchOracle) {
  for (ShiftElim se : {ShiftElim::None, ShiftElim::PathTracing}) {
    ParallelOptions o;
    o.shift_elim = se;
    o.word_bits = 64;
    const Netlist nl = test::xor_chain(70);
    OracleSim oracle(nl);
    ParallelSim<std::uint64_t> sim(nl, o);
    RandomVectorSource src(2, 21);
    std::vector<Bit> v(2);
    for (int i = 0; i < 10; ++i) {
      src.next(v);
      const Waveform wf = oracle.step(v);
      sim.step(v);
      for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
        const int a = sim.compiled().plan.net_align[n];
        for (int t = std::max(a, 0); t <= oracle.depth(); ++t) {
          ASSERT_EQ(sim.value_at(NetId{n}, t), wf.at(NetId{n}, t));
        }
      }
    }
  }
}

TEST(ParallelSim, UnoptimizedStatsOneShiftPerGate) {
  const Netlist nl = test::fig4_network();
  const ParallelCompiled c = compile_parallel(nl, {});
  EXPECT_EQ(c.stats.shift_sites, nl.real_gate_count());
  EXPECT_EQ(c.stats.field_words_max, 1);
  EXPECT_EQ(c.stats.field_bits_max, 3);  // n = depth + 1
}

TEST(ParallelSim, PathTracingFig10HasNoShiftOps) {
  ParallelOptions o;
  o.shift_elim = ShiftElim::PathTracing;
  const Netlist nl = test::fig4_network();
  const ParallelCompiled c = compile_parallel(nl, o);
  EXPECT_EQ(c.stats.shift_sites, 0u);
  EXPECT_EQ(c.stats.shift_ops, 0u);
  EXPECT_EQ(c.stats.field_bits_max, 2);  // paper: width reduced from 3 to 2
}

TEST(ParallelSim, TrimmingReducesOpsOnDeepCircuits) {
  RandomDagParams p;
  p.inputs = 16;
  p.outputs = 8;
  p.gates = 300;
  p.depth = 40;  // two words
  p.seed = 33;
  const Netlist nl = random_dag(p);
  const ParallelCompiled plain = compile_parallel(nl, {});
  ParallelOptions o;
  o.trimming = true;
  const ParallelCompiled trimmed = compile_parallel(nl, o);
  EXPECT_LT(trimmed.stats.total_ops, plain.stats.total_ops);
  EXPECT_GT(trimmed.stats.suppressed_stores, 0u);
}

TEST(ParallelSim, TrimmingNoEffectOnSingleWordCircuits) {
  // Paper Fig. 20: c432-c1355 fit in one word; trimming changes nothing
  // material (identical op counts up to gap bookkeeping).
  RandomDagParams p;
  p.inputs = 10;
  p.gates = 100;
  p.depth = 9;
  p.seed = 40;
  const Netlist nl = random_dag(p);
  const ParallelCompiled plain = compile_parallel(nl, {});
  ParallelOptions o;
  o.trimming = true;
  const ParallelCompiled trimmed = compile_parallel(nl, o);
  EXPECT_EQ(trimmed.stats.total_ops, plain.stats.total_ops);
}

TEST(ParallelSim, FieldAccessForHazardAnalysis) {
  const Netlist nl = test::fig11_network();
  ParallelSim<> sim(nl);
  const Bit v0[] = {0};
  sim.step(v0);
  const Bit v1[] = {1};
  sim.step(v1);
  const NetId c = *nl.find_net("C");
  const auto f = sim.field(c);
  ASSERT_EQ(f.size(), 1u);
  // C glitches 0 -> 1 -> 0: field bits 010.
  EXPECT_EQ(f[0] & 0x7u, 0x2u);
}

TEST(ParallelSim, Fig8TwoWordSimulationShape) {
  // Paper Fig. 8: with two-word fields the delay shift crosses words:
  //   C_1 = temp_0 >> 31;  C_0 |= temp_0 << 1;  C_1 |= temp_1 << 1;
  // Our emitter fuses the word-1 pair into one funnel:
  //   C_1 = (temp_0 >> 31) | (temp_1 << 1).
  const Netlist nl = test::xor_chain(40);  // depth 40: 41-bit fields, 2 words
  const ParallelCompiled c = compile_parallel(nl, {});
  EXPECT_EQ(c.stats.field_words_max, 2);
  CEmitOptions opts;
  opts.comments = false;
  bool saw_word0_store = false;
  bool saw_funnel_carry = false;
  for (const Op& op : c.program.ops) {
    const std::string stmt = op_to_c(c.program, op, opts);
    if (op.code == OpCode::MaskShlOr && op.imm == 1) saw_word0_store = true;
    if (op.code == OpCode::FunnelR && op.imm == 31) {
      saw_funnel_carry = true;
      EXPECT_NE(stmt.find(">> 31"), std::string::npos);
      EXPECT_NE(stmt.find("<< 1"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_word0_store);
  EXPECT_TRUE(saw_funnel_carry);
}

TEST(ParallelSim, Fig10ShiftFreeCodeMatchesZeroDelayLcc) {
  // Paper, on Fig. 10: "the code illustrated ... is identical to the code
  // that would be produced for a zero delay LCC simulation. The only
  // difference in the two simulations is the way that input vectors are
  // processed." Check exactly that: excluding input-load ops, the
  // path-traced parallel program of the Fig. 4 network has the same op
  // sequence (opcode + gate structure) as the LCC program.
  const Netlist nl = test::fig4_network();
  ParallelOptions o;
  o.shift_elim = ShiftElim::PathTracing;
  const ParallelCompiled par = compile_parallel(nl, o);
  const LccCompiled lcc = compile_lcc(nl);
  // "Input processing" = anything not writing a non-PI net's storage.
  std::set<std::uint32_t> par_gate_words, lcc_gate_words;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(NetId{n}).is_primary_input) continue;
    for (std::uint32_t w = 0; w < par.net_words[n]; ++w) {
      par_gate_words.insert(par.net_base[n] + w);
    }
    lcc_gate_words.insert(lcc.net_var[n]);
  }
  std::vector<OpCode> a, b;
  for (const Op& op : par.program.ops) {
    if (par_gate_words.contains(op.dst)) a.push_back(op.code);
  }
  for (const Op& op : lcc.program.ops) {
    if (lcc_gate_words.contains(op.dst)) b.push_back(op.code);
  }
  EXPECT_EQ(a, b);  // two AND ops, nothing else
  EXPECT_EQ(a, (std::vector<OpCode>{OpCode::And, OpCode::And}));
}

TEST(ParallelSim, RequiresLoweredWiredNets) {
  const Netlist nl = test::wired_network();
  EXPECT_THROW((void)compile_parallel(nl, {}), NetlistError);
}

}  // namespace
}  // namespace udsim
