// Unit tests for the wide arena words (ir/wide_word.h, DESIGN.md §5j).
//
// The u256 operator set is exercised against an independent 256-entry
// bit-array reference model — every shift count 0..255 (including the
// 64-bit lane boundaries where the carry path changes shape), the borrow
// subtraction behind the `0 - x` broadcast and `(1 << imm) - 1` mask
// idioms, and the uint64 carrier lane round-trips the checkpoint layer
// depends on. The u128 helpers ride the same reference where the compiler
// provides __int128.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "ir/wide_word.h"

namespace udsim {
namespace {

// Deterministic xorshift stream (no global RNG state; reproducible).
std::uint64_t next_u64(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

u256 random_u256(std::uint64_t& x) {
  return {next_u64(x), next_u64(x), next_u64(x), next_u64(x)};
}

/// Independent reference: 256 bits, index = bit position.
using BitArray = std::array<unsigned, 256>;

BitArray to_bits(const u256& w) {
  BitArray b{};
  for (unsigned i = 0; i < 256; ++i) {
    b[i] = static_cast<unsigned>(w.lane[i >> 6] >> (i & 63u)) & 1u;
  }
  return b;
}

u256 from_bits(const BitArray& b) {
  u256 w;
  for (unsigned i = 0; i < 256; ++i) {
    w.lane[i >> 6] |= std::uint64_t{b[i]} << (i & 63u);
  }
  return w;
}

BitArray shl_bits(const BitArray& b, unsigned s) {
  BitArray r{};
  for (unsigned i = s; i < 256; ++i) r[i] = b[i - s];
  return r;
}

BitArray shr_bits(const BitArray& b, unsigned s) {
  BitArray r{};
  for (unsigned i = 0; i + s < 256; ++i) r[i] = b[i + s];
  return r;
}

BitArray sub_bits(const BitArray& a, const BitArray& b) {
  BitArray r{};
  unsigned borrow = 0;
  for (unsigned i = 0; i < 256; ++i) {
    const int d = static_cast<int>(a[i]) - static_cast<int>(b[i]) -
                  static_cast<int>(borrow);
    r[i] = static_cast<unsigned>(d & 1);
    borrow = d < 0 ? 1u : 0u;
  }
  return r;
}

TEST(WideWord, U256ShiftsMatchBitReferenceForEveryCount) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int trial = 0; trial < 4; ++trial) {
    const u256 w = random_u256(x);
    const BitArray bits = to_bits(w);
    for (unsigned s = 0; s < 256; ++s) {
      EXPECT_EQ(w << s, from_bits(shl_bits(bits, s))) << "<< " << s;
      EXPECT_EQ(w >> s, from_bits(shr_bits(bits, s))) << ">> " << s;
    }
  }
}

TEST(WideWord, U256ShiftLaneBoundaries) {
  // The carry between uint64 lanes changes shape exactly at multiples of
  // 64; pin the boundary cases with a recognizable pattern.
  const u256 one = 1;
  for (unsigned s : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 191u, 192u, 255u}) {
    const u256 w = one << s;
    for (unsigned i = 0; i < 256; ++i) {
      EXPECT_EQ(word_bit(w, i), i == s ? 1u : 0u) << "1 << " << s;
    }
    EXPECT_EQ((w >> s), one) << "round-trip at " << s;
  }
}

TEST(WideWord, U256BitwiseOpsAreLaneWise) {
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int trial = 0; trial < 8; ++trial) {
    const u256 a = random_u256(x);
    const u256 b = random_u256(x);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ((a & b).lane[i], a.lane[i] & b.lane[i]);
      EXPECT_EQ((a | b).lane[i], a.lane[i] | b.lane[i]);
      EXPECT_EQ((a ^ b).lane[i], a.lane[i] ^ b.lane[i]);
      EXPECT_EQ((~a).lane[i], ~a.lane[i]);
    }
    u256 c = a;
    c &= b;
    EXPECT_EQ(c, a & b);
    c = a;
    c |= b;
    EXPECT_EQ(c, a | b);
    c = a;
    c ^= b;
    EXPECT_EQ(c, a ^ b);
  }
}

TEST(WideWord, U256SubtractionBorrowsAcrossLanes) {
  // The two idioms the op vocabulary uses: 0 - x (broadcast of bit 0) and
  // (1 << k) - 1 (low-k-bit mask).
  const u256 zero;
  EXPECT_EQ(zero - u256{1}, ~zero);  // all-ones
  for (unsigned k : {1u, 63u, 64u, 65u, 128u, 200u, 255u}) {
    const u256 mask = (u256{1} << k) - u256{1};
    for (unsigned i = 0; i < 256; ++i) {
      EXPECT_EQ(word_bit(mask, i), i < k ? 1u : 0u) << "mask k=" << k;
    }
  }
  std::uint64_t x = 0xb5297a4d4b4f2c21ull;
  for (int trial = 0; trial < 16; ++trial) {
    const u256 a = random_u256(x);
    const u256 b = random_u256(x);
    EXPECT_EQ(a - b, from_bits(sub_bits(to_bits(a), to_bits(b))));
  }
}

TEST(WideWord, CarrierLaneCounts) {
  static_assert(kWordU64Lanes<std::uint32_t> == 1);
  static_assert(kWordU64Lanes<std::uint64_t> == 1);
#if UDSIM_HAS_W128
  static_assert(kWordU64Lanes<u128> == 2);
#endif
  static_assert(kWordU64Lanes<u256> == 4);
  SUCCEED();
}

TEST(WideWord, CarrierLaneRoundTrips) {
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t lanes[4] = {next_u64(x), next_u64(x), next_u64(x),
                                    next_u64(x)};
    // 32/64-bit: single lane, value-preserving within width.
    EXPECT_EQ(word_u64_lane(static_cast<std::uint32_t>(lanes[0]), 0),
              lanes[0] & 0xffffffffull);
    EXPECT_EQ(word_u64_lane(lanes[0], 0), lanes[0]);
    EXPECT_EQ(word_from_u64_lanes<std::uint64_t>(lanes), lanes[0]);
#if UDSIM_HAS_W128
    const u128 w128 = word_from_u64_lanes<u128>(lanes);
    EXPECT_EQ(word_u64_lane(w128, 0), lanes[0]);
    EXPECT_EQ(word_u64_lane(w128, 1), lanes[1]);
#endif
    const u256 w256 = word_from_u64_lanes<u256>(lanes);
    for (std::size_t l = 0; l < 4; ++l) {
      EXPECT_EQ(word_u64_lane(w256, l), lanes[l]);
    }
  }
}

TEST(WideWord, WordBitAddressesEveryLane) {
  std::uint64_t x = 0x853c49e6748fea9bull;
  const u256 w = random_u256(x);
  const BitArray bits = to_bits(w);
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(word_bit(w, i), bits[i]) << "bit " << i;
  }
#if UDSIM_HAS_W128
  const u128 h = (u128{0xdeadbeefcafef00dull} << 64) | 0x0123456789abcdefull;
  for (unsigned i = 0; i < 128; ++i) {
    const std::uint64_t lane = static_cast<std::uint64_t>(h >> ((i / 64) * 64));
    EXPECT_EQ(word_bit(h, i), static_cast<unsigned>(lane >> (i % 64)) & 1u);
  }
#endif
}

TEST(WideWord, InitWordValueWidensAllOnesAndZeroExtendsTheRest) {
  const std::uint64_t ones = ~std::uint64_t{0};
  // All-ones carrier means "all ones at the executor width"...
  EXPECT_EQ(init_word_value<std::uint32_t>(ones), 0xffffffffu);
  EXPECT_EQ(init_word_value<std::uint64_t>(ones), ones);
#if UDSIM_HAS_W128
  EXPECT_EQ(init_word_value<u128>(ones), ~u128{0});
#endif
  EXPECT_EQ(init_word_value<u256>(ones), ~u256{});
  // ...while every other literal zero-extends (== truncation at 32/64, so
  // narrow programs behave exactly as they always did).
  EXPECT_EQ(init_word_value<std::uint32_t>(0x1234u), 0x1234u);
  EXPECT_EQ(init_word_value<u256>(0x1234u), u256{0x1234u});
#if UDSIM_HAS_W128
  EXPECT_EQ(init_word_value<u128>(0x1234u), u128{0x1234u});
#endif
}

}  // namespace
}  // namespace udsim
