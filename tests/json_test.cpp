// JSON DOM (obs/json.h): parse/dump round-trips, exact uint64 preservation
// (the property the bench drift check depends on), lookup helpers, and the
// hardening paths — trailing garbage, bad escapes, raw control characters.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace udsim {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(JsonValue::parse("null").kind, JsonValue::Kind::Null);
  EXPECT_TRUE(JsonValue::parse("true").boolean);
  EXPECT_FALSE(JsonValue::parse("false").boolean);
  EXPECT_EQ(JsonValue::parse("\"hi\"").string, "hi");
  EXPECT_EQ(JsonValue::parse("42").as_u64(), 42u);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5").as_double(), -2.5);
}

TEST(Json, PreservesUint64Exactly) {
  // 2^63 + 1025 is not representable as a double; the drift check must see
  // it exactly.
  const std::string big = "9223372036854776833";
  const JsonValue v = JsonValue::parse(big);
  ASSERT_TRUE(v.is_integer);
  EXPECT_EQ(v.as_u64(), 9223372036854776833ull);
  EXPECT_EQ(JsonValue::make_uint(9223372036854776833ull).dump(0), big);
}

TEST(Json, NegativeAndFractionalNumbersAreDoubles) {
  EXPECT_FALSE(JsonValue::parse("-1").is_integer);
  EXPECT_FALSE(JsonValue::parse("1.5").is_integer);
  EXPECT_FALSE(JsonValue::parse("1e3").is_integer);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": true})");
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.at("a").is_array());
  EXPECT_EQ(v.at("a").array.size(), 3u);
  EXPECT_EQ(v.at("a").array[2].at("b").string, "x");
  EXPECT_EQ(v.at("c").at("d").kind, JsonValue::Kind::Null);
  EXPECT_TRUE(v.has("e"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::out_of_range);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue v = JsonValue::make_object();
  v.set("z", JsonValue::make_uint(1));
  v.set("a", JsonValue::make_uint(2));
  const std::string j = v.dump(0);
  EXPECT_LT(j.find("\"z\""), j.find("\"a\""));
}

TEST(Json, DumpParseRoundTrip) {
  JsonValue v = JsonValue::make_object();
  v.set("name", JsonValue::make_string("quote\" slash\\ tab\t"));
  v.set("count", JsonValue::make_uint(1234567890123456789ull));
  v.set("ratio", JsonValue::make_double(0.25));
  JsonValue& arr = v.set("arr", JsonValue::make_array());
  arr.array.push_back(JsonValue::make_bool(true));
  arr.array.push_back(JsonValue());
  for (int indent : {0, 2}) {
    const JsonValue back = JsonValue::parse(v.dump(indent));
    EXPECT_EQ(back.at("name").string, "quote\" slash\\ tab\t");
    EXPECT_EQ(back.at("count").as_u64(), 1234567890123456789ull);
    EXPECT_DOUBLE_EQ(back.at("ratio").as_double(), 0.25);
    EXPECT_TRUE(back.at("arr").array[0].boolean);
    EXPECT_EQ(back.at("arr").array[1].kind, JsonValue::Kind::Null);
  }
}

TEST(Json, EscapeSequences) {
  const JsonValue v = JsonValue::parse(R"("a\nb\t\"\\A")");
  EXPECT_EQ(v.string, "a\nb\t\"\\A");
  EXPECT_EQ(json_escape("a\nb\"c\\"), "a\\nb\\\"c\\\\");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("{"), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("nul"), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("\"bad\\q\""), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("\"raw\ncontrol\""), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("1 trailing"), JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), JsonParseError);
}

TEST(Json, ParseErrorCarriesOffset) {
  try {
    (void)JsonValue::parse("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos);
  }
}

}  // namespace
}  // namespace udsim
