// Failure-path robustness: run_batch input validation across every engine
// and worker-exception propagation through the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "core/simulator.h"
#include "core/thread_pool.h"
#include "test_util.h"

namespace udsim {
namespace {

constexpr EngineKind kAllEngines[] = {
    EngineKind::Event2,
    EngineKind::Event3,
    EngineKind::PCSet,
    EngineKind::Parallel,
    EngineKind::ParallelTrimmed,
    EngineKind::ParallelPathTracing,
    EngineKind::ParallelCycleBreaking,
    EngineKind::ParallelCombined,
    EngineKind::ZeroDelayLcc,
};

// A stream whose size is not a multiple of the PI count must raise
// std::invalid_argument naming both sizes — on every engine, before any
// simulation work happens.
TEST(RunBatchValidation, RaggedStreamThrowsWithActualSizes) {
  const Netlist nl = test::fig4_network();  // 3 primary inputs
  const std::vector<Bit> ragged(7, 0);      // 7 % 3 != 0
  for (EngineKind kind : kAllEngines) {
    const auto sim = make_simulator(nl, kind);
    try {
      (void)sim->run_batch(ragged);
      FAIL() << "expected std::invalid_argument from " << engine_name(kind);
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("7"), std::string::npos)
          << engine_name(kind) << ": " << msg;
      EXPECT_NE(msg.find("3"), std::string::npos)
          << engine_name(kind) << ": " << msg;
    }
  }
}

TEST(RunBatchValidation, StreamForInputlessNetlistThrows) {
  Netlist nl("const");
  const NetId y = nl.add_net("y");
  nl.add_gate(GateType::Const1, {}, y);
  nl.mark_primary_output(y);
  const std::vector<Bit> spurious(5, 1);
  for (EngineKind kind : kAllEngines) {
    // The unoptimized parallel emitter cannot compile an input-less
    // constant netlist at all (its uniform alignment demands a left shift
    // reaching before the previous vector) — a long-standing limitation
    // unrelated to stream validation, so those two kinds sit this one out.
    if (kind == EngineKind::Parallel || kind == EngineKind::ParallelTrimmed) {
      continue;
    }
    const auto sim = make_simulator(nl, kind);
    try {
      (void)sim->run_batch(spurious);
      FAIL() << "expected std::invalid_argument from " << engine_name(kind);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("5"), std::string::npos)
          << engine_name(kind) << ": " << e.what();
    }
    // The empty stream is the one valid stream here.
    const BatchResult r = sim->run_batch({});
    EXPECT_EQ(r.vectors, 0u);
  }
}

TEST(RunBatchValidation, MultipleOfPiCountStillWorks) {
  const Netlist nl = test::fig4_network();
  const std::vector<Bit> ok = {1, 1, 0, 1, 1, 1};
  for (EngineKind kind : kAllEngines) {
    const auto sim = make_simulator(nl, kind);
    const BatchResult r = sim->run_batch(ok);
    EXPECT_EQ(r.vectors, 2u) << engine_name(kind);
  }
}

// ---- worker-exception propagation ------------------------------------------

// A body that throws mid-shard: the exception surfaces on the caller
// exactly once, every index is either processed or abandoned cleanly (no
// deadlock), and the pool stays usable afterwards.
TEST(ThreadPoolExceptions, MidShardFailureRethrowsOnCallerExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.threads(), 4u);

  std::atomic<int> processed{0};
  int caught = 0;
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("shard 13 failed");
      processed.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (const std::runtime_error& e) {
    ++caught;
    EXPECT_STREQ(e.what(), "shard 13 failed");
  }
  EXPECT_EQ(caught, 1);
  EXPECT_LT(processed.load(), 64);

  // The pool survives: a clean run right after completes fully.
  std::atomic<int> after{0};
  pool.parallel_for(64, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 64);
}

// Several failing shards: still exactly one exception per parallel_for call
// (the first one wins), and repeated failing calls each report once.
TEST(ThreadPoolExceptions, ManyFailuresStillSurfaceOnce) {
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    int caught = 0;
    try {
      pool.parallel_for(32, [&](std::size_t i) {
        if (i % 2 == 0) throw std::runtime_error("even shard");
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
    EXPECT_EQ(caught, 1) << "round " << round;
  }
  // And a final clean barrier proves the workers are all alive.
  std::atomic<int> n{0};
  pool.parallel_for(8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
}

// Fail-fast: once any body throws, remaining unclaimed indices are skipped
// (they still count toward the barrier but their bodies never run). With the
// throwing index first in the queue, only the handful of bodies already in
// flight on other workers can slip through before the flag is seen.
TEST(ThreadPoolExceptions, FailFastSkipsUnclaimedIndices) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::atomic<std::size_t> processed{0};
  EXPECT_THROW(pool.parallel_for(n,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("fail fast");
                                   processed.fetch_add(1, std::memory_order_relaxed);
                                 }),
               std::runtime_error);
  EXPECT_LT(processed.load(), n / 2)
      << "fail-fast did not short-circuit the remaining indices";
  // The pool is still healthy afterwards.
  std::atomic<std::size_t> clean{0};
  pool.parallel_for(16, [&](std::size_t) { clean.fetch_add(1); });
  EXPECT_EQ(clean.load(), 16u);
}

// The single-worker inline path propagates too (exactness of the inline
// fallback the batch layer relies on for num_threads == 1).
TEST(ThreadPoolExceptions, InlinePathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::logic_error("inline");
                        }),
      std::logic_error);
  std::atomic<int> n{0};
  pool.parallel_for(4, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 4);
}

}  // namespace
}  // namespace udsim
