// Quickstart: build the paper's Fig. 2/4 network, compile it with both
// techniques, print the generated code, and compare a few waveforms against
// the event-driven baseline.
//
//      A ──┐
//          AND ── D ──┐
//      B ──┘          AND ── E
//      C ─────────────┘
#include <cstdio>
#include <iostream>

#include "core/simulator.h"
#include "eventsim/event_sim.h"
#include "ir/c_emitter.h"
#include "oracle/oracle.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

int main() {
  using namespace udsim;

  // ---- build the network ----------------------------------------------------
  Netlist nl("fig4");
  const NetId a = nl.add_net("A");
  const NetId b = nl.add_net("B");
  const NetId c = nl.add_net("C");
  const NetId d = nl.add_net("D");
  const NetId e = nl.add_net("E");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  nl.add_gate(GateType::And, {a, b}, d);
  nl.add_gate(GateType::And, {d, c}, e);
  nl.mark_primary_output(e);

  // ---- PC-set method ---------------------------------------------------------
  const NetId monitored[] = {e};
  const PCSetCompiled pcc = compile_pcset(nl, monitored);
  std::cout << "=== PC-set method: generated code (cf. paper Fig. 4) ===\n";
  emit_c(std::cout, pcc.program);

  // ---- parallel technique ----------------------------------------------------
  const ParallelCompiled par = compile_parallel(nl, {});
  std::cout << "\n=== parallel technique: generated code (cf. paper Fig. 6) ===\n";
  emit_c(std::cout, par.program);

  // ---- simulate a vector sequence and show the unit-delay histories ----------
  ParallelSim<> psim(nl);
  EventSim2 esim(nl);
  OracleSim oracle(nl);

  const Bit vectors[][3] = {{1, 1, 1}, {0, 1, 1}, {1, 1, 0}, {1, 1, 1}};
  std::cout << "\n=== unit-delay history of net E (times 0.." << oracle.depth()
            << ") ===\n";
  for (const auto& v : vectors) {
    psim.step(v);
    esim.step(v);
    const Waveform wf = oracle.step(v);
    std::printf("A=%d B=%d C=%d   E: ", v[0], v[1], v[2]);
    for (int t = 0; t <= oracle.depth(); ++t) {
      std::printf("%d", psim.value_at(e, t));
      if (wf.at(e, t) != psim.value_at(e, t)) {
        std::printf(" (mismatch vs oracle!)");
        return 1;
      }
    }
    std::printf("   (event-driven final: %d)\n", esim.value(e));
  }
  std::cout << "\nAll engines agree.\n";
  return 0;
}
