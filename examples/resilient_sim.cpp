// Resilience walkthrough: stop a batch run mid-flight, snapshot it, and
// resume it bit-identically — the full DESIGN.md §5f stack through one entry
// point (run_batch_resilient): pre-flight program validation, cooperative
// cancellation, checkpoint/resume, and the deterministic fault-injection
// harness standing in for a real deadline overrun.
//
//   resilient_sim [circuit] [vectors] [threads]    (defaults: c1908 96 2)
//
// The one-piece-of-cross-vector-state property (the settled arena) is what
// makes this cheap: a checkpoint is just each shard's next vector index, its
// arena words, and the output rows already completed.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "obs/metrics.h"
#include "resilience/resilient_run.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string circuit = argc > 1 ? argv[1] : "c1908";
  const std::size_t vectors = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 96;
  const unsigned threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

  const Netlist nl = examples::load_circuit(circuit);
  auto sim = make_simulator(nl, EngineKind::ParallelCombined);

  // A deterministic input stream.
  const std::vector<Bit> stream =
      examples::xorshift_stream(vectors, nl.primary_inputs().size());

  // Reference: the uninterrupted run.
  const BatchResult expect = sim->run_batch(stream, threads);

  // 1. Run with an injected deadline overrun a third of the way in. The
  // injector is deterministic (seeded) so this demo always stops at the
  // same pass boundary; a real controller would arm
  // CancelToken::set_deadline_after or call request_cancel instead.
  // The injector matches (site, shard, vector, attempt) exactly; planting
  // the same vector in every plausible shard index means whichever shard
  // owns it stops, independent of the thread-count/min-chunk geometry.
  FaultInjector inject(1);
  for (std::uint64_t shard = 0; shard < 16; ++shard) {
    inject.add_site({FaultSite::DeadlineOverrun, shard,
                     /*vector=*/vectors / 3, /*attempt=*/0});
  }
  MetricsRegistry metrics;
  ResilientResult stopped = run_batch_resilient(
      *sim, stream,
      {.num_threads = threads, .inject = &inject, .metrics = &metrics});
  std::printf("%s: run stopped: status=%s, %llu/%zu vectors done, "
              "resumable=%s\n",
              circuit.c_str(),
              std::string(run_status_name(stopped.status)).c_str(),
              static_cast<unsigned long long>(stopped.vectors_done), vectors,
              stopped.resumable ? "yes" : "no");
  if (stopped.status != RunStatus::DeadlineExpired || !stopped.resumable) {
    std::fprintf(stderr, "expected a resumable deadline stop\n");
    return 1;
  }

  // 2. The checkpoint is a small, versioned, checksummed byte string —
  // write it wherever you persist state; any bit rot comes back as a
  // structured CheckpointError on load, never a crash or a wrong answer.
  const std::string bytes = checkpoint_to_bytes(stopped.checkpoint);
  std::printf("checkpoint: %zu bytes (magic+version+geometry, %zu shard(s), "
              "FNV-1a checksum)\n",
              bytes.size(), stopped.checkpoint.shards.size());
  const BatchCheckpoint restored = checkpoint_from_bytes(bytes);

  // 3. Resume under the same geometry: already-finished shards are skipped,
  // the stopped shard reloads its arena and continues from its next vector.
  ResilientResult done = run_batch_resilient(
      *sim, stream,
      {.num_threads = threads, .metrics = &metrics, .resume = &restored});
  std::printf("resume: status=%s, %llu/%zu vectors done\n",
              std::string(run_status_name(done.status)).c_str(),
              static_cast<unsigned long long>(done.vectors_done), vectors);

  const bool identical = done.status == RunStatus::Complete &&
                         done.batch.values == expect.values;
  std::printf("stop + snapshot + resume == uninterrupted run: %s\n",
              identical ? "bit-identical" : "MISMATCH (bug!)");

  // The resilience counters the run left behind.
  const auto snap = metrics.snapshot();
  for (const char* key : {"resil.deadline", "resil.checkpoints",
                          "resil.resumes", "resil.injected"}) {
    const auto it = snap.find(key);
    std::printf("  %-18s %llu\n", key,
                static_cast<unsigned long long>(it == snap.end() ? 0 : it->second));
  }
  return identical ? 0 : 1;
}
