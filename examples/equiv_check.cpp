// equiv_check: combinational equivalence between two circuits, matching
// ports by name — the workflow for validating a re-synthesized or
// hand-edited netlist against its golden version.
//
// Usage: equiv_check <golden> <revised>   (profile names or .bench paths)
#include <cstdio>
#include <string>

#include "core/equivalence.h"
#include "gen/iscas_profiles.h"
#include "netlist/bench_io.h"

namespace {

udsim::Netlist load(const std::string& which) {
  if (which.find(".bench") != std::string::npos) {
    return udsim::read_bench_file(which);
  }
  return udsim::make_iscas85_like(which);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  if (argc < 3) {
    std::fprintf(stderr, "usage: equiv_check <golden> <revised>\n");
    return 2;
  }
  try {
    const Netlist a = load(argv[1]);
    const Netlist b = load(argv[2]);
    const EquivalenceResult r = check_equivalence(a, b);
    if (!r.error.empty()) {
      std::printf("interface mismatch: %s\n", r.error.c_str());
      return 2;
    }
    if (r.equivalent) {
      std::printf("EQUIVALENT (%zu vectors, %s)\n", r.vectors_checked,
                  r.exhaustive ? "exhaustive proof" : "randomized check");
      return 0;
    }
    std::printf("NOT EQUIVALENT after %zu vectors\n", r.vectors_checked);
    if (r.counterexample) {
      std::printf("counterexample on output '%s' (%d vs %d), inputs:\n  ",
                  r.counterexample->output.c_str(),
                  int{r.counterexample->value_a}, int{r.counterexample->value_b});
      for (std::size_t i = 0; i < r.counterexample->inputs.size(); ++i) {
        std::printf("%s%s=%d", i ? " " : "", a.net(a.primary_inputs()[i]).name.c_str(),
                    int{r.counterexample->inputs[i]});
      }
      std::printf("\n");
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
