// dump_vcd: simulate random vectors and write the full unit-delay waveform
// of every net as a VCD file viewable in GTKWave — gate delays become
// nanoseconds on the dump's time axis.
//
// Usage: dump_vcd [circuit] [vectors] [out.vcd]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/vcd.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "netlist/bench_io.h"
#include "oracle/oracle.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string which = argc > 1 ? argv[1] : "c432";
  const std::size_t vectors = argc > 2 ? std::stoul(argv[2]) : 8;
  const std::string path = argc > 3 ? argv[3] : which + ".vcd";

  Netlist nl = which.find(".bench") != std::string::npos ? read_bench_file(which)
                                                         : make_iscas85_like(which);
  lower_wired_nets(nl);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  OracleSim sim(nl);
  VcdWriter vcd(out, nl);
  RandomVectorSource src(nl.primary_inputs().size(), 7);
  std::vector<Bit> v(nl.primary_inputs().size());
  for (std::size_t k = 0; k < vectors; ++k) {
    src.next(v);
    vcd.add_vector(sim.step(v));
  }
  vcd.finish();
  std::printf("wrote %s: %zu nets, %zu vectors, %llu time units\n", path.c_str(),
              nl.net_count(), vectors,
              static_cast<unsigned long long>(vcd.current_time()));
  return 0;
}
