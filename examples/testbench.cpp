// testbench: the batch stimulus/response driver a user points at a circuit.
// Reads a pattern file (or generates random patterns), simulates with the
// chosen engine, and writes the response file. The stimulus format is
// documented in src/core/pattern_io.h.
//
// Usage:
//   testbench <circuit> [--engine parallel|pcset|event2|event3|lcc]
//             [--patterns file | --random N] [--out file] [--seed S]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/pattern_io.h"
#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "netlist/bench_io.h"

int main(int argc, char** argv) {
  using namespace udsim;
  if (argc < 2) {
    std::fprintf(stderr, "usage: testbench <circuit> [--engine e] "
                         "[--patterns file | --random N] [--out file]\n");
    return 2;
  }
  std::string circuit = argv[1];
  std::string engine = "parallel";
  std::string pattern_path;
  std::string out_path;
  std::size_t random_count = 16;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&] { return std::string(argv[++i]); };
    if (a == "--engine") {
      engine = next();
    } else if (a == "--patterns") {
      pattern_path = next();
    } else if (a == "--random") {
      random_count = std::stoul(next());
    } else if (a == "--out") {
      out_path = next();
    } else if (a == "--seed") {
      seed = std::stoull(next());
    }
  }

  try {
    Netlist nl = circuit.find(".bench") != std::string::npos
                     ? read_bench_file(circuit)
                     : make_iscas85_like(circuit);
    lower_wired_nets(nl);

    EngineKind kind = EngineKind::Parallel;
    if (engine == "pcset") kind = EngineKind::PCSet;
    else if (engine == "event2") kind = EngineKind::Event2;
    else if (engine == "event3") kind = EngineKind::Event3;
    else if (engine == "lcc") kind = EngineKind::ZeroDelayLcc;
    else if (engine != "parallel") {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      return 2;
    }

    PatternSet patterns;
    if (!pattern_path.empty()) {
      std::ifstream f(pattern_path);
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", pattern_path.c_str());
        return 1;
      }
      patterns = read_patterns(f, nl);
    } else {
      patterns.inputs = nl.primary_inputs().size();
      patterns.bits.resize(patterns.inputs * random_count);
      RandomVectorSource src(patterns.inputs, seed);
      for (std::size_t k = 0; k < random_count; ++k) {
        src.next(std::span<Bit>(patterns.bits.data() + k * patterns.inputs,
                                patterns.inputs));
      }
    }

    auto sim = make_simulator(nl, kind);
    std::vector<Bit> responses;
    responses.reserve(patterns.count() * nl.primary_outputs().size());
    for (std::size_t k = 0; k < patterns.count(); ++k) {
      sim->step(patterns.row(k));
      for (NetId po : nl.primary_outputs()) {
        responses.push_back(sim->final_value(po));
      }
    }

    std::ostringstream os;
    write_responses(os, nl, responses);
    if (out_path.empty()) {
      std::cout << os.str();
    } else {
      std::ofstream f(out_path);
      f << os.str();
      std::printf("wrote %zu responses to %s (engine: %s)\n", patterns.count(),
                  out_path.c_str(), std::string(engine_name(kind)).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
