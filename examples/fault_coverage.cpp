// fault_coverage: single-stuck-at fault grading with the bit-parallel
// compiled substrate — the application behind the paper's reference [12]
// (parallel fault simulation) and its remark that the PC-set method is
// amenable to bit-parallel multi-vector simulation.
//
// Prints the random-pattern coverage curve of a circuit, then the list of
// the hardest faults still undetected.
//
// Usage: fault_coverage [circuit] [patterns]
#include <cstdio>
#include <iostream>
#include <string>

#include "fault/fault_sim.h"
#include "fault/transition.h"
#include "gen/iscas_profiles.h"
#include "harness/table.h"
#include "netlist/bench_io.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string which = argc > 1 ? argv[1] : "c880";
  const std::size_t max_patterns = argc > 2 ? std::stoul(argv[2]) : 1024;

  Netlist nl = which.find(".bench") != std::string::npos ? read_bench_file(which)
                                                         : make_iscas85_like(which);
  lower_wired_nets(nl);
  const auto faults = enumerate_faults(nl);
  std::printf("circuit %s: %zu gates, %zu single-stuck-at faults\n\n",
              nl.name().c_str(), nl.real_gate_count(), faults.size());

  FaultSimulator<> sim(nl);
  Table table({"patterns", "detected", "coverage%"});
  for (std::size_t n = 32; n <= max_patterns; n *= 2) {
    const auto r = sim.run_ppsfp(faults, n, 12345);
    table.add_row({std::to_string(n), std::to_string(r.detected_count()),
                   Table::num(100.0 * r.coverage(), 2)});
  }
  table.print(std::cout);

  const auto final_run = sim.run_ppsfp(faults, max_patterns, 12345);
  std::size_t shown = 0;
  std::printf("\nundetected after %zu patterns:\n", max_patterns);
  for (std::size_t f = 0; f < faults.size() && shown < 12; ++f) {
    if (!final_run.detected[f]) {
      std::printf("  %s stuck-at-%d\n", nl.net(faults[f].net).name.c_str(),
                  int{faults[f].stuck_at});
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (none — full coverage)\n");

  // Greedy compaction: the first-detector pattern subset.
  const auto kept = compact_patterns(final_run);
  std::printf("\ncompacted test set: %zu of %zu patterns keep the same "
              "stuck-at coverage\n", kept.size(), max_patterns);

  // Transition (delay) faults over the same pattern stream, applied as
  // at-speed pairs.
  const auto tfaults = enumerate_transition_faults(nl);
  const auto tr = run_transition_fault_sim(nl, tfaults, max_patterns, 12345);
  std::printf("transition-fault coverage: %.2f%% of %zu faults (%zu pattern "
              "pairs)\n", 100.0 * tr.coverage(), tfaults.size(),
              tr.pattern_pairs);
  return 0;
}
