// Shared helpers for the example binaries and the bench_report driver:
// resolve a circuit argument to a Netlist and generate the deterministic
// xorshift input stream every walkthrough uses.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "gen/iscas_profiles.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"

namespace udsim::examples {

inline bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Resolve a circuit argument: an ISCAS-85 profile name ("c432" builds the
/// synthetic stand-in), a path to a .bench file, or a bare name found under
/// the repo data directory (data/<name>.bench — how c17 loads). Throws
/// NetlistError when nothing matches.
inline Netlist load_circuit(const std::string& arg, std::uint64_t seed = 1) {
  for (const IscasProfile& p : iscas85_profiles()) {
    if (p.name == arg) return make_iscas85_like(arg, seed);
  }
  std::vector<std::string> candidates{arg, arg + ".bench"};
#ifdef UDSIM_DATA_DIR
  candidates.push_back(std::string(UDSIM_DATA_DIR) + "/" + arg + ".bench");
#endif
  candidates.push_back("data/" + arg + ".bench");
  for (const std::string& path : candidates) {
    if (file_exists(path)) return read_bench_file(path);
  }
  throw NetlistError("unknown circuit '" + arg +
                     "': not an ISCAS-85 profile name and no matching .bench "
                     "file found");
}

/// Deterministic input stream: `vectors` rows of one Bit per primary input,
/// from the xorshift64 generator seeded like every repo walkthrough.
inline std::vector<Bit> xorshift_stream(std::size_t vectors, std::size_t inputs,
                                        std::uint64_t x = 88172645463325252ull) {
  if (x == 0) x = 88172645463325252ull;
  std::vector<Bit> stream(vectors * inputs);
  for (Bit& b : stream) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  return stream;
}

}  // namespace udsim::examples
