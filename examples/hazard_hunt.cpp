// hazard_hunt: use the parallel technique's bit-fields for glitch analysis
// (the application sketched at the end of paper §3). Simulates random
// vectors through a 16x16 array multiplier — the glitchiest circuit in the
// ISCAS-85 family — and reports hazard rates and the glitchiest nets, the
// kind of data a designer would feed into dynamic-power estimation.
//
// Usage: hazard_hunt [circuit] [vectors]   (circuit: profile name or .bench)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "gen/iscas_profiles.h"
#include "harness/table.h"
#include "harness/vectors.h"
#include "hazard/hazard.h"
#include "netlist/bench_io.h"
#include "parsim/parallel_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string which = argc > 1 ? argv[1] : "c6288";
  const std::size_t vectors = argc > 2 ? std::stoul(argv[2]) : 500;

  Netlist nl = which.find(".bench") != std::string::npos
                   ? read_bench_file(which)
                   : make_iscas85_like(which);
  lower_wired_nets(nl);

  ParallelSim<> sim(nl);
  RandomVectorSource src(nl.primary_inputs().size(), 99);
  std::vector<Bit> v(nl.primary_inputs().size());

  std::vector<std::size_t> hazard_count(nl.net_count(), 0);
  std::size_t hazard_vectors = 0;
  // Warm up one vector so previous-state bits are meaningful.
  src.next(v);
  sim.step(v);
  for (std::size_t k = 0; k < vectors; ++k) {
    src.next(v);
    sim.step(v);
    bool any = false;
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      const NetId id{n};
      if (nl.net(id).is_primary_input) continue;
      const int width = sim.compiled().widths[n];
      if (has_hazard<std::uint32_t>(sim.field(id), width)) {
        ++hazard_count[n];
        any = true;
      }
    }
    if (any) ++hazard_vectors;
  }

  std::printf("circuit %s: %zu gates, %zu nets, %zu vectors\n", nl.name().c_str(),
              nl.real_gate_count(), nl.net_count(), vectors);
  std::printf("vectors with at least one glitch: %zu (%.1f%%)\n", hazard_vectors,
              100.0 * static_cast<double>(hazard_vectors) / static_cast<double>(vectors));
  std::size_t glitchy_nets = 0;
  std::size_t total = 0;
  for (std::size_t c : hazard_count) {
    if (c) ++glitchy_nets;
    total += c;
  }
  std::printf("nets that ever glitch: %zu of %zu; average glitches/vector: %.1f\n\n",
              glitchy_nets, nl.net_count(),
              static_cast<double>(total) / static_cast<double>(vectors));

  // Ten glitchiest nets.
  std::vector<std::uint32_t> order(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) order[n] = n;
  std::partial_sort(order.begin(), order.begin() + std::min<std::size_t>(10, order.size()),
                    order.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return hazard_count[a] > hazard_count[b];
                    });
  Table table({"net", "level", "glitch vectors", "rate%"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, order.size()); ++i) {
    const std::uint32_t n = order[i];
    if (hazard_count[n] == 0) break;
    table.add_row({nl.net(NetId{n}).name,
                   std::to_string(sim.compiled().lv.net_level[n]),
                   std::to_string(hazard_count[n]),
                   Table::num(100.0 * static_cast<double>(hazard_count[n]) /
                                  static_cast<double>(vectors),
                              1)});
  }
  table.print(std::cout);
  return 0;
}
