// async_latch: simulate asynchronous (cyclic) circuits — the paper's
// future-work frontier — with the event-driven engine: an SR latch holding
// state through its feedback loop, the forbidden-release oscillation, and a
// ring oscillator hitting the time bound.
#include <cstdio>

#include "eventsim/async_sim.h"

int main() {
  using namespace udsim;

  // Cross-coupled NOR SR latch.
  Netlist nl("sr_latch");
  const NetId s = nl.add_net("S");
  const NetId r = nl.add_net("R");
  nl.mark_primary_input(s);
  nl.mark_primary_input(r);
  const NetId q = nl.add_net("Q");
  const NetId qb = nl.add_net("QB");
  nl.add_gate(GateType::Nor, {r, qb}, q);
  nl.add_gate(GateType::Nor, {s, q}, qb);
  nl.mark_primary_output(q);
  std::printf("SR latch (cross-coupled NORs) — a cyclic netlist: acyclic=%s\n\n",
              nl.is_acyclic() ? "yes" : "no");

  AsyncEventSim sim(nl);
  const struct {
    const char* label;
    Bit sv, rv;
  } seq[] = {{"set    (S=1 R=0)", 1, 0}, {"hold   (S=0 R=0)", 0, 0},
             {"reset  (S=0 R=1)", 0, 1}, {"hold   (S=0 R=0)", 0, 0},
             {"forbid (S=1 R=1)", 1, 1}};
  for (const auto& st : seq) {
    const Bit v[] = {st.sv, st.rv};
    const AsyncStepResult res = sim.step(v);
    std::printf("%s -> Q=%d QB=%d  (settled at t=%d, %llu events)\n", st.label,
                sim.value(q), sim.value(qb), res.settle_time,
                static_cast<unsigned long long>(res.events));
  }
  {
    const Bit v[] = {0, 0};
    const AsyncStepResult res = sim.step(v, 100);
    std::printf("release(S=0 R=0) -> %s\n",
                res.oscillating
                    ? "OSCILLATING (metastability: both gates race forever)"
                    : "settled");
  }

  // Ring oscillator: enabled NAND + two buffers.
  Netlist ring("ring");
  const NetId en = ring.add_net("en");
  ring.mark_primary_input(en);
  const NetId a = ring.add_net("a");
  const NetId b = ring.add_net("b");
  const NetId c = ring.add_net("c");
  ring.add_gate(GateType::Nand, {en, c}, a);
  ring.add_gate(GateType::Buf, {a}, b);
  ring.add_gate(GateType::Buf, {b}, c);
  ring.mark_primary_output(c);
  AsyncEventSim rsim(ring);
  const Bit off[] = {0};
  const Bit on[] = {1};
  std::printf("\nring oscillator: en=0 -> %s; en=1 -> ",
              rsim.step(off).settled ? "stable" : "?");
  const AsyncStepResult res = rsim.step(on, 300);
  std::printf("%s after %llu events (bound 300 gate delays)\n",
              res.oscillating ? "oscillating" : "settled",
              static_cast<unsigned long long>(res.events));
  return 0;
}
