// Walkthrough: the native-code backend end to end (DESIGN.md §5h).
//
//   native_sim [circuit] [vectors]         (default: c6288, 2000 vectors)
//
// Compiles the circuit's combined parallel program to C, shells out to the
// system C compiler ($UDSIM_CC, default `cc`), dlopens the shared object,
// and runs the same vector stream through the dlopen'd machine code and the
// in-process IR executor — then prints both throughputs and the counters
// the metrics registry collected (native.builds / cache hit or miss /
// native.compile span / the shared exec.* set).
//
// On a machine without a usable C compiler the example degrades gracefully:
// it reports the structured NativeError and runs the IR engine alone.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "native/native_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string circuit = argc > 1 ? argv[1] : "c6288";
  const std::size_t vectors =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 2000;

  const Netlist nl = examples::load_circuit(circuit);
  const std::size_t pis = nl.primary_inputs().size();
  const std::vector<Bit> stream = examples::xorshift_stream(vectors, pis);
  std::printf("%s: %zu gates, %zu inputs, %zu vectors\n", circuit.c_str(),
              nl.gate_count(), pis, vectors);

  const auto throughput = [&](Simulator& sim) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)sim.run_batch(stream, /*num_threads=*/1);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count() > 0.0 ? static_cast<double>(vectors) / dt.count() : 0.0;
  };

  MetricsRegistry reg;

  // IR leg: the interpreted executor over the same combined program.
  auto ir = make_simulator(nl, EngineKind::ParallelCombined);
  const double ir_vps = throughput(*ir);
  std::printf("  ir (parallel-combined):  %10.0f vec/s\n", ir_vps);

  // Native leg, behind the same facade.
  NativeOptions opts;  // $UDSIM_CC / $UDSIM_CC_FLAGS / $UDSIM_NATIVE_CACHE
  try {
    const CompileGuard guard{CompileBudget{}, nullptr, &reg};
    NativeSimulator native(nl, opts, guard);
    native.set_metrics(&reg);
    const double native_vps = throughput(native);
    native.set_metrics(nullptr);
    std::printf("  native (dlopen):         %10.0f vec/s", native_vps);
    if (ir_vps > 0.0 && native_vps > 0.0) {
      std::printf("   (%.2fx the interpreter)", native_vps / ir_vps);
    }
    std::printf("\n  shared object: %s%s\n", native.module().so_path().c_str(),
                native.module().from_cache() ? " (cache hit)" : " (built)");
  } catch (const NativeError& e) {
    std::printf("  native backend unavailable (%s stage): %s\n",
                std::string(native_stage_name(e.stage())).c_str(), e.what());
  }

  std::printf("\nmetrics registry:\n");
  for (const auto& [name, value] : reg.snapshot()) {
    std::printf("  %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  return 0;
}
