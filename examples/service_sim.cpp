// Serving walkthrough: stand up an in-process SimService and drive it the
// way a long-lived client would — open a session, submit requests against
// the shared compiled-program cache, watch a deadline expire and a
// cancellation land as structured outcomes, and read the per-session report.
//
//   service_sim [circuit] [vectors] [requests]    (defaults: c880 64 4)
//
// Everything a request can do is visible in its SimResponse: the outcome,
// the engine that served it, whether the program came from the cache, how
// long it queued and ran, and (for interrupted batch runs) a resumable
// checkpoint. The service never throws at the caller and never hangs a
// ticket — overload, bad input, deadlines and shutdown all come back as
// one of the seven Outcome values.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "service/sim_service.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const std::size_t vectors =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const unsigned requests = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;

  const auto nl =
      std::make_shared<Netlist>(examples::load_circuit(circuit));
  const std::vector<Bit> stream =
      examples::xorshift_stream(vectors, nl->primary_inputs().size());

  // A small service: two request workers, a bounded queue, default engine
  // chain, program cache shared by every request.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  SimService svc(cfg);
  const SessionId session = svc.open_session("walkthrough");

  // 1. Repeated requests for the same circuit: the first compiles (cache
  // miss), the rest reuse the cached program (hits).
  for (unsigned i = 0; i < requests; ++i) {
    const SimResponse r =
        svc.run(session, SimRequest{.netlist = nl, .vectors = stream});
    if (r.outcome != Outcome::Completed) {
      std::fprintf(stderr, "request %u: unexpected outcome %s (%s)\n", i,
                   std::string(outcome_name(r.outcome)).c_str(),
                   r.detail.c_str());
      return 1;
    }
    std::printf("request %u: %s via %s, cache %s, queued %.1f us, ran %.1f us, "
                "%llu vectors\n",
                i, std::string(outcome_name(r.outcome)).c_str(),
                std::string(engine_name(r.engine)).c_str(),
                r.cache_hit ? "hit" : "miss",
                1e-3 * static_cast<double>(r.queue_ns),
                1e-3 * static_cast<double>(r.run_ns),
                static_cast<unsigned long long>(r.vectors_done));
  }

  // 2. A deadline the request cannot meet: a structured DeadlineExpired, not
  // an exception and not a hang.
  const SimResponse late = svc.run(
      session, SimRequest{.netlist = nl,
                          .vectors = stream,
                          .deadline = std::chrono::nanoseconds(1)});
  std::printf("1ns-deadline request: %s (%s)\n",
              std::string(outcome_name(late.outcome)).c_str(),
              late.detail.c_str());
  if (late.outcome != Outcome::DeadlineExpired) return 1;

  // 3. Cancellation by ticket id: submit asynchronously, cancel, collect.
  ServiceTicket ticket =
      svc.submit(session, SimRequest{.netlist = nl, .vectors = stream});
  (void)svc.cancel(ticket.id);
  const SimResponse cancelled = ticket.result.get();
  std::printf("cancelled request: %s%s%s\n",
              std::string(outcome_name(cancelled.outcome)).c_str(),
              cancelled.detail.empty() ? "" : " — ",
              cancelled.detail.c_str());
  // Racing completion is legal: Completed and Cancelled are both valid here.
  if (cancelled.outcome != Outcome::Cancelled &&
      cancelled.outcome != Outcome::Completed) {
    return 1;
  }

  // 4. Malformed input: a stream that is not a whole number of vectors is
  // Rejected at submit, before it costs a queue slot.
  std::vector<Bit> ragged(stream.begin(), stream.end() - 1);
  const SimResponse bad =
      svc.run(session, SimRequest{.netlist = nl, .vectors = ragged});
  std::printf("ragged request: %s (%s)\n",
              std::string(outcome_name(bad.outcome)).c_str(),
              bad.detail.c_str());
  if (bad.outcome != Outcome::Rejected) return 1;

  // 5. What the service saw, per this session and overall.
  const SimService::Stats stats = svc.stats();
  std::printf("service: %zu cached program(s), %zu bytes resident, "
              "queue %zu/%zu\n",
              stats.cache_entries, stats.cache_bytes, stats.queue_depth,
              stats.queue_capacity);
  std::printf("session report: %s\n", svc.session_report(session).c_str());

  // 6. The health model (DESIGN.md §5k): per-component state — lifecycle,
  // toolchain breaker, queue, shed ladder, poison quarantine — folded into
  // one overall Healthy/Degraded/Unhealthy, exported as JSON for scrapes.
  const SimService::HealthReport health = svc.health();
  std::printf("health: %s\n%s\n",
              std::string(health_state_name(health.state)).c_str(),
              svc.health_json().c_str());
  if (health.state != HealthState::Healthy) return 1;

  svc.shutdown();
  std::printf("ok\n");
  return 0;
}
