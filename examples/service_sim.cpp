// Serving walkthrough: stand up an in-process SimService and drive it the
// way a long-lived client would — open a session, submit requests against
// the shared compiled-program cache, watch a deadline expire and a
// cancellation land as structured outcomes, and read the per-session report.
//
//   service_sim [circuit] [vectors] [requests] [--status] [--prometheus]
//                                               (defaults: c880 64 4)
//
//   --status      print the live status_json() document after the traffic
//   --prometheus  print the Prometheus text exposition after the traffic
//
// Everything a request can do is visible in its SimResponse: the outcome,
// the engine that served it, whether the program came from the cache, how
// long it queued and ran, and (for interrupted batch runs) a resumable
// checkpoint. The service never throws at the caller and never hangs a
// ticket — overload, bad input, deadlines and shutdown all come back as
// one of the seven Outcome values.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "obs/exporter.h"
#include "service/sim_service.h"

int main(int argc, char** argv) {
  using namespace udsim;
  bool show_status = false;
  bool show_prometheus = false;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--status") {
      show_status = true;
    } else if (a == "--prometheus") {
      show_prometheus = true;
    } else {
      pos.push_back(a);
    }
  }
  const std::string circuit = !pos.empty() ? pos[0] : "c880";
  const std::size_t vectors =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 64;
  const unsigned requests =
      pos.size() > 2 ? static_cast<unsigned>(std::atoi(pos[2].c_str())) : 4;

  const auto nl =
      std::make_shared<Netlist>(examples::load_circuit(circuit));
  const std::vector<Bit> stream =
      examples::xorshift_stream(vectors, nl->primary_inputs().size());

  // A small service: two request workers, a bounded queue, default engine
  // chain, program cache shared by every request.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  SimService svc(cfg);
  const SessionId session = svc.open_session("walkthrough");

  // 1. Repeated requests for the same circuit: the first compiles (cache
  // miss), the rest reuse the cached program (hits).
  for (unsigned i = 0; i < requests; ++i) {
    const SimResponse r =
        svc.run(session, SimRequest{.netlist = nl, .vectors = stream});
    if (r.outcome != Outcome::Completed) {
      std::fprintf(stderr, "request %u: unexpected outcome %s (%s)\n", i,
                   std::string(outcome_name(r.outcome)).c_str(),
                   r.detail.c_str());
      return 1;
    }
    std::printf("request %u: %s via %s, cache %s, queued %.1f us, ran %.1f us, "
                "%llu vectors\n",
                i, std::string(outcome_name(r.outcome)).c_str(),
                std::string(engine_name(r.engine)).c_str(),
                r.cache_hit ? "hit" : "miss",
                1e-3 * static_cast<double>(r.queue_ns),
                1e-3 * static_cast<double>(r.run_ns),
                static_cast<unsigned long long>(r.vectors_done));
  }

  // 2. A deadline the request cannot meet: a structured DeadlineExpired, not
  // an exception and not a hang.
  const SimResponse late = svc.run(
      session, SimRequest{.netlist = nl,
                          .vectors = stream,
                          .deadline = std::chrono::nanoseconds(1)});
  std::printf("1ns-deadline request: %s (%s)\n",
              std::string(outcome_name(late.outcome)).c_str(),
              late.detail.c_str());
  if (late.outcome != Outcome::DeadlineExpired) return 1;

  // 3. Cancellation by ticket id: submit asynchronously, cancel, collect.
  ServiceTicket ticket =
      svc.submit(session, SimRequest{.netlist = nl, .vectors = stream});
  (void)svc.cancel(ticket.id);
  const SimResponse cancelled = ticket.result.get();
  std::printf("cancelled request: %s%s%s\n",
              std::string(outcome_name(cancelled.outcome)).c_str(),
              cancelled.detail.empty() ? "" : " — ",
              cancelled.detail.c_str());
  // Racing completion is legal: Completed and Cancelled are both valid here.
  if (cancelled.outcome != Outcome::Cancelled &&
      cancelled.outcome != Outcome::Completed) {
    return 1;
  }

  // 4. Malformed input: a stream that is not a whole number of vectors is
  // Rejected at submit, before it costs a queue slot.
  std::vector<Bit> ragged(stream.begin(), stream.end() - 1);
  const SimResponse bad =
      svc.run(session, SimRequest{.netlist = nl, .vectors = ragged});
  std::printf("ragged request: %s (%s)\n",
              std::string(outcome_name(bad.outcome)).c_str(),
              bad.detail.c_str());
  if (bad.outcome != Outcome::Rejected) return 1;

  // 5. What the service saw, per this session and overall.
  const SimService::Stats stats = svc.stats();
  std::printf("service: %zu cached program(s), %zu bytes resident, "
              "queue %zu/%zu\n",
              stats.cache_entries, stats.cache_bytes, stats.queue_depth,
              stats.queue_capacity);
  std::printf("session report: %s\n", svc.session_report(session).c_str());

  // 6. The health model (DESIGN.md §5k): per-component state — lifecycle,
  // toolchain breaker, queue, shed ladder, poison quarantine — folded into
  // one overall Healthy/Degraded/Unhealthy, exported as JSON for scrapes.
  const SimService::HealthReport health = svc.health();
  std::printf("health: %s\n%s\n",
              std::string(health_state_name(health.state)).c_str(),
              svc.health_json().c_str());
  if (health.state != HealthState::Healthy) return 1;

  // 7. Live telemetry (DESIGN.md §5l): the status document and Prometheus
  // exposition compose everything above — stats, health, exactly-once
  // outcome counters, the rolling window with latency percentiles and the
  // SLO view — for a scrape loop or dashboard.
  if (show_status) {
    std::printf("status:\n%s\n", svc.status_json().c_str());
  }
  if (show_prometheus) {
    const std::string text = svc.prometheus_text();
    std::string why;
    if (!validate_prometheus_text(text, &why)) {
      std::fprintf(stderr, "malformed exposition: %s\n", why.c_str());
      return 1;
    }
    std::printf("prometheus:\n%s", text.c_str());
  }

  svc.shutdown();
  std::printf("ok\n");
  return 0;
}
