// sequential_counter: simulate synchronous sequential circuits with the
// unit-delay compiled engines by breaking them at the flip-flops (paper §1:
// treat flip-flop inputs as primary outputs and outputs as primary inputs).
// Shows a binary counter ticking and an LFSR stream, with the intra-cycle
// unit-delay waveform of the counter's carry chain.
#include <cstdio>
#include <vector>

#include "gen/sequential.h"
#include "parsim/parallel_sim.h"

int main() {
  using namespace udsim;

  // ---- 4-bit counter ---------------------------------------------------------
  const Netlist seq = counter(4);
  const BrokenCircuit bc = break_flip_flops(seq);
  std::printf("counter(4): %zu gates; broken core has %zu inputs (%zu external"
              " + %zu state)\n\n",
              seq.real_gate_count(), bc.comb.primary_inputs().size(),
              bc.comb.primary_inputs().size() - bc.regs.size(), bc.regs.size());

  ParallelSim<> sim(bc.comb);
  std::vector<Bit> state(bc.regs.size(), 0);
  std::printf("cycle  en  q3q2q1q0   d-nets settle at depth %d\n",
              sim.compiled().lv.depth);
  for (int cycle = 0; cycle < 18; ++cycle) {
    const Bit en = cycle == 12 || cycle == 13 ? 0 : 1;  // pause mid-count
    std::vector<Bit> v{en};
    v.insert(v.end(), state.begin(), state.end());
    sim.step(v);
    for (std::size_t i = 0; i < bc.regs.size(); ++i) {
      state[i] = sim.final_value(bc.regs[i].d);
    }
    std::printf("%5d   %d  ", cycle, en);
    for (std::size_t i = bc.regs.size(); i-- > 0;) std::printf("%d", state[i]);
    std::printf("\n");
  }

  // Intra-cycle view: the top counter bit's XOR sees the rippling enable
  // chain; print its unit-delay history for the last cycle.
  std::printf("\nintra-cycle unit-delay history of the top d-net:\n  t: ");
  const NetId top_d = bc.regs.back().d;
  for (int t = 0; t <= sim.compiled().lv.depth; ++t) {
    std::printf("%d", sim.value_at(top_d, t));
  }
  std::printf("   (bit t = value at time t within the cycle)\n");

  // ---- 8-bit LFSR ------------------------------------------------------------
  const Netlist lf = lfsr(8, {8, 6, 5, 4});
  const BrokenCircuit lbc = break_flip_flops(lf);
  ParallelSim<> lsim(lbc.comb);
  std::vector<Bit> lstate(lbc.regs.size(), 0);
  std::printf("\nlfsr(8, taps 8/6/5/4) output stream: ");
  for (int cycle = 0; cycle < 32; ++cycle) {
    std::vector<Bit> v{cycle == 0 ? Bit{1} : Bit{0}};  // seed kick
    v.insert(v.end(), lstate.begin(), lstate.end());
    lsim.step(v);
    for (std::size_t i = 0; i < lbc.regs.size(); ++i) {
      lstate[i] = lsim.final_value(lbc.regs[i].d);
    }
    std::printf("%d", lstate.back());
  }
  std::printf("\n");
  return 0;
}
