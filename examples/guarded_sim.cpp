// Guarded compilation end to end: put an ISCAS-85 profile under a compile
// budget, let the fallback chain pick an engine that fits, and print every
// diagnostic the pipeline collected along the way.
//
//   guarded_sim [circuit] [max-arena-words]
//
// With no budget argument the chain's first choice wins; with a small one
// (try `guarded_sim c1908 920`) you can watch the parallel engines get
// rejected on their *predicted* cost and the chain degrade toward LCC or
// the interpreted event engine.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"

using namespace udsim;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c1908";
  const std::size_t max_arena =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10)) : 0;

  const Netlist nl = make_iscas85_like(circuit);
  std::cout << circuit << ": " << nl.net_count() << " nets, " << nl.gate_count()
            << " gates\n\n";

  // What would each engine cost? The prediction needs no compilation.
  std::cout << "predicted compile cost (arena words / ops):\n";
  for (EngineKind k :
       {EngineKind::ParallelCombined, EngineKind::ParallelTrimmed,
        EngineKind::PCSet, EngineKind::ZeroDelayLcc}) {
    const CompileCostEstimate est = estimate_compile_cost(nl, k);
    std::cout << "  " << engine_name(k) << ": " << est.arena_words << " / "
              << est.ops << "\n";
  }

  SimPolicy policy;
  policy.budget.max_arena_words = max_arena;
  std::cout << "\nbudget: "
            << (max_arena == 0 ? "unlimited"
                               : std::to_string(max_arena) + " arena words")
            << "\n";

  Diagnostics diag;
  const auto sim = make_simulator_with_fallback(nl, policy, &diag);
  std::cout << "selected engine: " << engine_name(sim->kind()) << "\n\n";

  if (!diag.empty()) {
    std::cout << "diagnostics:\n";
    diag.print(std::cout);
    std::cout << "\n";
  }

  // The chosen engine is a full Simulator: run a few vectors through it.
  RandomVectorSource src(nl.primary_inputs().size(), 42);
  std::vector<Bit> v(nl.primary_inputs().size());
  std::size_t ones = 0;
  for (int i = 0; i < 16; ++i) {
    src.next(v);
    sim->step(v);
    for (NetId po : nl.primary_outputs()) ones += sim->final_value(po);
  }
  std::cout << "16 vectors simulated; " << ones
            << " output bits settled to 1\n";
  return 0;
}
