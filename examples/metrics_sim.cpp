// Observability demo: attach one MetricsRegistry to a whole simulation —
// compile-phase trace spans, compile-shape counters and exact runtime
// counters all land in the same object — then print it as a table and as
// JSON.
//
//   metrics_sim [circuit] [vectors] [threads]     (defaults: c432 64 2)
//
// The counters are exact, not sampled: exec.ops below is provably
// compile.ops × sim.vectors, and the batch run's payload counters are
// identical for every thread count (DESIGN.md §5e).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "gen/iscas_profiles.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string circuit = argc > 1 ? argv[1] : "c432";
  const std::size_t vectors = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const unsigned threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

  const Netlist nl = make_iscas85_like(circuit);
  MetricsRegistry metrics;

  // Construct through a guard carrying the registry: the compiler traces
  // its phases (compile.levelize/.alignment/.trimming/.emit spans) and
  // records the program shape; the engine then adopts the registry for its
  // runtime counters automatically.
  const CompileGuard guard{CompileBudget{}, nullptr, &metrics};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);

  // A deterministic input stream, then one multi-threaded batch run.
  std::vector<Bit> stream(vectors * nl.primary_inputs().size());
  std::uint64_t x = 88172645463325252ull;
  for (Bit& b : stream) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  const BatchResult result = sim->run_batch(stream, threads);

  std::printf("%s: %zu vectors on %u thread(s), %zu outputs sampled\n\n",
              circuit.c_str(), result.vectors, result.threads,
              result.outputs.size());
  metrics.print(std::cout);

  // Machine export; pass `false` to drop the wall-clock *.ns keys and keep
  // only the deterministic subset (what tests/golden/ pins down).
  std::printf("\nJSON (deterministic subset):\n%s\n",
              metrics.to_json(/*include_timings=*/false).c_str());

  // The exactness law the observability tests enforce.
  const auto snap = metrics.snapshot();
  std::printf("\nexec.ops %llu == compile.ops %llu x sim.vectors %llu: %s\n",
              static_cast<unsigned long long>(snap.at("exec.ops")),
              static_cast<unsigned long long>(snap.at("compile.ops")),
              static_cast<unsigned long long>(snap.at("sim.vectors")),
              snap.at("exec.ops") == snap.at("compile.ops") * snap.at("sim.vectors")
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
