// Observability demo: attach one MetricsRegistry to a whole simulation —
// compile-phase trace spans, compile-shape counters and exact runtime
// counters all land in the same object — then print it as a table and as
// JSON.
//
//   metrics_sim [circuit] [vectors] [threads] [--json <path>]
//                                                  (defaults: c432 64 2)
//
// With --json the full RunReport (counters + histograms + program profile +
// Chrome trace) is written to <path>; load the "trace" the registry also
// exports via trace_to_json in Perfetto (ui.perfetto.dev).
//
// The counters are exact, not sampled: exec.ops below is provably
// compile.ops × sim.vectors, and the batch run's payload counters are
// identical for every thread count (DESIGN.md §5e).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "core/simulator.h"
#include "obs/metrics.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  using namespace udsim;
  std::vector<std::string> pos;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pos.push_back(arg);
    }
  }
  const std::string circuit = pos.size() > 0 ? pos[0] : "c432";
  const std::size_t vectors =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 64;
  const unsigned threads =
      pos.size() > 2 ? static_cast<unsigned>(std::atoi(pos[2].c_str())) : 2;

  const Netlist nl = examples::load_circuit(circuit);
  MetricsRegistry metrics;

  // Construct through a guard carrying the registry: the compiler traces
  // its phases (compile.levelize/.alignment/.trimming/.emit spans) and
  // records the program shape; the engine then adopts the registry for its
  // runtime counters automatically.
  const CompileGuard guard{CompileBudget{}, nullptr, &metrics};
  auto sim = make_simulator(nl, EngineKind::ParallelCombined, guard);

  // A deterministic input stream, then one multi-threaded batch run.
  const std::vector<Bit> stream =
      examples::xorshift_stream(vectors, nl.primary_inputs().size());
  const BatchResult result = sim->run_batch(stream, threads);

  std::printf("%s: %zu vectors on %u thread(s), %zu outputs sampled\n\n",
              circuit.c_str(), result.vectors, result.threads,
              result.outputs.size());
  metrics.print(std::cout);

  // Machine export; pass `false` to drop the wall-clock *.ns/*.us keys and
  // keep only the deterministic subset (what tests/golden/ pins down).
  std::printf("\nJSON (deterministic subset):\n%s\n",
              metrics.to_json(/*include_timings=*/false).c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    out << sim->report_to_json() << "\n";
    std::printf("\nrun report written to %s\n", json_path.c_str());
  }

  // The exactness law the observability tests enforce.
  const auto snap = metrics.snapshot();
  std::printf("\nexec.ops %llu == compile.ops %llu x sim.vectors %llu: %s\n",
              static_cast<unsigned long long>(snap.at("exec.ops")),
              static_cast<unsigned long long>(snap.at("compile.ops")),
              static_cast<unsigned long long>(snap.at("sim.vectors")),
              snap.at("exec.ops") == snap.at("compile.ops") * snap.at("sim.vectors")
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
