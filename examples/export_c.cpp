// export_c: generate the compiled-simulation C source for a circuit, the
// artifact the paper's code generators produce. The output is a complete
// translation unit (arena + init + step function) that can be compiled with
// any C compiler; bench/ablation_emitted_c does exactly that and checks it
// against the in-process executor.
//
// Usage: export_c [circuit] [engine] > sim.c
//   circuit: ISCAS-85 profile name or path to a .bench file (default c432)
//   engine:  lcc | pcset | parallel | parallel-trim | parallel-pt |
//            parallel-cb | parallel-combined          (default parallel)
#include <cstdio>
#include <iostream>
#include <string>

#include "gen/iscas_profiles.h"
#include "ir/c_emitter.h"
#include "lcc/lcc.h"
#include "netlist/bench_io.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  const std::string which = argc > 1 ? argv[1] : "c432";
  const std::string engine = argc > 2 ? argv[2] : "parallel";

  try {
    Netlist nl = which.find(".bench") != std::string::npos
                     ? read_bench_file(which)
                     : make_iscas85_like(which);
    lower_wired_nets(nl);

    Program program;
    if (engine == "lcc") {
      program = compile_lcc(nl).program;
    } else if (engine == "pcset") {
      program = compile_pcset(nl).program;
    } else {
      ParallelOptions o;
      if (engine == "parallel-trim") {
        o.trimming = true;
      } else if (engine == "parallel-pt") {
        o.shift_elim = ShiftElim::PathTracing;
      } else if (engine == "parallel-cb") {
        o.shift_elim = ShiftElim::CycleBreaking;
      } else if (engine == "parallel-combined") {
        o.trimming = true;
        o.shift_elim = ShiftElim::PathTracing;
      } else if (engine != "parallel") {
        std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
        return 2;
      }
      program = compile_parallel(nl, o).program;
    }
    std::fprintf(stderr,
                 "circuit %s, engine %s: %zu ops, %u arena words, %zu inputs\n",
                 nl.name().c_str(), engine.c_str(), program.size(),
                 program.arena_words, nl.primary_inputs().size());
    emit_c(std::cout, program);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
