// circuit_info: print structural statistics and per-technique code metrics
// for the built-in ISCAS-85-like profiles, or for a .bench file given as an
// argument. Usage:
//   circuit_info              # all ten combinational profiles
//   circuit_info c432         # one profile
//   circuit_info --seq        # the sequential (ISCAS-89-like) profiles
//   circuit_info path.bench   # a real netlist from disk
#include <iostream>

#include "analysis/alignment.h"
#include "analysis/pcset.h"
#include "gen/iscas_profiles.h"
#include "gen/sequential.h"
#include "harness/table.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace {

void report(const udsim::Netlist& nl, udsim::Table& table) {
  using namespace udsim;
  const CircuitStats st = circuit_stats(nl);
  const Levelization lv = levelize(nl);
  const PCSets pc = compute_pc_sets(nl, lv);
  const PCSetCompiled pcs = compile_pcset(nl);
  const ParallelCompiled par = compile_parallel(nl, {});
  table.add_row({nl.name(), std::to_string(st.primary_inputs),
                 std::to_string(st.primary_outputs), std::to_string(st.gates),
                 std::to_string(st.depth + 1), Table::num(st.avg_fanin, 2),
                 std::to_string(pc.total_net_pc_size()),
                 std::to_string(pc.max_net_pc_size()),
                 std::to_string(pcs.program.size()),
                 std::to_string(par.program.size()),
                 std::to_string(par.stats.field_words_max)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  Table table({"circuit", "PI", "PO", "gates", "levels", "fanin", "pc_total",
               "pc_max", "pcset_ops", "par_ops", "words"});
  try {
    if (argc > 1 && std::string(argv[1]) == "--seq") {
      Table seq_table({"circuit", "PI", "PO", "DFF", "gates", "core depth"});
      for (const Iscas89Profile& p : iscas89_profiles()) {
        const Netlist nl = make_iscas89_like(p.name);
        const BrokenCircuit bc = break_flip_flops(nl);
        seq_table.add_row({p.name, std::to_string(p.inputs),
                           std::to_string(p.outputs), std::to_string(p.registers),
                           std::to_string(p.gates),
                           std::to_string(circuit_stats(bc.comb).depth)});
      }
      seq_table.print(std::cout);
      return 0;
    }
    if (argc > 1) {
      const std::string arg = argv[1];
      Netlist nl = arg.find(".bench") != std::string::npos
                       ? read_bench_file(arg)
                       : make_iscas85_like(arg);
      lower_wired_nets(nl);
      report(nl, table);
    } else {
      for (const IscasProfile& p : iscas85_profiles()) {
        const Netlist nl = make_iscas85_like(p.name);
        report(nl, table);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  table.print(std::cout);
  return 0;
}
