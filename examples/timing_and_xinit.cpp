// timing_and_xinit: two analyses the compiled substrate makes cheap —
// a static timing report (critical path, per-output arrival windows) and
// X-initialization analysis of a sequential design (which registers a reset
// sequence actually initializes).
#include <cstdio>
#include <iostream>

#include "analysis/timing.h"
#include "gen/arithmetic.h"
#include "gen/sequential.h"
#include "lcc/lcc3.h"

int main() {
  using namespace udsim;

  // ---- timing report on an 8-bit ripple-carry adder --------------------------
  const Netlist rca = ripple_carry_adder(8);
  const Levelization lv = levelize(rca);
  print_timing_report(std::cout, rca, lv);

  // ---- X-initialization of sequential designs --------------------------------
  std::printf("\n=== X-initialization analysis ===\n");
  {
    const Netlist seq = counter(4);
    const BrokenCircuit bc = break_flip_flops(seq);
    const Tri en[] = {Tri::One};
    const XInitResult r = x_initialization(bc, en, 32);
    std::printf("counter(4), enable held high: %s after %d cycles"
                " (%zu registers still X)\n",
                r.fully_initialized ? "initialized" : "NOT initialized",
                r.cycles, r.unresolved.size());
    std::printf("  (expected: a counter without reset can never leave X —\n"
                "   q' = q ^ carry keeps the unknown alive)\n");
  }
  {
    const Netlist seq = lfsr(8, {8, 6, 5, 4});
    const BrokenCircuit bc = break_flip_flops(seq);
    const Tri seed_hi[] = {Tri::One};
    const XInitResult r = x_initialization(bc, seed_hi, 32);
    std::printf("lfsr(8), seed input held high: %s after %d cycles"
                " (%zu registers still X)\n",
                r.fully_initialized ? "initialized" : "NOT initialized",
                r.cycles, r.unresolved.size());
    std::printf("  (an LFSR shifts: X drains only if the feedback resolves;\n"
                "   XOR with an X tap keeps it unknown)\n");
  }
  return 0;
}
