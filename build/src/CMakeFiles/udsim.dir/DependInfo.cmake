
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/alignment.cpp" "src/CMakeFiles/udsim.dir/analysis/alignment.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/alignment.cpp.o.d"
  "/root/repo/src/analysis/levelize.cpp" "src/CMakeFiles/udsim.dir/analysis/levelize.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/levelize.cpp.o.d"
  "/root/repo/src/analysis/network_graph.cpp" "src/CMakeFiles/udsim.dir/analysis/network_graph.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/network_graph.cpp.o.d"
  "/root/repo/src/analysis/pcset.cpp" "src/CMakeFiles/udsim.dir/analysis/pcset.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/pcset.cpp.o.d"
  "/root/repo/src/analysis/timing.cpp" "src/CMakeFiles/udsim.dir/analysis/timing.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/timing.cpp.o.d"
  "/root/repo/src/analysis/trimming.cpp" "src/CMakeFiles/udsim.dir/analysis/trimming.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/analysis/trimming.cpp.o.d"
  "/root/repo/src/core/equivalence.cpp" "src/CMakeFiles/udsim.dir/core/equivalence.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/core/equivalence.cpp.o.d"
  "/root/repo/src/core/pattern_io.cpp" "src/CMakeFiles/udsim.dir/core/pattern_io.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/core/pattern_io.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/udsim.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/core/simulator.cpp.o.d"
  "/root/repo/src/core/vcd.cpp" "src/CMakeFiles/udsim.dir/core/vcd.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/core/vcd.cpp.o.d"
  "/root/repo/src/eventsim/async_sim.cpp" "src/CMakeFiles/udsim.dir/eventsim/async_sim.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/eventsim/async_sim.cpp.o.d"
  "/root/repo/src/eventsim/zero_delay_sim.cpp" "src/CMakeFiles/udsim.dir/eventsim/zero_delay_sim.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/eventsim/zero_delay_sim.cpp.o.d"
  "/root/repo/src/fault/fault_sim.cpp" "src/CMakeFiles/udsim.dir/fault/fault_sim.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/fault/fault_sim.cpp.o.d"
  "/root/repo/src/fault/transition.cpp" "src/CMakeFiles/udsim.dir/fault/transition.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/fault/transition.cpp.o.d"
  "/root/repo/src/gen/arithmetic.cpp" "src/CMakeFiles/udsim.dir/gen/arithmetic.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/arithmetic.cpp.o.d"
  "/root/repo/src/gen/datapath.cpp" "src/CMakeFiles/udsim.dir/gen/datapath.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/datapath.cpp.o.d"
  "/root/repo/src/gen/iscas_profiles.cpp" "src/CMakeFiles/udsim.dir/gen/iscas_profiles.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/iscas_profiles.cpp.o.d"
  "/root/repo/src/gen/random_dag.cpp" "src/CMakeFiles/udsim.dir/gen/random_dag.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/random_dag.cpp.o.d"
  "/root/repo/src/gen/sequential.cpp" "src/CMakeFiles/udsim.dir/gen/sequential.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/sequential.cpp.o.d"
  "/root/repo/src/gen/trees.cpp" "src/CMakeFiles/udsim.dir/gen/trees.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/gen/trees.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "src/CMakeFiles/udsim.dir/harness/table.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/harness/table.cpp.o.d"
  "/root/repo/src/hazard/hazard.cpp" "src/CMakeFiles/udsim.dir/hazard/hazard.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/hazard/hazard.cpp.o.d"
  "/root/repo/src/ir/c_emitter.cpp" "src/CMakeFiles/udsim.dir/ir/c_emitter.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/ir/c_emitter.cpp.o.d"
  "/root/repo/src/ir/verify.cpp" "src/CMakeFiles/udsim.dir/ir/verify.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/ir/verify.cpp.o.d"
  "/root/repo/src/lcc/lcc.cpp" "src/CMakeFiles/udsim.dir/lcc/lcc.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/lcc/lcc.cpp.o.d"
  "/root/repo/src/lcc/lcc3.cpp" "src/CMakeFiles/udsim.dir/lcc/lcc3.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/lcc/lcc3.cpp.o.d"
  "/root/repo/src/netlist/bench_io.cpp" "src/CMakeFiles/udsim.dir/netlist/bench_io.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/netlist/bench_io.cpp.o.d"
  "/root/repo/src/netlist/logic.cpp" "src/CMakeFiles/udsim.dir/netlist/logic.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/netlist/logic.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/udsim.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/CMakeFiles/udsim.dir/netlist/stats.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/netlist/stats.cpp.o.d"
  "/root/repo/src/netlist/transform.cpp" "src/CMakeFiles/udsim.dir/netlist/transform.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/netlist/transform.cpp.o.d"
  "/root/repo/src/oracle/oracle.cpp" "src/CMakeFiles/udsim.dir/oracle/oracle.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/oracle/oracle.cpp.o.d"
  "/root/repo/src/parsim/parallel_sim.cpp" "src/CMakeFiles/udsim.dir/parsim/parallel_sim.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/parsim/parallel_sim.cpp.o.d"
  "/root/repo/src/pcsim/pcset_sim.cpp" "src/CMakeFiles/udsim.dir/pcsim/pcset_sim.cpp.o" "gcc" "src/CMakeFiles/udsim.dir/pcsim/pcset_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
