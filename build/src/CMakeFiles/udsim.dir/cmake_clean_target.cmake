file(REMOVE_RECURSE
  "libudsim.a"
)
