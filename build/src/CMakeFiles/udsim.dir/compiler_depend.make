# Empty compiler generated dependencies file for udsim.
# This may be replaced when dependencies are built.
