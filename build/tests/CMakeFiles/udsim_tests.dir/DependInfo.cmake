
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alignment_test.cpp" "tests/CMakeFiles/udsim_tests.dir/alignment_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/alignment_test.cpp.o.d"
  "/root/repo/tests/async_test.cpp" "tests/CMakeFiles/udsim_tests.dir/async_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/async_test.cpp.o.d"
  "/root/repo/tests/bench_io_test.cpp" "tests/CMakeFiles/udsim_tests.dir/bench_io_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/bench_io_test.cpp.o.d"
  "/root/repo/tests/bitset_test.cpp" "tests/CMakeFiles/udsim_tests.dir/bitset_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/bitset_test.cpp.o.d"
  "/root/repo/tests/datapath_test.cpp" "tests/CMakeFiles/udsim_tests.dir/datapath_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/datapath_test.cpp.o.d"
  "/root/repo/tests/equiv_pattern_test.cpp" "tests/CMakeFiles/udsim_tests.dir/equiv_pattern_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/equiv_pattern_test.cpp.o.d"
  "/root/repo/tests/eventsim_test.cpp" "tests/CMakeFiles/udsim_tests.dir/eventsim_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/eventsim_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/udsim_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/gen_test.cpp" "tests/CMakeFiles/udsim_tests.dir/gen_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/gen_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/udsim_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/hazard_test.cpp" "tests/CMakeFiles/udsim_tests.dir/hazard_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/hazard_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/udsim_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/udsim_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/lcc3_test.cpp" "tests/CMakeFiles/udsim_tests.dir/lcc3_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/lcc3_test.cpp.o.d"
  "/root/repo/tests/lcc_test.cpp" "tests/CMakeFiles/udsim_tests.dir/lcc_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/lcc_test.cpp.o.d"
  "/root/repo/tests/levelize_test.cpp" "tests/CMakeFiles/udsim_tests.dir/levelize_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/levelize_test.cpp.o.d"
  "/root/repo/tests/logic_test.cpp" "tests/CMakeFiles/udsim_tests.dir/logic_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/logic_test.cpp.o.d"
  "/root/repo/tests/multidelay_test.cpp" "tests/CMakeFiles/udsim_tests.dir/multidelay_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/multidelay_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/udsim_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/network_graph_test.cpp" "tests/CMakeFiles/udsim_tests.dir/network_graph_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/network_graph_test.cpp.o.d"
  "/root/repo/tests/oracle_test.cpp" "tests/CMakeFiles/udsim_tests.dir/oracle_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/oracle_test.cpp.o.d"
  "/root/repo/tests/parsim_test.cpp" "tests/CMakeFiles/udsim_tests.dir/parsim_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/parsim_test.cpp.o.d"
  "/root/repo/tests/pcset_test.cpp" "tests/CMakeFiles/udsim_tests.dir/pcset_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/pcset_test.cpp.o.d"
  "/root/repo/tests/pcsim_test.cpp" "tests/CMakeFiles/udsim_tests.dir/pcsim_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/pcsim_test.cpp.o.d"
  "/root/repo/tests/profile_property_test.cpp" "tests/CMakeFiles/udsim_tests.dir/profile_property_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/profile_property_test.cpp.o.d"
  "/root/repo/tests/sequential_test.cpp" "tests/CMakeFiles/udsim_tests.dir/sequential_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/sequential_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/udsim_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/timing_test.cpp" "tests/CMakeFiles/udsim_tests.dir/timing_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/timing_test.cpp.o.d"
  "/root/repo/tests/transform_test.cpp" "tests/CMakeFiles/udsim_tests.dir/transform_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/transform_test.cpp.o.d"
  "/root/repo/tests/transition_test.cpp" "tests/CMakeFiles/udsim_tests.dir/transition_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/transition_test.cpp.o.d"
  "/root/repo/tests/trimming_test.cpp" "tests/CMakeFiles/udsim_tests.dir/trimming_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/trimming_test.cpp.o.d"
  "/root/repo/tests/vcd_activity_test.cpp" "tests/CMakeFiles/udsim_tests.dir/vcd_activity_test.cpp.o" "gcc" "tests/CMakeFiles/udsim_tests.dir/vcd_activity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/udsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
