# Empty compiler generated dependencies file for udsim_tests.
# This may be replaced when dependencies are built.
