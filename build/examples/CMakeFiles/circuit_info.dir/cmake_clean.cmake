file(REMOVE_RECURSE
  "CMakeFiles/circuit_info.dir/circuit_info.cpp.o"
  "CMakeFiles/circuit_info.dir/circuit_info.cpp.o.d"
  "circuit_info"
  "circuit_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
