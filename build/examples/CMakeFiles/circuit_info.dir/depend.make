# Empty dependencies file for circuit_info.
# This may be replaced when dependencies are built.
