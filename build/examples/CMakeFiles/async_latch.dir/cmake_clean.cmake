file(REMOVE_RECURSE
  "CMakeFiles/async_latch.dir/async_latch.cpp.o"
  "CMakeFiles/async_latch.dir/async_latch.cpp.o.d"
  "async_latch"
  "async_latch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_latch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
