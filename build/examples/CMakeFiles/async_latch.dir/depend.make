# Empty dependencies file for async_latch.
# This may be replaced when dependencies are built.
