file(REMOVE_RECURSE
  "CMakeFiles/testbench.dir/testbench.cpp.o"
  "CMakeFiles/testbench.dir/testbench.cpp.o.d"
  "testbench"
  "testbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
