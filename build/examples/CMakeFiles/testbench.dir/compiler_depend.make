# Empty compiler generated dependencies file for testbench.
# This may be replaced when dependencies are built.
