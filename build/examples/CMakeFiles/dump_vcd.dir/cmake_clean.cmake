file(REMOVE_RECURSE
  "CMakeFiles/dump_vcd.dir/dump_vcd.cpp.o"
  "CMakeFiles/dump_vcd.dir/dump_vcd.cpp.o.d"
  "dump_vcd"
  "dump_vcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_vcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
