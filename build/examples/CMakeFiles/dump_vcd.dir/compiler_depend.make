# Empty compiler generated dependencies file for dump_vcd.
# This may be replaced when dependencies are built.
