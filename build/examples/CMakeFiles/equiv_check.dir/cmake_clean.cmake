file(REMOVE_RECURSE
  "CMakeFiles/equiv_check.dir/equiv_check.cpp.o"
  "CMakeFiles/equiv_check.dir/equiv_check.cpp.o.d"
  "equiv_check"
  "equiv_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equiv_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
