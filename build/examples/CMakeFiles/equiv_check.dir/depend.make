# Empty dependencies file for equiv_check.
# This may be replaced when dependencies are built.
