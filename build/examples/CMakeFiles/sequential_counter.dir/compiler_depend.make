# Empty compiler generated dependencies file for sequential_counter.
# This may be replaced when dependencies are built.
