file(REMOVE_RECURSE
  "CMakeFiles/sequential_counter.dir/sequential_counter.cpp.o"
  "CMakeFiles/sequential_counter.dir/sequential_counter.cpp.o.d"
  "sequential_counter"
  "sequential_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
