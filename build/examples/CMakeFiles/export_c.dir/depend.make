# Empty dependencies file for export_c.
# This may be replaced when dependencies are built.
