# Empty dependencies file for hazard_hunt.
# This may be replaced when dependencies are built.
