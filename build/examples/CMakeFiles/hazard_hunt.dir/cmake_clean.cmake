file(REMOVE_RECURSE
  "CMakeFiles/hazard_hunt.dir/hazard_hunt.cpp.o"
  "CMakeFiles/hazard_hunt.dir/hazard_hunt.cpp.o.d"
  "hazard_hunt"
  "hazard_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
