# Empty compiler generated dependencies file for timing_and_xinit.
# This may be replaced when dependencies are built.
