file(REMOVE_RECURSE
  "CMakeFiles/timing_and_xinit.dir/timing_and_xinit.cpp.o"
  "CMakeFiles/timing_and_xinit.dir/timing_and_xinit.cpp.o.d"
  "timing_and_xinit"
  "timing_and_xinit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_and_xinit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
