# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_circuit_info "/root/repo/build/examples/circuit_info" "c432")
set_tests_properties(example_circuit_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hazard_hunt "/root/repo/build/examples/hazard_hunt" "c432" "50")
set_tests_properties(example_hazard_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_c "/root/repo/build/examples/export_c" "c432" "parallel-combined")
set_tests_properties(example_export_c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequential "/root/repo/build/examples/sequential_counter")
set_tests_properties(example_sequential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_coverage "/root/repo/build/examples/fault_coverage" "c432" "128")
set_tests_properties(example_fault_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dump_vcd "/root/repo/build/examples/dump_vcd" "c432" "4" "/root/repo/build/c432.vcd")
set_tests_properties(example_dump_vcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_testbench "/root/repo/build/examples/testbench" "c432" "--random" "8")
set_tests_properties(example_testbench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timing_xinit "/root/repo/build/examples/timing_and_xinit")
set_tests_properties(example_timing_xinit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_async_latch "/root/repo/build/examples/async_latch")
set_tests_properties(example_async_latch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_equiv_check "/root/repo/build/examples/equiv_check" "c432" "c432")
set_tests_properties(example_equiv_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
