# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig19_smoke "/root/repo/build/bench/fig19_techniques" "--vectors" "40" "--trials" "1" "--circuits" "c432,c499")
set_tests_properties(bench_fig19_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;29;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig19b_smoke "/root/repo/build/bench/fig19b_zero_delay" "--vectors" "40" "--trials" "1" "--circuits" "c432")
set_tests_properties(bench_fig19b_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;30;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig20_smoke "/root/repo/build/bench/fig20_trimming" "--vectors" "40" "--trials" "1" "--circuits" "c432,c1908")
set_tests_properties(bench_fig20_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;31;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig21_smoke "/root/repo/build/bench/fig21_retained_shifts" "--circuits" "c432,c499")
set_tests_properties(bench_fig21_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;32;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig22_smoke "/root/repo/build/bench/fig22_bitfield_widths" "--circuits" "c432,c499")
set_tests_properties(bench_fig22_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;33;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig23_smoke "/root/repo/build/bench/fig23_shift_elimination" "--vectors" "40" "--trials" "1" "--circuits" "c432,c880")
set_tests_properties(bench_fig23_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;34;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fig24_smoke "/root/repo/build/bench/fig24_combined" "--vectors" "40" "--trials" "1" "--circuits" "c432,c880")
set_tests_properties(bench_fig24_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;35;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_fault_smoke "/root/repo/build/bench/ext_fault_parallel" "--vectors" "32" "--trials" "1" "--circuits" "c432")
set_tests_properties(bench_fault_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;36;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_multidelay_smoke "/root/repo/build/bench/ext_multidelay" "--vectors" "40" "--trials" "1")
set_tests_properties(bench_multidelay_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;37;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_emitted_c_smoke "/root/repo/build/bench/ablation_emitted_c" "--vectors" "40" "--trials" "1" "--circuits" "c432")
set_tests_properties(bench_emitted_c_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;38;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_wordsize_smoke "/root/repo/build/bench/ablation_wordsize" "--benchmark_filter=c432" "--benchmark_min_time=0.01s")
set_tests_properties(bench_wordsize_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;39;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
add_test(bench_dataparallel_smoke "/root/repo/build/bench/ablation_dataparallel" "--benchmark_filter=c432" "--benchmark_min_time=0.01s")
set_tests_properties(bench_dataparallel_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/bench.cmake;40;add_test;/root/repo/bench/bench.cmake;0;;/root/repo/CMakeLists.txt;31;include;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("examples")
