file(REMOVE_RECURSE
  "CMakeFiles/ext_multidelay.dir/bench/ext_multidelay.cpp.o"
  "CMakeFiles/ext_multidelay.dir/bench/ext_multidelay.cpp.o.d"
  "bench/ext_multidelay"
  "bench/ext_multidelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multidelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
