# Empty dependencies file for ext_multidelay.
# This may be replaced when dependencies are built.
