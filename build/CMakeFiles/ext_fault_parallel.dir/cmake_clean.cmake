file(REMOVE_RECURSE
  "CMakeFiles/ext_fault_parallel.dir/bench/ext_fault_parallel.cpp.o"
  "CMakeFiles/ext_fault_parallel.dir/bench/ext_fault_parallel.cpp.o.d"
  "bench/ext_fault_parallel"
  "bench/ext_fault_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fault_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
