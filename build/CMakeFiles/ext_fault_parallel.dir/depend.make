# Empty dependencies file for ext_fault_parallel.
# This may be replaced when dependencies are built.
