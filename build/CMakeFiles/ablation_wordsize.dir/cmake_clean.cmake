file(REMOVE_RECURSE
  "CMakeFiles/ablation_wordsize.dir/bench/ablation_wordsize.cpp.o"
  "CMakeFiles/ablation_wordsize.dir/bench/ablation_wordsize.cpp.o.d"
  "bench/ablation_wordsize"
  "bench/ablation_wordsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wordsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
