# Empty dependencies file for ablation_wordsize.
# This may be replaced when dependencies are built.
