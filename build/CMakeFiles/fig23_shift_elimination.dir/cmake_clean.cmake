file(REMOVE_RECURSE
  "CMakeFiles/fig23_shift_elimination.dir/bench/fig23_shift_elimination.cpp.o"
  "CMakeFiles/fig23_shift_elimination.dir/bench/fig23_shift_elimination.cpp.o.d"
  "bench/fig23_shift_elimination"
  "bench/fig23_shift_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_shift_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
