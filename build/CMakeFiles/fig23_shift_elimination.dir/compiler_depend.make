# Empty compiler generated dependencies file for fig23_shift_elimination.
# This may be replaced when dependencies are built.
