# Empty compiler generated dependencies file for fig24_combined.
# This may be replaced when dependencies are built.
