file(REMOVE_RECURSE
  "CMakeFiles/fig24_combined.dir/bench/fig24_combined.cpp.o"
  "CMakeFiles/fig24_combined.dir/bench/fig24_combined.cpp.o.d"
  "bench/fig24_combined"
  "bench/fig24_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
