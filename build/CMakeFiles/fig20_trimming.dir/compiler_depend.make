# Empty compiler generated dependencies file for fig20_trimming.
# This may be replaced when dependencies are built.
