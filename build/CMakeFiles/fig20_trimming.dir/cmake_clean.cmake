file(REMOVE_RECURSE
  "CMakeFiles/fig20_trimming.dir/bench/fig20_trimming.cpp.o"
  "CMakeFiles/fig20_trimming.dir/bench/fig20_trimming.cpp.o.d"
  "bench/fig20_trimming"
  "bench/fig20_trimming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_trimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
