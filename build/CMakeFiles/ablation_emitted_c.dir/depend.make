# Empty dependencies file for ablation_emitted_c.
# This may be replaced when dependencies are built.
