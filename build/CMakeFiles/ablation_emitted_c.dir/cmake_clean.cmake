file(REMOVE_RECURSE
  "CMakeFiles/ablation_emitted_c.dir/bench/ablation_emitted_c.cpp.o"
  "CMakeFiles/ablation_emitted_c.dir/bench/ablation_emitted_c.cpp.o.d"
  "bench/ablation_emitted_c"
  "bench/ablation_emitted_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emitted_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
