# Empty compiler generated dependencies file for fig22_bitfield_widths.
# This may be replaced when dependencies are built.
