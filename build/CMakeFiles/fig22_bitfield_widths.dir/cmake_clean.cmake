file(REMOVE_RECURSE
  "CMakeFiles/fig22_bitfield_widths.dir/bench/fig22_bitfield_widths.cpp.o"
  "CMakeFiles/fig22_bitfield_widths.dir/bench/fig22_bitfield_widths.cpp.o.d"
  "bench/fig22_bitfield_widths"
  "bench/fig22_bitfield_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_bitfield_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
