# Empty dependencies file for ablation_dataparallel.
# This may be replaced when dependencies are built.
