file(REMOVE_RECURSE
  "CMakeFiles/ablation_dataparallel.dir/bench/ablation_dataparallel.cpp.o"
  "CMakeFiles/ablation_dataparallel.dir/bench/ablation_dataparallel.cpp.o.d"
  "bench/ablation_dataparallel"
  "bench/ablation_dataparallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dataparallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
