# Empty compiler generated dependencies file for fig21_retained_shifts.
# This may be replaced when dependencies are built.
