file(REMOVE_RECURSE
  "CMakeFiles/fig21_retained_shifts.dir/bench/fig21_retained_shifts.cpp.o"
  "CMakeFiles/fig21_retained_shifts.dir/bench/fig21_retained_shifts.cpp.o.d"
  "bench/fig21_retained_shifts"
  "bench/fig21_retained_shifts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_retained_shifts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
