# Empty dependencies file for fig19_techniques.
# This may be replaced when dependencies are built.
