file(REMOVE_RECURSE
  "CMakeFiles/fig19_techniques.dir/bench/fig19_techniques.cpp.o"
  "CMakeFiles/fig19_techniques.dir/bench/fig19_techniques.cpp.o.d"
  "bench/fig19_techniques"
  "bench/fig19_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
