# Empty compiler generated dependencies file for fig19b_zero_delay.
# This may be replaced when dependencies are built.
