file(REMOVE_RECURSE
  "CMakeFiles/fig19b_zero_delay.dir/bench/fig19b_zero_delay.cpp.o"
  "CMakeFiles/fig19b_zero_delay.dir/bench/fig19b_zero_delay.cpp.o.d"
  "bench/fig19b_zero_delay"
  "bench/fig19b_zero_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19b_zero_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
