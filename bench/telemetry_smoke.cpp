// Telemetry scrape gate (DESIGN.md §5l): stand up a SimService with the
// full telemetry stack engaged — request traces, rolling window, JSONL
// event log — drive mixed traffic (completions, cache hits, a structural
// rejection, an impossible deadline), then scrape every surface the way a
// monitoring agent would and exit non-zero on anything malformed:
//
//   - status_json() must parse through the hardened obs/json parser and
//     carry every documented section; the cumulative outcome counters must
//     sum to the offered-request count, and the rolling window's
//     outcome_totals must equal them slot by slot (the exactly-once
//     invariant, observed over the wire).
//   - prometheus_text() must pass validate_prometheus_text line by line.
//   - every event-log line must parse as JSON with the schema fields, and
//     written + dropped must equal the number of resolutions.
//   - trace_to_json() must parse and report trace.dropped in its metadata.
//
//   telemetry_smoke [--vectors N] [--seed S] [--circuits c432]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "service/sim_service.h"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) args.circuits = {"c432"};
  if (args.vectors == 1000) args.vectors = 64;  // default trimmed for a gate

  const std::string circuit = args.circuit_names().front();
  const auto nl =
      std::make_shared<Netlist>(make_iscas85_like(circuit, args.seed));
  const Workload w(nl->primary_inputs().size(), args.vectors, args.seed + 7);

  const std::string log_path = "telemetry_smoke_events.jsonl";
  std::remove(log_path.c_str());

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 16;
  cfg.batch_threads = 1;
  cfg.telemetry.event_log_path = log_path;
  std::uint64_t offered = 0;
  std::uint64_t written = 0;

  {
    SimService svc(cfg);
    const SessionId session = svc.open_session("telemetry-smoke");

    // Completions (first a build, then cache hits), one ragged rejection,
    // one impossible deadline: several outcome slots get traffic.
    for (int i = 0; i < 6; ++i) {
      const SimResponse r =
          svc.run(session, SimRequest{.netlist = nl, .vectors = w.bits});
      ++offered;
      check(r.outcome == Outcome::Completed,
            "request " + std::to_string(i) + " completed");
      check(r.trace_id != 0, "completed response carries a trace id");
    }
    std::vector<Bit> ragged(w.bits.begin(), w.bits.end() - 1);
    const SimResponse bad =
        svc.run(session, SimRequest{.netlist = nl, .vectors = ragged});
    ++offered;
    check(bad.outcome == Outcome::Rejected, "ragged stream rejected");
    const SimResponse late = svc.run(
        session, SimRequest{.netlist = nl,
                            .vectors = w.bits,
                            .deadline = std::chrono::nanoseconds(1)});
    ++offered;
    check(late.outcome == Outcome::DeadlineExpired, "1ns deadline expired");

    // --- status_json: parse, shape, and the exactly-once invariant.
    const std::string status = svc.status_json();
    try {
      const JsonValue doc = JsonValue::parse(status);
      for (const char* key :
           {"service", "health", "outcomes", "window", "slo", "events",
            "trace"}) {
        check(doc.has(key), std::string("status_json has \"") + key + "\"");
      }
      const JsonValue& outcomes = doc.at("outcomes");
      std::uint64_t outcome_sum = 0;
      for (const auto& [name, v] : outcomes.object) {
        check(v.is_integer, "outcome counter " + name + " is an exact uint");
        outcome_sum += v.as_u64();
      }
      check(outcome_sum == offered,
            "outcome counters sum to offered (" +
                std::to_string(outcome_sum) + " vs " +
                std::to_string(offered) + ")");
      const JsonValue& totals = doc.at("window").at("outcome_totals");
      for (const auto& [name, v] : totals.object) {
        check(v.as_u64() == outcomes.at(name).as_u64(),
              "window total '" + name + "' equals the outcome counter");
      }
      check(doc.at("slo").has("availability"), "slo carries availability");
      check(doc.at("events").at("enabled").boolean, "event log enabled");
    } catch (const std::exception& e) {
      check(false, std::string("status_json parses: ") + e.what());
    }

    // --- prometheus_text: full line-grammar validation.
    std::string why;
    check(validate_prometheus_text(svc.prometheus_text(), &why),
          "prometheus_text validates: " + why);

    // --- trace export: parses, and metadata reports drop accounting.
    try {
      const JsonValue trace = JsonValue::parse(svc.metrics().trace_to_json());
      check(trace.has("traceEvents"), "trace export has traceEvents");
      check(trace.at("metadata").has("trace.dropped"),
            "trace metadata reports trace.dropped");
    } catch (const std::exception& e) {
      check(false, std::string("trace_to_json parses: ") + e.what());
    }

    // --- event log: drain, then account for every resolution.
    JsonlEventLog* log = svc.event_log();
    check(log != nullptr && log->ok(), "event log is open");
    if (log != nullptr) {
      log->flush();
      written = log->written();
      check(written + log->dropped() == offered,
            "event log written+dropped == resolutions (" +
                std::to_string(written) + "+" +
                std::to_string(log->dropped()) + " vs " +
                std::to_string(offered) + ")");
    }
    svc.shutdown();
  }

  // Re-read the file after the service (and its writer thread) is gone.
  std::uint64_t lines = 0;
  if (std::FILE* f = std::fopen(log_path.c_str(), "r")) {
    char buf[1 << 16];
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
      ++lines;
      try {
        const JsonValue e = JsonValue::parse(buf);
        for (const char* key : {"trace_id", "request_id", "outcome", "engine",
                                "width", "cache", "latency_ns", "phase_ns"}) {
          check(e.has(key),
                "event line " + std::to_string(lines) + " has \"" + key + "\"");
        }
        check(e.at("trace_id").as_u64() != 0, "event line trace_id non-zero");
      } catch (const std::exception& ex) {
        check(false,
              "event line " + std::to_string(lines) + " parses: " + ex.what());
      }
    }
    std::fclose(f);
  } else {
    check(false, "event log file exists");
  }
  check(lines == written,
        "file lines equal the written count (" + std::to_string(lines) +
            " vs " + std::to_string(written) + ")");

  if (g_failures != 0) {
    std::fprintf(stderr, "telemetry_smoke: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("telemetry_smoke: all scrapes well-formed (%llu requests, "
              "%llu event lines)\nok\n",
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(lines));
  return 0;
}
