// Extension experiment: throughput of the three fault-simulation
// organizations (serial recompile-per-fault, parallel-pattern single-fault,
// parallel-fault single-pattern) on the smaller profiles. Demonstrates the
// bit-parallel payoff the paper's reference [12] is about.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "fault/fault_sim.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) {
    args.circuits = {"c432", "c499", "c880", "c1355"};
  }
  const std::size_t patterns = std::min<std::size_t>(args.vectors, 256);
  std::printf("=== Extension: fault-simulation organizations (%zu random "
              "patterns, %d trials) ===\n\n",
              patterns, args.trials);

  Table table({"circuit", "faults", "coverage%", "serial ms", "ppsfp ms",
               "pfsp ms", "serial/ppsfp", "serial/pfsp"});
  for (const std::string& name : args.circuits) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const auto faults = enumerate_faults(nl);
    FaultSimulator<> sim(nl);
    double cov = 0;
    const double t_serial = median_seconds(
        [&] { cov = run_serial_fault_sim(nl, faults, patterns, 7).coverage(); },
        args.trials);
    const double t_ppsfp = median_seconds(
        [&] { (void)sim.run_ppsfp(faults, patterns, 7); }, args.trials);
    const double t_pfsp = median_seconds(
        [&] { (void)sim.run_pfsp(faults, patterns, 7); }, args.trials);
    table.add_row({name, std::to_string(faults.size()), Table::num(100 * cov, 1),
                   Table::num(1e3 * t_serial), Table::num(1e3 * t_ppsfp),
                   Table::num(1e3 * t_pfsp), Table::num(t_serial / t_ppsfp, 1),
                   Table::num(t_serial / t_pfsp, 1)});
  }
  table.print(std::cout);
  std::printf("\n(serial rebuilds and re-simulates one fault at a time; the "
              "parallel organizations pack 32 patterns or 31 faulty machines "
              "per word)\n");
  return 0;
}
