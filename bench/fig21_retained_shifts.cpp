// Paper Fig. 21: retained shift counts — unoptimized (one per gate),
// path-tracing, cycle-breaking. Static code-generation statistics.
#include <cstdio>
#include <iostream>

#include "analysis/alignment.h"
#include "bench_util.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::printf("=== Fig. 21: retained shifts per shift-elimination algorithm ===\n\n");

  struct PaperShifts {
    const char* name;
    int unopt, pt, cb;
  };
  static const PaperShifts paper[] = {
      {"c432", 160, 65, 100},   {"c499", 202, 72, 96},
      {"c880", 383, 140, 163},  {"c1355", 546, 223, 296},
      {"c1908", 880, 437, 398}, {"c2670", 1269, 532, 461},
      {"c3540", 1669, 827, 713},{"c5315", 2307, 1123, 1060},
      {"c6288", 2416, 1397, 1764}, {"c7552", 3513, 1875, 1830},
  };
  Table table({"circuit", "unoptimized", "path-tracing", "cycle-breaking",
               "paper pt", "paper cb"});
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Levelization lv = levelize(nl);
    const auto count = [&](const AlignmentPlan& plan) {
      return alignment_stats(nl, lv, plan, 32).retained_shift_sites;
    };
    std::string ppt = "-", pcb = "-";
    for (const PaperShifts& pr : paper) {
      if (name == pr.name) {
        ppt = std::to_string(pr.pt);
        pcb = std::to_string(pr.cb);
      }
    }
    table.add_row({name, std::to_string(count(align_unoptimized(nl, lv))),
                   std::to_string(count(align_path_tracing(nl, lv))),
                   std::to_string(count(align_cycle_breaking(nl, lv))), ppt, pcb});
  }
  table.print(std::cout);
  std::printf("\n(paper: unoptimized = gate count; both algorithms retain a "
              "fraction of it, path-tracing usually fewer)\n");
  return 0;
}
