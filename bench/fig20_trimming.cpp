// Paper Fig. 20: the effect of bit-field trimming on the parallel
// technique. Paper result: 20-36% improvement (avg 26%) on multi-word
// circuits, no effect on circuits whose fields fit one word.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 20", "bit-field trimming vs unoptimized parallel technique",
               args);

  Table table({"circuit", "levels(words)", "parallel", "trimmed", "gain%", "paper%"});
  double sum = 0;
  int multi = 0;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    const ParallelCompiled plain = compile_parallel(nl, {});
    ParallelOptions o;
    o.trimming = true;
    const ParallelCompiled trimmed = compile_parallel(nl, o);
    const double tp = time_compiled<std::uint32_t>(plain.program, w, args.trials);
    const double tt = time_compiled<std::uint32_t>(trimmed.program, w, args.trials);
    const double gain = 100.0 * (tp - tt) / tp;
    if (plain.stats.field_words_max > 1) {
      sum += gain;
      ++multi;
    }
    const PaperRow* pr = paper_row(name);
    table.add_row({name,
                   std::to_string(plain.stats.field_bits_max) + "(" +
                       std::to_string(plain.stats.field_words_max) + ")",
                   Table::num(us_per_vec(tp, w.vectors)),
                   Table::num(us_per_vec(tt, w.vectors)), Table::num(gain, 1),
                   pr ? Table::num(100.0 * (pr->parallel - pr->trimmed) / pr->parallel, 1)
                      : "-"});
  }
  table.print(std::cout);
  if (multi) {
    std::printf("\naverage gain on multi-word circuits: %.0f%% (paper: 26%%, "
                "range 20-36%%; one-word circuits unaffected)\n",
                sum / multi);
  }
  return 0;
}
