// Shared experiment-harness plumbing for the paper-table benchmarks.
//
// Every binary accepts:
//   --vectors N    input vectors per measurement (default 1000; paper: 5000)
//   --trials T     timing trials, median reported (default 3; paper: 5)
//   --seed S       workload seed
//   --circuits a,b comma-separated subset of the ISCAS-85 profile names
// Vector generation happens outside the timed region, matching the paper
// ("none of the execution times include the time required for reading
// vectors, printing output, or compiling circuit descriptions").
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/kernel_runner.h"
#include "eventsim/event_sim.h"
#include "gen/iscas_profiles.h"
#include "harness/timer.h"
#include "harness/vectors.h"
#include "netlist/netlist.h"

namespace udsim::bench {

struct BenchArgs {
  std::size_t vectors = 1000;
  int trials = 3;
  std::uint64_t seed = 1;
  std::vector<std::string> circuits;  // empty = all ten profiles

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--vectors") {
        a.vectors = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      } else if (arg == "--trials") {
        a.trials = std::atoi(next());
      } else if (arg == "--seed") {
        a.seed = std::strtoull(next(), nullptr, 10);
      } else if (arg == "--circuits") {
        std::string list = next();
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const std::size_t comma = list.find(',', pos);
          a.circuits.push_back(list.substr(
              pos, comma == std::string::npos ? comma : comma - pos));
          pos = comma == std::string::npos ? comma : comma + 1;
        }
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --vectors N  --trials T  --seed S  --circuits c432,c880\n");
        std::exit(0);
      }
    }
    return a;
  }

  [[nodiscard]] std::vector<std::string> circuit_names() const {
    if (!circuits.empty()) return circuits;
    std::vector<std::string> names;
    for (const IscasProfile& p : iscas85_profiles()) names.push_back(p.name);
    return names;
  }
};

/// Pre-generated scalar workload: `vectors` rows of one Bit per PI.
struct Workload {
  std::size_t inputs;
  std::size_t vectors;
  std::vector<Bit> bits;  // row-major

  Workload(std::size_t inputs_, std::size_t vectors_, std::uint64_t seed)
      : inputs(inputs_), vectors(vectors_), bits(inputs_ * vectors_) {
    RandomVectorSource src(inputs_, seed);
    for (std::size_t v = 0; v < vectors_; ++v) {
      src.next(std::span<Bit>(bits.data() + v * inputs_, inputs_));
    }
  }

  [[nodiscard]] std::span<const Bit> row(std::size_t v) const {
    return {bits.data() + v * inputs, inputs};
  }
};

/// Time an interpreted engine (anything with step(span<const Bit>)) over the
/// workload: median seconds across trials.
template <class Engine>
double time_interpreted(Engine& engine, const Workload& w, int trials) {
  return median_seconds(
      [&] {
        for (std::size_t v = 0; v < w.vectors; ++v) {
          engine.step(w.row(v));
        }
      },
      trials);
}

/// Time a compiled program: input words (bit 0 per PI) are prepared outside
/// the timed region; the timed loop is executor passes only.
template <class Word>
double time_compiled(const Program& program, const Workload& w, int trials) {
  KernelRunner<Word> runner(program);
  std::vector<Word> in(w.inputs * w.vectors);
  for (std::size_t v = 0; v < w.vectors; ++v) {
    for (std::size_t i = 0; i < w.inputs; ++i) {
      in[v * w.inputs + i] = w.bits[v * w.inputs + i];
    }
  }
  return median_seconds(
      [&] {
        for (std::size_t v = 0; v < w.vectors; ++v) {
          runner.run(std::span<const Word>(in.data() + v * w.inputs, w.inputs));
        }
      },
      trials);
}

/// Per-vector microseconds, the unit used in all printed tables.
[[nodiscard]] inline double us_per_vec(double seconds, std::size_t vectors) {
  return 1e6 * seconds / static_cast<double>(vectors);
}

/// The paper's published measurements (seconds for 5000 vectors on a SUN
/// 3/260), used to print reference ratios beside ours. Figs. 19/20/23/24.
struct PaperRow {
  const char* name;
  double interp3;   // Fig. 19 col 1
  double interp2;   // Fig. 19 col 2
  double pcset;     // Fig. 19 col 3
  double parallel;  // Fig. 19 col 4
  double trimmed;   // Fig. 20 col 3
  double path_tracing;  // Fig. 23 col 2 / Fig. 24 col 2
  double cycle_breaking;  // Fig. 23 col 3 (0 = not reported)
  double combined;  // Fig. 24 col 3
};

inline const PaperRow* paper_row(const std::string& name) {
  static const PaperRow rows[] = {
      {"c432", 46.4, 41.2, 9.9, 3.4, 3.3, 2.4, 0, 2.4},
      {"c499", 51.1, 44.3, 5.2, 4.4, 4.4, 2.9, 0, 2.9},
      {"c880", 87.1, 78.1, 22.4, 8.1, 8.1, 4.9, 0, 5.0},
      {"c1355", 177.2, 157.7, 84.9, 9.8, 11.6, 7.4, 0, 7.4},
      {"c1908", 330.2, 295.9, 162.7, 54.3, 37.0, 21.9, 0, 18.1},
      {"c2670", 368.2, 346.1, 89.9, 90.7, 64.8, 14.4, 0, 14.1},
      {"c3540", 531.1, 479.1, 211.6, 122.2, 97.7, 68.9, 0, 58.4},
      {"c5315", 1024.0, 894.7, 245.2, 176.0, 137.1, 108.0, 0, 91.4},
      {"c6288", 9555.9, 8918.3, 1757.3, 369.3, 266.8, 240.1, 0, 196.9},
      {"c7552", 1483.2, 1348.5, 395.2, 269.7, 205.5, 160.4, 0, 133.4},
  };
  for (const PaperRow& r : rows) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

inline void print_header(const char* fig, const char* what, const BenchArgs& a) {
  std::printf("=== %s: %s ===\n", fig, what);
  std::printf("(%zu vectors/run, median of %d trials, seed %llu; times in "
              "microseconds per vector)\n\n",
              a.vectors, a.trials, static_cast<unsigned long long>(a.seed));
}

}  // namespace udsim::bench
