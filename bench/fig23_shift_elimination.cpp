// Paper Fig. 23: runtime of the two shift-elimination algorithms against
// the unoptimized parallel technique. Paper result: path tracing gains
// 24-84% (avg 43%); cycle breaking is *worse* than unoptimized for all but
// the smallest circuits because of bit-field expansion. (The paper omits
// cycle-breaking rows for c6288/c7552 due to a C-compiler bug; our
// in-process executor has no such limit, so all rows run.)
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 23", "shift elimination: path-tracing vs cycle-breaking",
               args);

  Table table({"circuit", "unoptimized", "path-tracing", "cycle-break",
               "pt gain%", "cb gain%", "paper pt%"});
  double sum_pt = 0;
  int rows = 0;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    const ParallelCompiled plain = compile_parallel(nl, {});
    ParallelOptions opt;
    opt.shift_elim = ShiftElim::PathTracing;
    const ParallelCompiled pt = compile_parallel(nl, opt);
    opt.shift_elim = ShiftElim::CycleBreaking;
    const ParallelCompiled cb = compile_parallel(nl, opt);

    const double t0 = time_compiled<std::uint32_t>(plain.program, w, args.trials);
    const double t1 = time_compiled<std::uint32_t>(pt.program, w, args.trials);
    const double t2 = time_compiled<std::uint32_t>(cb.program, w, args.trials);
    sum_pt += 100.0 * (t0 - t1) / t0;
    ++rows;
    const PaperRow* pr = paper_row(name);
    table.add_row({name, Table::num(us_per_vec(t0, w.vectors)),
                   Table::num(us_per_vec(t1, w.vectors)),
                   Table::num(us_per_vec(t2, w.vectors)),
                   Table::num(100.0 * (t0 - t1) / t0, 1),
                   Table::num(100.0 * (t0 - t2) / t0, 1),
                   pr ? Table::num(100.0 * (pr->parallel - pr->path_tracing) /
                                       pr->parallel, 1)
                      : "-"});
  }
  table.print(std::cout);
  std::printf("\naverage path-tracing gain: %.0f%% (paper: 43%%, range "
              "24-84%%; cycle-breaking typically loses on large circuits)\n",
              sum_pt / rows);
  return 0;
}
