// Bench-regression driver: the one binary that seeds the bench trajectory.
//
// Runs every requested circuit through {zero-delay LCC, PC-set,
// parallel-combined} sequentially plus parallel-combined sharded across
// --threads workers, and writes one schema-versioned JSON document
// (BENCH_results.json) with throughput and the exact counters per row.
//
//   bench_report [--vectors N] [--trials T] [--seed S] [--circuits a,b]
//                [--threads N] [--out PATH] [--no-native]
//                [--widths 32,64,256 | --no-packed]
//                [--check BASELINE.json] [--max-regression-pct P]
//                [--no-throughput-check] [--inject-drift]
//
// --check compares against a committed baseline and exits non-zero on any
// exact-counter drift or a throughput regression beyond the tolerance
// (default 25%; wall clocks are noisy, counters are not). --inject-drift
// perturbs one exact counter after collection — the ctest drift smoke test
// uses it to prove the gate actually fails.
//
// Native rows: the driver also measures EngineKind::Native (the dlopen
// backend) per circuit, and prints the ir-vs-native throughput ratio — the
// interpreter tax. The row is simply absent on machines without a usable C
// compiler; --no-native skips it explicitly. Extra rows never trip --check:
// the baseline's rows are what is compared.
//
// Width rows: per circuit, the packed LCC data-parallel runner is measured
// once per available lane width (lcc-packed rows, one vector per word bit —
// DESIGN.md §5j), the row set where the 128/256-bit executors show their
// throughput win over 64-bit. --widths restricts the list; --no-packed
// skips the rows. Widths this build/CPU cannot run are skipped, and --check
// reports the coverage loss when the baseline had them.
//
// Circuits accept ISCAS-85 profile names and .bench files (data/c17.bench
// loads as "c17").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../examples/common.h"
#include "obs/bench_report.h"
#include "obs/json.h"

int main(int argc, char** argv) {
  using namespace udsim;
  BenchRunConfig cfg;
  cfg.vectors = 256;
  cfg.trials = 3;
  cfg.with_native = true;
  std::vector<std::string> circuit_names;
  std::string out_path = "BENCH_results.json";
  std::string check_path;
  BenchCheckConfig check_cfg;
  bool inject_drift = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--vectors") {
      cfg.vectors = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--trials") {
      cfg.trials = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      cfg.batch_threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--circuits") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        circuit_names.push_back(
            list.substr(pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--max-regression-pct") {
      check_cfg.max_regression_pct = std::atof(next());
    } else if (arg == "--no-throughput-check") {
      check_cfg.check_throughput = false;
    } else if (arg == "--inject-drift") {
      inject_drift = true;
    } else if (arg == "--no-native") {
      cfg.with_native = false;
    } else if (arg == "--no-packed") {
      cfg.with_packed = false;
    } else if (arg == "--widths") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        cfg.packed_widths.push_back(
            std::atoi(list.substr(pos, comma == std::string::npos
                                           ? comma
                                           : comma - pos)
                          .c_str()));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "bench_report [--vectors N] [--trials T] [--seed S] "
          "[--circuits a,b] [--threads N] [--out PATH] [--no-native] "
          "[--widths 32,64,256] [--no-packed] "
          "[--check BASELINE] [--max-regression-pct P] "
          "[--no-throughput-check] [--inject-drift]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (circuit_names.empty()) {
    for (const IscasProfile& p : iscas85_profiles()) {
      circuit_names.push_back(p.name);
    }
  }

  std::vector<Netlist> storage;
  storage.reserve(circuit_names.size());
  std::vector<std::pair<std::string, const Netlist*>> circuits;
  for (const std::string& name : circuit_names) {
    storage.push_back(examples::load_circuit(name, cfg.seed));
    circuits.emplace_back(name, &storage.back());
  }

  BenchReport report = run_bench_report(circuits, cfg);
  if (inject_drift && !report.circuits.empty() &&
      !report.circuits.front().engines.empty()) {
    auto& exact = report.circuits.front().engines.front().exact;
    if (!exact.empty()) exact.begin()->second += 1;
    std::fprintf(stderr, "note: --inject-drift perturbed one exact counter\n");
  }

  const std::string json = report.to_json();
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 2;
    }
    out << json << "\n";
  }
  std::printf("%zu circuit(s) x %zu engine row(s) -> %s\n",
              report.circuits.size(),
              report.circuits.empty() ? 0 : report.circuits.front().engines.size(),
              out_path.c_str());

  // The interpreter tax: native vs IR throughput of the same combined
  // program, per circuit (both rows single-threaded).
  for (const BenchCircuitResult& c : report.circuits) {
    const BenchEngineResult* ir = nullptr;
    const BenchEngineResult* native = nullptr;
    for (const BenchEngineResult& e : c.engines) {
      if (e.threads != 1) continue;
      if (e.engine == "parallel-combined") ir = &e;
      if (e.engine == "native") native = &e;
    }
    if (ir && native && ir->vectors_per_sec > 0.0) {
      std::printf("  %-8s ir %.0f vec/s, native %.0f vec/s (%.2fx)\n",
                  c.circuit.c_str(), ir->vectors_per_sec,
                  native->vectors_per_sec,
                  native->vectors_per_sec / ir->vectors_per_sec);
    }
  }

  // The width ladder: packed-LCC throughput per lane width, per circuit —
  // vectors/pass scales with word_bits, so the wide rows should win.
  for (const BenchCircuitResult& c : report.circuits) {
    std::string line;
    char buf[64];
    for (const BenchEngineResult& e : c.engines) {
      if (e.engine != "lcc-packed") continue;
      std::snprintf(buf, sizeof buf, "  w%-3d %.0f vec/s", e.word_bits,
                    e.vectors_per_sec);
      line += buf;
    }
    if (!line.empty()) {
      std::printf("  %-8s packed:%s\n", c.circuit.c_str(), line.c_str());
    }
  }

  if (check_path.empty()) return 0;

  std::ifstream base_in(check_path);
  if (!base_in) {
    std::fprintf(stderr, "cannot read baseline %s\n", check_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << base_in.rdbuf();
  JsonValue baseline;
  try {
    baseline = JsonValue::parse(buf.str());
  } catch (const JsonParseError& e) {
    std::fprintf(stderr, "baseline %s: %s\n", check_path.c_str(), e.what());
    return 2;
  }
  const std::vector<std::string> violations =
      check_bench_report(report, baseline, check_cfg);
  if (violations.empty()) {
    std::printf("check vs %s: PASS\n", check_path.c_str());
    return 0;
  }
  std::fprintf(stderr, "check vs %s: FAIL (%zu violation(s))\n",
               check_path.c_str(), violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  return 1;
}
