// Ablation B: the PC-set method's data-parallel mode. Paper §3: "the PC-set
// method is amenable to bit-parallel simulation of multiple input vectors,
// while the parallel technique is not." One packed pass simulates 32
// independent vector streams; throughput is measured in vectors/second.
// Built on google-benchmark.
#include <benchmark/benchmark.h>

#include "core/kernel_runner.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "pcsim/pcset_sim.h"

namespace {

using namespace udsim;

void run_pcset(benchmark::State& state, const std::string& name, bool packed) {
  const Netlist nl = make_iscas85_like(name);
  const PCSetCompiled c = compile_pcset(nl, {}, packed);
  KernelRunner<std::uint32_t> runner(c.program);
  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kBatches = 64;
  RandomVectorSource src(pis, 11);
  std::vector<std::uint32_t> in(pis * kBatches);
  for (std::size_t k = 0; k < kBatches; ++k) {
    src.next_packed(std::span<std::uint32_t>(in.data() + k * pis, pis),
                    packed ? 32u : 1u);
  }
  std::size_t k = 0;
  for (auto _ : state) {
    runner.run(std::span<const std::uint32_t>(in.data() + k * pis, pis));
    k = (k + 1) % kBatches;
  }
  // Vectors per pass: 32 lanes when packed, 1 otherwise.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (packed ? 32 : 1));
}

void register_all() {
  for (const IscasProfile& p : iscas85_profiles()) {
    benchmark::RegisterBenchmark(
        ("pcset_scalar/" + p.name).c_str(),
        [n = p.name](benchmark::State& s) { run_pcset(s, n, false); });
    benchmark::RegisterBenchmark(
        ("pcset_packed32/" + p.name).c_str(),
        [n = p.name](benchmark::State& s) { run_pcset(s, n, true); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
