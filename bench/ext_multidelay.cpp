// Extension experiment: the techniques under a multi-delay timing model
// (the paper's "more accurate timing models" future work). Each profile's
// gates get random delays in [1, D]; deeper time axes mean wider bit-fields
// for the parallel technique and larger PC-sets for the PC-set method, so
// the compiled advantage shrinks as D grows — this bench quantifies that.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "gen/random_dag.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Extension", "multi-delay timing model (D = max gate delay)", args);

  Table table({"D", "levels", "interp3", "pcset", "parallel", "par+pt",
               "i3/pcset", "i3/par"});
  for (int max_delay : {1, 2, 4, 8}) {
    RandomDagParams p;
    p.name = "md" + std::to_string(max_delay);
    p.inputs = 40;
    p.outputs = 20;
    p.gates = 800;
    p.depth = 20;
    p.seed = args.seed + 5;
    p.max_delay = max_delay;
    p.xor_fraction = 0.3;
    const Netlist nl = random_dag(p);
    const Levelization lv = levelize(nl);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);

    EventSim3 e3(nl);
    const double t3 = time_interpreted(e3, w, args.trials);
    const PCSetCompiled pcs = compile_pcset(nl);
    const double tp = time_compiled<std::uint32_t>(pcs.program, w, args.trials);
    const ParallelCompiled par = compile_parallel(nl, {});
    const double ta = time_compiled<std::uint32_t>(par.program, w, args.trials);
    ParallelOptions opt;
    opt.shift_elim = ShiftElim::PathTracing;
    opt.trimming = true;
    const ParallelCompiled pt = compile_parallel(nl, opt);
    const double tt = time_compiled<std::uint32_t>(pt.program, w, args.trials);

    table.add_row({std::to_string(max_delay), std::to_string(lv.depth + 1),
                   Table::num(us_per_vec(t3, w.vectors)),
                   Table::num(us_per_vec(tp, w.vectors)),
                   Table::num(us_per_vec(ta, w.vectors)),
                   Table::num(us_per_vec(tt, w.vectors)),
                   Table::num(t3 / tp, 1), Table::num(t3 / ta, 1)});
  }
  table.print(std::cout);
  std::printf("\n(the same 800-gate topology throughout; only the per-gate "
              "delays change. Event-driven cost is delay-insensitive, the "
              "compiled techniques pay for the longer time axis.)\n");
  return 0;
}
