// Resilience-overhead ablation: wall time of the compiled parallel-combined
// pass loop with no CancelToken attached (one dead branch per pass) versus
// an attached-but-idle token (one relaxed load + branch) versus a token with
// a far-future deadline armed (adds a clock read every
// CancelPoll::kClockStride passes). The design target (DESIGN.md §5f) is
// <=2% pass-loop overhead with cancellation enabled.
//
// Also measures the checkpoint path: a mid-run deadline stop produces a real
// BatchCheckpoint, then serialize (write) and parse+verify (restore) are
// timed and the wire size reported. Checkpoint cost is per *stop*, not per
// vector — it is off the pass loop entirely.
//
// Extra options on top of the shared harness flags:
//   --json PATH   machine-readable results (default ablation_resilience.json)
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/batch_runner.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"
#include "resilience/cancel.h"
#include "resilience/checkpoint.h"
#include "resilience/fault_injection.h"

namespace {

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_resilience.json";
}

struct Row {
  std::string name;
  std::size_t gates;
  double off_us;        // no token attached
  double on_us;         // idle token attached
  double deadline_us;   // far-future deadline armed
  double on_pct;
  double deadline_pct;
  double ck_write_us;   // checkpoint_to_bytes
  double ck_restore_us; // checkpoint_from_bytes (parse + checksum verify)
  std::size_t ck_bytes;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation", "resilience overhead (cancel poll off/on, checkpoint cost)",
               args);

  Table table({"circuit", "gates", "off us/vec", "on us/vec", "ddl us/vec",
               "on ovh", "ddl ovh", "ck write us", "ck restore us", "ck bytes"});
  std::vector<Row> rows;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const ParallelCompiled compiled = compile_parallel(
        nl, {.trimming = true, .shift_elim = ShiftElim::PathTracing});
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    std::vector<std::uint32_t> in(w.bits.size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = w.bits[i];

    KernelRunner<std::uint32_t> runner(compiled.program);
    const auto replay = [&] {
      for (std::size_t v = 0; v < w.vectors; ++v) {
        runner.run(std::span<const std::uint32_t>(in.data() + v * w.inputs,
                                                  w.inputs));
      }
    };
    // No token: the poll is one dead branch per pass.
    runner.set_cancel(nullptr);
    const double off = median_seconds(replay, args.trials);
    // Idle token: one relaxed atomic load + predictable branch per pass.
    CancelToken token;
    runner.set_cancel(&token);
    const double on = median_seconds(replay, args.trials);
    // Armed deadline far in the future: adds one steady_clock read every
    // CancelPoll::kClockStride passes, never fires.
    token.set_deadline_after(std::chrono::hours(24));
    const double ddl = median_seconds(replay, args.trials);
    runner.set_cancel(nullptr);

    // Checkpoint path: stop a single-shard batch run halfway via an injected
    // deadline overrun, then time the wire round trip of the snapshot.
    std::vector<ArenaProbe> probes;
    for (const NetId po : nl.primary_outputs()) {
      const auto pr = compiled.final_probe(po);
      probes.push_back({pr.word, pr.bit});
    }
    std::vector<std::uint64_t> in64(w.bits.size());
    for (std::size_t i = 0; i < in64.size(); ++i) in64[i] = w.bits[i];
    FaultInjector inject(args.seed);
    inject.add_site({FaultSite::DeadlineOverrun, 0, w.vectors / 2, 0});
    BatchRunner stopper(compiled.program, probes,
                        BatchOptions{.num_threads = 1, .inject = &inject});
    const ResilientBatch r = stopper.run_resilient(in64, w.vectors);
    if (r.status != RunStatus::DeadlineExpired || r.checkpoint.shards.empty()) {
      std::fprintf(stderr, "%s: expected a mid-run checkpoint\n", name.c_str());
      return 1;
    }
    const BatchCheckpoint& ck = r.checkpoint;
    std::string bytes;
    const double wr = median_seconds([&] { bytes = checkpoint_to_bytes(ck); },
                                     args.trials);
    BatchCheckpoint parsed;
    const double rd = median_seconds(
        [&] { parsed = checkpoint_from_bytes(bytes); }, args.trials);
    if (parsed.vectors_done() != ck.vectors_done()) {
      std::fprintf(stderr, "%s: restore mismatch\n", name.c_str());
      return 1;
    }

    const double on_pct = off > 0 ? 100.0 * (on - off) / off : 0.0;
    const double ddl_pct = off > 0 ? 100.0 * (ddl - off) / off : 0.0;
    rows.push_back({name, nl.real_gate_count(), us_per_vec(off, w.vectors),
                    us_per_vec(on, w.vectors), us_per_vec(ddl, w.vectors),
                    on_pct, ddl_pct, 1e6 * wr, 1e6 * rd, bytes.size()});
    table.add_row({name, std::to_string(nl.real_gate_count()),
                   Table::num(us_per_vec(off, w.vectors)),
                   Table::num(us_per_vec(on, w.vectors)),
                   Table::num(us_per_vec(ddl, w.vectors)),
                   Table::num(on_pct, 2) + "%", Table::num(ddl_pct, 2) + "%",
                   Table::num(1e6 * wr), Table::num(1e6 * rd),
                   std::to_string(bytes.size())});
  }
  table.print(std::cout);
  std::printf("\n(positive overhead%% = token-attached run slower; timing "
              "noise can make small values negative. checkpoint cost is per "
              "stop, not per vector.)\n");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_resilience\",\n"
                 "  \"vectors\": %zu,\n  \"trials\": %d,\n  \"seed\": %llu,\n"
                 "  \"circuits\": [\n",
                 args.vectors, args.trials,
                 static_cast<unsigned long long>(args.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r2 = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"gates\": %zu, "
                   "\"off_us_per_vector\": %.4f, \"on_us_per_vector\": %.4f, "
                   "\"deadline_us_per_vector\": %.4f, \"on_overhead_pct\": %.3f, "
                   "\"deadline_overhead_pct\": %.3f, "
                   "\"checkpoint_write_us\": %.3f, "
                   "\"checkpoint_restore_us\": %.3f, "
                   "\"checkpoint_bytes\": %zu}%s\n",
                   r2.name.c_str(), r2.gates, r2.off_us, r2.on_us,
                   r2.deadline_us, r2.on_pct, r2.deadline_pct, r2.ck_write_us,
                   r2.ck_restore_us, r2.ck_bytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
