// Paper Fig. 19: simulation time of interpreted event-driven (3-valued and
// 2-valued) vs the PC-set method vs the parallel technique, on the ten
// ISCAS-85-like circuits. Paper result: PC-set ~ 1/4 of interpreted time,
// parallel ~ 1/10 (with the c2670 anomaly where the two compiled methods
// tie because its PC-sets are unusually small).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 19", "unit-delay simulation times, four techniques", args);

  Table table({"circuit", "interp3", "interp2", "pcset", "parallel",
               "i3/pcset", "i3/par", "paper", "paper"});
  double sum_pc = 0, sum_par = 0;
  int rows = 0;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);

    EventSim3 e3(nl);
    const double t3 = time_interpreted(e3, w, args.trials);
    EventSim2 e2(nl);
    const double t2 = time_interpreted(e2, w, args.trials);
    const PCSetCompiled pcs = compile_pcset(nl);
    const double tp = time_compiled<std::uint32_t>(pcs.program, w, args.trials);
    const ParallelCompiled par = compile_parallel(nl, {});
    const double ta = time_compiled<std::uint32_t>(par.program, w, args.trials);

    sum_pc += t3 / tp;
    sum_par += t3 / ta;
    ++rows;
    const PaperRow* pr = paper_row(name);
    table.add_row({name, Table::num(us_per_vec(t3, w.vectors)),
                   Table::num(us_per_vec(t2, w.vectors)),
                   Table::num(us_per_vec(tp, w.vectors)),
                   Table::num(us_per_vec(ta, w.vectors)),
                   Table::num(t3 / tp, 1), Table::num(t3 / ta, 1),
                   pr ? Table::num(pr->interp3 / pr->pcset, 1) : "-",
                   pr ? Table::num(pr->interp3 / pr->parallel, 1) : "-"});
  }
  table.print(std::cout);
  std::printf("\naverage speedup over interpreted 3-valued: PC-set %.1fx, "
              "parallel %.1fx\n",
              sum_pc / rows, sum_par / rows);
  std::printf("(paper: PC-set ~4x, parallel ~10x)\n");
  return 0;
}
