// Paper Fig. 19 companion (text of §5): the zero-delay context experiment —
// "on the average a compiled simulation runs in 1/23 the time of an
// interpreted simulation" for zero-delay models.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "eventsim/zero_delay_sim.h"
#include "harness/table.h"
#include "lcc/lcc.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 19b", "zero-delay: interpreted selective-trace vs compiled LCC",
               args);

  Table table({"circuit", "interp_zd", "lcc", "ratio"});
  double sum = 0;
  int rows = 0;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    ZeroDelayEventSim zd(nl);
    const double ti = time_interpreted(zd, w, args.trials);
    const LccCompiled lcc = compile_lcc(nl);
    const double tc = time_compiled<std::uint32_t>(lcc.program, w, args.trials);
    sum += ti / tc;
    ++rows;
    table.add_row({name, Table::num(us_per_vec(ti, w.vectors)),
                   Table::num(us_per_vec(tc, w.vectors)), Table::num(ti / tc, 1)});
  }
  table.print(std::cout);
  std::printf("\naverage interpreted/compiled ratio: %.1fx (paper: ~23x)\n",
              sum / rows);
  return 0;
}
