// Ablation A: host word size for the parallel technique. The paper's cost
// model says the number of words per bit-field drives runtime ("if the
// width of the bit-field expanded from 32 bits to 33, the amount of
// simulation time could more than double"); 64-bit words halve the word
// count of deep circuits. Built on google-benchmark.
#include <benchmark/benchmark.h>

#include "core/kernel_runner.h"
#include "gen/iscas_profiles.h"
#include "harness/vectors.h"
#include "parsim/parallel_sim.h"

namespace {

using namespace udsim;

template <class Word>
void run_parallel(benchmark::State& state, const std::string& name) {
  const Netlist nl = make_iscas85_like(name);
  ParallelOptions o;
  o.word_bits = static_cast<int>(sizeof(Word) * 8);
  const ParallelCompiled c = compile_parallel(nl, o);
  KernelRunner<Word> runner(c.program);
  const std::size_t pis = nl.primary_inputs().size();
  constexpr std::size_t kVectors = 64;
  RandomVectorSource src(pis, 7);
  std::vector<Bit> v(pis);
  std::vector<Word> in(pis * kVectors);
  for (std::size_t k = 0; k < kVectors; ++k) {
    src.next(v);
    for (std::size_t i = 0; i < pis; ++i) in[k * pis + i] = v[i];
  }
  std::size_t k = 0;
  for (auto _ : state) {
    runner.run(std::span<const Word>(in.data() + k * pis, pis));
    k = (k + 1) % kVectors;
  }
  state.counters["field_words"] =
      static_cast<double>(c.stats.field_words_max);
  state.counters["ops"] = static_cast<double>(c.stats.total_ops);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void register_all() {
  for (const IscasProfile& p : iscas85_profiles()) {
    benchmark::RegisterBenchmark(("parallel_w32/" + p.name).c_str(),
                                 [n = p.name](benchmark::State& s) {
                                   run_parallel<std::uint32_t>(s, n);
                                 });
    benchmark::RegisterBenchmark(("parallel_w64/" + p.name).c_str(),
                                 [n = p.name](benchmark::State& s) {
                                   run_parallel<std::uint64_t>(s, n);
                                 });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
