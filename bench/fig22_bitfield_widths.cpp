// Paper Fig. 22: bit-field widths under the two shift-elimination
// algorithms. Path tracing never expands a field (and may shrink it);
// cycle breaking can expand fields badly.
#include <cstdio>
#include <iostream>

#include "analysis/alignment.h"
#include "bench_util.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  std::printf("=== Fig. 22: maximum bit-field width (bits) per algorithm ===\n\n");

  Table table({"circuit", "unoptimized", "path-tracing", "cycle-breaking",
               "pt avg", "cb avg"});
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Levelization lv = levelize(nl);
    const AlignmentStats pt =
        alignment_stats(nl, lv, align_path_tracing(nl, lv), 32);
    const AlignmentStats cb =
        alignment_stats(nl, lv, align_cycle_breaking(nl, lv), 32);
    table.add_row({name, std::to_string(lv.depth + 1),
                   std::to_string(pt.max_width_bits),
                   std::to_string(cb.max_width_bits),
                   Table::num(pt.avg_width_bits, 1),
                   Table::num(cb.avg_width_bits, 1)});
  }
  table.print(std::cout);
  std::printf("\n(paper: path-tracing reduces the width for some circuits; "
              "cycle-breaking tends to greatly expand it)\n");
  return 0;
}
