# Benchmark harness targets. Included from the top-level CMakeLists (not
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains only the
# bench binaries and `for b in build/bench/*; do $b; done` runs clean.
function(udsim_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE udsim)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

udsim_bench(fig19_techniques)
udsim_bench(fig19b_zero_delay)
udsim_bench(fig20_trimming)
udsim_bench(fig21_retained_shifts)
udsim_bench(fig22_bitfield_widths)
udsim_bench(fig23_shift_elimination)
udsim_bench(fig24_combined)
udsim_bench(ext_fault_parallel)
udsim_bench(ext_multidelay)
udsim_bench(ablation_emitted_c)
target_link_libraries(ablation_emitted_c PRIVATE ${CMAKE_DL_LIBS})

udsim_bench(ablation_threads)
udsim_bench(ablation_observability)
udsim_bench(ablation_resilience)
udsim_bench(ablation_service)
udsim_bench(ablation_breaker)
udsim_bench(telemetry_smoke)

udsim_bench(bench_report)
# bench_report resolves circuit names through examples/common.h, which
# falls back to the repo data directory (c17 loads from data/c17.bench).
target_compile_definitions(bench_report PRIVATE
  UDSIM_DATA_DIR="${CMAKE_SOURCE_DIR}/data")

udsim_bench(ablation_wordsize)
target_link_libraries(ablation_wordsize PRIVATE benchmark::benchmark)
udsim_bench(ablation_dataparallel)
target_link_libraries(ablation_dataparallel PRIVATE benchmark::benchmark)

# Smoke-test every harness binary under ctest (tiny workloads).
add_test(NAME bench_fig19_smoke COMMAND fig19_techniques --vectors 40 --trials 1 --circuits c432,c499)
add_test(NAME bench_fig19b_smoke COMMAND fig19b_zero_delay --vectors 40 --trials 1 --circuits c432)
add_test(NAME bench_fig20_smoke COMMAND fig20_trimming --vectors 40 --trials 1 --circuits c432,c1908)
add_test(NAME bench_fig21_smoke COMMAND fig21_retained_shifts --circuits c432,c499)
add_test(NAME bench_fig22_smoke COMMAND fig22_bitfield_widths --circuits c432,c499)
add_test(NAME bench_fig23_smoke COMMAND fig23_shift_elimination --vectors 40 --trials 1 --circuits c432,c880)
add_test(NAME bench_fig24_smoke COMMAND fig24_combined --vectors 40 --trials 1 --circuits c432,c880)
add_test(NAME bench_fault_smoke COMMAND ext_fault_parallel --vectors 32 --trials 1 --circuits c432)
add_test(NAME bench_multidelay_smoke COMMAND ext_multidelay --vectors 40 --trials 1)
add_test(NAME bench_emitted_c_smoke COMMAND ablation_emitted_c --vectors 40 --trials 1 --circuits c432)
add_test(NAME bench_wordsize_smoke COMMAND ablation_wordsize --benchmark_filter=c432 --benchmark_min_time=0.01s)
add_test(NAME bench_dataparallel_smoke COMMAND ablation_dataparallel --benchmark_filter=c432 --benchmark_min_time=0.01s)
add_test(NAME bench_threads_smoke COMMAND ablation_threads --vectors 200 --trials 1 --circuits c432 --threads 1,2 --json ablation_threads_smoke.json)
add_test(NAME bench_observability_smoke COMMAND ablation_observability --vectors 200 --trials 1 --circuits c432,c880 --json ablation_observability_smoke.json)
add_test(NAME bench_resilience_smoke COMMAND ablation_resilience --vectors 200 --trials 1 --circuits c432,c880 --json ablation_resilience_smoke.json)
add_test(NAME bench_service_smoke COMMAND ablation_service --vectors 64 --circuits c432 --json ablation_service_smoke.json)
set_tests_properties(bench_service_smoke PROPERTIES LABELS "service")
# Self-healing gate (ISSUE 9): the breaker ablation doubles as a smoke test —
# non-zero exit if any request fails to complete through the outage or the
# breaker does not cap the toolchain tax at its threshold.
add_test(NAME bench_breaker_smoke COMMAND ablation_breaker --vectors 32 --circuits c432 --json ablation_breaker_smoke.json)
set_tests_properties(bench_breaker_smoke PROPERTIES LABELS "service")
# Telemetry scrape gate (ISSUE 10): status_json must parse with every
# section present and the exactly-once invariant visible over the wire, the
# Prometheus exposition must pass the line-grammar validator, and the JSONL
# event log must account for every resolution.
add_test(NAME bench_telemetry_smoke COMMAND telemetry_smoke --vectors 48 --circuits c432)
set_tests_properties(bench_telemetry_smoke PROPERTIES LABELS "service;telemetry")

# The report-label gate (ISSUE 5): bench_report must produce a valid report
# and --check must fail on injected counter drift. The drift test writes a
# fresh baseline, re-runs with --inject-drift against it, and must exit
# non-zero (WILL_FAIL).
add_test(NAME bench_report_smoke
  COMMAND bench_report --vectors 24 --trials 1 --circuits c432,c17
          --out bench_report_smoke.json)
add_test(NAME bench_report_check_pass
  COMMAND sh -c "$<TARGET_FILE:bench_report> --vectors 24 --trials 1 --circuits c432 --out bench_report_base.json && $<TARGET_FILE:bench_report> --vectors 24 --trials 1 --circuits c432 --no-throughput-check --out bench_report_cur.json --check bench_report_base.json")
add_test(NAME bench_report_check_drift
  COMMAND sh -c "$<TARGET_FILE:bench_report> --vectors 24 --trials 1 --circuits c432 --out bench_report_base2.json && $<TARGET_FILE:bench_report> --vectors 24 --trials 1 --circuits c432 --no-throughput-check --inject-drift --out bench_report_drift.json --check bench_report_base2.json")
set_tests_properties(bench_report_check_drift PROPERTIES WILL_FAIL TRUE)
set_tests_properties(bench_report_smoke bench_report_check_pass
  bench_report_check_drift PROPERTIES LABELS "report")

# Native-backend cache hygiene (ISSUE 6): LRU eviction bounds the object
# cache and evicted entries rebuild as misses. Exit 77 = no C compiler.
udsim_bench(native_cache_smoke)
add_test(NAME bench_native_cache_smoke COMMAND native_cache_smoke)
set_tests_properties(bench_native_cache_smoke PROPERTIES
  LABELS "native" SKIP_RETURN_CODE 77)
