// Cache-eviction smoke test for the native backend's object cache
// (ctest label "native", wired in bench/bench.cmake): build more distinct
// programs than `max_cache_entries` allows into a fresh cache directory and
// verify the LRU eviction actually bounds the directory — at most the
// configured number of .so entries remain, the evicted counter ticks, and a
// rebuilt-after-eviction program is a miss again.
//
// Exit codes: 0 = pass, 1 = fail (details on stderr), 77 = skipped (no
// usable C compiler; ctest SKIP_RETURN_CODE).
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "gen/iscas_profiles.h"
#include "native/native_backend.h"
#include "parsim/parallel_sim.h"

int main() {
  using namespace udsim;
  namespace fs = std::filesystem;

  NativeOptions opts;
  opts.compile_flags = "-O0";
  opts.max_cache_entries = 2;
  if (!native_available(opts)) {
    std::fprintf(stderr, "skip: no usable C compiler (UDSIM_CC)\n");
    return 77;
  }
  std::error_code ec;
  const fs::path dir = fs::temp_directory_path(ec) /
                       ("udsim-evict-smoke-" + std::to_string(::getpid()));
  fs::remove_all(dir, ec);
  opts.cache_dir = dir.string();

  // Four distinct programs (different seeds → different fingerprints) into
  // a cache capped at two entries.
  const Netlist nl = make_iscas85_like("c432", 1);
  std::vector<Program> programs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ParallelOptions po;
    po.trimming = true;
    po.shift_elim = ShiftElim::PathTracing;
    programs.push_back(
        compile_parallel(make_iscas85_like("c432", seed), po).program);
  }
  MetricsRegistry reg;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const NativeModule mod(programs[i], "evict-smoke", opts, &reg);
    std::printf("built %zu/%zu -> %s\n", i + 1, programs.size(),
                mod.so_path().c_str());
  }

  std::size_t remaining = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".so") ++remaining;
  }
  const auto snap = reg.snapshot();
  const std::uint64_t evicted = snap.count("native.cache.evicted")
                                    ? snap.at("native.cache.evicted")
                                    : 0;
  std::printf("cache entries remaining: %zu (cap 2), evicted counter: %llu\n",
              remaining, static_cast<unsigned long long>(evicted));

  int rc = 0;
  if (remaining > opts.max_cache_entries) {
    std::fprintf(stderr, "FAIL: %zu .so entries remain, cap is %zu\n",
                 remaining, opts.max_cache_entries);
    rc = 1;
  }
  if (evicted < 2) {
    std::fprintf(stderr, "FAIL: expected >= 2 evictions, counter says %llu\n",
                 static_cast<unsigned long long>(evicted));
    rc = 1;
  }

  // The first program was evicted; rebuilding it must be a miss, not a hit.
  const std::uint64_t miss_before = snap.at("native.cache.miss");
  { const NativeModule again(programs.front(), "evict-smoke", opts, &reg); }
  if (reg.snapshot().at("native.cache.miss") != miss_before + 1) {
    std::fprintf(stderr, "FAIL: evicted program was not rebuilt as a miss\n");
    rc = 1;
  }

  fs::remove_all(dir, ec);
  if (rc == 0) std::printf("native cache eviction: OK\n");
  return rc;
}
