// Batch-layer thread-scaling ablation: throughput of the multi-threaded
// BatchRunner over the compiled parallel-combined program (the library's
// fastest engine) as a function of worker count, on the ISCAS-85-like
// profiles. Compiled unit-delay simulation has no cross-vector dependence
// beyond one seam-replay pass per shard, so speedup should track core count
// until memory bandwidth saturates.
//
// Extra options on top of the shared harness flags:
//   --threads 1,2,4,8   worker counts to sweep (default 1,2,4,<hardware>)
//   --json PATH         machine-readable results (default ablation_threads.json)
//
// Every sweep point is verified bit-identical to the 1-thread result before
// it is timed — a scaling number for wrong outputs is worthless.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/batch_runner.h"
#include "core/thread_pool.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"

namespace {

std::vector<unsigned> parse_thread_list(int argc, char** argv) {
  std::vector<unsigned> threads;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      std::string list = argv[i + 1];
      std::size_t pos = 0;
      while (pos < list.size()) {
        threads.push_back(
            static_cast<unsigned>(std::strtoul(list.c_str() + pos, nullptr, 10)));
        const std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
  }
  threads.erase(std::remove(threads.begin(), threads.end(), 0u), threads.end());
  if (threads.empty()) {
    threads = {1, 2, 4, udsim::ThreadPool::hardware_threads()};
  }
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  return threads;
}

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_threads.json";
}

struct Point {
  unsigned threads;
  double us_per_vec;
  double speedup;
};

struct CircuitResult {
  std::string name;
  std::size_t gates;
  std::vector<Point> points;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::vector<unsigned> thread_list = parse_thread_list(argc, argv);
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation", "batch simulation throughput vs worker threads", args);
  std::printf("hardware threads: %u\n\n", ThreadPool::hardware_threads());

  Table table({"circuit", "threads", "us/vec", "speedup"});
  std::vector<CircuitResult> results;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const ParallelCompiled compiled = compile_parallel(
        nl, {.trimming = true, .shift_elim = ShiftElim::PathTracing});
    std::vector<ArenaProbe> probes;
    for (NetId po : nl.primary_outputs()) {
      const auto pr = compiled.final_probe(po);
      probes.push_back({pr.word, pr.bit});
    }
    // Inputs prepared outside the timed region, as everywhere in bench/.
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    std::vector<std::uint64_t> in(w.bits.size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = w.bits[i];

    CircuitResult cr{name, nl.real_gate_count(), {}};
    std::vector<Bit> reference;
    double base_seconds = 0;
    for (unsigned t : thread_list) {
      BatchRunner batch(compiled.program, probes,
                        BatchOptions{.num_threads = t});
      const std::vector<Bit> out = batch.run(in, w.vectors);  // warm + verify
      if (reference.empty()) {
        reference = out;
      } else if (out != reference) {
        std::fprintf(stderr,
                     "FATAL: %s outputs at %u threads differ from 1 thread\n",
                     name.c_str(), t);
        return 1;
      }
      const double secs = median_seconds(
          [&] { (void)batch.run(in, w.vectors); }, args.trials);
      if (cr.points.empty()) base_seconds = secs;
      const double speedup = secs > 0 ? base_seconds / secs : 0;
      cr.points.push_back({t, us_per_vec(secs, w.vectors), speedup});
      table.add_row({name, std::to_string(t),
                     Table::num(us_per_vec(secs, w.vectors)),
                     Table::num(speedup, 2)});
    }
    results.push_back(std::move(cr));
  }
  table.print(std::cout);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_threads\",\n  \"vectors\": %zu,\n"
                 "  \"trials\": %d,\n  \"seed\": %llu,\n"
                 "  \"hardware_threads\": %u,\n  \"circuits\": [\n",
                 args.vectors, args.trials,
                 static_cast<unsigned long long>(args.seed),
                 ThreadPool::hardware_threads());
    for (std::size_t c = 0; c < results.size(); ++c) {
      const CircuitResult& cr = results[c];
      std::fprintf(f, "    {\"name\": \"%s\", \"gates\": %zu, \"points\": [",
                   cr.name.c_str(), cr.gates);
      for (std::size_t i = 0; i < cr.points.size(); ++i) {
        const Point& p = cr.points[i];
        std::fprintf(f,
                     "%s{\"threads\": %u, \"us_per_vector\": %.4f, "
                     "\"speedup\": %.3f}",
                     i ? ", " : "", p.threads, p.us_per_vec, p.speedup);
      }
      std::fprintf(f, "]}%s\n", c + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
