// Circuit-breaker ablation (DESIGN.md §5k): what a dead external toolchain
// costs the service with and without the breaker.
//
// Scenario: every request is a program-cache miss (distinct netlist seeds)
// and the configured C compiler hangs until the compile timeout kills it.
// With the breaker disabled (failure_threshold = 0 never trips) every miss
// pays the full timeout before falling back to the IR chain. With the
// breaker enabled the first `threshold` misses pay it, the breaker opens,
// and the rest skip native untried (native.breaker_skipped) — the toolchain
// tax is capped at threshold × timeout no matter how many requests arrive.
// Both modes must complete every request via the IR fallback; the ablation
// is purely about latency, never about availability.
//
// Extra options on top of the shared harness flags:
//   --json PATH   machine-readable results (default ablation_breaker.json)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/table.h"
#include "service/sim_service.h"

namespace {

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_breaker.json";
}

struct Row {
  std::string name;
  std::string mode;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t builds = 0;        // native builds attempted (each pays the timeout)
  std::uint64_t skipped = 0;       // native.breaker_skipped
  double total_ms = 0;             // wall clock for the whole request train
  double mean_ms = 0;              // per-request wall latency (incl. compile)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  namespace fs = std::filesystem;
  using namespace std::chrono_literals;

  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) args.circuits = {"c432"};
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation",
               "toolchain-outage cost with vs without the circuit breaker",
               args);

  // A compiler that hangs until the runner's SIGTERM→SIGKILL escalation
  // ends it: the worst toolchain failure mode (a fast `exit 1` would make
  // the ablation nearly free either way).
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  const fs::path dir = tmp / ("udsim-ablation-breaker-" +
                              std::to_string(static_cast<unsigned>(::getpid())));
  fs::create_directories(dir, ec);
  const fs::path fakecc = dir / "hangcc.sh";
  {
    std::ofstream f(fakecc);
    f << "#!/bin/sh\nsleep 30\n";
  }
  fs::permissions(fakecc, fs::perms::owner_all, fs::perm_options::add, ec);

  constexpr std::chrono::milliseconds kCompileTimeout = 150ms;
  constexpr unsigned kThreshold = 2;
  constexpr std::size_t kRequests = 8;

  struct Mode {
    const char* label;
    unsigned threshold;  // 0 = breaker never trips (the control)
  };
  const Mode modes[] = {{"no-breaker", 0}, {"breaker", kThreshold}};

  Table table({"circuit", "mode", "reqs", "done", "builds", "skipped",
               "total ms", "mean ms"});
  std::vector<Row> rows;
  bool sane = true;

  for (const std::string& name : args.circuits) {
    for (const Mode& mode : modes) {
      ServiceConfig cfg;
      cfg.workers = 1;  // serialize: the toolchain tax is counted exactly
      cfg.batch_threads = 1;
      cfg.enable_native = true;
      cfg.native.compiler = fakecc.string();
      cfg.native.compile_timeout = kCompileTimeout;
      cfg.native.cache_dir = (dir / "cache").string();
      cfg.native_breaker.name = "toolchain";
      cfg.native_breaker.failure_threshold = mode.threshold;
      cfg.native_breaker.cooldown = 60s;
      SimService svc(cfg);
      const SessionId sid = svc.open_session(mode.label);

      Row row;
      row.name = name;
      row.mode = mode.label;
      double latency_sum_ms = 0;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kRequests; ++i) {
        // Distinct seeds: every request is a cache miss that would attempt
        // its own native build if the breaker lets it through.
        const auto nl = std::make_shared<Netlist>(
            make_iscas85_like(name, args.seed + 1 + i));
        const Workload w(nl->primary_inputs().size(), args.vectors,
                         args.seed + 7 + i);
        const auto req_start = std::chrono::steady_clock::now();
        const SimResponse r = svc.run(
            sid, SimRequest{.netlist = nl, .vectors = w.bits, .deadline = 60s});
        ++row.requests;
        if (r.outcome == Outcome::Completed) {
          ++row.completed;
          // Wall latency, not the service's queue_ns + run_ns: the compile
          // phase (the thing the breaker amputates) is the cost under test.
          latency_sum_ms += 1e-6 * static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - req_start).count());
        }
      }
      row.total_ms = 1e-6 * static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start).count());
      row.mean_ms =
          row.completed ? latency_sum_ms / static_cast<double>(row.completed)
                        : 0;
      const auto snap = svc.metrics().snapshot();
      const auto count = [&snap](const char* key) -> std::uint64_t {
        const auto it = snap.find(key);
        return it == snap.end() ? 0 : it->second;
      };
      row.builds = count("native.builds");
      row.skipped = count("native.breaker_skipped");
      svc.shutdown();

      table.add_row({row.name, row.mode, std::to_string(row.requests),
                     std::to_string(row.completed),
                     std::to_string(row.builds), std::to_string(row.skipped),
                     Table::num(row.total_ms), Table::num(row.mean_ms)});

      // Sanity (the smoke test rides on the exit code): the outage must
      // never cost availability, and the breaker must cap the build count.
      if (row.completed != row.requests) {
        std::fprintf(stderr, "%s/%s: %llu of %llu requests completed\n",
                     row.name.c_str(), row.mode.c_str(),
                     static_cast<unsigned long long>(row.completed),
                     static_cast<unsigned long long>(row.requests));
        sane = false;
      }
      if (mode.threshold == 0 && row.builds != kRequests) {
        std::fprintf(stderr,
                     "%s/no-breaker: expected %zu builds, saw %llu\n",
                     row.name.c_str(), kRequests,
                     static_cast<unsigned long long>(row.builds));
        sane = false;
      }
      if (mode.threshold != 0 &&
          (row.builds != mode.threshold ||
           row.skipped != kRequests - mode.threshold)) {
        std::fprintf(stderr,
                     "%s/breaker: expected %u builds + %zu skips, saw "
                     "%llu + %llu\n",
                     row.name.c_str(), mode.threshold,
                     kRequests - mode.threshold,
                     static_cast<unsigned long long>(row.builds),
                     static_cast<unsigned long long>(row.skipped));
        sane = false;
      }
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  std::printf("\n(each native build pays the full %lld ms compile timeout; "
              "the breaker opens after %u and the rest skip the toolchain "
              "untried. Every request still completes via the IR chain.)\n",
              static_cast<long long>(kCompileTimeout.count()), kThreshold);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_breaker\",\n"
                 "  \"vectors\": %zu,\n  \"seed\": %llu,\n"
                 "  \"compile_timeout_ms\": %lld,\n  \"threshold\": %u,\n"
                 "  \"modes\": [\n",
                 args.vectors, static_cast<unsigned long long>(args.seed),
                 static_cast<long long>(kCompileTimeout.count()), kThreshold);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"mode\": \"%s\", "
                   "\"requests\": %llu, \"completed\": %llu, "
                   "\"builds\": %llu, \"skipped\": %llu, "
                   "\"total_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                   r.name.c_str(), r.mode.c_str(),
                   static_cast<unsigned long long>(r.requests),
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.builds),
                   static_cast<unsigned long long>(r.skipped), r.total_ms,
                   r.mean_ms, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    sane = false;
  }

  fs::remove_all(dir, ec);
  return sane ? 0 : 1;
}
