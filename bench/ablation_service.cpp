// Service-layer ablation: offered-load sweep against one SimService per
// (circuit, load point), reporting end-of-pipe latency percentiles and the
// structured-refusal rates that replace crashes under overload.
//
// Each load point spawns C client threads that burst-submit R requests each
// (no pacing — the worst case for the bounded queue), then waits for every
// ticket. Per-request service latency = queue wait + run time, taken from
// the SimResponse the service stamps; refusals (QueueFull at submit,
// load-shed Rejected at schedule) are counted as rates, not latencies.
// The sweep shows the designed degradation: light load completes everything,
// saturation trades latency for throughput, overload converts the excess
// into QueueFull/shed rejections while completed work stays bit-exact.
//
// Extra options on top of the shared harness flags:
//   --json PATH   machine-readable results (default ablation_service.json)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/table.h"
#include "service/sim_service.h"

namespace {

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_service.json";
}

struct LoadPoint {
  const char* label;
  unsigned clients;
  unsigned requests_per_client;
};

struct Row {
  std::string name;
  std::string load;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t shed_rejected = 0;
  std::uint64_t other = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) args.circuits = {"c432", "c880", "c1908"};
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation",
               "service latency under offered load (p50/p95/p99, refusal rates)",
               args);

  // One fixed, deliberately small service: 2 request workers over a queue of
  // 8 slots makes "overload" reachable with a handful of client threads.
  const LoadPoint points[] = {
      {"light", 1, 8},
      {"saturate", 4, 8},
      {"overload", 16, 8},
  };

  Table table({"circuit", "load", "offered", "done", "qfull", "shed",
               "p50 us", "p95 us", "p99 us"});
  std::vector<Row> rows;
  for (const std::string& name : args.circuit_names()) {
    const auto nl = std::make_shared<Netlist>(make_iscas85_like(name, args.seed));
    const Workload w(nl->primary_inputs().size(), args.vectors, args.seed + 7);

    for (const LoadPoint& pt : points) {
      ServiceConfig cfg;
      cfg.workers = 2;
      cfg.queue_capacity = 8;
      cfg.batch_threads = 1;
      SimService svc(cfg);

      std::vector<std::vector<ServiceTicket>> tickets(pt.clients);
      std::vector<std::thread> clients;
      for (unsigned c = 0; c < pt.clients; ++c) {
        clients.emplace_back([&, c] {
          tickets[c].reserve(pt.requests_per_client);
          for (unsigned i = 0; i < pt.requests_per_client; ++i) {
            tickets[c].push_back(svc.submit(
                0, SimRequest{.netlist = nl, .vectors = w.bits}));
          }
        });
      }
      for (std::thread& t : clients) t.join();

      Row row;
      row.name = name;
      row.load = pt.label;
      std::vector<double> latencies_us;
      for (std::vector<ServiceTicket>& per_client : tickets) {
        for (ServiceTicket& t : per_client) {
          const SimResponse r = t.result.get();
          ++row.offered;
          switch (r.outcome) {
            case Outcome::Completed:
              ++row.completed;
              latencies_us.push_back(
                  1e-3 * static_cast<double>(r.queue_ns + r.run_ns));
              break;
            case Outcome::QueueFull: ++row.queue_full; break;
            case Outcome::Rejected: ++row.shed_rejected; break;
            default: ++row.other; break;
          }
        }
      }
      svc.shutdown();

      std::sort(latencies_us.begin(), latencies_us.end());
      row.p50_us = percentile(latencies_us, 0.50);
      row.p95_us = percentile(latencies_us, 0.95);
      row.p99_us = percentile(latencies_us, 0.99);
      table.add_row({row.name, row.load, std::to_string(row.offered),
                     std::to_string(row.completed),
                     std::to_string(row.queue_full),
                     std::to_string(row.shed_rejected), Table::num(row.p50_us),
                     Table::num(row.p95_us), Table::num(row.p99_us)});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  std::printf("\n(latency = queue wait + run time as stamped by the service; "
              "qfull/shed are structured refusals, never crashes. 'other' "
              "outcomes would indicate a bug and are reported in the JSON.)\n");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_service\",\n"
                 "  \"vectors\": %zu,\n  \"seed\": %llu,\n  \"points\": [\n",
                 args.vectors, static_cast<unsigned long long>(args.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"load\": \"%s\", \"offered\": %llu, "
                   "\"completed\": %llu, \"queue_full\": %llu, "
                   "\"shed_rejected\": %llu, \"other\": %llu, "
                   "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
                   r.name.c_str(), r.load.c_str(),
                   static_cast<unsigned long long>(r.offered),
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.queue_full),
                   static_cast<unsigned long long>(r.shed_rejected),
                   static_cast<unsigned long long>(r.other), r.p50_us,
                   r.p95_us, r.p99_us, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }

  // Sanity: every request resolved to a structured outcome.
  for (const Row& r : rows) {
    if (r.offered !=
        r.completed + r.queue_full + r.shed_rejected + r.other) {
      std::fprintf(stderr, "%s/%s: outcome counts do not sum to offered\n",
                   r.name.c_str(), r.load.c_str());
      return 1;
    }
    if (r.completed == 0) {
      std::fprintf(stderr, "%s/%s: nothing completed\n", r.name.c_str(),
                   r.load.c_str());
      return 1;
    }
  }
  return 0;
}
