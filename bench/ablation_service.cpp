// Service-layer ablation: offered-load sweep against one SimService per
// (circuit, load point), reporting end-of-pipe latency percentiles and the
// structured-refusal rates that replace crashes under overload.
//
// Each load point spawns C client threads that burst-submit R requests each
// (no pacing — the worst case for the bounded queue), then waits for every
// ticket. Per-request service latency = queue wait + run time, taken from
// the SimResponse the service stamps; refusals (QueueFull at submit,
// load-shed Rejected at schedule) are counted as rates, not latencies.
// The sweep shows the designed degradation: light load completes everything,
// saturation trades latency for throughput, overload converts the excess
// into QueueFull/shed rejections while completed work stays bit-exact.
//
// A second phase measures the telemetry tax (ISSUE 10): the same saturate
// load is replayed against one service with the full telemetry stack on
// (request traces, rolling window, JSONL event log) and one with
// telemetry.enabled = false, and the JSON reports both per-request costs
// plus the relative overhead. The numbers are wall-clock on a shared
// machine, so the optional gate is off by default.
//
// Extra options on top of the shared harness flags:
//   --json PATH   machine-readable results (default ablation_service.json)
//   --max-telemetry-overhead-pct P   exit non-zero when the measured
//                 telemetry overhead exceeds P percent (default: report only)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/table.h"
#include "service/sim_service.h"

namespace {

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_service.json";
}

double parse_overhead_gate(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--max-telemetry-overhead-pct") {
      return std::atof(argv[i + 1]);
    }
  }
  return -1.0;  // report only
}

struct LoadPoint {
  const char* label;
  unsigned clients;
  unsigned requests_per_client;
};

struct Row {
  std::string name;
  std::string load;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t shed_rejected = 0;
  std::uint64_t other = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) args.circuits = {"c432", "c880", "c1908"};
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation",
               "service latency under offered load (p50/p95/p99, refusal rates)",
               args);

  // One fixed, deliberately small service: 2 request workers over a queue of
  // 8 slots makes "overload" reachable with a handful of client threads.
  const LoadPoint points[] = {
      {"light", 1, 8},
      {"saturate", 4, 8},
      {"overload", 16, 8},
  };

  Table table({"circuit", "load", "offered", "done", "qfull", "shed",
               "p50 us", "p95 us", "p99 us"});
  std::vector<Row> rows;
  for (const std::string& name : args.circuit_names()) {
    const auto nl = std::make_shared<Netlist>(make_iscas85_like(name, args.seed));
    const Workload w(nl->primary_inputs().size(), args.vectors, args.seed + 7);

    for (const LoadPoint& pt : points) {
      ServiceConfig cfg;
      cfg.workers = 2;
      cfg.queue_capacity = 8;
      cfg.batch_threads = 1;
      SimService svc(cfg);

      std::vector<std::vector<ServiceTicket>> tickets(pt.clients);
      std::vector<std::thread> clients;
      for (unsigned c = 0; c < pt.clients; ++c) {
        clients.emplace_back([&, c] {
          tickets[c].reserve(pt.requests_per_client);
          for (unsigned i = 0; i < pt.requests_per_client; ++i) {
            tickets[c].push_back(svc.submit(
                0, SimRequest{.netlist = nl, .vectors = w.bits}));
          }
        });
      }
      for (std::thread& t : clients) t.join();

      Row row;
      row.name = name;
      row.load = pt.label;
      std::vector<double> latencies_us;
      for (std::vector<ServiceTicket>& per_client : tickets) {
        for (ServiceTicket& t : per_client) {
          const SimResponse r = t.result.get();
          ++row.offered;
          switch (r.outcome) {
            case Outcome::Completed:
              ++row.completed;
              latencies_us.push_back(
                  1e-3 * static_cast<double>(r.queue_ns + r.run_ns));
              break;
            case Outcome::QueueFull: ++row.queue_full; break;
            case Outcome::Rejected: ++row.shed_rejected; break;
            default: ++row.other; break;
          }
        }
      }
      svc.shutdown();

      std::sort(latencies_us.begin(), latencies_us.end());
      row.p50_us = percentile(latencies_us, 0.50);
      row.p95_us = percentile(latencies_us, 0.95);
      row.p99_us = percentile(latencies_us, 0.99);
      table.add_row({row.name, row.load, std::to_string(row.offered),
                     std::to_string(row.completed),
                     std::to_string(row.queue_full),
                     std::to_string(row.shed_rejected), Table::num(row.p50_us),
                     Table::num(row.p95_us), Table::num(row.p99_us)});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  std::printf("\n(latency = queue wait + run time as stamped by the service; "
              "qfull/shed are structured refusals, never crashes. 'other' "
              "outcomes would indicate a bug and are reported in the JSON.)\n");

  // --- Telemetry overhead: the saturate load point on the first circuit,
  // telemetry fully on (traces + window + event log) vs fully off, best of
  // `trials` runs each to damp scheduler noise.
  struct TelemetryCost {
    double us_per_req = 0.0;
    std::uint64_t completed = 0;
  };
  const auto measure = [&](bool telemetry_on) {
    const std::string name = args.circuit_names().front();
    const auto nl =
        std::make_shared<Netlist>(make_iscas85_like(name, args.seed));
    const Workload w(nl->primary_inputs().size(), args.vectors, args.seed + 7);
    TelemetryCost best;
    const int trials = std::max(1, args.trials);
    for (int t = 0; t < trials; ++t) {
      ServiceConfig cfg;
      cfg.workers = 2;
      cfg.queue_capacity = 64;  // roomy: measure work, not refusals
      cfg.batch_threads = 1;
      cfg.telemetry.enabled = telemetry_on;
      if (telemetry_on) {
        cfg.telemetry.event_log_path = "ablation_service_events.jsonl";
      }
      SimService svc(cfg);
      constexpr unsigned kClients = 4, kPerClient = 8;
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::vector<ServiceTicket>> tickets(kClients);
      std::vector<std::thread> clients;
      for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          tickets[c].reserve(kPerClient);
          for (unsigned i = 0; i < kPerClient; ++i) {
            tickets[c].push_back(
                svc.submit(0, SimRequest{.netlist = nl, .vectors = w.bits}));
          }
        });
      }
      for (std::thread& th : clients) th.join();
      std::uint64_t completed = 0;
      for (auto& per_client : tickets) {
        for (ServiceTicket& tk : per_client) {
          if (tk.result.get().outcome == Outcome::Completed) ++completed;
        }
      }
      const double us = 1e-3 * static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      svc.shutdown();
      const double per_req =
          completed == 0 ? 0.0 : us / static_cast<double>(completed);
      if (t == 0 || (per_req != 0.0 && per_req < best.us_per_req)) {
        best = {per_req, completed};
      }
    }
    return best;
  };
  const TelemetryCost on = measure(true);
  const TelemetryCost off = measure(false);
  const double overhead_pct =
      off.us_per_req <= 0.0
          ? 0.0
          : 100.0 * (on.us_per_req - off.us_per_req) / off.us_per_req;
  std::printf("\ntelemetry overhead (saturate, %s): on %.1f us/req, off %.1f "
              "us/req, overhead %+.2f%%\n",
              args.circuit_names().front().c_str(), on.us_per_req,
              off.us_per_req, overhead_pct);

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_service\",\n"
                 "  \"vectors\": %zu,\n  \"seed\": %llu,\n  \"points\": [\n",
                 args.vectors, static_cast<unsigned long long>(args.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"load\": \"%s\", \"offered\": %llu, "
                   "\"completed\": %llu, \"queue_full\": %llu, "
                   "\"shed_rejected\": %llu, \"other\": %llu, "
                   "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f}%s\n",
                   r.name.c_str(), r.load.c_str(),
                   static_cast<unsigned long long>(r.offered),
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.queue_full),
                   static_cast<unsigned long long>(r.shed_rejected),
                   static_cast<unsigned long long>(r.other), r.p50_us,
                   r.p95_us, r.p99_us, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"telemetry\": {\"on_us_per_req\": %.3f, "
                 "\"off_us_per_req\": %.3f, \"overhead_pct\": %.3f, "
                 "\"completed_on\": %llu, \"completed_off\": %llu}\n}\n",
                 on.us_per_req, off.us_per_req, overhead_pct,
                 static_cast<unsigned long long>(on.completed),
                 static_cast<unsigned long long>(off.completed));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }

  const double gate = parse_overhead_gate(argc, argv);
  if (gate >= 0.0 && overhead_pct > gate) {
    std::fprintf(stderr,
                 "telemetry overhead %.2f%% exceeds the %.2f%% gate\n",
                 overhead_pct, gate);
    return 1;
  }

  // Sanity: every request resolved to a structured outcome.
  for (const Row& r : rows) {
    if (r.offered !=
        r.completed + r.queue_full + r.shed_rejected + r.other) {
      std::fprintf(stderr, "%s/%s: outcome counts do not sum to offered\n",
                   r.name.c_str(), r.load.c_str());
      return 1;
    }
    if (r.completed == 0) {
      std::fprintf(stderr, "%s/%s: nothing completed\n", r.name.c_str(),
                   r.load.c_str());
      return 1;
    }
  }
  return 0;
}
