// Observability-overhead ablation: wall time of the compiled
// parallel-combined engine with metrics disabled (null registry) versus
// enabled (shared MetricsRegistry), plus the counter story of the enabled
// run. The design target (DESIGN.md §5e) is <2% overhead when disabled and
// a few percent when enabled: counters are bumped once per *vector pass*
// with per-pass constants, never once per op.
//
// Extra options on top of the shared harness flags:
//   --json PATH   machine-readable results (default ablation_observability.json)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/table.h"
#include "obs/metrics.h"
#include "parsim/parallel_sim.h"

namespace {

std::string parse_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "ablation_observability.json";
}

struct Row {
  std::string name;
  std::size_t gates;
  double off_us;       // metrics disabled
  double on_us;        // metrics enabled
  double overhead_pct;
  std::uint64_t exec_ops;
  std::uint64_t shift_ops;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const std::string json_path = parse_json_path(argc, argv);
  print_header("Ablation", "observability overhead (counters off vs on)", args);

  Table table({"circuit", "gates", "off us/vec", "on us/vec", "overhead",
               "exec.ops", "exec.shift_ops"});
  std::vector<Row> rows;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const ParallelCompiled compiled = compile_parallel(
        nl, {.trimming = true, .shift_elim = ShiftElim::PathTracing});
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    std::vector<std::uint32_t> in(w.bits.size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = w.bits[i];

    KernelRunner<std::uint32_t> runner(compiled.program);
    const auto replay = [&] {
      for (std::size_t v = 0; v < w.vectors; ++v) {
        runner.run(std::span<const std::uint32_t>(in.data() + v * w.inputs,
                                                  w.inputs));
      }
    };
    // Disabled: the hot loop carries one dead branch per pass.
    runner.set_metrics(nullptr);
    const double off = median_seconds(replay, args.trials);
    // Enabled: same loop, per-pass constant adds into relaxed atomics.
    MetricsRegistry reg;
    runner.set_metrics(&reg);
    const double on = median_seconds(replay, args.trials);

    const auto snap = reg.snapshot();
    const double overhead = off > 0 ? 100.0 * (on - off) / off : 0.0;
    rows.push_back({name, nl.real_gate_count(), us_per_vec(off, w.vectors),
                    us_per_vec(on, w.vectors), overhead, snap.at("exec.ops"),
                    snap.at("exec.shift_ops")});
    table.add_row({name, std::to_string(nl.real_gate_count()),
                   Table::num(us_per_vec(off, w.vectors)),
                   Table::num(us_per_vec(on, w.vectors)),
                   Table::num(overhead, 2) + "%",
                   std::to_string(snap.at("exec.ops")),
                   std::to_string(snap.at("exec.shift_ops"))});
  }
  table.print(std::cout);
  std::printf("\n(positive overhead%% = enabled run slower; timing noise can "
              "make small values negative)\n");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_observability\",\n"
                 "  \"vectors\": %zu,\n  \"trials\": %d,\n  \"seed\": %llu,\n"
                 "  \"circuits\": [\n",
                 args.vectors, args.trials,
                 static_cast<unsigned long long>(args.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"gates\": %zu, "
                   "\"off_us_per_vector\": %.4f, \"on_us_per_vector\": %.4f, "
                   "\"overhead_pct\": %.3f, \"exec_ops\": %llu, "
                   "\"exec_shift_ops\": %llu}%s\n",
                   r.name.c_str(), r.gates, r.off_us, r.on_us, r.overhead_pct,
                   static_cast<unsigned long long>(r.exec_ops),
                   static_cast<unsigned long long>(r.shift_ops),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
