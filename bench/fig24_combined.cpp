// Paper Fig. 24: path-tracing shift elimination combined with bit-field
// trimming. Paper result: gains 24-84%, average 47% (vs 43% for shift
// elimination alone); trimming adds nothing on one-word circuits.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness/table.h"
#include "parsim/parallel_sim.h"

int main(int argc, char** argv) {
  using namespace udsim;
  using namespace udsim::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 24", "path tracing + bit-field trimming", args);

  Table table({"circuit", "unoptimized", "path-tracing", "with trimming",
               "gain%", "paper%"});
  double sum = 0;
  int rows = 0;
  for (const std::string& name : args.circuit_names()) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);
    const ParallelCompiled plain = compile_parallel(nl, {});
    ParallelOptions opt;
    opt.shift_elim = ShiftElim::PathTracing;
    const ParallelCompiled pt = compile_parallel(nl, opt);
    opt.trimming = true;
    const ParallelCompiled both = compile_parallel(nl, opt);

    const double t0 = time_compiled<std::uint32_t>(plain.program, w, args.trials);
    const double t1 = time_compiled<std::uint32_t>(pt.program, w, args.trials);
    const double t2 = time_compiled<std::uint32_t>(both.program, w, args.trials);
    const double gain = 100.0 * (t0 - t2) / t0;
    sum += gain;
    ++rows;
    const PaperRow* pr = paper_row(name);
    table.add_row({name, Table::num(us_per_vec(t0, w.vectors)),
                   Table::num(us_per_vec(t1, w.vectors)),
                   Table::num(us_per_vec(t2, w.vectors)), Table::num(gain, 1),
                   pr ? Table::num(100.0 * (pr->parallel - pr->combined) /
                                       pr->parallel, 1)
                      : "-"});
  }
  table.print(std::cout);
  std::printf("\naverage combined gain: %.0f%% (paper: 47%%)\n", sum / rows);
  return 0;
}
