// Ablation C: validates the in-process-executor substitution (DESIGN.md §2).
// The generated program is emitted as C, compiled with the system compiler,
// dlopen-ed, checked for bit-exact agreement with the executor, and timed
// against it. Skips gracefully (exit 0 with a note) when no C compiler or
// dlopen is available.
#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "harness/table.h"
#include "ir/c_emitter.h"
#include "parsim/parallel_sim.h"

namespace {

using namespace udsim;
using namespace udsim::bench;

using StepFn = void (*)(const std::uint32_t*);
using InitFn = void (*)();

struct LoadedKernel {
  void* handle = nullptr;
  StepFn step = nullptr;
  std::uint32_t* arena = nullptr;
  ~LoadedKernel() {
    if (handle) dlclose(handle);
  }
};

bool build_shared(const Program& p, const std::string& base, LoadedKernel& out) {
  const std::string c_path = base + ".c";
  const std::string so_path = base + ".so";
  {
    std::ofstream f(c_path);
    emit_c(f, p, {.function_name = "step", .arena_name = "arena", .comments = false});
  }
  const std::string cmd = "cc -O2 -shared -fPIC -o " + so_path + " " + c_path +
                          " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return false;
  out.handle = dlopen(so_path.c_str(), RTLD_NOW);
  if (!out.handle) return false;
  out.step = reinterpret_cast<StepFn>(dlsym(out.handle, "step"));
  out.arena = reinterpret_cast<std::uint32_t*>(dlsym(out.handle, "arena"));
  auto init = reinterpret_cast<InitFn>(dlsym(out.handle, "step_init"));
  if (!out.step || !out.arena || !init) return false;
  init();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  if (args.circuits.empty()) {
    // Subset by default: compiling c6288-scale C files is slow.
    args.circuits = {"c432", "c880", "c1908", "c3540"};
  }
  if (std::system("cc --version >/dev/null 2>&1") != 0) {
    std::printf("ablation_emitted_c: no C compiler available; skipping.\n");
    return 0;
  }
  print_header("Ablation C", "emitted C (cc -O2, dlopen) vs in-process executor",
               args);

  Table table({"circuit", "executor", "emitted C", "C/executor", "agree"});
  for (const std::string& name : args.circuits) {
    const Netlist nl = make_iscas85_like(name, args.seed);
    const ParallelCompiled c = compile_parallel(nl, {});
    const Workload w(nl.primary_inputs().size(), args.vectors, args.seed + 100);

    LoadedKernel kernel;
    const std::string base = "/tmp/udsim_" + name;
    if (!build_shared(c.program, base, kernel)) {
      std::printf("  (failed to build/load %s; skipping)\n", name.c_str());
      continue;
    }

    // Bit-exact agreement check over a short prefix.
    KernelRunner<std::uint32_t> runner(c.program);
    std::vector<std::uint32_t> in(w.inputs);
    bool agree = true;
    for (std::size_t v = 0; v < std::min<std::size_t>(w.vectors, 50); ++v) {
      for (std::size_t i = 0; i < w.inputs; ++i) in[i] = w.bits[v * w.inputs + i];
      runner.run(in);
      kernel.step(in.data());
      for (std::uint32_t a = 0; a < c.program.arena_words && agree; ++a) {
        agree = runner.word(a) == kernel.arena[a];
      }
    }

    std::vector<std::uint32_t> all(w.inputs * w.vectors);
    for (std::size_t v = 0; v < w.vectors; ++v) {
      for (std::size_t i = 0; i < w.inputs; ++i) {
        all[v * w.inputs + i] = w.bits[v * w.inputs + i];
      }
    }
    const double t_exec = time_compiled<std::uint32_t>(c.program, w, args.trials);
    const double t_c = median_seconds(
        [&] {
          for (std::size_t v = 0; v < w.vectors; ++v) {
            kernel.step(all.data() + v * w.inputs);
          }
        },
        args.trials);
    table.add_row({name, Table::num(us_per_vec(t_exec, w.vectors)),
                   Table::num(us_per_vec(t_c, w.vectors)),
                   Table::num(t_c / t_exec, 2), agree ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\n(The executor substitutes for the paper's compiled C; this "
              "table shows the two agree bit-for-bit and how their speeds "
              "compare on this host.)\n");
  return 0;
}
