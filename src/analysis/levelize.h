// Levelization and the minlevel variant (paper §1–2).
//
// The level of a net is the length of the longest input→net path (latest
// time, in gate delays, at which the net may change); the minlevel is the
// shortest such path (earliest permitted change). Primary inputs, constant
// signals, and dangling sources are level 0. Wired connections take the
// max (level) / min (minlevel) of their drivers without an extra delay.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct Levelization {
  std::vector<int> net_level;
  std::vector<int> net_minlevel;
  std::vector<int> gate_level;     ///< level of the gate's output computation
  std::vector<int> gate_minlevel;
  int depth = 0;                   ///< max net level; "levels" = depth + 1

  [[nodiscard]] int level(NetId n) const { return net_level.at(n.value); }
  [[nodiscard]] int minlevel(NetId n) const { return net_minlevel.at(n.value); }
};

/// Compute levels and minlevels with the paper's counting worklist
/// (a variation of topological sort; throws NetlistError on cycles).
[[nodiscard]] Levelization levelize(const Netlist& nl);

/// Gate indices sorted by (gate level, then zero-delay resolvers after their
/// drivers): a valid evaluation order for compiled code generation.
[[nodiscard]] std::vector<GateId> topological_gate_order(const Netlist& nl);

}  // namespace udsim
