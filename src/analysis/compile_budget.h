// Compile-time resource budgets for the guarded compilation pipeline.
//
// The paper's techniques have compile costs that are *structural* functions
// of the netlist: the parallel technique allocates a (depth+1)-bit field per
// net, the PC-set method one variable per (net, PC-time) pair. Deep or
// heavily reconvergent circuits can therefore blow up arena size and code
// size with no warning. `estimate_compile_cost` predicts arena words, op
// count and peak bytes for every EngineKind from levelization and PC-set
// statistics alone — before any Program is materialized — and a
// `CompileBudget` turns the prediction (and the actual emission) into a
// hard limit enforced by the compilers via `BudgetExceeded`. The engine
// fallback chain (core/simulator.h, make_simulator_with_fallback) uses the
// same machinery to degrade gracefully instead of OOM-ing.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "core/engine_kind.h"
#include "netlist/diagnostics.h"
#include "netlist/netlist.h"
#include "resilience/cancel.h"

namespace udsim {

/// Hard compile-resource limits. A limit of 0 means unlimited.
struct CompileBudget {
  std::size_t max_arena_words = 0;  ///< word-arena size of the compiled program
  std::size_t max_ops = 0;          ///< straight-line op count (code size)
  std::size_t max_peak_bytes = 0;   ///< approximate resident bytes (arena + code)

  [[nodiscard]] bool unlimited() const noexcept {
    return max_arena_words == 0 && max_ops == 0 && max_peak_bytes == 0;
  }
};

/// Predicted (or measured) compile cost of one engine over one netlist.
struct CompileCostEstimate {
  EngineKind kind = EngineKind::ZeroDelayLcc;
  std::size_t arena_words = 0;
  std::size_t ops = 0;
  std::size_t peak_bytes = 0;
};

/// The budget limit `cost` crosses first ("arena words" / "ops" /
/// "peak bytes"), or nullptr when the cost fits.
[[nodiscard]] const char* budget_violation(const CompileBudget& budget,
                                           const CompileCostEstimate& cost) noexcept;

/// Structured error thrown by compile_parallel / compile_pcset / compile_lcc
/// when a prediction or the actual emission crosses a CompileBudget limit.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(const CompileCostEstimate& cost, const CompileBudget& budget,
                 const char* limit, bool predicted);

  [[nodiscard]] EngineKind kind() const noexcept { return cost_.kind; }
  [[nodiscard]] const CompileCostEstimate& cost() const noexcept { return cost_; }
  [[nodiscard]] const CompileBudget& budget() const noexcept { return budget_; }
  /// Which limit was crossed: "arena words", "ops" or "peak bytes".
  [[nodiscard]] const std::string& limit() const noexcept { return limit_; }
  /// True when the pre-emission prediction tripped; false when the emitted
  /// program itself crossed the limit.
  [[nodiscard]] bool predicted() const noexcept { return predicted_; }

 private:
  CompileCostEstimate cost_;
  CompileBudget budget_;
  std::string limit_;
  bool predicted_;
};

/// Predict the compile cost of `kind` over `nl` from levelization, alignment
/// and PC-set statistics alone; no Program is materialized. For the
/// compiled engines the prediction tracks the emitted program within a
/// small factor (asserted to be within 2x on the ISCAS-85 profiles by
/// tests/compile_budget_test.cpp); the interpreted event engines have no
/// compiled program and report only their interpreter footprint in
/// peak_bytes.
[[nodiscard]] CompileCostEstimate estimate_compile_cost(const Netlist& nl,
                                                        EngineKind kind,
                                                        int word_bits = 32);

struct Program;

/// The *actual* cost of an emitted program, in the same units as
/// estimate_compile_cost (used by the compilers for the post-emission
/// budget check).
[[nodiscard]] CompileCostEstimate measure_compile_cost(const Program& p,
                                                       EngineKind kind,
                                                       std::size_t net_count);

class MetricsRegistry;

/// Budget + optional diagnostics sink + optional metrics registry, threaded
/// through the guarded compiler entry points. With `metrics` set the
/// compilers trace every phase (compile.levelize / .pcset / .alignment /
/// .trimming / .emit spans) and record the emitted-program shape counters
/// (DESIGN.md §5e); engines built through the Simulator facade adopt the
/// same registry for their runtime counters.
struct CompileGuard {
  CompileBudget budget{};
  Diagnostics* diag = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Cooperative stop for long compilations: checked at phase boundaries
  /// (levelize / alignment / trimming / pcset / emit), never inside the
  /// per-net emission loops, so compilation cost is unchanged when unset.
  const CancelToken* cancel = nullptr;

  /// Throws BudgetExceeded when `cost` crosses a limit.
  void enforce(const CompileCostEstimate& cost, bool predicted) const;

  /// Throws Cancelled when the attached token has stopped; phase boundaries
  /// only (see `cancel`).
  void check_cancel(const char* phase) const;
};

}  // namespace udsim
