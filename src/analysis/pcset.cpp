#include "analysis/pcset.h"

#include <algorithm>
#include <limits>

namespace udsim {

std::size_t PCSets::total_net_pc_size() const {
  std::size_t n = 0;
  for (const DynBitset& s : net_pc) n += s.count();
  return n;
}

std::size_t PCSets::max_net_pc_size() const {
  std::size_t n = 0;
  for (const DynBitset& s : net_pc) n = std::max(n, s.count());
  return n;
}

PCSets compute_pc_sets(const Netlist& nl, const Levelization& lv) {
  PCSets pc;
  pc.depth = lv.depth;
  const std::size_t bits = static_cast<std::size_t>(lv.depth) + 1;
  pc.net_pc.assign(nl.net_count(), DynBitset(bits));
  pc.gate_pc.assign(nl.gate_count(), DynBitset(bits));

  // Same dependency order as levelize(); reuse it via topological gate order
  // would hide the per-net union, so walk nets/gates with the counting
  // worklist inline (paper §2 steps 1-6).
  std::vector<std::uint32_t> net_count(nl.net_count()), gate_count(nl.gate_count());
  std::vector<std::uint32_t> queue;
  const auto num_nets = static_cast<std::uint32_t>(nl.net_count());
  for (std::uint32_t i = 0; i < num_nets; ++i) {
    net_count[i] = static_cast<std::uint32_t>(nl.net(NetId{i}).drivers.size());
    if (net_count[i] == 0) queue.push_back(i);
  }
  for (std::uint32_t i = 0; i < nl.gate_count(); ++i) {
    gate_count[i] = static_cast<std::uint32_t>(nl.gate(GateId{i}).inputs.size());
    if (gate_count[i] == 0) queue.push_back(num_nets + i);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::uint32_t item = queue.back();
    queue.pop_back();
    ++processed;
    if (item < num_nets) {
      const NetId n{item};
      DynBitset& u = pc.net_pc[item];
      for (GateId g : nl.net(n).drivers) u.or_with(pc.gate_pc[g.value]);
      if (!u.any()) u.set(0);  // step 4b: primary inputs / constants -> {0}
      for (GateId g : nl.net(n).fanout) {
        if (--gate_count[g.value] == 0) queue.push_back(num_nets + g.value);
      }
    } else {
      const GateId g{item - num_nets};
      const Gate& gate = nl.gate(g);
      DynBitset& u = pc.gate_pc[g.value];
      const auto shift = static_cast<std::size_t>(nl.delay(g));
      for (NetId in : gate.inputs) u.or_with_shifted(pc.net_pc[in.value], shift);
      const NetId out = gate.output;
      if (--net_count[out.value] == 0) queue.push_back(out.value);
    }
  }
  if (processed != nl.net_count() + nl.gate_count()) {
    throw NetlistError("PC-set worklist stalled: netlist has a cycle");
  }
  return pc;
}

namespace {

// Zero-insert for one (pseudo-)gate: any input whose minlevel exceeds the
// gate's minimum input minlevel must retain its previous-vector value.
void insert_for_pins(std::span<const NetId> pins, const Levelization& lv,
                     PCSets& pc, std::vector<bool>& zeroed) {
  if (pins.empty()) return;
  int lo = std::numeric_limits<int>::max();
  for (NetId in : pins) lo = std::min(lo, lv.net_minlevel[in.value]);
  for (NetId in : pins) {
    if (lv.net_minlevel[in.value] > lo && !pc.net_pc[in.value].test(0)) {
      pc.net_pc[in.value].set(0);
      zeroed[in.value] = true;
    }
  }
}

}  // namespace

std::vector<NetId> insert_zeros(const Netlist& nl, const Levelization& lv,
                                std::span<const NetId> monitored, PCSets& pc) {
  std::vector<bool> zeroed(nl.net_count(), false);
  for (const Gate& g : nl.gates()) {
    insert_for_pins(g.inputs, lv, pc, zeroed);
  }
  insert_for_pins(monitored, lv, pc, zeroed);
  std::vector<NetId> out;
  for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
    if (zeroed[i]) out.push_back(NetId{i});
  }
  return out;
}

}  // namespace udsim
