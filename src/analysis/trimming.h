// Bit-field trimming analysis (paper §4, Fig. 9).
//
// Each element of a net's PC-set marks a *representative* bit position in
// its bit-field. Whole words can then be skipped:
//  - StableLow: every time in the word is below the net's minlevel — the
//    word holds the previous vector's final value in every bit and is filled
//    once at initialization;
//  - Gap: no representative — the word equals the high-order bit of the
//    preceding word, broadcast after that word is computed;
//  - Computed: everything else (participates in gate simulation and shift).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/alignment.h"
#include "analysis/levelize.h"
#include "analysis/pcset.h"
#include "netlist/netlist.h"

namespace udsim {

enum class WordClass : std::uint8_t { Computed, StableLow, Gap };

struct TrimPlan {
  int word_bits = 32;
  /// Per net, per word of its field. All-Computed when trimming is off.
  std::vector<std::vector<WordClass>> net_words;

  std::size_t computed_words = 0;
  std::size_t stable_words = 0;
  std::size_t gap_words = 0;

  [[nodiscard]] WordClass word_class(NetId n, std::size_t w) const {
    return net_words[n.value][w];
  }
};

/// Field width in bits of every net. The unoptimized technique gives every
/// net a uniform depth+1-bit field (paper §3: "an n-bit field for each
/// net"); the shift-eliminating variants size per net with the paper's
/// formula level - alignment + 1.
[[nodiscard]] std::vector<int> field_widths(const Netlist& nl, const Levelization& lv,
                                            const AlignmentPlan& plan, bool uniform);

/// Classify every word of every net field. `pc` must be the *raw* PC-sets
/// (no zero insertion): representatives are genuine potential-change times.
[[nodiscard]] TrimPlan compute_trim_plan(const Netlist& nl, const Levelization& lv,
                                         const PCSets& pc, const AlignmentPlan& plan,
                                         std::span<const int> widths, int word_bits);

/// The no-trimming plan: every word of every net is Computed.
[[nodiscard]] TrimPlan full_trim_plan(const Netlist& nl, std::span<const int> widths,
                                      int word_bits);

}  // namespace udsim
