#include "analysis/alignment.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "analysis/network_graph.h"

namespace udsim {

namespace {
constexpr int kUnassigned = std::numeric_limits<int>::max();
}

AlignmentPlan align_unoptimized(const Netlist& nl, const Levelization&) {
  AlignmentPlan plan;
  plan.net_align.assign(nl.net_count(), 0);
  plan.gate_align.resize(nl.gate_count());
  for (std::uint32_t i = 0; i < nl.gate_count(); ++i) {
    plan.gate_align[i] = nl.delay(GateId{i});
  }
  return plan;
}

AlignmentPlan align_path_tracing(const Netlist& nl, const Levelization& lv) {
  AlignmentPlan plan;
  plan.net_align.assign(nl.net_count(), kUnassigned);
  plan.gate_align.assign(nl.gate_count(), kUnassigned);

  // Iterative version of paper Fig. 17 (net_align / gate_align mutual
  // recursion) — an explicit stack keeps deep circuits (c6288-like) safe.
  struct Item {
    bool is_net;
    std::uint32_t id;
    int value;
  };
  std::vector<Item> stack;
  const auto drain = [&] {
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      if (it.is_net) {
        if (it.value < plan.net_align[it.id]) {
          plan.net_align[it.id] = it.value;
          for (GateId g : nl.net(NetId{it.id}).drivers) {
            stack.push_back({false, g.value, it.value});
          }
        }
      } else {
        if (it.value < plan.gate_align[it.id]) {
          plan.gate_align[it.id] = it.value;
          const Gate& g = nl.gate(GateId{it.id});
          const int d = nl.delay(GateId{it.id});
          for (NetId in : g.inputs) {
            stack.push_back({true, in.value, it.value - d});
          }
        }
      }
    }
  };

  for (NetId po : nl.primary_outputs()) {
    stack.push_back({true, po.value, lv.net_minlevel[po.value]});
    drain();
  }

  // Nets not reaching any primary output: start a fresh trace at each,
  // deepest first, aligned to its own minlevel (same rule as a PO start).
  std::vector<std::uint32_t> rest;
  for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
    if (plan.net_align[i] == kUnassigned) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [&](std::uint32_t a, std::uint32_t b) {
    return lv.net_level[a] > lv.net_level[b];
  });
  for (std::uint32_t n : rest) {
    if (plan.net_align[n] != kUnassigned) continue;
    stack.push_back({true, n, lv.net_minlevel[n]});
    drain();
  }
  return plan;
}

AlignmentPlan align_cycle_breaking(const Netlist& nl, const Levelization& lv) {
  const UndirectedNetworkGraph g = build_network_graph(nl);
  const std::size_t nv = g.vertex_count();

  // --- Pass 1: DFS, keep tree edges, drop back edges. -----------------------
  std::vector<bool> visited(nv, false);
  std::vector<bool> tree_edge(g.edges.size(), false);
  std::vector<bool> edge_used(g.edges.size(), false);
  std::vector<int> component(nv, -1);
  int num_components = 0;

  // Start DFS from primary-output net vertices first (the paper's alignment
  // pass "starts at an arbitrary primary output"); remaining vertices follow.
  std::vector<std::uint32_t> starts;
  starts.reserve(nv);
  for (NetId po : nl.primary_outputs()) starts.push_back(g.net_vertex(po));
  for (std::uint32_t v = 0; v < nv; ++v) starts.push_back(v);

  struct Frame {
    std::uint32_t vertex;
    std::size_t next = 0;  // index into adjacency list
  };
  std::vector<Frame> dfs;
  for (std::uint32_t s : starts) {
    if (visited[s]) continue;
    const int comp = num_components++;
    visited[s] = true;
    component[s] = comp;
    dfs.push_back({s, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.next >= g.adjacency[f.vertex].size()) {
        dfs.pop_back();
        continue;
      }
      const std::uint32_t e = g.adjacency[f.vertex][f.next++];
      if (edge_used[e]) continue;
      edge_used[e] = true;
      const std::uint32_t w = g.other(e, f.vertex);
      if (visited[w]) {
        // Back edge: "the most recently traversed edge is removed".
        continue;
      }
      tree_edge[e] = true;
      visited[w] = true;
      component[w] = comp;
      dfs.push_back({w, 0});
    }
  }

  // --- Pass 2: propagate alignments over the spanning forest. ---------------
  AlignmentPlan plan;
  plan.net_align.assign(nl.net_count(), kUnassigned);
  plan.gate_align.assign(nl.gate_count(), kUnassigned);

  const auto align_of = [&](std::uint32_t v) -> int& {
    return g.is_net_vertex(v)
               ? plan.net_align[v]
               : plan.gate_align[v - static_cast<std::uint32_t>(g.num_nets)];
  };

  std::vector<std::uint32_t> bfs;
  for (std::uint32_t s : starts) {
    if (align_of(s) != kUnassigned) continue;
    // Seed value: a net starts at its minlevel; a gate start (possible only
    // in gate-only pathological components) at its own minlevel.
    if (g.is_net_vertex(s)) {
      align_of(s) = lv.net_minlevel[s];
    } else {
      align_of(s) = lv.gate_minlevel[s - g.num_nets];
    }
    bfs.clear();
    bfs.push_back(s);
    while (!bfs.empty()) {
      const std::uint32_t v = bfs.back();
      bfs.pop_back();
      const int a = align_of(v);
      for (std::uint32_t e : g.adjacency[v]) {
        if (!tree_edge[e]) continue;
        const std::uint32_t w = g.other(e, v);
        if (align_of(w) != kUnassigned) continue;
        const int d = nl.delay(GateId{g.edges[e].gate});
        int aw;
        if (g.is_net_vertex(v)) {
          // net -> gate: gates driving the net get the net's alignment,
          // gates reading it get alignment + delay.
          aw = g.edges[e].is_input ? a + d : a;
        } else {
          // gate -> net: inputs get alignment - delay, outputs the same.
          aw = g.edges[e].is_input ? a - d : a;
        }
        align_of(w) = aw;
        bfs.push_back(w);
      }
    }
  }

  // --- Pass 3: per-component constant correction so the plan is legal. ------
  std::vector<int> correction(static_cast<std::size_t>(num_components), 0);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const int comp = component[g.net_vertex(NetId{n})];
    correction[comp] = std::max(correction[comp],
                                plan.net_align[n] - lv.net_minlevel[n]);
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& gate = nl.gate(GateId{gi});
    const int comp = component[g.gate_vertex(GateId{gi})];
    // Left input shifts need alignment(in) < minlevel(in) strictly.
    for (NetId in : gate.inputs) {
      if (plan.input_shift(nl, GateId{gi}, in) < 0) {
        correction[comp] = std::max(
            correction[comp], plan.net_align[in.value] - (lv.net_minlevel[in.value] - 1));
      }
    }
    // Left output shifts need gate_align <= minlevel(out).
    if (plan.output_shift(nl, GateId{gi}) < 0) {
      const NetId out = gate.output;
      correction[comp] = std::max(correction[comp],
                                  plan.gate_align[gi] - lv.net_minlevel[out.value]);
    }
  }
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    plan.net_align[n] -= correction[component[g.net_vertex(NetId{n})]];
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    plan.gate_align[gi] -= correction[component[g.gate_vertex(GateId{gi})]];
  }
  return plan;
}

void check_alignment_plan(const Netlist& nl, const Levelization& lv,
                          const AlignmentPlan& plan) {
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (plan.net_align[n] > lv.net_minlevel[n]) {
      throw NetlistError("alignment of net '" + nl.net(NetId{n}).name +
                         "' exceeds its minlevel");
    }
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& gate = nl.gate(GateId{gi});
    for (NetId in : gate.inputs) {
      if (plan.input_shift(nl, GateId{gi}, in) < 0 &&
          plan.net_align[in.value] >= lv.net_minlevel[in.value]) {
        throw NetlistError("left input shift from net '" + nl.net(in).name +
                           "' whose alignment is not below its minlevel");
      }
    }
    if (plan.output_shift(nl, GateId{gi}) < 0) {
      const NetId out = gate.output;
      if (plan.gate_align[gi] > lv.net_minlevel[out.value]) {
        throw NetlistError("left output shift onto net '" + nl.net(out).name +
                           "' would need values older than the previous vector");
      }
    }
  }
}

AlignmentStats alignment_stats(const Netlist& nl, const Levelization& lv,
                               const AlignmentPlan& plan, int word_bits) {
  AlignmentStats st;
  long long width_sum = 0;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const int w = plan.width_bits(lv, NetId{n});
    st.max_width_bits = std::max(st.max_width_bits, w);
    width_sum += w;
    const int words = (w + word_bits - 1) / word_bits;
    st.max_width_words = std::max(st.max_width_words, words);
    st.total_width_words += words;
  }
  st.avg_width_bits = nl.net_count()
                          ? static_cast<double>(width_sum) / static_cast<double>(nl.net_count())
                          : 0.0;
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& gate = nl.gate(GateId{gi});
    std::unordered_set<std::uint32_t> seen;
    for (NetId in : gate.inputs) {
      if (!seen.insert(in.value).second) continue;  // duplicate pin, one shift
      const int s = plan.input_shift(nl, GateId{gi}, in);
      if (s != 0) {
        ++st.retained_shift_sites;
        if (s < 0) ++st.left_shift_sites;
      }
    }
    const int s = plan.output_shift(nl, GateId{gi});
    if (s != 0) {
      ++st.retained_shift_sites;
      if (s < 0) ++st.left_shift_sites;
    }
  }
  return st;
}

}  // namespace udsim
