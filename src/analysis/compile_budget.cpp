#include "analysis/compile_budget.h"

#include <algorithm>
#include <vector>

#include "analysis/alignment.h"
#include "analysis/levelize.h"
#include "analysis/pcset.h"
#include "analysis/trimming.h"
#include "ir/program.h"
#include "netlist/logic.h"

namespace udsim {

const char* budget_violation(const CompileBudget& budget,
                             const CompileCostEstimate& cost) noexcept {
  if (budget.max_arena_words != 0 && cost.arena_words > budget.max_arena_words) {
    return "arena words";
  }
  if (budget.max_ops != 0 && cost.ops > budget.max_ops) {
    return "ops";
  }
  if (budget.max_peak_bytes != 0 && cost.peak_bytes > budget.max_peak_bytes) {
    return "peak bytes";
  }
  return nullptr;
}

namespace {

[[nodiscard]] std::string format_exceeded(const CompileCostEstimate& cost,
                                          const CompileBudget& budget,
                                          const char* limit, bool predicted) {
  std::string s(engine_name(cost.kind));
  s += predicted ? ": predicted " : ": emitted ";
  s += limit;
  s += " (";
  if (std::string_view(limit) == "arena words") {
    s += std::to_string(cost.arena_words) + " > " +
         std::to_string(budget.max_arena_words);
  } else if (std::string_view(limit) == "ops") {
    s += std::to_string(cost.ops) + " > " + std::to_string(budget.max_ops);
  } else {
    s += std::to_string(cost.peak_bytes) + " > " +
         std::to_string(budget.max_peak_bytes);
  }
  s += ") exceed the compile budget";
  return s;
}

/// Per-word op count of emit_gate_word (ir/emit_util.h) for one gate.
[[nodiscard]] std::size_t gate_word_ops(GateType t, std::size_t fanin) noexcept {
  if (is_constant(t)) return 0;  // arena-resident, no per-vector code
  if (is_unary(t) || fanin <= 2) return 1;
  const bool inverted =
      t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor;
  return fanin - 1 + (inverted ? 1 : 0);
}

/// Approximate resident footprint of a compiled program: the word arena,
/// the op vector, and per-arena-word name metadata.
[[nodiscard]] std::size_t peak_bytes_for(std::size_t arena_words, std::size_t ops,
                                         int word_bits,
                                         std::size_t net_count) noexcept {
  const std::size_t word_bytes = static_cast<std::size_t>(word_bits) / 8;
  return arena_words * (word_bytes + sizeof(std::string)) + ops * sizeof(Op) +
         net_count * 64;
}

[[nodiscard]] bool gate_driven_by_constant(const Netlist& nl, NetId n) {
  const Net& net = nl.net(n);
  return !net.drivers.empty() && is_constant(nl.gate(net.drivers.front()).type);
}

// ---- zero-delay LCC --------------------------------------------------------
// One variable per net, one gate evaluation per gate: the formula is exact.
CompileCostEstimate estimate_lcc(const Netlist& nl, int word_bits) {
  CompileCostEstimate c;
  c.arena_words = nl.net_count();
  c.ops = nl.primary_inputs().size();
  for (const Gate& g : nl.gates()) {
    c.ops += gate_word_ops(g.type, g.inputs.size());
  }
  c.peak_bytes = peak_bytes_for(c.arena_words, c.ops, word_bits, nl.net_count());
  return c;
}

// ---- PC-set method ---------------------------------------------------------
// One variable per (net, PC element); one gate simulation per non-zero
// element of each gate's PC-set, plus the X_0 = X_max retained-value copies.
// Mirrors the compile_pcset loops without emitting anything.
CompileCostEstimate estimate_pcset(const Netlist& nl, int word_bits) {
  const Levelization lv = levelize(nl);
  PCSets pc = compute_pc_sets(nl, lv);
  const std::vector<NetId>& monitored = nl.primary_outputs();
  insert_zeros(nl, lv, monitored, pc);
  bool print_at_zero = false;
  for (NetId m : monitored) print_at_zero |= pc.net_pc[m.value].test(0);
  if (print_at_zero) {
    for (NetId m : monitored) pc.net_pc[m.value].set(0);
  }

  CompileCostEstimate c;
  c.arena_words = pc.total_net_pc_size();
  c.ops = nl.primary_inputs().size();
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const NetId id{n};
    if (nl.net(id).is_primary_input || gate_driven_by_constant(nl, id)) continue;
    if (pc.net_pc[n].test(0) && pc.net_pc[n].count() > 1) ++c.ops;
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (is_constant(g.type)) continue;
    std::size_t elements = pc.gate_pc[gi].count();
    if (pc.gate_pc[gi].test(0)) --elements;  // zero element: value retained
    c.ops += elements * gate_word_ops(g.type, g.inputs.size());
  }
  c.peak_bytes = peak_bytes_for(c.arena_words, c.ops, word_bits, nl.net_count());
  return c;
}

// ---- parallel technique ----------------------------------------------------
// Bit-field words from the alignment plan and trim classes; op count from
// per-gate computed-word counts, realignment sites and store shifts. This
// is a model, not a replay of the emitter — tests pin it within 2x of the
// emitted program on the ISCAS-85 profiles.
CompileCostEstimate estimate_parallel(const Netlist& nl, EngineKind kind,
                                      int word_bits) {
  const bool uniform =
      kind == EngineKind::Parallel || kind == EngineKind::ParallelTrimmed;
  const bool trimming =
      kind == EngineKind::ParallelTrimmed || kind == EngineKind::ParallelCombined;
  const Levelization lv = levelize(nl);
  AlignmentPlan plan;
  if (uniform) {
    plan = align_unoptimized(nl, lv);
  } else if (kind == EngineKind::ParallelCycleBreaking) {
    plan = align_cycle_breaking(nl, lv);
  } else {
    plan = align_path_tracing(nl, lv);
  }
  const std::vector<int> widths = field_widths(nl, lv, plan, uniform);
  const TrimPlan trim = trimming
                            ? compute_trim_plan(nl, lv, compute_pc_sets(nl, lv),
                                                plan, widths, word_bits)
                            : full_trim_plan(nl, widths, word_bits);
  const int W = word_bits;

  CompileCostEstimate c;
  // Fields.
  std::vector<std::uint32_t> net_words(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    net_words[n] = static_cast<std::uint32_t>((widths[n] + W - 1) / W);
    c.arena_words += net_words[n];
  }

  // Primary-input loads.
  for (NetId pi : nl.primary_inputs()) {
    const std::uint32_t words = net_words[pi.value];
    c.ops += plan.net_align[pi.value] == 0 ? words : words + 2;
  }

  // Stable-low / gap word fills, plus the broadcast feeding each stable run.
  c.ops += trim.stable_words + trim.gap_words;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    for (WordClass w : trim.net_words[n]) {
      if (w == WordClass::StableLow) {
        ++c.ops;  // one BcastBit per net with stable words (counted once)
        break;
      }
    }
  }

  // Per-gate evaluation, realignment and store ops; scratch high-water.
  std::size_t scratch = 2;  // PI loads use two scratch words
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (is_constant(g.type)) continue;
    const std::uint32_t n = g.output.value;
    std::size_t cw = 0;
    for (WordClass w : trim.net_words[n]) {
      if (w == WordClass::Computed) ++cw;
    }
    const int s_out = plan.output_shift(nl, GateId{gi});
    const int res_bits = uniform
                             ? widths[n]
                             : lv.gate_level[gi] - plan.gate_align[gi] + 1;
    const auto res_words = static_cast<std::size_t>((res_bits + W - 1) / W);
    std::size_t pins_with_shift = 0;
    std::size_t distinct = 0;
    std::vector<std::uint32_t> seen;
    for (NetId in : g.inputs) {
      if (std::find(seen.begin(), seen.end(), in.value) == seen.end()) {
        seen.push_back(in.value);
        ++distinct;
      }
      if (plan.input_shift(nl, GateId{gi}, in) != 0) ++pins_with_shift;
    }
    const std::size_t needed = std::min(cw + (s_out != 0 ? 1 : 0), res_words);
    c.ops += needed * (gate_word_ops(g.type, g.inputs.size()) + pins_with_shift);
    if (s_out != 0) c.ops += cw + 2;  // store funnels + pf/msb broadcasts
    ++c.ops;  // init / boundary-broadcast slack per gate
    scratch = std::max(scratch, res_words + 2 + 3 * distinct);
  }
  c.arena_words += scratch;
  c.peak_bytes = peak_bytes_for(c.arena_words, c.ops, word_bits, nl.net_count());
  return c;
}

// ---- interpreted event engines ---------------------------------------------
// No compiled program: arena and op counts are zero, only the interpreter's
// per-net/per-gate bookkeeping appears as footprint.
CompileCostEstimate estimate_event(const Netlist& nl) {
  CompileCostEstimate c;
  c.peak_bytes = (nl.net_count() + nl.gate_count()) * 64;
  return c;
}

}  // namespace

BudgetExceeded::BudgetExceeded(const CompileCostEstimate& cost,
                               const CompileBudget& budget, const char* limit,
                               bool predicted)
    : std::runtime_error(format_exceeded(cost, budget, limit, predicted)),
      cost_(cost),
      budget_(budget),
      limit_(limit),
      predicted_(predicted) {}

CompileCostEstimate measure_compile_cost(const Program& p, EngineKind kind,
                                         std::size_t net_count) {
  CompileCostEstimate c;
  c.kind = kind;
  c.arena_words = p.arena_words;
  c.ops = p.ops.size();
  c.peak_bytes = peak_bytes_for(c.arena_words, c.ops, p.word_bits, net_count);
  return c;
}

CompileCostEstimate estimate_compile_cost(const Netlist& nl, EngineKind kind,
                                          int word_bits) {
  CompileCostEstimate c;
  switch (kind) {
    case EngineKind::Event2:
    case EngineKind::Event3:
      c = estimate_event(nl);
      break;
    case EngineKind::ZeroDelayLcc:
      c = estimate_lcc(nl, word_bits);
      break;
    case EngineKind::PCSet:
      c = estimate_pcset(nl, word_bits);
      break;
    case EngineKind::Parallel:
    case EngineKind::ParallelTrimmed:
    case EngineKind::ParallelPathTracing:
    case EngineKind::ParallelCycleBreaking:
    case EngineKind::ParallelCombined:
      c = estimate_parallel(nl, kind, word_bits);
      break;
    case EngineKind::Native:
      // The native engine's arena/code cost is its ParallelCombined base
      // program; the external compiler's memory is not modelled.
      c = estimate_parallel(nl, EngineKind::ParallelCombined, word_bits);
      break;
  }
  c.kind = kind;
  return c;
}

void CompileGuard::enforce(const CompileCostEstimate& cost, bool predicted) const {
  if (const char* limit = budget_violation(budget, cost)) {
    throw BudgetExceeded(cost, budget, limit, predicted);
  }
}

void CompileGuard::check_cancel(const char* phase) const {
  if (cancel == nullptr) return;
  const StopReason r = cancel->stop_reason();
  if (r != StopReason::None) throw Cancelled(r, phase, 0);
}

}  // namespace udsim
