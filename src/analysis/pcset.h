// PC-sets: the set of Potential Change times of every net (paper §2).
//
// Lemma 1 of the paper: a net may change at time t iff there is an
// input→net path of length t. PC-sets are computed with the counting
// worklist algorithm; a gate's PC-set is the union of its inputs' sets
// incremented by the gate delay, a net's is the union of its drivers'.
//
// Zero insertion: when a gate's inputs have differing minlevels, each input
// whose minlevel is not minimal must retain its previous-vector value, which
// the PC-set method represents by adding element 0 to that net's PC-set
// (paper Figs. 2-3). The same rule applies to the monitored-net "PRINT gate".
#pragma once

#include <span>
#include <vector>

#include "analysis/bitset.h"
#include "analysis/levelize.h"
#include "netlist/netlist.h"

namespace udsim {

struct PCSets {
  std::vector<DynBitset> net_pc;   ///< indexed by NetId
  std::vector<DynBitset> gate_pc;  ///< indexed by GateId
  int depth = 0;                   ///< sets are sized depth+1 bits

  [[nodiscard]] const DynBitset& of(NetId n) const { return net_pc.at(n.value); }
  [[nodiscard]] const DynBitset& of(GateId g) const { return gate_pc.at(g.value); }

  /// Sum over nets of |PC-set|: the number of variables (and roughly the
  /// number of gate simulations) the PC-set method generates.
  [[nodiscard]] std::size_t total_net_pc_size() const;
  [[nodiscard]] std::size_t max_net_pc_size() const;
};

/// Compute raw PC-sets (no zero insertion).
[[nodiscard]] PCSets compute_pc_sets(const Netlist& nl, const Levelization& lv);

/// Apply zero insertion for every gate in `nl` and for one PRINT pseudo-gate
/// whose inputs are `monitored`. Mutates `pc.net_pc`; returns the nets that
/// received a zero.
std::vector<NetId> insert_zeros(const Netlist& nl, const Levelization& lv,
                                std::span<const NetId> monitored, PCSets& pc);

}  // namespace udsim
