// Net/gate alignments for shift elimination (paper §4, Figs. 10-18).
//
// Bit p of a net's bit-field represents time p + alignment(net); a gate's
// alignment is the time of bit 0 of its raw (unshifted) result. With all
// alignments zero and gate alignments equal to the gate delay, this
// degenerates to the unoptimized parallel technique (one left shift per
// gate). The two optimization algorithms assign alignments so that most
// shifts vanish:
//  - path tracing (paper Fig. 17): traces upward from primary outputs,
//    never expands the bit-field, generates only right shifts;
//  - cycle breaking: removes a minimal set of edges from the undirected
//    network graph, then propagates alignments over the remaining forest;
//    may expand bit-fields and require left shifts.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/levelize.h"
#include "netlist/netlist.h"

namespace udsim {

struct AlignmentPlan {
  std::vector<int> net_align;   ///< per net: time of bit 0 of its field
  std::vector<int> gate_align;  ///< per gate: time of bit 0 of its raw result

  /// Shift applied to input net `in` when feeding gate `g`:
  ///   shifted bit p = input bit (p + s);  s > 0 is a right shift,
  ///   s < 0 a left shift (needs the previous vector's value at the bottom).
  [[nodiscard]] int input_shift(const Netlist& nl, GateId g, NetId in) const {
    return gate_align[g.value] - nl.delay(g) - net_align[in.value];
  }

  /// Shift applied to the raw result of gate `g` when storing to its output:
  ///   net bit q = result bit (q + s); s < 0 is a left shift (the
  ///   unoptimized technique's post-gate shift is s = -delay).
  [[nodiscard]] int output_shift(const Netlist& nl, GateId g) const {
    return net_align[nl.gate(g).output.value] - gate_align[g.value];
  }

  /// Field width in bits: level - alignment + 1 (paper's formula).
  [[nodiscard]] int width_bits(const Levelization& lv, NetId n) const {
    return lv.net_level[n.value] - net_align[n.value] + 1;
  }
};

/// The identity plan of the unoptimized parallel technique: every net at
/// alignment 0, every gate at alignment delay (so each gate retains one
/// left shift at its output).
[[nodiscard]] AlignmentPlan align_unoptimized(const Netlist& nl, const Levelization& lv);

/// Path-tracing shift elimination (paper Fig. 17), extended to start a new
/// trace at every net left unvisited by the primary-output traces so that
/// dead regions still receive legal alignments.
[[nodiscard]] AlignmentPlan align_path_tracing(const Netlist& nl, const Levelization& lv);

/// Cycle-breaking shift elimination: DFS on the undirected network graph,
/// back edges removed, alignments propagated over the spanning forest, then
/// each component shifted down by a constant so that every alignment is
/// legal (paper: "a second pass is required to (possibly) reduce all
/// alignments by a constant amount").
[[nodiscard]] AlignmentPlan align_cycle_breaking(const Netlist& nl, const Levelization& lv);

/// Throws NetlistError if the plan violates a legality condition:
///  1. alignment(net) <= minlevel(net) for every net;
///  2. left input shifts only from nets with alignment < minlevel;
///  3. left output shifts only onto nets with gate_align <= minlevel(net).
void check_alignment_plan(const Netlist& nl, const Levelization& lv,
                          const AlignmentPlan& plan);

struct AlignmentStats {
  std::size_t retained_shift_sites = 0;  ///< distinct (gate,input) + output sites, shift != 0
  std::size_t left_shift_sites = 0;
  int max_width_bits = 0;
  double avg_width_bits = 0.0;
  int max_width_words = 0;
  long long total_width_words = 0;
};

[[nodiscard]] AlignmentStats alignment_stats(const Netlist& nl, const Levelization& lv,
                                             const AlignmentPlan& plan, int word_bits);

}  // namespace udsim
