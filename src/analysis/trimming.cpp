#include "analysis/trimming.h"

#include <algorithm>

namespace udsim {

namespace {

[[nodiscard]] std::size_t words_for(int width_bits, int word_bits) {
  return static_cast<std::size_t>((width_bits + word_bits - 1) / word_bits);
}

}  // namespace

std::vector<int> field_widths(const Netlist& nl, const Levelization& lv,
                              const AlignmentPlan& plan, bool uniform) {
  std::vector<int> widths(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    widths[n] = uniform ? lv.depth + 1 - plan.net_align[n]
                        : plan.width_bits(lv, NetId{n});
    widths[n] = std::max(widths[n], 1);
  }
  return widths;
}

TrimPlan compute_trim_plan(const Netlist& nl, const Levelization& lv,
                           const PCSets& pc, const AlignmentPlan& plan,
                           std::span<const int> widths, int word_bits) {
  TrimPlan tp;
  tp.word_bits = word_bits;
  tp.net_words.resize(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const int align = plan.net_align[n];
    const int minlevel = lv.net_minlevel[n];
    const std::size_t words = words_for(widths[n], word_bits);
    auto& cls = tp.net_words[n];
    cls.resize(words, WordClass::Computed);
    if (nl.net(NetId{n}).is_primary_input) {
      // PI fields are written in full by the input-load phase; trimming does
      // not apply.
      tp.computed_words += words;
      continue;
    }
    const DynBitset& set = pc.net_pc[n];
    for (std::size_t w = 0; w < words; ++w) {
      const int lo_time = align + static_cast<int>(w) * word_bits;
      const int hi_time = lo_time + word_bits - 1;
      if (hi_time < minlevel) {
        cls[w] = WordClass::StableLow;
        ++tp.stable_words;
        continue;
      }
      bool has_rep = false;
      for (int t = std::max(lo_time, 0); t <= hi_time; ++t) {
        if (set.test(static_cast<std::size_t>(t))) {
          has_rep = true;
          break;
        }
      }
      if (has_rep) {
        ++tp.computed_words;
      } else {
        cls[w] = WordClass::Gap;
        ++tp.gap_words;
      }
    }
    // Word 0 must never be a gap (the broadcast source is word w-1); the
    // minlevel representative guarantees this for legal alignments.
    if (!cls.empty() && cls[0] == WordClass::Gap) {
      cls[0] = WordClass::Computed;
      --tp.gap_words;
      ++tp.computed_words;
    }
  }
  return tp;
}

TrimPlan full_trim_plan(const Netlist& nl, std::span<const int> widths, int word_bits) {
  TrimPlan tp;
  tp.word_bits = word_bits;
  tp.net_words.resize(nl.net_count());
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const std::size_t words = words_for(widths[n], word_bits);
    tp.net_words[n].assign(words, WordClass::Computed);
    tp.computed_words += words;
  }
  return tp;
}

}  // namespace udsim
