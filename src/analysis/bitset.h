// Small dynamic bitset tuned for PC-set manipulation: unions, "union of a
// shifted set" (the +delay increment of the paper's PC-set algorithm), and
// ordered iteration.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace udsim {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    if (i >= bits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  [[nodiscard]] bool any() const noexcept {
    for (std::uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// this |= other (sizes must match).
  void or_with(const DynBitset& other) {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// this |= (other << shift): the PC-set increment. Bits shifted beyond
  /// size() would be a caller bug (sets are sized depth+1); asserted.
  void or_with_shifted(const DynBitset& other, std::size_t shift) {
    assert(bits_ == other.bits_);
    if (shift == 0) {
      or_with(other);
      return;
    }
    const std::size_t word_shift = shift >> 6;
    const std::size_t bit_shift = shift & 63;
    for (std::size_t i = words_.size(); i-- > 0;) {
      if (i < word_shift) break;
      std::uint64_t v = other.words_[i - word_shift] << bit_shift;
      if (bit_shift != 0 && i > word_shift) {
        v |= other.words_[i - word_shift - 1] >> (64 - bit_shift);
      }
      words_[i] |= v;
    }
#ifndef NDEBUG
    // No information may be lost off the top.
    for (std::size_t b = bits_ > shift ? bits_ - shift : 0; b < other.bits_; ++b) {
      assert(!other.test(b) && "PC-set increment overflowed the set size");
    }
#endif
  }

  /// Smallest set bit, or -1 when empty.
  [[nodiscard]] int min_bit() const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i]) return static_cast<int>(i * 64 + static_cast<std::size_t>(std::countr_zero(words_[i])));
    }
    return -1;
  }

  /// Largest set bit, or -1 when empty.
  [[nodiscard]] int max_bit() const noexcept {
    for (std::size_t i = words_.size(); i-- > 0;) {
      if (words_[i]) {
        return static_cast<int>(i * 64 + 63 - static_cast<std::size_t>(std::countl_zero(words_[i])));
      }
    }
    return -1;
  }

  /// Largest set bit strictly below `limit`, or -1. This is the paper's
  /// operand-selection rule ("the largest element that is strictly smaller
  /// than the PC-element for which code is being generated").
  [[nodiscard]] int max_bit_below(std::size_t limit) const noexcept {
    if (limit == 0 || words_.empty()) return -1;
    std::size_t i = (limit - 1) >> 6;
    if (i >= words_.size()) i = words_.size() - 1;
    std::uint64_t w = words_[i];
    const std::size_t top = (limit - 1) & 63;
    if (i == (limit - 1) >> 6 && top != 63) {
      w &= (std::uint64_t{1} << (top + 1)) - 1;
    }
    while (true) {
      if (w) {
        return static_cast<int>(i * 64 + 63 - static_cast<std::size_t>(std::countl_zero(w)));
      }
      if (i == 0) return -1;
      w = words_[--i];
    }
  }

  /// Ordered list of set bits.
  [[nodiscard]] std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(count());
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w) {
        const int b = std::countr_zero(w);
        out.push_back(static_cast<int>(i * 64) + b);
        w &= w - 1;
      }
    }
    return out;
  }

  friend bool operator==(const DynBitset&, const DynBitset&) = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace udsim
