// The undirected network graph of paper §4 (Figs. 13-16).
//
// One vertex per gate and per net; one undirected edge per gate *pin*
// (input pins and the output pin). Cycles in this graph are what force a
// simulation to retain shift operations; a cycle prevents the alignment
// conditions 1-4 from being enforced iff its weight (paper's ±1 rule,
// generalized to ±delay) is non-zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct UndirectedNetworkGraph {
  struct Edge {
    std::uint32_t gate = 0;
    std::uint32_t net = 0;
    bool is_input = false;  ///< true: net is an input of gate; false: output
  };

  std::size_t num_nets = 0;
  std::size_t num_gates = 0;
  std::vector<Edge> edges;
  /// adjacency[v] lists edge indices; vertices 0..num_nets-1 are nets,
  /// num_nets..num_nets+num_gates-1 are gates.
  std::vector<std::vector<std::uint32_t>> adjacency;

  [[nodiscard]] std::size_t vertex_count() const noexcept { return num_nets + num_gates; }
  [[nodiscard]] std::uint32_t net_vertex(NetId n) const noexcept { return n.value; }
  [[nodiscard]] std::uint32_t gate_vertex(GateId g) const noexcept {
    return static_cast<std::uint32_t>(num_nets) + g.value;
  }
  [[nodiscard]] bool is_net_vertex(std::uint32_t v) const noexcept { return v < num_nets; }

  /// The other endpoint of edge e relative to v.
  [[nodiscard]] std::uint32_t other(std::uint32_t e, std::uint32_t v) const noexcept {
    const Edge& ed = edges[e];
    const std::uint32_t gv = static_cast<std::uint32_t>(num_nets) + ed.gate;
    return v == gv ? ed.net : gv;
  }
};

[[nodiscard]] UndirectedNetworkGraph build_network_graph(const Netlist& nl);

/// Number of fundamental cycles: F = E - V + C (paper: edges that must be
/// removed per connected component is E - V + 1).
[[nodiscard]] std::size_t fundamental_cycle_count(const UndirectedNetworkGraph& g);

/// Weight of a simple cycle given as a closed edge sequence
/// (edges[i] connects vertex i to vertex i+1, last edge closes the loop).
/// Implements the paper's rule: traversing N→G→M adds +delay(G) when N is an
/// input and M the output, -delay(G) in the opposite direction, 0 otherwise.
/// The sign depends on traversal direction; the magnitude does not.
[[nodiscard]] int cycle_weight(const Netlist& nl, const UndirectedNetworkGraph& g,
                               std::span<const std::uint32_t> edge_cycle);

}  // namespace udsim
