#include "analysis/timing.h"

#include <algorithm>
#include <ostream>

namespace udsim {

namespace {

/// Walk back from `sink` choosing, at each net, a driver gate and input pin
/// that witness the net's level (or minlevel).
TimingPath trace(const Netlist& nl, const Levelization& lv, NetId sink, bool longest) {
  TimingPath path;
  NetId cur = sink;
  path.nets.push_back(cur);
  while (true) {
    const Net& net = nl.net(cur);
    if (net.drivers.empty()) break;  // primary input / constant source
    const int want = longest ? lv.net_level[cur.value] : lv.net_minlevel[cur.value];
    GateId chosen{};
    NetId via{};
    for (GateId g : net.drivers) {
      const int gl = longest ? lv.gate_level[g.value] : lv.gate_minlevel[g.value];
      if (gl != want) continue;
      const Gate& gate = nl.gate(g);
      if (gate.inputs.empty()) break;  // constant generator: path ends here
      const int d = nl.delay(g);
      for (NetId in : gate.inputs) {
        const int il = longest ? lv.net_level[in.value] : lv.net_minlevel[in.value];
        if (il + d == want) {
          // Deterministic tie-break: lowest gate id wins.
          if (!chosen.valid() || g.value < chosen.value) {
            chosen = g;
            via = in;
          }
          break;  // first matching pin of this gate
        }
      }
    }
    if (!chosen.valid()) break;  // constant source
    path.gates.push_back(chosen);
    path.delay += nl.delay(chosen);
    cur = via;
    path.nets.push_back(cur);
  }
  std::reverse(path.nets.begin(), path.nets.end());
  std::reverse(path.gates.begin(), path.gates.end());
  return path;
}

}  // namespace

TimingPath critical_path(const Netlist& nl, const Levelization& lv, NetId sink) {
  return trace(nl, lv, sink, /*longest=*/true);
}

TimingPath shortest_path(const Netlist& nl, const Levelization& lv, NetId sink) {
  return trace(nl, lv, sink, /*longest=*/false);
}

std::vector<OutputTiming> output_timing(const Netlist& nl, const Levelization& lv) {
  std::vector<OutputTiming> out;
  out.reserve(nl.primary_outputs().size());
  for (NetId po : nl.primary_outputs()) {
    out.push_back({po, lv.net_minlevel[po.value], lv.net_level[po.value]});
  }
  return out;
}

void print_timing_report(std::ostream& os, const Netlist& nl, const Levelization& lv) {
  os << "timing report for '" << nl.name() << "': depth " << lv.depth
     << " (levels " << lv.depth + 1 << ")\n";
  // Global critical path: the deepest primary output (deepest net overall is
  // always observable because sinks are outputs in well-formed circuits).
  NetId worst{};
  for (NetId po : nl.primary_outputs()) {
    if (!worst.valid() || lv.net_level[po.value] > lv.net_level[worst.value]) {
      worst = po;
    }
  }
  if (worst.valid()) {
    const TimingPath cp = critical_path(nl, lv, worst);
    os << "critical path to " << nl.net(worst).name << " (delay " << cp.delay
       << "):\n";
    for (std::size_t i = 0; i < cp.gates.size(); ++i) {
      os << "  " << nl.net(cp.nets[i]).name << " -> "
         << gate_type_name(nl.gate(cp.gates[i]).type) << "(d="
         << nl.delay(cp.gates[i]) << ") -> " << nl.net(cp.nets[i + 1]).name
         << "\n";
    }
  }
  os << "output arrival windows [earliest, latest]:\n";
  for (const OutputTiming& ot : output_timing(nl, lv)) {
    os << "  " << nl.net(ot.output).name << " [" << ot.earliest << ", "
       << ot.latest << "]\n";
  }
}

}  // namespace udsim
