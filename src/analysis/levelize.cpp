#include "analysis/levelize.h"

#include <algorithm>
#include <limits>

namespace udsim {

namespace {

// Shared worklist skeleton for levelize / minlevel / PC-sets: the paper's
// counting algorithm (§2 steps 1-6). Visits every net and gate exactly once,
// nets only after all their drivers, gates only after all their input nets.
// Calls net_fn(net) / gate_fn(gate) in that dependency order.
template <class NetFn, class GateFn>
void run_worklist(const Netlist& nl, NetFn&& net_fn, GateFn&& gate_fn) {
  const std::size_t num_nets = nl.net_count();
  const std::size_t num_gates = nl.gate_count();
  std::vector<std::uint32_t> net_count(num_nets), gate_count(num_gates);
  // Work items: net ids in [0, num_nets), gate ids offset by num_nets.
  std::vector<std::uint32_t> queue;
  queue.reserve(num_nets + num_gates);

  for (std::uint32_t i = 0; i < num_nets; ++i) {
    net_count[i] = static_cast<std::uint32_t>(nl.net(NetId{i}).drivers.size());
    if (net_count[i] == 0) queue.push_back(i);
  }
  for (std::uint32_t i = 0; i < num_gates; ++i) {
    gate_count[i] = static_cast<std::uint32_t>(nl.gate(GateId{i}).inputs.size());
    if (gate_count[i] == 0) queue.push_back(static_cast<std::uint32_t>(num_nets) + i);
  }

  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::uint32_t item = queue.back();
    queue.pop_back();
    ++processed;
    if (item < num_nets) {
      const NetId n{item};
      net_fn(n);
      // Reduce the count of every fanout gate once per pin (paper: "if n
      // appears twice in the input list of a gate then the count of g is
      // reduced by 2").
      for (GateId g : nl.net(n).fanout) {
        if (--gate_count[g.value] == 0) {
          queue.push_back(static_cast<std::uint32_t>(num_nets) + g.value);
        }
      }
    } else {
      const GateId g{item - static_cast<std::uint32_t>(num_nets)};
      gate_fn(g);
      const NetId out = nl.gate(g).output;
      if (--net_count[out.value] == 0) queue.push_back(out.value);
    }
  }
  if (processed != num_nets + num_gates) {
    throw NetlistError(
        "levelization worklist stalled: netlist '" + nl.name() +
        "' has a cycle: " + nl.describe_cycle());
  }
}

}  // namespace

Levelization levelize(const Netlist& nl) {
  Levelization lv;
  lv.net_level.assign(nl.net_count(), 0);
  lv.net_minlevel.assign(nl.net_count(), 0);
  lv.gate_level.assign(nl.gate_count(), 0);
  lv.gate_minlevel.assign(nl.gate_count(), 0);

  constexpr int kNone = std::numeric_limits<int>::min();
  run_worklist(
      nl,
      [&](NetId n) {
        // Level of a wired net = max of driver levels; minlevel = min.
        int lo = std::numeric_limits<int>::max();
        int hi = kNone;
        for (GateId g : nl.net(n).drivers) {
          if (lv.gate_level[g.value] == kNone) continue;  // constant source
          hi = std::max(hi, lv.gate_level[g.value]);
          lo = std::min(lo, lv.gate_minlevel[g.value]);
        }
        if (hi == kNone) {
          // Primary input, constant signal, or dangling source: level 0.
          lo = hi = 0;
        }
        lv.net_level[n.value] = hi;
        lv.net_minlevel[n.value] = lo;
        lv.depth = std::max(lv.depth, hi);
      },
      [&](GateId g) {
        const Gate& gate = nl.gate(g);
        if (gate.inputs.empty()) {
          // Constant generators contribute level 0 to their output net.
          lv.gate_level[g.value] = kNone;
          lv.gate_minlevel[g.value] = kNone;
          return;
        }
        int lo = std::numeric_limits<int>::max();
        int hi = 0;
        for (NetId in : gate.inputs) {
          hi = std::max(hi, lv.net_level[in.value]);
          lo = std::min(lo, lv.net_minlevel[in.value]);
        }
        const int d = nl.delay(g);
        lv.gate_level[g.value] = hi + d;
        lv.gate_minlevel[g.value] = lo + d;
      });

  // Constant gates end up marked kNone; normalize to 0 for consumers.
  for (std::size_t i = 0; i < nl.gate_count(); ++i) {
    if (lv.gate_level[i] == kNone) {
      lv.gate_level[i] = 0;
      lv.gate_minlevel[i] = 0;
    }
  }
  return lv;
}

std::vector<GateId> topological_gate_order(const Netlist& nl) {
  std::vector<GateId> order;
  order.reserve(nl.gate_count());
  run_worklist(nl, [](NetId) {}, [&](GateId g) { order.push_back(g); });
  // The worklist is LIFO, so the order it yields is already topological but
  // not level-sorted; sort stably by level for readable generated code.
  const Levelization lv = levelize(nl);
  std::stable_sort(order.begin(), order.end(), [&](GateId a, GateId b) {
    return lv.gate_level[a.value] < lv.gate_level[b.value];
  });
  return order;
}

}  // namespace udsim
