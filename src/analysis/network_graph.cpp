#include "analysis/network_graph.h"

namespace udsim {

UndirectedNetworkGraph build_network_graph(const Netlist& nl) {
  UndirectedNetworkGraph g;
  g.num_nets = nl.net_count();
  g.num_gates = nl.gate_count();
  g.adjacency.resize(g.vertex_count());
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& gate = nl.gate(GateId{gi});
    for (NetId in : gate.inputs) {
      const auto e = static_cast<std::uint32_t>(g.edges.size());
      g.edges.push_back({gi, in.value, true});
      g.adjacency[g.net_vertex(in)].push_back(e);
      g.adjacency[g.gate_vertex(GateId{gi})].push_back(e);
    }
    const auto e = static_cast<std::uint32_t>(g.edges.size());
    g.edges.push_back({gi, gate.output.value, false});
    g.adjacency[g.net_vertex(gate.output)].push_back(e);
    g.adjacency[g.gate_vertex(GateId{gi})].push_back(e);
  }
  return g;
}

std::size_t fundamental_cycle_count(const UndirectedNetworkGraph& g) {
  // F = E - V + C.
  std::vector<bool> seen(g.vertex_count(), false);
  std::size_t components = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t v0 = 0; v0 < g.vertex_count(); ++v0) {
    if (seen[v0]) continue;
    ++components;
    stack.push_back(v0);
    seen[v0] = true;
    while (!stack.empty()) {
      const std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t e : g.adjacency[v]) {
        const std::uint32_t w = g.other(e, v);
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return g.edges.size() + components - g.vertex_count();
}

int cycle_weight(const Netlist& nl, const UndirectedNetworkGraph& g,
                 std::span<const std::uint32_t> edge_cycle) {
  // Walk the closed edge sequence, tracking the current vertex. Whenever two
  // consecutive edges meet at a gate vertex, score the N-G-M step.
  if (edge_cycle.size() < 2) return 0;
  // Determine the starting vertex: the endpoint of edge 0 NOT shared with
  // edge 1 (so the walk proceeds edge0 -> shared vertex -> edge1 ...).
  const auto endpoints = [&](std::uint32_t e) {
    const auto& ed = g.edges[e];
    return std::pair<std::uint32_t, std::uint32_t>{
        g.net_vertex(NetId{ed.net}), g.gate_vertex(GateId{ed.gate})};
  };
  auto [a0, b0] = endpoints(edge_cycle[0]);
  auto [a1, b1] = endpoints(edge_cycle[1]);
  std::uint32_t cur = (a0 == a1 || a0 == b1) ? b0 : a0;

  int weight = 0;
  for (std::size_t i = 0; i < edge_cycle.size(); ++i) {
    const std::uint32_t e_in = edge_cycle[i];
    const std::uint32_t mid = g.other(e_in, cur);
    const std::uint32_t e_out = edge_cycle[(i + 1) % edge_cycle.size()];
    if (!g.is_net_vertex(mid)) {
      // N -(e_in)- G -(e_out)- M.
      const bool in_is_input = g.edges[e_in].is_input;
      const bool out_is_input = g.edges[e_out].is_input;
      const int d = nl.delay(GateId{g.edges[e_in].gate});
      if (in_is_input && !out_is_input) {
        weight += d;  // entered on an input, left on the output
      } else if (!in_is_input && out_is_input) {
        weight -= d;
      }
    }
    cur = mid;
  }
  return weight;
}

}  // namespace udsim
