// Static timing queries on the levelized netlist: critical paths, per-output
// arrival windows, and slack-style reporting. The level/minlevel machinery
// already computes longest/shortest path delays (paper §1-2); this module
// adds path *reconstruction* — which gates form the critical path — the way
// a designer would consume it.
#pragma once

#include <iosfwd>
#include <vector>

#include "analysis/levelize.h"
#include "netlist/netlist.h"

namespace udsim {

struct TimingPath {
  std::vector<NetId> nets;    ///< input ... output, in propagation order
  std::vector<GateId> gates;  ///< gates between consecutive nets
  int delay = 0;              ///< sum of gate delays along the path
};

struct OutputTiming {
  NetId output;
  int earliest = 0;  ///< minlevel: first time the output may change
  int latest = 0;    ///< level: time by which it has settled
};

/// Longest-delay (critical) path ending at `sink`; ties broken by lowest
/// gate id so the result is deterministic.
[[nodiscard]] TimingPath critical_path(const Netlist& nl, const Levelization& lv,
                                       NetId sink);

/// Shortest-delay path ending at `sink` (the minlevel witness).
[[nodiscard]] TimingPath shortest_path(const Netlist& nl, const Levelization& lv,
                                       NetId sink);

/// Arrival window of every primary output.
[[nodiscard]] std::vector<OutputTiming> output_timing(const Netlist& nl,
                                                      const Levelization& lv);

/// Human-readable report: circuit depth, the global critical path gate by
/// gate, and the per-output windows.
void print_timing_report(std::ostream& os, const Netlist& nl, const Levelization& lv);

}  // namespace udsim
