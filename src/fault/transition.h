// Transition-fault (slow-to-rise / slow-to-fall) simulation.
//
// The standard launch-and-capture approximation over consecutive at-speed
// pattern pairs: pattern pair (k-1, k) detects a slow-to-rise fault on net
// n iff (launch) n's settled value rises from pattern k-1 to k, and
// (capture) the corresponding stuck-at-0 fault on n is observable at a
// primary output under pattern k. Both halves run bit-parallel on the
// compiled substrate: launch bits come from the good machine's packed
// finals, capture bits from the forced-program diff lanes.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_sim.h"

namespace udsim {

struct TransitionFault {
  NetId net;
  bool rising = true;  ///< slow-to-rise (vs slow-to-fall)
  friend bool operator==(const TransitionFault&, const TransitionFault&) = default;
};

/// Two transition faults per non-constant net.
[[nodiscard]] std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl);

struct TransitionFaultResult {
  std::vector<bool> detected;
  std::size_t pattern_pairs = 0;

  [[nodiscard]] std::size_t detected_count() const {
    std::size_t n = 0;
    for (bool d : detected) n += d;
    return n;
  }
  [[nodiscard]] double coverage() const {
    return detected.empty() ? 0.0
                            : static_cast<double>(detected_count()) /
                                  static_cast<double>(detected.size());
  }
};

/// Bit-parallel transition-fault simulation over the consecutive pairs of
/// `patterns` random patterns (the same seeded stream the stuck-at engines
/// use).
[[nodiscard]] TransitionFaultResult run_transition_fault_sim(
    const Netlist& nl, std::span<const TransitionFault> faults,
    std::size_t patterns, std::uint64_t seed);

/// Scalar reference implementation (per-pair LccSim runs) for testing.
[[nodiscard]] TransitionFaultResult run_transition_fault_sim_serial(
    const Netlist& nl, std::span<const TransitionFault> faults,
    std::size_t patterns, std::uint64_t seed);

}  // namespace udsim
