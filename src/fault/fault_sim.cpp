#include "fault/fault_sim.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/kernel_runner.h"
#include "fault/forcing.h"
#include "harness/vectors.h"
#include "netlist/transform.h"

namespace udsim {

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> out;
  out.reserve(nl.net_count() * 2);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(NetId{n});
    bool constant = false;
    for (GateId g : net.drivers) {
      constant |= is_constant(nl.gate(g).type);
    }
    if (constant) continue;
    out.push_back({NetId{n}, 0});
    out.push_back({NetId{n}, 1});
  }
  return out;
}

namespace detail {

std::vector<Bit> fault_patterns(std::size_t patterns, std::size_t inputs,
                                std::uint64_t seed) {
  RandomVectorSource src(inputs, seed);
  std::vector<Bit> m(patterns * inputs);
  for (std::size_t k = 0; k < patterns; ++k) {
    src.next(std::span<Bit>(m.data() + k * inputs, inputs));
  }
  return m;
}

}  // namespace detail

using detail::build_forced;
using detail::Forcing;

template <class Word>
FaultSimulator<Word>::FaultSimulator(const Netlist& nl)
    : nl_(nl), good_(compile_lcc(nl, /*packed=*/true,
                                 static_cast<int>(sizeof(Word) * 8))) {}

template <class Word>
FaultSimResult FaultSimulator<Word>::run_ppsfp(std::span<const Fault> faults,
                                               std::size_t patterns,
                                               std::uint64_t seed) {
  constexpr std::size_t L = sizeof(Word) * 8;
  const std::size_t pis = nl_.primary_inputs().size();
  const std::vector<Bit> m = detail::fault_patterns(patterns, pis, seed);
  const std::size_t batches = (patterns + L - 1) / L;

  // Packed inputs per batch (short final batch repeats its last pattern —
  // duplicates cannot detect anything the original lane does not).
  std::vector<Word> inputs(batches * pis, 0);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t lane = 0; lane < L; ++lane) {
      const std::size_t k = std::min(b * L + lane, patterns - 1);
      for (std::size_t i = 0; i < pis; ++i) {
        inputs[b * pis + i] |= static_cast<Word>(m[k * pis + i] & 1u) << lane;
      }
    }
  }
  // Good-machine primary-output words per batch.
  const auto& pos = nl_.primary_outputs();
  std::vector<Word> good_po(batches * pos.size());
  {
    KernelRunner<Word> runner(good_.program);
    for (std::size_t b = 0; b < batches; ++b) {
      runner.run(std::span<const Word>(inputs.data() + b * pis, pis));
      for (std::size_t o = 0; o < pos.size(); ++o) {
        good_po[b * pos.size() + o] = runner.word(good_.net_var[pos[o].value]);
      }
    }
  }

  FaultSimResult result;
  result.patterns = patterns;
  result.detected.assign(faults.size(), false);
  result.first_detection.assign(faults.size(), FaultSimResult::kUndetected);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const Word stuck = faults[f].stuck_at ? static_cast<Word>(~Word{0}) : Word{0};
    const Program forced =
        build_forced(good_, {{faults[f].net, ~std::uint64_t{0},
                              static_cast<std::uint64_t>(stuck)}});
    KernelRunner<Word> runner(forced);
    for (std::size_t b = 0; b < batches && !result.detected[f]; ++b) {
      runner.run(std::span<const Word>(inputs.data() + b * pis, pis));
      Word diff = 0;
      for (std::size_t o = 0; o < pos.size(); ++o) {
        diff |= runner.word(good_.net_var[pos[o].value]) ^ good_po[b * pos.size() + o];
      }
      if (diff) {
        result.detected[f] = true;  // fault dropped
        const auto lane = static_cast<std::size_t>(std::countr_zero(diff));
        result.first_detection[f] = std::min(b * L + lane, patterns - 1);
      }
    }
  }
  return result;
}

template <class Word>
FaultSimResult FaultSimulator<Word>::run_pfsp(std::span<const Fault> faults,
                                              std::size_t patterns,
                                              std::uint64_t seed) {
  constexpr std::size_t L = sizeof(Word) * 8;
  const std::size_t pis = nl_.primary_inputs().size();
  const std::vector<Bit> m = detail::fault_patterns(patterns, pis, seed);
  const auto& pos = nl_.primary_outputs();

  FaultSimResult result;
  result.patterns = patterns;
  result.detected.assign(faults.size(), false);
  result.first_detection.assign(faults.size(), FaultSimResult::kUndetected);

  std::vector<Word> in(pis);
  for (std::size_t base = 0; base < faults.size(); base += L - 1) {
    const std::size_t batch = std::min(L - 1, faults.size() - base);
    std::vector<Forcing> forcings;
    forcings.reserve(batch);
    for (std::size_t j = 0; j < batch; ++j) {
      // Lane 0 is the good machine; fault j rides lane j+1.
      const std::uint64_t mask = std::uint64_t{1} << (j + 1);
      forcings.push_back({faults[base + j].net,
                          mask, faults[base + j].stuck_at ? mask : 0});
    }
    const Program forced = build_forced(good_, std::move(forcings));
    KernelRunner<Word> runner(forced);
    std::size_t remaining = batch;
    for (std::size_t k = 0; k < patterns && remaining; ++k) {
      for (std::size_t i = 0; i < pis; ++i) {
        // Same pattern in every lane.
        in[i] = static_cast<Word>(Word{0} - static_cast<Word>(m[k * pis + i] & 1u));
      }
      runner.run(in);
      Word diff = 0;
      for (std::size_t o = 0; o < pos.size(); ++o) {
        const Word w = runner.word(good_.net_var[pos[o].value]);
        const Word good_lane = static_cast<Word>(Word{0} - (w & Word{1}));
        diff |= w ^ good_lane;
      }
      for (std::size_t j = 0; j < batch; ++j) {
        if (!result.detected[base + j] && ((diff >> (j + 1)) & Word{1})) {
          result.detected[base + j] = true;
          result.first_detection[base + j] = k;
          --remaining;
        }
      }
    }
  }
  return result;
}

FaultSimResult run_serial_fault_sim(const Netlist& nl, std::span<const Fault> faults,
                                    std::size_t patterns, std::uint64_t seed) {
  const std::size_t pis = nl.primary_inputs().size();
  const std::vector<Bit> m = detail::fault_patterns(patterns, pis, seed);
  const auto& pos = nl.primary_outputs();

  // Good responses.
  LccSim<> good(nl);
  std::vector<Bit> good_po(patterns * pos.size());
  for (std::size_t k = 0; k < patterns; ++k) {
    good.step(std::span<const Bit>(m.data() + k * pis, pis));
    for (std::size_t o = 0; o < pos.size(); ++o) {
      good_po[k * pos.size() + o] = good.value(pos[o]);
    }
  }

  FaultSimResult result;
  result.patterns = patterns;
  result.detected.assign(faults.size(), false);
  result.first_detection.assign(faults.size(), FaultSimResult::kUndetected);
  std::vector<Bit> v(pis);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const Fault& fault = faults[f];
    if (nl.net(fault.net).is_primary_input) {
      // A stuck input is the same circuit with that pattern bit forced.
      std::size_t pi_index = 0;
      for (; pi_index < pis; ++pi_index) {
        if (nl.primary_inputs()[pi_index] == fault.net) break;
      }
      LccSim<> sim(nl);
      for (std::size_t k = 0; k < patterns && !result.detected[f]; ++k) {
        std::copy_n(m.data() + k * pis, pis, v.data());
        v[pi_index] = fault.stuck_at;
        sim.step(v);
        for (std::size_t o = 0; o < pos.size(); ++o) {
          if (sim.value(pos[o]) != good_po[k * pos.size() + o]) {
            result.detected[f] = true;
            result.first_detection[f] = k;
            break;
          }
        }
      }
      continue;
    }
    const Netlist faulty = inject_stuck_at(nl, fault.net, fault.stuck_at);
    LccSim<> sim(faulty);
    for (std::size_t k = 0; k < patterns && !result.detected[f]; ++k) {
      sim.step(std::span<const Bit>(m.data() + k * pis, pis));
      for (std::size_t o = 0; o < pos.size(); ++o) {
        if (sim.value(faulty.primary_outputs()[o]) != good_po[k * pos.size() + o]) {
          result.detected[f] = true;
          result.first_detection[f] = k;
          break;
        }
      }
    }
  }
  return result;
}

std::vector<std::size_t> compact_patterns(const FaultSimResult& result) {
  std::vector<std::size_t> kept(result.first_detection.begin(),
                                result.first_detection.end());
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (!kept.empty() && kept.back() == FaultSimResult::kUndetected) {
    kept.pop_back();
  }
  return kept;
}

template class FaultSimulator<std::uint32_t>;
template class FaultSimulator<std::uint64_t>;

}  // namespace udsim
