// Internal: forcing-op splicing shared by the stuck-at and transition fault
// simulators. Forces net values per word lane by inserting masked copies
// right after each net's defining op in a compiled LCC program.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "lcc/lcc.h"

namespace udsim::detail {

struct Forcing {
  NetId net;
  std::uint64_t mask;
  std::uint64_t value;
};

/// Splice per-net forcing ops (var = (var & ~mask) | (value & mask)) into a
/// copy of the good program, right after each net's defining op.
inline Program build_forced(const LccCompiled& good, std::vector<Forcing> forcings) {
  std::sort(forcings.begin(), forcings.end(), [&](const Forcing& a, const Forcing& b) {
    return good.def_end[a.net.value] < good.def_end[b.net.value];
  });
  Program p;
  p.word_bits = good.program.word_bits;
  p.input_words = good.program.input_words;
  p.arena_init = good.program.arena_init;
  p.arena_words = good.program.arena_words;
  p.ops.reserve(good.program.ops.size() + forcings.size());
  std::size_t next = 0;
  const auto splice = [&](std::size_t op_end) {
    while (next < forcings.size() &&
           good.def_end[forcings[next].net.value] == op_end) {
      if (op_end == 0) {
        throw std::logic_error("cannot force a constant-defined net");
      }
      const std::uint32_t value_word = p.arena_words++;
      const std::uint32_t mask_word = p.arena_words++;
      p.arena_init.push_back({value_word, forcings[next].value});
      p.arena_init.push_back({mask_word, forcings[next].mask});
      p.ops.push_back({OpCode::MaskedCopy, 0,
                       good.net_var[forcings[next].net.value], value_word,
                       mask_word});
      ++next;
    }
  };
  for (std::size_t i = 0; i < good.program.ops.size(); ++i) {
    p.ops.push_back(good.program.ops[i]);
    splice(i + 1);
  }
  if (next != forcings.size()) {
    throw std::logic_error("forcing splice did not consume all faults");
  }
  return p;
}

/// The shared seeded pattern matrix (row-major, `inputs` per row) so every
/// fault-simulation engine sees the identical workload.
std::vector<Bit> fault_patterns(std::size_t patterns, std::size_t inputs,
                                std::uint64_t seed);

}  // namespace udsim::detail
