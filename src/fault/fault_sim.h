// Single-stuck-at fault simulation on the compiled zero-delay substrate.
//
// This is the application behind the paper's remark that "the PC-set method
// is amenable to bit-parallel simulation of multiple input vectors [12]":
// reference [12] is the classic parallel fault-simulation literature. Two
// bit-parallel organizations are provided, both built by splicing forcing
// ops into the compiled LCC program at each faulty net's definition point:
//
//  - PPSFP (parallel-pattern, single-fault): 32/64 input patterns per word,
//    one faulty machine at a time, fault dropping against the good machine;
//  - PFSP (parallel-fault, single-pattern): lane 0 carries the good machine
//    and each remaining lane one faulty machine, patterns applied one at a
//    time — the 1960s-style organization.
//
// A slow but independent serial reference (inject_stuck_at + recompile per
// fault) backs both in the test suite.
#pragma once

#include <span>
#include <vector>

#include "lcc/lcc.h"
#include "netlist/netlist.h"

namespace udsim {

struct Fault {
  NetId net;
  Bit stuck_at = 0;
  friend bool operator==(const Fault&, const Fault&) = default;
};

/// All 2·nets single-stuck-at faults, skipping constant-driven nets (their
/// stuck faults are untestable or equivalent to the constant itself).
[[nodiscard]] std::vector<Fault> enumerate_faults(const Netlist& nl);

struct FaultSimResult {
  static constexpr std::size_t kUndetected = ~std::size_t{0};

  std::vector<bool> detected;  ///< parallel to the fault list
  /// Index of the first pattern detecting each fault (kUndetected if none).
  /// Filled by run_ppsfp; PFSP fills it per its pattern order too.
  std::vector<std::size_t> first_detection;
  std::size_t patterns = 0;

  [[nodiscard]] std::size_t detected_count() const {
    std::size_t n = 0;
    for (bool d : detected) n += d;
    return n;
  }
  [[nodiscard]] double coverage() const {
    return detected.empty() ? 0.0
                            : static_cast<double>(detected_count()) /
                                  static_cast<double>(detected.size());
  }
};

template <class Word = std::uint32_t>
class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  /// Parallel-pattern single-fault simulation with fault dropping.
  [[nodiscard]] FaultSimResult run_ppsfp(std::span<const Fault> faults,
                                         std::size_t patterns, std::uint64_t seed);

  /// Parallel-fault single-pattern simulation (good machine in lane 0).
  [[nodiscard]] FaultSimResult run_pfsp(std::span<const Fault> faults,
                                        std::size_t patterns, std::uint64_t seed);

 private:
  const Netlist& nl_;
  LccCompiled good_;
};

/// Independent reference: one full recompile + scalar simulation per fault.
[[nodiscard]] FaultSimResult run_serial_fault_sim(const Netlist& nl,
                                                  std::span<const Fault> faults,
                                                  std::size_t patterns,
                                                  std::uint64_t seed);

/// Greedy test-set compaction: the sorted set of patterns that are the
/// first detector of at least one fault (from a run's `first_detection`).
/// Re-simulating only these patterns detects exactly the same fault set.
[[nodiscard]] std::vector<std::size_t> compact_patterns(const FaultSimResult& result);

extern template class FaultSimulator<std::uint32_t>;
extern template class FaultSimulator<std::uint64_t>;

}  // namespace udsim
