#include "fault/transition.h"

#include "core/kernel_runner.h"
#include "fault/forcing.h"
#include "netlist/transform.h"

namespace udsim {

std::vector<TransitionFault> enumerate_transition_faults(const Netlist& nl) {
  std::vector<TransitionFault> out;
  for (const Fault& f : enumerate_faults(nl)) {
    if (f.stuck_at == 0) {
      out.push_back({f.net, true});   // slow-to-rise pairs with stuck-at-0
    } else {
      out.push_back({f.net, false});  // slow-to-fall pairs with stuck-at-1
    }
  }
  return out;
}

TransitionFaultResult run_transition_fault_sim(const Netlist& nl,
                                               std::span<const TransitionFault> faults,
                                               std::size_t patterns,
                                               std::uint64_t seed) {
  using Word = std::uint32_t;
  constexpr std::size_t L = 32;
  const std::size_t pis = nl.primary_inputs().size();
  const std::vector<Bit> m = detail::fault_patterns(patterns, pis, seed);
  const std::size_t batches = (patterns + L - 1) / L;
  const LccCompiled good = compile_lcc(nl, /*packed=*/true);
  const auto& pos = nl.primary_outputs();

  // Packed inputs per batch (lane = pattern index within the batch).
  std::vector<Word> inputs(batches * pis, 0);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t lane = 0; lane < L; ++lane) {
      const std::size_t k = std::min(b * L + lane, patterns - 1);
      for (std::size_t i = 0; i < pis; ++i) {
        inputs[b * pis + i] |= static_cast<Word>(m[k * pis + i] & 1u) << lane;
      }
    }
  }

  // Good run: per-pattern finals of every faulted net and every PO.
  const std::size_t pattern_words = batches;  // bitset words per net
  std::vector<Word> net_final(nl.net_count() * pattern_words, 0);
  std::vector<Word> good_po(batches * pos.size());
  {
    KernelRunner<Word> runner(good.program);
    for (std::size_t b = 0; b < batches; ++b) {
      runner.run(std::span<const Word>(inputs.data() + b * pis, pis));
      for (const TransitionFault& f : faults) {
        net_final[f.net.value * pattern_words + b] =
            runner.word(good.net_var[f.net.value]);
      }
      for (std::size_t o = 0; o < pos.size(); ++o) {
        good_po[b * pos.size() + o] = runner.word(good.net_var[pos[o].value]);
      }
    }
  }
  const auto final_bit = [&](NetId n, std::size_t k) {
    return (net_final[n.value * pattern_words + k / L] >> (k % L)) & 1u;
  };

  TransitionFaultResult result;
  result.pattern_pairs = patterns ? patterns - 1 : 0;
  result.detected.assign(faults.size(), false);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const TransitionFault& fault = faults[f];
    // Capture half: the paired stuck-at fault's observability per pattern.
    const std::uint64_t stuck = fault.rising ? 0 : ~std::uint64_t{0};
    const Program forced =
        detail::build_forced(good, {{fault.net, ~std::uint64_t{0}, stuck}});
    KernelRunner<Word> runner(forced);
    for (std::size_t b = 0; b < batches && !result.detected[f]; ++b) {
      runner.run(std::span<const Word>(inputs.data() + b * pis, pis));
      Word observable = 0;
      for (std::size_t o = 0; o < pos.size(); ++o) {
        observable |=
            runner.word(good.net_var[pos[o].value]) ^ good_po[b * pos.size() + o];
      }
      if (!observable) continue;
      // Launch half: the net must make the right transition into pattern k.
      for (std::size_t lane = 0; lane < L; ++lane) {
        const std::size_t k = b * L + lane;
        if (k == 0 || k >= patterns) continue;
        if (!((observable >> lane) & 1u)) continue;
        const unsigned prev = final_bit(fault.net, k - 1);
        const unsigned cur = final_bit(fault.net, k);
        if (fault.rising ? (prev == 0 && cur == 1) : (prev == 1 && cur == 0)) {
          result.detected[f] = true;
          break;
        }
      }
    }
  }
  return result;
}

TransitionFaultResult run_transition_fault_sim_serial(
    const Netlist& nl, std::span<const TransitionFault> faults,
    std::size_t patterns, std::uint64_t seed) {
  const std::size_t pis = nl.primary_inputs().size();
  const std::vector<Bit> m = detail::fault_patterns(patterns, pis, seed);
  const auto& pos = nl.primary_outputs();

  // Good finals of every net per pattern.
  LccSim<> good(nl);
  std::vector<Bit> finals(nl.net_count() * patterns);
  std::vector<Bit> good_po(patterns * pos.size());
  for (std::size_t k = 0; k < patterns; ++k) {
    good.step(std::span<const Bit>(m.data() + k * pis, pis));
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      finals[n * patterns + k] = good.value(NetId{n});
    }
    for (std::size_t o = 0; o < pos.size(); ++o) {
      good_po[k * pos.size() + o] = good.value(pos[o]);
    }
  }

  TransitionFaultResult result;
  result.pattern_pairs = patterns ? patterns - 1 : 0;
  result.detected.assign(faults.size(), false);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    const TransitionFault& fault = faults[f];
    if (nl.net(fault.net).is_primary_input) {
      // Observability of the paired stuck-at via pattern forcing.
      std::size_t pi_index = 0;
      for (; pi_index < pis; ++pi_index) {
        if (nl.primary_inputs()[pi_index] == fault.net) break;
      }
      LccSim<> sim(nl);
      std::vector<Bit> v(pis);
      for (std::size_t k = 1; k < patterns && !result.detected[f]; ++k) {
        const Bit prev = finals[fault.net.value * patterns + k - 1];
        const Bit cur = finals[fault.net.value * patterns + k];
        const bool launch = fault.rising ? (prev == 0 && cur == 1)
                                         : (prev == 1 && cur == 0);
        if (!launch) continue;
        std::copy_n(m.data() + k * pis, pis, v.data());
        v[pi_index] = fault.rising ? 0 : 1;
        sim.step(v);
        for (std::size_t o = 0; o < pos.size(); ++o) {
          if (sim.value(pos[o]) != good_po[k * pos.size() + o]) {
            result.detected[f] = true;
            break;
          }
        }
      }
      continue;
    }
    const Netlist faulty =
        inject_stuck_at(nl, fault.net, fault.rising ? 0 : 1);
    LccSim<> sim(faulty);
    for (std::size_t k = 1; k < patterns && !result.detected[f]; ++k) {
      const Bit prev = finals[fault.net.value * patterns + k - 1];
      const Bit cur = finals[fault.net.value * patterns + k];
      const bool launch =
          fault.rising ? (prev == 0 && cur == 1) : (prev == 1 && cur == 0);
      if (!launch) continue;
      sim.step(std::span<const Bit>(m.data() + k * pis, pis));
      for (std::size_t o = 0; o < pos.size(); ++o) {
        if (sim.value(pos[o]) != good_po[k * pos.size() + o]) {
          result.detected[f] = true;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace udsim
