// Wall-clock timing helpers for the experiment harnesses: median of
// repeated trials (the paper ran each experiment five times and averaged).
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

namespace udsim {

/// Run `body` `trials` times; return the median wall-clock seconds.
inline double median_seconds(const std::function<void()>& body, int trials = 5) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace udsim
