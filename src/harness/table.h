// Minimal aligned-column table printer for paper-style result tables.
#pragma once

#include <iomanip>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace udsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Format helper: fixed-point double.
  [[nodiscard]] static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace udsim
