#include "harness/table.h"

#include <algorithm>
#include <ostream>

namespace udsim {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << (c ? "  " : "");
      // Left-align the first column (names), right-align the numbers.
      if (c == 0) {
        os << s << std::string(widths[c] - s.size(), ' ');
      } else {
        os << std::string(widths[c] - s.size(), ' ') << s;
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace udsim
