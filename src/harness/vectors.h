// Seeded random input-vector streams, scalar and lane-packed.
#pragma once

#include <span>
#include <vector>

#include "gen/rng.h"
#include "netlist/logic.h"

namespace udsim {

class RandomVectorSource {
 public:
  RandomVectorSource(std::size_t inputs, std::uint64_t seed)
      : inputs_(inputs), rng_(seed) {}

  /// Next scalar vector: one Bit per primary input.
  void next(std::span<Bit> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<Bit>(rng_.bit());
    }
  }

  /// Next packed batch: one Word per primary input, `lanes` independent
  /// vector streams in the low `lanes` bits of each word.
  template <class Word>
  void next_packed(std::span<Word> out, unsigned lanes) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      Word w = 0;
      for (unsigned l = 0; l < lanes; ++l) {
        w |= static_cast<Word>(rng_.bit() & 1u) << l;
      }
      out[i] = w;
    }
  }

  [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }

 private:
  std::size_t inputs_;
  Rng rng_;
};

}  // namespace udsim
