// Wide arena words for the bit-parallel executors (DESIGN.md §5j).
//
// The compilers are word-size agnostic — `word_bits` parameterizes every
// shift immediate and field layout — so widening a pass is purely an
// executor concern. 128-bit words ride the compiler's native __int128;
// 256-bit words are four uint64 lanes with exactly the operator set the op
// vocabulary needs (bitwise logic, shifts by 0..255, borrow subtraction for
// the `0 - x` broadcast and `(1 << imm) - 1` mask idioms). The hot u256
// executors are instantiated only in ir/kernels_w256.cpp, the TU the build
// compiles with -mavx2 when the toolchain has it, so the lane loops
// vectorize to 256-bit instructions without leaking AVX2 code into TUs that
// must run everywhere.
#pragma once

#include <cstddef>
#include <cstdint>

namespace udsim {

#if defined(__SIZEOF_INT128__)
#define UDSIM_HAS_W128 1
using u128 = unsigned __int128;
#else
#define UDSIM_HAS_W128 0
#endif

/// 256-bit unsigned word, little-endian uint64 lanes (lane[0] = bits 0..63).
/// Implicitly constructible from uint64 like the built-in widths, so the
/// templated engines' `in_.assign(n, 0)` / `word & 1u` idioms compile
/// unchanged.
struct alignas(32) u256 {
  std::uint64_t lane[4];

  constexpr u256() noexcept : lane{0, 0, 0, 0} {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors built-in widening
  constexpr u256(std::uint64_t low) noexcept : lane{low, 0, 0, 0} {}
  constexpr u256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3) noexcept
      : lane{l0, l1, l2, l3} {}

  friend constexpr bool operator==(const u256&, const u256&) noexcept = default;

  friend constexpr u256 operator~(const u256& x) noexcept {
    return {~x.lane[0], ~x.lane[1], ~x.lane[2], ~x.lane[3]};
  }
  friend constexpr u256 operator&(const u256& a, const u256& b) noexcept {
    return {a.lane[0] & b.lane[0], a.lane[1] & b.lane[1], a.lane[2] & b.lane[2],
            a.lane[3] & b.lane[3]};
  }
  friend constexpr u256 operator|(const u256& a, const u256& b) noexcept {
    return {a.lane[0] | b.lane[0], a.lane[1] | b.lane[1], a.lane[2] | b.lane[2],
            a.lane[3] | b.lane[3]};
  }
  friend constexpr u256 operator^(const u256& a, const u256& b) noexcept {
    return {a.lane[0] ^ b.lane[0], a.lane[1] ^ b.lane[1], a.lane[2] ^ b.lane[2],
            a.lane[3] ^ b.lane[3]};
  }
  constexpr u256& operator&=(const u256& o) noexcept {
    for (int i = 0; i < 4; ++i) lane[i] &= o.lane[i];
    return *this;
  }
  constexpr u256& operator|=(const u256& o) noexcept {
    for (int i = 0; i < 4; ++i) lane[i] |= o.lane[i];
    return *this;
  }
  constexpr u256& operator^=(const u256& o) noexcept {
    for (int i = 0; i < 4; ++i) lane[i] ^= o.lane[i];
    return *this;
  }

  /// Shift count must be < 256 (the validator bounds every immediate).
  friend constexpr u256 operator<<(const u256& x, unsigned s) noexcept {
    u256 r;
    const unsigned ws = s >> 6, bs = s & 63u;
    for (unsigned i = ws; i < 4; ++i) {
      std::uint64_t v = x.lane[i - ws] << bs;
      if (bs != 0 && i - ws > 0) v |= x.lane[i - ws - 1] >> (64 - bs);
      r.lane[i] = v;
    }
    return r;
  }
  friend constexpr u256 operator>>(const u256& x, unsigned s) noexcept {
    u256 r;
    const unsigned ws = s >> 6, bs = s & 63u;
    for (unsigned i = 0; i + ws < 4; ++i) {
      std::uint64_t v = x.lane[i + ws] >> bs;
      if (bs != 0 && i + ws + 1 < 4) v |= x.lane[i + ws + 1] << (64 - bs);
      r.lane[i] = v;
    }
    return r;
  }

  friend constexpr u256 operator-(const u256& a, const u256& b) noexcept {
    u256 r;
    std::uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t d = a.lane[i] - b.lane[i];
      std::uint64_t out = a.lane[i] < b.lane[i];
      r.lane[i] = d - borrow;
      out |= d < borrow;
      borrow = out;
    }
    return r;
  }
};

/// uint64 lanes one arena word occupies in the word-size-independent
/// checkpoint carrier (KernelRunner::save_arena, resilience/checkpoint.h):
/// one lane for 32/64-bit words, two for 128, four for 256.
template <class Word>
inline constexpr std::size_t kWordU64Lanes = (sizeof(Word) + 7) / 8;

template <class Word>
[[nodiscard]] constexpr std::uint64_t word_u64_lane(const Word& w,
                                                    std::size_t lane) noexcept {
  if constexpr (sizeof(Word) <= 8) {
    (void)lane;
    return static_cast<std::uint64_t>(w);
  } else if constexpr (sizeof(Word) == 16) {
    return static_cast<std::uint64_t>(w >> (lane * 64));
  } else {
    return w.lane[lane];
  }
}

template <class Word>
[[nodiscard]] constexpr Word word_from_u64_lanes(
    const std::uint64_t* lanes) noexcept {
  if constexpr (sizeof(Word) <= 8) {
    return static_cast<Word>(lanes[0]);
  } else if constexpr (sizeof(Word) == 16) {
    return static_cast<Word>((static_cast<Word>(lanes[1]) << 64) | lanes[0]);
  } else {
    return Word{lanes[0], lanes[1], lanes[2], lanes[3]};
  }
}

/// Bit `pos` of an arena word (pos < 8 * sizeof(Word)).
template <class Word>
[[nodiscard]] constexpr unsigned word_bit(const Word& w, unsigned pos) noexcept {
  return static_cast<unsigned>(word_u64_lane(w, pos >> 6) >> (pos & 63u)) & 1u;
}

/// Arena-init literal semantics (ir/program.h): InitWord.value is a 64-bit
/// carrier where all-ones means "all ones at the executor's width"; any
/// other value zero-extends. At 32/64 bits this coincides with the plain
/// truncation the executors always did, so narrow programs are unchanged;
/// at 128/256 bits it keeps the compilers' constant-one nets all-ones
/// across the whole word.
template <class Word>
[[nodiscard]] constexpr Word init_word_value(std::uint64_t v) noexcept {
  if (v == ~std::uint64_t{0}) return static_cast<Word>(~Word{0});
  return static_cast<Word>(v);
}

}  // namespace udsim
