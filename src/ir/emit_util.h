// Shared op-emission helpers used by the LCC, PC-set and parallel compilers.
#pragma once

#include <span>
#include <vector>

#include "netlist/logic.h"
#include "ir/program.h"

namespace udsim {

/// Append ops computing `dst = f(operands)` for one word of a gate
/// evaluation, where `operands[i]` is the arena word holding input pin i.
/// `dst` must be distinct from every operand word.
inline void emit_gate_word(std::vector<Op>& ops, GateType t, std::uint32_t dst,
                           std::span<const std::uint32_t> operands) {
  switch (t) {
    case GateType::Const0:
      ops.push_back({OpCode::Const, 0, dst, 0, 0});
      return;
    case GateType::Const1:
      ops.push_back({OpCode::Const, 1, dst, 0, 0});
      return;
    case GateType::Not:
      ops.push_back({OpCode::Not, 0, dst, operands[0], 0});
      return;
    case GateType::Buf:
    case GateType::Dff:
      ops.push_back({OpCode::Copy, 0, dst, operands[0], 0});
      return;
    default:
      break;
  }
  const bool inverted = t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor;
  OpCode pair;   // two-operand op
  OpCode acc;    // accumulate op for pins 2..n
  switch (t) {
    case GateType::And:
    case GateType::WiredAnd:
      pair = OpCode::And;
      acc = OpCode::AccAnd;
      break;
    case GateType::Nand:
      pair = OpCode::Nand;
      acc = OpCode::AccAnd;
      break;
    case GateType::Or:
    case GateType::WiredOr:
      pair = OpCode::Or;
      acc = OpCode::AccOr;
      break;
    case GateType::Nor:
      pair = OpCode::Nor;
      acc = OpCode::AccOr;
      break;
    case GateType::Xor:
      pair = OpCode::Xor;
      acc = OpCode::AccXor;
      break;
    case GateType::Xnor:
      pair = OpCode::Xnor;
      acc = OpCode::AccXor;
      break;
    default:
      pair = OpCode::Copy;
      acc = OpCode::Copy;
      break;
  }
  if (operands.size() == 1) {
    // Degenerate one-pin reduction: identity (or inversion).
    ops.push_back({inverted ? OpCode::Not : OpCode::Copy, 0, dst, operands[0], 0});
    return;
  }
  if (operands.size() == 2) {
    ops.push_back({pair, 0, dst, operands[0], operands[1]});
    return;
  }
  // 3+ pins: accumulate un-inverted, invert once at the end.
  OpCode first;
  switch (acc) {
    case OpCode::AccAnd:
      first = OpCode::And;
      break;
    case OpCode::AccOr:
      first = OpCode::Or;
      break;
    default:
      first = OpCode::Xor;
      break;
  }
  ops.push_back({first, 0, dst, operands[0], operands[1]});
  for (std::size_t i = 2; i < operands.size(); ++i) {
    ops.push_back({acc, 0, dst, operands[i], 0});
  }
  if (inverted) {
    ops.push_back({OpCode::Not, 0, dst, dst, 0});
  }
}

}  // namespace udsim
