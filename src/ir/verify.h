// Structural verifier for generated programs: bounds, immediate ranges, and
// scratch-read-before-write. Run by the compiler test suites over every
// generated program; catches code-generator bugs at the IR level instead of
// as silent wrong simulation results.
#pragma once

#include <span>
#include <string>

#include "ir/program.h"

namespace udsim {

struct VerifyOptions {
  /// Arena words that are legitimately live across vectors (net variables /
  /// bit-fields / arena-init constants). Words outside this set are scratch:
  /// reading one before this program writes it is an error.
  std::span<const std::uint32_t> persistent;
};

/// Returns an empty string when the program is well-formed, otherwise a
/// description of the first problem found.
[[nodiscard]] std::string verify_program(const Program& p, const VerifyOptions& opts = {});

}  // namespace udsim
