// Executor for straight-line programs.
//
// `execute` runs one input vector through the program: a single pass over
// the op vector with a tight dispatch switch — the in-process equivalent of
// the paper's compiled C code (see ir/c_emitter.h for the out-of-process
// equivalent, and bench/ablation_emitted_c for the comparison of the two).
#pragma once

#include <cassert>
#include <span>

#include "ir/program.h"
#include "ir/wide_word.h"

namespace udsim {

/// Fill the arena's constant words. Call once before the first vector and
/// after any external reset of the arena. Init values widen per
/// init_word_value: the ~0 carrier means all-ones at the executor's width.
template <class Word>
void initialize_arena(const Program& p, std::span<Word> arena) {
  assert(arena.size() >= p.arena_words);
  for (const Program::InitWord& iw : p.arena_init) {
    arena[iw.index] = init_word_value<Word>(iw.value);
  }
}

/// Reference dispatch: one switch per op. Always available; the threaded
/// `execute` is checked against it (tests/ir_test.cpp) and non-GNU builds
/// fall back to it.
template <class Word>
void execute_switch(const Program& p, std::span<const Word> in, std::span<Word> arena) {
  static_assert(sizeof(Word) == 4 || sizeof(Word) == 8 || sizeof(Word) == 16 ||
                sizeof(Word) == 32);
  assert(static_cast<int>(sizeof(Word) * 8) == p.word_bits);
  assert(in.size() >= p.input_words);
  assert(arena.size() >= p.arena_words);
  constexpr unsigned W = sizeof(Word) * 8;
  Word* const w = arena.data();
  const Word* const iv = in.data();
  for (const Op& op : p.ops) {
    switch (op.code) {
      case OpCode::Const:
        w[op.dst] = op.imm ? static_cast<Word>(~Word{0}) : Word{0};
        break;
      case OpCode::Copy:
        w[op.dst] = w[op.a];
        break;
      case OpCode::Not:
        w[op.dst] = static_cast<Word>(~w[op.a]);
        break;
      case OpCode::And:
        w[op.dst] = w[op.a] & w[op.b];
        break;
      case OpCode::Or:
        w[op.dst] = w[op.a] | w[op.b];
        break;
      case OpCode::Xor:
        w[op.dst] = w[op.a] ^ w[op.b];
        break;
      case OpCode::Nand:
        w[op.dst] = static_cast<Word>(~(w[op.a] & w[op.b]));
        break;
      case OpCode::Nor:
        w[op.dst] = static_cast<Word>(~(w[op.a] | w[op.b]));
        break;
      case OpCode::Xnor:
        w[op.dst] = static_cast<Word>(~(w[op.a] ^ w[op.b]));
        break;
      case OpCode::AccAnd:
        w[op.dst] &= w[op.a];
        break;
      case OpCode::AccOr:
        w[op.dst] |= w[op.a];
        break;
      case OpCode::AccXor:
        w[op.dst] ^= w[op.a];
        break;
      case OpCode::MaskedCopy:
        w[op.dst] = static_cast<Word>((w[op.dst] & ~w[op.b]) | (w[op.a] & w[op.b]));
        break;
      case OpCode::LoadBit:
        w[op.dst] = iv[op.a] & Word{1};
        break;
      case OpCode::LoadBcast:
        w[op.dst] = static_cast<Word>(Word{0} - (iv[op.a] & Word{1}));
        break;
      case OpCode::LoadWord:
        w[op.dst] = iv[op.a];
        break;
      case OpCode::ExtractBit:
        w[op.dst] = (w[op.a] >> op.imm) & Word{1};
        break;
      case OpCode::BcastBit:
        w[op.dst] = static_cast<Word>(Word{0} - ((w[op.a] >> op.imm) & Word{1}));
        break;
      case OpCode::Shl:
        w[op.dst] = static_cast<Word>(w[op.a] << op.imm);
        break;
      case OpCode::Shr:
        w[op.dst] = static_cast<Word>(w[op.a] >> op.imm);
        break;
      case OpCode::ShlOr:
        w[op.dst] |= static_cast<Word>(w[op.a] << op.imm);
        break;
      case OpCode::MaskShlOr:
        w[op.dst] = static_cast<Word>(
            (w[op.dst] & ((Word{1} << op.imm) - 1)) | (w[op.a] << op.imm));
        break;
      case OpCode::FunnelL:
        w[op.dst] = static_cast<Word>((w[op.a] << op.imm) | (w[op.b] >> (W - op.imm)));
        break;
      case OpCode::FunnelR:
        w[op.dst] = static_cast<Word>((w[op.a] >> op.imm) | (w[op.b] << (W - op.imm)));
        break;
    }
  }
}

template <class Word>
void execute(const Program& p, std::span<const Word> in, std::span<Word> arena) {
  static_assert(sizeof(Word) == 4 || sizeof(Word) == 8 || sizeof(Word) == 16 ||
                sizeof(Word) == 32);
  assert(static_cast<int>(sizeof(Word) * 8) == p.word_bits);
  assert(in.size() >= p.input_words);
  assert(arena.size() >= p.arena_words);
  constexpr unsigned W = sizeof(Word) * 8;
  Word* const w = arena.data();
  const Word* const iv = in.data();

#if defined(__GNUC__) && !defined(UDSIM_NO_COMPUTED_GOTO)
  // Threaded-code dispatch (the technique of the paper's reference [8],
  // used by the tortle.c simulator it cites): each handler jumps directly
  // to the next op's handler, giving the branch predictor one indirect
  // site per opcode instead of a single giant switch. On mixed-opcode
  // straight-line programs this roughly halves dispatch cost.
  static const void* const kLabels[] = {
      &&l_Const,      &&l_Copy,    &&l_Not,     &&l_And,     &&l_Or,
      &&l_Xor,        &&l_Nand,    &&l_Nor,     &&l_Xnor,    &&l_AccAnd,
      &&l_AccOr,      &&l_AccXor,  &&l_MaskedCopy, &&l_LoadBit,
      &&l_LoadBcast,  &&l_LoadWord, &&l_ExtractBit, &&l_BcastBit,
      &&l_Shl,        &&l_Shr,     &&l_ShlOr,   &&l_MaskShlOr,
      &&l_FunnelL,    &&l_FunnelR};
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                    static_cast<std::size_t>(OpCode::FunnelR) + 1,
                "label table must cover every opcode in enum order");
  const Op* op = p.ops.data();
  const Op* const end = op + p.ops.size();
  if (op == end) return;
#define UDSIM_DISPATCH()                                     \
  do {                                                       \
    if (++op == end) return;                                 \
    goto* kLabels[static_cast<std::uint8_t>(op->code)];      \
  } while (0)
  goto* kLabels[static_cast<std::uint8_t>(op->code)];
l_Const:
  w[op->dst] = op->imm ? static_cast<Word>(~Word{0}) : Word{0};
  UDSIM_DISPATCH();
l_Copy:
  w[op->dst] = w[op->a];
  UDSIM_DISPATCH();
l_Not:
  w[op->dst] = static_cast<Word>(~w[op->a]);
  UDSIM_DISPATCH();
l_And:
  w[op->dst] = w[op->a] & w[op->b];
  UDSIM_DISPATCH();
l_Or:
  w[op->dst] = w[op->a] | w[op->b];
  UDSIM_DISPATCH();
l_Xor:
  w[op->dst] = w[op->a] ^ w[op->b];
  UDSIM_DISPATCH();
l_Nand:
  w[op->dst] = static_cast<Word>(~(w[op->a] & w[op->b]));
  UDSIM_DISPATCH();
l_Nor:
  w[op->dst] = static_cast<Word>(~(w[op->a] | w[op->b]));
  UDSIM_DISPATCH();
l_Xnor:
  w[op->dst] = static_cast<Word>(~(w[op->a] ^ w[op->b]));
  UDSIM_DISPATCH();
l_AccAnd:
  w[op->dst] &= w[op->a];
  UDSIM_DISPATCH();
l_AccOr:
  w[op->dst] |= w[op->a];
  UDSIM_DISPATCH();
l_AccXor:
  w[op->dst] ^= w[op->a];
  UDSIM_DISPATCH();
l_MaskedCopy:
  w[op->dst] = static_cast<Word>((w[op->dst] & ~w[op->b]) | (w[op->a] & w[op->b]));
  UDSIM_DISPATCH();
l_LoadBit:
  w[op->dst] = iv[op->a] & Word{1};
  UDSIM_DISPATCH();
l_LoadBcast:
  w[op->dst] = static_cast<Word>(Word{0} - (iv[op->a] & Word{1}));
  UDSIM_DISPATCH();
l_LoadWord:
  w[op->dst] = iv[op->a];
  UDSIM_DISPATCH();
l_ExtractBit:
  w[op->dst] = (w[op->a] >> op->imm) & Word{1};
  UDSIM_DISPATCH();
l_BcastBit:
  w[op->dst] = static_cast<Word>(Word{0} - ((w[op->a] >> op->imm) & Word{1}));
  UDSIM_DISPATCH();
l_Shl:
  w[op->dst] = static_cast<Word>(w[op->a] << op->imm);
  UDSIM_DISPATCH();
l_Shr:
  w[op->dst] = static_cast<Word>(w[op->a] >> op->imm);
  UDSIM_DISPATCH();
l_ShlOr:
  w[op->dst] |= static_cast<Word>(w[op->a] << op->imm);
  UDSIM_DISPATCH();
l_MaskShlOr:
  w[op->dst] = static_cast<Word>((w[op->dst] & ((Word{1} << op->imm) - 1)) |
                                 (w[op->a] << op->imm));
  UDSIM_DISPATCH();
l_FunnelL:
  w[op->dst] = static_cast<Word>((w[op->a] << op->imm) | (w[op->b] >> (W - op->imm)));
  UDSIM_DISPATCH();
l_FunnelR:
  w[op->dst] = static_cast<Word>((w[op->a] >> op->imm) | (w[op->b] << (W - op->imm)));
  UDSIM_DISPATCH();
#undef UDSIM_DISPATCH
#else
  execute_switch<Word>(p, in, arena);
#endif
}

// The hot u256 executors instantiate only in ir/kernels_w256.cpp — the TU
// the build compiles with -mavx2 when the toolchain supports it — so no
// other TU can inline 256-bit code it might not be allowed to run. Cold
// u256 paths (initialize_arena, KernelRunner bookkeeping) are portable lane
// loops and instantiate anywhere.
extern template void execute_switch<u256>(const Program&, std::span<const u256>,
                                          std::span<u256>);
extern template void execute<u256>(const Program&, std::span<const u256>,
                                   std::span<u256>);

}  // namespace udsim
