#include "ir/verify.h"

#include <vector>

namespace udsim {

namespace {

struct OpShape {
  bool reads_a_arena;   ///< a is an arena index (vs an input index)
  bool reads_b;
  bool reads_dst;       ///< dst is read-modify-write
  bool uses_imm_shift;  ///< imm must be a shift amount
  bool imm_nonzero;     ///< funnel shifts exclude 0
};

OpShape shape_of(OpCode c) {
  switch (c) {
    case OpCode::Const:
      return {false, false, false, false, false};
    case OpCode::Copy:
    case OpCode::Not:
      return {true, false, false, false, false};
    case OpCode::And:
    case OpCode::Or:
    case OpCode::Xor:
    case OpCode::Nand:
    case OpCode::Nor:
    case OpCode::Xnor:
      return {true, true, false, false, false};
    case OpCode::AccAnd:
    case OpCode::AccOr:
    case OpCode::AccXor:
      return {true, false, true, false, false};
    case OpCode::MaskedCopy:
      return {true, true, true, false, false};
    case OpCode::LoadBit:
    case OpCode::LoadBcast:
    case OpCode::LoadWord:
      return {false, false, false, false, false};
    case OpCode::ExtractBit:
    case OpCode::BcastBit:
    case OpCode::Shl:
    case OpCode::Shr:
      return {true, false, false, true, false};
    case OpCode::ShlOr:
    case OpCode::MaskShlOr:
      return {true, false, true, true, false};
    case OpCode::FunnelL:
    case OpCode::FunnelR:
      return {true, true, false, true, true};
  }
  return {};
}

}  // namespace

std::string verify_program(const Program& p, const VerifyOptions& opts) {
  const auto W = static_cast<unsigned>(p.word_bits);
  if (W != 32 && W != 64 && W != 128 && W != 256) {
    return "word_bits must be 32, 64, 128 or 256";
  }

  std::vector<bool> written(p.arena_words, false);
  for (const Program::InitWord& iw : p.arena_init) {
    if (iw.index >= p.arena_words) return "arena_init index out of bounds";
    written[iw.index] = true;
  }
  for (std::uint32_t persistent : opts.persistent) {
    if (persistent >= p.arena_words) return "persistent index out of bounds";
    written[persistent] = true;
  }
  const bool track_scratch = !opts.persistent.empty();

  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const Op& op = p.ops[i];
    const OpShape s = shape_of(op.code);
    const auto where = [&] { return " at op " + std::to_string(i); };
    if (op.dst >= p.arena_words) return "dst out of bounds" + where();
    const bool is_load = op.code == OpCode::LoadBit || op.code == OpCode::LoadBcast ||
                         op.code == OpCode::LoadWord;
    if (is_load) {
      if (op.a >= p.input_words) return "input index out of bounds" + where();
    } else if (s.reads_a_arena) {
      if (op.a >= p.arena_words) return "operand a out of bounds" + where();
      if (track_scratch && !written[op.a]) {
        return "read of unwritten scratch word (a)" + where();
      }
    }
    if (s.reads_b) {
      if (op.b >= p.arena_words) return "operand b out of bounds" + where();
      if (track_scratch && !written[op.b]) {
        return "read of unwritten scratch word (b)" + where();
      }
    }
    if (s.reads_dst && track_scratch && !written[op.dst]) {
      return "read-modify-write of unwritten scratch word" + where();
    }
    if (s.uses_imm_shift) {
      if (op.imm >= W) return "shift immediate out of range" + where();
      if (s.imm_nonzero && op.imm == 0) return "funnel shift of zero" + where();
    }
    written[op.dst] = true;
  }
  return {};
}

}  // namespace udsim
