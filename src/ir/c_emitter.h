// C source emitter: prints a straight-line program as a self-contained C
// translation unit, the textual form the paper's code generators produce
// (compare Figs. 4, 6, 8, 10). Useful for inspection, for out-of-process
// compilation (examples/export_c), and to validate the in-process executor
// against a real C compiler (bench/ablation_emitted_c).
#pragma once

#include <iosfwd>
#include <string>

#include "ir/program.h"

namespace udsim {

struct CEmitOptions {
  std::string function_name = "udsim_step";
  std::string arena_name = "udsim_arena";
  /// Emit `/* name */` comments on ops whose dst has a symbolic name.
  bool comments = true;
  /// Entry-point mode (the native backend, DESIGN.md §5h): the arena becomes
  /// the first parameter of every function instead of a global, and a batch
  /// entry point `<fn>_run(arena, in, n_vectors)` is emitted after
  /// `<fn>_init(arena)` and `<fn>(arena, in)` — one `_run` call simulates a
  /// whole row-major vector stream against a caller-owned arena, so a single
  /// dlopen'd symbol drives any number of vectors.
  bool batch_entry = false;
};

/// Emit (batch_entry = false, the historical layout):
///   #include <stdint.h>
///   uintN_t <arena>[arena_words];
///   void <fn>_init(void) { ...constant init... }
///   void <fn>(const uintN_t *in) { ...one statement per op...; }
/// where N = program.word_bits. With batch_entry = true the arena is a
/// parameter and `<fn>_run(arena, in, n_vectors)` is appended (see
/// CEmitOptions::batch_entry).
void emit_c(std::ostream& os, const Program& p, const CEmitOptions& opts = {});

/// The single C statement for one op (used by emit_c and by tests that
/// check the generated-code shape against the paper's figures).
[[nodiscard]] std::string op_to_c(const Program& p, const Op& op,
                                  const CEmitOptions& opts = {});

}  // namespace udsim
