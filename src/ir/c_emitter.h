// C source emitter: prints a straight-line program as a self-contained C
// translation unit, the textual form the paper's code generators produce
// (compare Figs. 4, 6, 8, 10). Useful for inspection, for out-of-process
// compilation (examples/export_c), and to validate the in-process executor
// against a real C compiler (bench/ablation_emitted_c).
#pragma once

#include <iosfwd>
#include <string>

#include "ir/program.h"

namespace udsim {

struct CEmitOptions {
  std::string function_name = "udsim_step";
  std::string arena_name = "udsim_arena";
  /// Emit `/* name */` comments on ops whose dst has a symbolic name.
  bool comments = true;
};

/// Emit:
///   #include <stdint.h>
///   uintN_t <arena>[arena_words] = { ...constant init... };
///   void <fn>(const uintN_t *in) { ...one statement per op...; }
/// where N = program.word_bits.
void emit_c(std::ostream& os, const Program& p, const CEmitOptions& opts = {});

/// The single C statement for one op (used by emit_c and by tests that
/// check the generated-code shape against the paper's figures).
[[nodiscard]] std::string op_to_c(const Program& p, const Op& op,
                                  const CEmitOptions& opts = {});

}  // namespace udsim
