// 256-bit executor instantiations, isolated in their own TU so the build
// can apply -mavx2 to exactly this file (src/CMakeLists.txt): the u256 lane
// loops then compile to 256-bit vector instructions. When the flag was
// applied the library defines UDSIM_W256_AVX2 and runtime width dispatch
// (core/width_dispatch.h) refuses the 256-bit lane on CPUs without AVX2;
// without the flag the instantiations here are portable scalar code and the
// lane is available everywhere.
#include "ir/executor.h"

namespace udsim {

template void execute_switch<u256>(const Program&, std::span<const u256>,
                                   std::span<u256>);
template void execute<u256>(const Program&, std::span<const u256>,
                            std::span<u256>);

}  // namespace udsim
