// Straight-line word-level programs: the "compiled code" of the paper.
//
// Each generated simulation is a flat vector of ops over a persistent word
// arena (net variables / bit-fields survive from vector to vector, exactly
// like the paper's C globals). One execution of the program simulates one
// input vector; there are no branches or queues — the defining property of
// Levelized Compiled Code simulation.
//
// The same program text runs at any word size (32-bit to match the paper's
// word counts, 64/128/256-bit for the wide lanes); shift immediates are
// produced by the compilers for a specific word size, recorded in
// `word_bits`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace udsim {

enum class OpCode : std::uint8_t {
  Const,       ///< dst = imm ? ~0 : 0
  Copy,        ///< dst = w[a]
  Not,         ///< dst = ~w[a]
  And,         ///< dst = w[a] & w[b]
  Or,          ///< dst = w[a] | w[b]
  Xor,         ///< dst = w[a] ^ w[b]
  Nand,        ///< dst = ~(w[a] & w[b])
  Nor,         ///< dst = ~(w[a] | w[b])
  Xnor,        ///< dst = ~(w[a] ^ w[b])
  AccAnd,      ///< dst &= w[a]
  AccOr,       ///< dst |= w[a]
  AccXor,      ///< dst ^= w[a]
  MaskedCopy,  ///< dst = (dst & ~w[b]) | (w[a] & w[b])
  LoadBit,     ///< dst = in[a] & 1
  LoadBcast,   ///< dst = all bits = (in[a] & 1)
  LoadWord,    ///< dst = in[a]
  ExtractBit,  ///< dst = (w[a] >> imm) & 1
  BcastBit,    ///< dst = all bits = ((w[a] >> imm) & 1)
  Shl,         ///< dst = w[a] << imm
  Shr,         ///< dst = w[a] >> imm        (logical)
  ShlOr,       ///< dst |= w[a] << imm
  MaskShlOr,   ///< dst = (dst & low_mask(imm)) | (w[a] << imm)
  FunnelL,     ///< dst = (w[a] << imm) | (w[b] >> (word_bits - imm)), 0<imm<word_bits
  FunnelR,     ///< dst = (w[a] >> imm) | (w[b] << (word_bits - imm)), 0<imm<word_bits
};

struct Op {
  OpCode code;
  std::uint8_t imm = 0;   ///< shift amount / bit index / constant selector
  std::uint32_t dst = 0;  ///< arena word index
  std::uint32_t a = 0;    ///< arena word index, or input index for Load*
  std::uint32_t b = 0;    ///< second arena word index where applicable
};
static_assert(sizeof(Op) == 16);

struct Program {
  std::vector<Op> ops;
  std::uint32_t arena_words = 0;
  std::uint32_t input_words = 0;  ///< size of the per-vector input span
  int word_bits = 32;             ///< word size the shift immediates assume

  /// Arena words with a fixed value established once before the first vector
  /// (constant nets, mask words). `value` is a 64-bit carrier: all-ones
  /// means all-ones at the executor's word size (so constant-one nets stay
  /// full-width at 128/256 bits); any other value zero-extends — identical
  /// to plain truncation at 32/64 bits. See init_word_value (ir/wide_word.h).
  struct InitWord {
    std::uint32_t index;
    std::uint64_t value;  ///< widened per init_word_value at execution time
  };
  std::vector<InitWord> arena_init;

  /// Optional symbolic names for arena words (used by the C emitter and for
  /// debugging); may be empty or sparse.
  std::vector<std::string> names;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

}  // namespace udsim
