#include "netlist/stats.h"

#include <algorithm>
#include <ostream>

#include "analysis/levelize.h"

namespace udsim {

CircuitStats circuit_stats(const Netlist& nl) {
  CircuitStats s;
  s.primary_inputs = nl.primary_inputs().size();
  s.primary_outputs = nl.primary_outputs().size();
  s.gates = nl.real_gate_count();
  s.nets = nl.net_count();
  std::size_t fanout_sum = 0;
  for (const Net& n : nl.nets()) {
    fanout_sum += n.fanout.size();
    s.max_fanout = std::max(s.max_fanout, n.fanout.size());
  }
  for (const Gate& g : nl.gates()) {
    s.pins += g.inputs.size();
  }
  s.avg_fanin = s.gates ? static_cast<double>(s.pins) / static_cast<double>(s.gates) : 0.0;
  s.avg_fanout = s.nets ? static_cast<double>(fanout_sum) / static_cast<double>(s.nets) : 0.0;
  s.depth = levelize(nl).depth;
  return s;
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& s) {
  return os << "PI=" << s.primary_inputs << " PO=" << s.primary_outputs
            << " gates=" << s.gates << " nets=" << s.nets << " pins=" << s.pins
            << " depth=" << s.depth << " levels=" << (s.depth + 1)
            << " avg_fanin=" << s.avg_fanin << " avg_fanout=" << s.avg_fanout
            << " max_fanout=" << s.max_fanout;
}

}  // namespace udsim
