#include "netlist/stats.h"

#include <algorithm>
#include <ostream>

#include "analysis/levelize.h"

namespace udsim {

CircuitStats circuit_stats(const Netlist& nl) {
  CircuitStats s;
  s.primary_inputs = nl.primary_inputs().size();
  s.primary_outputs = nl.primary_outputs().size();
  s.gates = nl.real_gate_count();
  s.nets = nl.net_count();
  std::size_t fanout_sum = 0;
  for (const Net& n : nl.nets()) {
    fanout_sum += n.fanout.size();
    s.max_fanout = std::max(s.max_fanout, n.fanout.size());
  }
  for (const Gate& g : nl.gates()) {
    s.pins += g.inputs.size();
  }
  s.avg_fanin = s.gates ? static_cast<double>(s.pins) / static_cast<double>(s.gates) : 0.0;
  s.avg_fanout = s.nets ? static_cast<double>(fanout_sum) / static_cast<double>(s.nets) : 0.0;
  s.depth = levelize(nl).depth;
  return s;
}

std::uint64_t netlist_fingerprint(const Netlist& nl) noexcept {
  // FNV-1a, same constants as program_fingerprint / the checkpoint hasher.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(nl.net_count());
  mix(nl.gate_count());
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    const GateId id{static_cast<std::uint32_t>(g)};
    const Gate& gate = nl.gate(id);
    mix(static_cast<std::uint64_t>(gate.type) |
        std::uint64_t{gate.output.value} << 8);
    mix(static_cast<std::uint64_t>(nl.delay(id)));
    mix(gate.inputs.size());
    for (NetId in : gate.inputs) mix(in.value);
  }
  for (const Net& n : nl.nets()) mix(static_cast<std::uint64_t>(n.wired));
  mix(nl.primary_inputs().size());
  for (NetId pi : nl.primary_inputs()) mix(pi.value);
  mix(nl.primary_outputs().size());
  for (NetId po : nl.primary_outputs()) mix(po.value);
  return h;
}

std::ostream& operator<<(std::ostream& os, const CircuitStats& s) {
  return os << "PI=" << s.primary_inputs << " PO=" << s.primary_outputs
            << " gates=" << s.gates << " nets=" << s.nets << " pins=" << s.pins
            << " depth=" << s.depth << " levels=" << (s.depth + 1)
            << " avg_fanin=" << s.avg_fanin << " avg_fanout=" << s.avg_fanout
            << " max_fanout=" << s.max_fanout;
}

}  // namespace udsim
