// Structural circuit statistics used by the experiment tables and the
// synthetic-profile calibration (gate counts, depth, fanin/fanout shape).
#pragma once

#include <cstddef>
#include <iosfwd>

#include "netlist/netlist.h"

namespace udsim {

struct CircuitStats {
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t gates = 0;          ///< real (unit-delay) gates
  std::size_t nets = 0;
  std::size_t pins = 0;           ///< total gate input pins
  int depth = 0;                  ///< max net level (levels = depth + 1)
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;
  std::size_t max_fanout = 0;
};

[[nodiscard]] CircuitStats circuit_stats(const Netlist& nl);

/// FNV-1a 64 over the structural content of the netlist: gate types, pin
/// lists, delays, wired kinds, and the primary-input/output lists. Net and
/// circuit *names* are excluded — two netlists that differ only in naming
/// compile to identical programs, so they share one fingerprint (and one
/// compiled-program cache entry in the service layer, src/service/).
[[nodiscard]] std::uint64_t netlist_fingerprint(const Netlist& nl) noexcept;

std::ostream& operator<<(std::ostream& os, const CircuitStats& s);

}  // namespace udsim
