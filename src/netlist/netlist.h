// Gate-level netlist model.
//
// A `Netlist` is a set of named nets and gates. Gates have one output net and
// an ordered input-pin list (a net may appear on several pins of the same
// gate — the PC-set worklist algorithm in the paper explicitly allows this).
// A net may be driven by several gates ("wired AND/OR connections" in the
// paper); such nets carry a resolution kind, and `lower_wired_nets` can
// rewrite them into explicit zero-delay WiredAnd/WiredOr gates so that the
// compiled-code generators only ever see single-driver nets.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/diagnostics.h"
#include "netlist/logic.h"

namespace udsim {

/// Strongly-typed index of a net within its Netlist.
struct NetId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  friend constexpr bool operator==(NetId, NetId) = default;
};

/// Strongly-typed index of a gate within its Netlist.
struct GateId {
  std::uint32_t value = std::numeric_limits<std::uint32_t>::max();
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != std::numeric_limits<std::uint32_t>::max();
  }
  friend constexpr bool operator==(GateId, GateId) = default;
};

/// How a multi-driver net resolves its drivers' values.
enum class WiredKind : std::uint8_t { None, And, Or };

struct Gate {
  GateType type = GateType::And;
  std::vector<NetId> inputs;  ///< ordered pins; duplicates allowed
  NetId output;
};

struct Net {
  std::string name;
  std::vector<GateId> drivers;  ///< empty for primary inputs / dangling nets
  std::vector<GateId> fanout;   ///< gates with this net on >=1 input pin
                                ///  (listed once per *pin*, so duplicates)
  WiredKind wired = WiredKind::None;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// Error thrown by netlist construction and validation.
class NetlistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------

  /// Create a new net. Throws NetlistError if the name already exists.
  NetId add_net(std::string name);

  /// Find a net by name, or create it.
  NetId get_or_add_net(const std::string& name);

  /// Look up a net by name.
  [[nodiscard]] std::optional<NetId> find_net(const std::string& name) const;

  /// Add a gate driving `output` from `inputs`. Wires up driver/fanout lists.
  /// A second driver on a net is only accepted once the net has been marked
  /// wired via `set_wired`.
  GateId add_gate(GateType type, std::vector<NetId> inputs, NetId output);

  /// Append one more input pin to an existing n-ary gate (AND/OR/NAND/NOR/
  /// XOR/XNOR). Throws for unary/constant gates or if it would create a
  /// cycle through the gate's own output.
  void add_gate_input(GateId gate, NetId net);

  /// Per-gate propagation delay in time units. Defaults to gate_delay(type):
  /// one for real gates (the paper's unit-delay model), zero for wired
  /// resolvers. Arbitrary positive integers generalize every algorithm in
  /// this library to a multi-delay timing model (the paper's future-work
  /// direction); wired resolvers stay at zero.
  [[nodiscard]] int delay(GateId g) const { return gate_delays_.at(g.value); }
  void set_delay(GateId g, int delay);

  /// Largest per-gate delay in the netlist (0 when there are no gates).
  [[nodiscard]] int max_delay() const noexcept;

  /// True when every real gate has delay 1 (the paper's strict model).
  [[nodiscard]] bool is_unit_delay() const noexcept;

  /// Declare a net a wired-AND or wired-OR connection point.
  void set_wired(NetId net, WiredKind kind);

  void mark_primary_input(NetId net);
  void mark_primary_output(NetId net);

  // ---- access --------------------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.value); }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_.at(id.value); }

  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const noexcept {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const noexcept {
    return primary_outputs_;
  }

  /// Count of *real* (unit-delay) gates, i.e. excluding wired-resolution
  /// pseudo-gates. This is the paper's "number of gates" (= the unoptimized
  /// shift count of Fig. 21).
  [[nodiscard]] std::size_t real_gate_count() const noexcept;

  // ---- invariants ----------------------------------------------------------

  /// Full structural check: every non-PI net driven, no PI with drivers,
  /// wired kinds consistent with driver counts, pin counts legal for gate
  /// type, acyclicity, no Dff gates (combinational core only).
  /// Throws NetlistError with a description on the first violation; cycle
  /// errors name the nets on one offending cycle.
  void validate() const;

  /// Non-throwing variant: collects *every* violation (and structural
  /// warnings: fanout-free gates) into `diag` as Error/Warning records
  /// instead of stopping at the first. Returns the number of Error records
  /// added.
  std::size_t validate(Diagnostics& diag) const;

  /// The same checks minus acyclicity — for asynchronous (cyclic) circuits,
  /// which only the event-driven engine simulates.
  void validate_structure() const;

  /// True if the gate/net graph (following input->gate->output direction,
  /// Dff edges included) contains no cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Nets along one combinational cycle, in path order (each net on the
  /// returned list drives the next through a gate; the last drives the
  /// first). Empty when the netlist is acyclic. Used to make cycle errors
  /// name the offending nets.
  [[nodiscard]] std::vector<NetId> find_cycle() const;

  /// "a -> b -> c -> a" rendering of find_cycle(), capped at `max_nets`
  /// names; empty string when acyclic.
  [[nodiscard]] std::string describe_cycle(std::size_t max_nets = 8) const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<int> gate_delays_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::unordered_map<std::string, std::uint32_t> net_by_name_;
};

/// Rewrite every multi-driver net D with resolution op R into:
///   one fresh single-driver net per original driver, plus a zero-delay
///   R-pseudo-gate combining them into D.
/// Returns the number of nets lowered. After this, every net has <=1 driver.
std::size_t lower_wired_nets(Netlist& nl);

}  // namespace udsim
