#include "netlist/transform.h"

#include <optional>

namespace udsim {

SweepResult sweep_dead_logic(const Netlist& nl) {
  // Mark nets/gates reaching a primary output, walking driver edges back.
  std::vector<bool> net_live(nl.net_count(), false);
  std::vector<bool> gate_live(nl.gate_count(), false);
  std::vector<std::uint32_t> stack;
  for (NetId po : nl.primary_outputs()) {
    if (!net_live[po.value]) {
      net_live[po.value] = true;
      stack.push_back(po.value);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    for (GateId g : nl.net(NetId{n}).drivers) {
      if (gate_live[g.value]) continue;
      gate_live[g.value] = true;
      for (NetId in : nl.gate(g).inputs) {
        if (!net_live[in.value]) {
          net_live[in.value] = true;
          stack.push_back(in.value);
        }
      }
    }
  }
  // Primary inputs survive regardless.
  for (NetId pi : nl.primary_inputs()) net_live[pi.value] = true;

  SweepResult out;
  out.netlist = Netlist(nl.name());
  out.remap.assign(nl.net_count(), NetId{});
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (net_live[n]) {
      out.remap[n] = out.netlist.add_net(nl.net(NetId{n}).name);
      if (nl.net(NetId{n}).wired != WiredKind::None) {
        out.netlist.set_wired(out.remap[n], nl.net(NetId{n}).wired);
      }
    } else {
      ++out.removed_nets;
    }
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    if (!gate_live[gi]) {
      ++out.removed_gates;
      continue;
    }
    const Gate& g = nl.gate(GateId{gi});
    std::vector<NetId> ins;
    ins.reserve(g.inputs.size());
    for (NetId in : g.inputs) ins.push_back(out.remap[in.value]);
    const GateId ng =
        out.netlist.add_gate(g.type, std::move(ins), out.remap[g.output.value]);
    out.netlist.set_delay(ng, nl.delay(GateId{gi}));
  }
  for (NetId pi : nl.primary_inputs()) {
    out.netlist.mark_primary_input(out.remap[pi.value]);
  }
  for (NetId po : nl.primary_outputs()) {
    out.netlist.mark_primary_output(out.remap[po.value]);
  }
  return out;
}

namespace {

/// Constant value of a net if decidable locally, given known constants.
std::optional<Bit> fold_gate(const Gate& g,
                             const std::vector<std::optional<Bit>>& known) {
  if (g.type == GateType::Const0) return Bit{0};
  if (g.type == GateType::Const1) return Bit{1};
  // Controlling values.
  bool all_known = true;
  for (NetId in : g.inputs) {
    const auto v = known[in.value];
    if (!v.has_value()) {
      all_known = false;
      continue;
    }
    switch (g.type) {
      case GateType::And:
      case GateType::WiredAnd:
        if (*v == 0) return Bit{0};
        break;
      case GateType::Nand:
        if (*v == 0) return Bit{1};
        break;
      case GateType::Or:
      case GateType::WiredOr:
        if (*v == 1) return Bit{1};
        break;
      case GateType::Nor:
        if (*v == 1) return Bit{0};
        break;
      default:
        break;
    }
  }
  if (!all_known) return std::nullopt;
  std::vector<Bit> pins;
  pins.reserve(g.inputs.size());
  for (NetId in : g.inputs) pins.push_back(*known[in.value]);
  return eval2(g.type, pins);
}

}  // namespace

ConstPropResult propagate_constants(const Netlist& nl) {
  std::vector<std::optional<Bit>> known(nl.net_count());
  // Seed: nets driven only by constant generators.
  bool changed = true;
  std::vector<bool> folded(nl.gate_count(), false);
  while (changed) {
    changed = false;
    for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
      const Gate& g = nl.gate(GateId{gi});
      if (known[g.output.value].has_value()) continue;
      if (nl.net(g.output).drivers.size() != 1) continue;  // wired: skip
      const auto v = fold_gate(g, known);
      if (v.has_value()) {
        known[g.output.value] = v;
        folded[gi] = !is_constant(g.type);
        changed = true;
      }
    }
  }

  ConstPropResult out;
  out.netlist = Netlist(nl.name());
  for (const Net& n : nl.nets()) {
    out.netlist.add_net(n.name);
  }
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(NetId{n}).wired != WiredKind::None) {
      out.netlist.set_wired(NetId{n}, nl.net(NetId{n}).wired);
    }
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (folded[gi]) {
      ++out.folded_gates;
      out.netlist.add_gate(*known[g.output.value] ? GateType::Const1 : GateType::Const0,
                           {}, g.output);
    } else {
      const GateId ng = out.netlist.add_gate(g.type, g.inputs, g.output);
      out.netlist.set_delay(ng, nl.delay(GateId{gi}));
    }
  }
  for (NetId pi : nl.primary_inputs()) out.netlist.mark_primary_input(pi);
  for (NetId po : nl.primary_outputs()) out.netlist.mark_primary_output(po);
  return out;
}

Netlist inject_stuck_at(const Netlist& nl, NetId net, Bit value) {
  Netlist out(nl.name() + (value ? "_sa1_" : "_sa0_") + nl.net(net).name);
  for (const Net& n : nl.nets()) {
    out.add_net(n.name);
  }
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    if (nl.net(NetId{n}).wired != WiredKind::None && NetId{n} != net) {
      out.set_wired(NetId{n}, nl.net(NetId{n}).wired);
    }
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (g.output == net) continue;  // drivers of the faulty net are cut
    const GateId ng = out.add_gate(g.type, g.inputs, g.output);
    out.set_delay(ng, nl.delay(GateId{gi}));
  }
  out.add_gate(value ? GateType::Const1 : GateType::Const0, {}, net);
  for (NetId pi : nl.primary_inputs()) {
    if (pi == net) continue;  // a stuck PI is no longer an input
    out.mark_primary_input(pi);
  }
  for (NetId po : nl.primary_outputs()) out.mark_primary_output(po);
  return out;
}

}  // namespace udsim
