#include "netlist/bench_io.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

namespace udsim {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Net/gate identifiers must be non-empty, free of control characters (NUL
/// bytes and other binary junk an adversarial stream can contain), and free
/// of the grammar's own delimiters — an identifier containing '(' or '='
/// means two statements were mangled onto one line.
void check_identifier(std::string_view name, std::size_t line) {
  if (name.empty()) throw BenchParseError(line, "empty identifier");
  for (char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) {
      throw BenchParseError(line, "control character in identifier");
    }
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == ' ' || c == '\t') {
      throw BenchParseError(line, "'" + std::string(1, c) + "' in identifier");
    }
  }
}

/// The pin-count rule the validator enforces later, applied at parse time so
/// a malformed gate is reported with its line instead of far downstream.
void check_pin_count(GateType t, std::size_t n, std::size_t line) {
  if (is_constant(t)) {
    if (n != 0) throw BenchParseError(line, "constant gate takes no inputs");
  } else if (is_unary(t)) {
    if (n != 1) {
      throw BenchParseError(line, "unary gate needs exactly one input, got " +
                                      std::to_string(n));
    }
  } else if (n == 0) {
    throw BenchParseError(line, "gate has an empty input list");
  }
}

struct PendingGate {
  std::string output;
  GateType type;
  std::vector<std::string> args;
  std::size_t line;
};

}  // namespace

Netlist read_bench(std::istream& in, std::string name, Diagnostics* diag) {
  Netlist nl(std::move(name));
  std::vector<std::pair<std::string, std::size_t>> outputs;  // name, line
  std::vector<PendingGate> pending;
  struct DelayDirective {
    std::string net;
    int delay;
    std::size_t line;
  };
  std::vector<DelayDirective> delays;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = line;
    // Extension directive (ignored by other .bench tools): per-gate delay
    // annotation "#!delay <output-net> <delay>".
    if (trim(s).starts_with("#!delay")) {
      std::istringstream ds{std::string(trim(s).substr(7))};
      std::string net;
      int d = 0;
      if (!(ds >> net >> d) || d < 1) {
        throw BenchParseError(lineno, "malformed #!delay directive");
      }
      delays.push_back({std::move(net), d, lineno});
      continue;
    }
    if (auto hash = s.find('#'); hash != std::string_view::npos) {
      s = s.substr(0, hash);
    }
    s = trim(s);
    if (s.empty()) continue;

    const auto lpar = s.find('(');
    const auto rpar = s.rfind(')');
    if (lpar == std::string_view::npos || rpar == std::string_view::npos ||
        rpar < lpar) {
      throw BenchParseError(lineno, "expected '(' ... ')'");
    }
    if (!trim(s.substr(rpar + 1)).empty()) {
      throw BenchParseError(lineno, "trailing text after ')'");
    }
    const std::string_view head = trim(s.substr(0, lpar));
    const std::string_view body = trim(s.substr(lpar + 1, rpar - lpar - 1));

    if (auto eq = head.find('='); eq != std::string_view::npos) {
      PendingGate g;
      g.output = std::string(trim(head.substr(0, eq)));
      const std::string_view type_name = trim(head.substr(eq + 1));
      if (!parse_gate_type(type_name, g.type)) {
        throw BenchParseError(lineno,
                              "unknown gate type '" + std::string(type_name) + "'");
      }
      g.line = lineno;
      std::string arg;
      std::istringstream args{std::string(body)};
      while (std::getline(args, arg, ',')) {
        const std::string_view a = trim(arg);
        if (a.empty()) throw BenchParseError(lineno, "empty gate argument");
        check_identifier(a, lineno);
        if (a == g.output) {
          throw BenchParseError(lineno, "gate output '" + g.output +
                                            "' appears in its own input list");
        }
        g.args.emplace_back(a);
      }
      if (g.output.empty()) throw BenchParseError(lineno, "missing output name");
      check_identifier(g.output, lineno);
      check_pin_count(g.type, g.args.size(), lineno);
      pending.push_back(std::move(g));
    } else if (head == "INPUT") {
      check_identifier(body, lineno);
      const NetId id = nl.get_or_add_net(std::string(body));
      if (diag && nl.net(id).is_primary_input) {
        diag->report(DiagCode::DuplicateDecl, DiagSeverity::Warning,
                     std::string(body), "INPUT declared more than once", lineno);
      }
      nl.mark_primary_input(id);
    } else if (head == "OUTPUT") {
      check_identifier(body, lineno);
      if (diag) {
        for (const auto& [prev, prev_line] : outputs) {
          if (prev == body) {
            diag->report(DiagCode::DuplicateDecl, DiagSeverity::Warning,
                         std::string(body), "OUTPUT declared more than once",
                         lineno);
            break;
          }
        }
      }
      outputs.emplace_back(body, lineno);
    } else {
      throw BenchParseError(lineno, "unrecognized statement '" + std::string(head) + "'");
    }
  }

  for (const PendingGate& g : pending) {
    std::vector<NetId> ins;
    ins.reserve(g.args.size());
    for (const std::string& a : g.args) {
      ins.push_back(nl.get_or_add_net(a));
    }
    try {
      nl.add_gate(g.type, std::move(ins), nl.get_or_add_net(g.output));
    } catch (const NetlistError& e) {
      throw BenchParseError(g.line, e.what());
    }
  }
  for (const auto& [o, oline] : outputs) {
    const auto id = nl.find_net(o);
    if (!id) throw BenchParseError(oline, "OUTPUT of unknown net '" + o + "'");
    if (diag && nl.net(*id).drivers.empty() && !nl.net(*id).is_primary_input) {
      diag->report(DiagCode::DanglingOutput, DiagSeverity::Warning, o,
                   "declared OUTPUT has no driver", oline);
    }
    nl.mark_primary_output(*id);
  }
  for (const auto& [net_name, d, dline] : delays) {
    const auto id = nl.find_net(net_name);
    if (!id || nl.net(*id).drivers.empty()) {
      throw BenchParseError(dline, "#!delay names undriven or unknown net '" +
                                       net_name + "'");
    }
    for (GateId g : nl.net(*id).drivers) nl.set_delay(g, d);
  }
  if (diag) {
    // Structural warnings the grammar cannot rule out. The netlist is
    // returned anyway — validate() is the hard gate — so callers see every
    // issue at once instead of the first throw.
    for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
      const Net& n = nl.net(NetId{i});
      if (!n.is_primary_input && n.drivers.empty()) {
        diag->report(DiagCode::UndrivenNet, DiagSeverity::Warning, n.name,
                     "referenced as a gate input but never driven");
      }
      if (!n.drivers.empty() && n.fanout.empty() && !n.is_primary_output) {
        diag->report(DiagCode::FanoutFreeGate, DiagSeverity::Warning, n.name,
                     "gate output feeds no gate and is not an OUTPUT (dead logic)");
      }
    }
  }
  return nl;
}

Netlist read_bench_file(const std::string& path, Diagnostics* diag) {
  std::ifstream f(path);
  if (!f) throw NetlistError("cannot open '" + path + "'");
  std::string stem = path;
  if (auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return read_bench(f, std::move(stem), diag);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by udsim\n";
  for (NetId pi : nl.primary_inputs()) {
    out << "INPUT(" << nl.net(pi).name << ")\n";
  }
  for (NetId po : nl.primary_outputs()) {
    out << "OUTPUT(" << nl.net(po).name << ")\n";
  }
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::WiredAnd || g.type == GateType::WiredOr) {
      throw NetlistError("wired pseudo-gates are not representable in .bench");
    }
    std::string type_name(gate_type_name(g.type));
    for (char& c : type_name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (type_name == "BUF") type_name = "BUFF";
    out << nl.net(g.output).name << " = " << type_name << "(";
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      if (i) out << ", ";
      out << nl.net(g.inputs[i]).name;
    }
    out << ")\n";
  }
  // Non-default delays as extension directives (harmless to other tools).
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    if (nl.delay(GateId{gi}) != gate_delay(g.type)) {
      out << "#!delay " << nl.net(g.output).name << " " << nl.delay(GateId{gi})
          << "\n";
    }
  }
}

}  // namespace udsim
