// Reader/writer for the ISCAS `.bench` netlist format used by the ISCAS-85
// combinational benchmarks the paper evaluates on (c432 … c7552).
//
// Grammar accepted (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(arg, arg, ...)        GATE in {AND,OR,NAND,NOR,XOR,XNOR,
//                                              NOT,BUF,BUFF,DFF,CONST0,CONST1}
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/diagnostics.h"
#include "netlist/netlist.h"

namespace udsim {

class BenchParseError : public std::runtime_error {
 public:
  BenchParseError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse a `.bench` stream. `name` becomes the netlist name.
///
/// Malformed input always raises `BenchParseError` carrying the offending
/// line number — including structural misuse the grammar admits
/// (self-referential gates, duplicate drivers, control characters in
/// identifiers) — never another exception type, a crash, or a hang.
///
/// With a `diag` sink, suspicious-but-parseable constructs are recorded as
/// structured warnings instead of being silently accepted: nets referenced
/// as gate inputs but never driven (UndrivenNet), OUTPUT declarations of
/// undriven nets (DanglingOutput), gates whose output feeds nothing and is
/// not an output (FanoutFreeGate), and repeated INPUT/OUTPUT declarations
/// (DuplicateDecl).
[[nodiscard]] Netlist read_bench(std::istream& in, std::string name = "bench",
                                 Diagnostics* diag = nullptr);

/// Parse a `.bench` file from disk (name defaults to the file stem).
[[nodiscard]] Netlist read_bench_file(const std::string& path,
                                      Diagnostics* diag = nullptr);

/// Write `nl` in `.bench` syntax. Wired pseudo-gates are not representable;
/// call lower_wired_nets + this only on netlists without them, otherwise a
/// NetlistError is thrown.
void write_bench(std::ostream& out, const Netlist& nl);

}  // namespace udsim
