// Netlist transformations: dead-logic sweep, constant propagation, and
// stuck-at fault injection (the substrate for serial fault simulation).
//
// All transforms return a fresh netlist; `sweep_dead_logic` preserves
// NetIds of surviving nets via a remap table, the others preserve ids
// outright.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace udsim {

struct SweepResult {
  Netlist netlist;
  std::size_t removed_gates = 0;
  std::size_t removed_nets = 0;
  /// old NetId -> new NetId (invalid for removed nets).
  std::vector<NetId> remap;
};

/// Remove every gate and net that cannot reach a primary output. Primary
/// inputs are kept even when dangling (the interface is part of the
/// contract).
[[nodiscard]] SweepResult sweep_dead_logic(const Netlist& nl);

struct ConstPropResult {
  Netlist netlist;
  std::size_t folded_gates = 0;  ///< gates replaced by constant generators
};

/// Fold gates whose output is decidable from constant inputs: a gate with
/// all-constant inputs evaluates; a controlling constant (0 on AND/NAND,
/// 1 on OR/NOR) decides inverted/plain AND/OR families outright. Iterates to
/// a fixed point. NetIds are preserved; folded gates become Const0/Const1.
///
/// NOTE: folding changes unit-delay *timing* (a folded net no longer
/// glitches); it preserves settled values only. Intended for zero-delay
/// applications such as fault simulation.
[[nodiscard]] ConstPropResult propagate_constants(const Netlist& nl);

/// Replace the drivers of `net` so it is stuck at `value` (a single stuck-at
/// fault). For primary inputs the net is converted into a constant-driven
/// internal net. NetIds are preserved.
[[nodiscard]] Netlist inject_stuck_at(const Netlist& nl, NetId net, Bit value);

}  // namespace udsim
