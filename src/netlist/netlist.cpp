#include "netlist/netlist.h"

#include <algorithm>

namespace udsim {

NetId Netlist::add_net(std::string name) {
  if (net_by_name_.contains(name)) {
    throw NetlistError("duplicate net name: " + name);
  }
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  net_by_name_.emplace(name, id.value);
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return id;
}

NetId Netlist::get_or_add_net(const std::string& name) {
  if (auto it = net_by_name_.find(name); it != net_by_name_.end()) {
    return NetId{it->second};
  }
  return add_net(name);
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  if (auto it = net_by_name_.find(name); it != net_by_name_.end()) {
    return NetId{it->second};
  }
  return std::nullopt;
}

GateId Netlist::add_gate(GateType type, std::vector<NetId> inputs, NetId output) {
  if (!output.valid() || output.value >= nets_.size()) {
    throw NetlistError("add_gate: invalid output net");
  }
  for (NetId in : inputs) {
    if (!in.valid() || in.value >= nets_.size()) {
      throw NetlistError("add_gate: invalid input net");
    }
  }
  Net& out = nets_[output.value];
  if (!out.drivers.empty() && out.wired == WiredKind::None) {
    throw NetlistError("net '" + out.name +
                       "' already driven; call set_wired first for wired connections");
  }
  if (out.is_primary_input) {
    throw NetlistError("net '" + out.name + "' is a primary input and cannot be driven");
  }
  const GateId id{static_cast<std::uint32_t>(gates_.size())};
  for (NetId in : inputs) {
    nets_[in.value].fanout.push_back(id);
  }
  out.drivers.push_back(id);
  Gate g;
  g.type = type;
  g.inputs = std::move(inputs);
  g.output = output;
  gates_.push_back(std::move(g));
  gate_delays_.push_back(gate_delay(type));
  return id;
}

void Netlist::set_delay(GateId g, int delay) {
  const GateType t = gates_.at(g.value).type;
  const bool wired = t == GateType::WiredAnd || t == GateType::WiredOr;
  if (wired ? delay != 0 : delay < 1) {
    throw NetlistError(wired ? "wired resolvers are zero-delay"
                             : "real gates need a delay of at least 1");
  }
  gate_delays_.at(g.value) = delay;
}

int Netlist::max_delay() const noexcept {
  int d = 0;
  for (int x : gate_delays_) d = std::max(d, x);
  return d;
}

bool Netlist::is_unit_delay() const noexcept {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gate_delay(gates_[i].type) != 0 && gate_delays_[i] != 1) return false;
  }
  return true;
}

void Netlist::add_gate_input(GateId gate, NetId net) {
  Gate& g = gates_.at(gate.value);
  if (is_unary(g.type) || is_constant(g.type)) {
    throw NetlistError("add_gate_input: gate type takes a fixed pin count");
  }
  if (net == g.output) {
    throw NetlistError("add_gate_input: self-loop");
  }
  g.inputs.push_back(net);
  nets_.at(net.value).fanout.push_back(gate);
}

void Netlist::set_wired(NetId net, WiredKind kind) {
  nets_.at(net.value).wired = kind;
}

void Netlist::mark_primary_input(NetId net) {
  Net& n = nets_.at(net.value);
  if (!n.drivers.empty()) {
    throw NetlistError("net '" + n.name + "' has drivers and cannot be a primary input");
  }
  if (!n.is_primary_input) {
    n.is_primary_input = true;
    primary_inputs_.push_back(net);
  }
}

void Netlist::mark_primary_output(NetId net) {
  Net& n = nets_.at(net.value);
  if (!n.is_primary_output) {
    n.is_primary_output = true;
    primary_outputs_.push_back(net);
  }
}

std::size_t Netlist::real_gate_count() const noexcept {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (gate_delay(g.type) != 0) ++n;
  }
  return n;
}

namespace {

[[nodiscard]] bool pin_count_ok(GateType t, std::size_t n) noexcept {
  if (is_constant(t)) return n == 0;
  if (is_unary(t)) return n == 1;
  return n >= 1;  // n-ary gates; a 1-input AND degenerates to a buffer
}

}  // namespace

void Netlist::validate() const {
  validate_structure();
  if (!is_acyclic()) {
    throw NetlistError("netlist '" + name_ + "' contains a combinational cycle: " +
                       describe_cycle());
  }
}

std::size_t Netlist::validate(Diagnostics& diag) const {
  const std::size_t errors_before = diag.count(DiagSeverity::Error);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    const std::string subject = "gate " + std::to_string(i) + " -> " +
                                nets_[g.output.value].name;
    if (g.type == GateType::Dff) {
      diag.report(DiagCode::IllegalGate, DiagSeverity::Error, subject,
                  "Dff present; break flip-flops before simulation");
    }
    if (!pin_count_ok(g.type, g.inputs.size())) {
      diag.report(DiagCode::IllegalGate, DiagSeverity::Error, subject,
                  std::string(gate_type_name(g.type)) + " has illegal pin count " +
                      std::to_string(g.inputs.size()));
    }
    const Net& out = nets_[g.output.value];
    if (out.fanout.empty() && !out.is_primary_output) {
      diag.report(DiagCode::FanoutFreeGate, DiagSeverity::Warning, subject,
                  "output feeds no gate and is not a primary output (dead logic)");
    }
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (n.is_primary_input && !n.drivers.empty()) {
      diag.report(DiagCode::PrimaryInputDriven, DiagSeverity::Error, n.name,
                  "primary input has " + std::to_string(n.drivers.size()) +
                      " driver(s)");
    }
    if (!n.is_primary_input && n.drivers.empty()) {
      diag.report(DiagCode::UndrivenNet, DiagSeverity::Error, n.name,
                  "undriven and not a primary input");
    }
    if (n.drivers.size() > 1 && n.wired == WiredKind::None) {
      diag.report(DiagCode::MultiDriverNet, DiagSeverity::Error, n.name,
                  std::to_string(n.drivers.size()) +
                      " drivers but no wired resolution kind");
    }
  }
  if (!is_acyclic()) {
    diag.report(DiagCode::CombinationalCycle, DiagSeverity::Error, name_,
                "combinational cycle: " + describe_cycle());
  }
  return diag.count(DiagSeverity::Error) - errors_before;
}

void Netlist::validate_structure() const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.type == GateType::Dff) {
      throw NetlistError("gate " + std::to_string(i) +
                         ": Dff present; break flip-flops before simulation");
    }
    if (!pin_count_ok(g.type, g.inputs.size())) {
      throw NetlistError("gate " + std::to_string(i) + " (" +
                         std::string(gate_type_name(g.type)) + "): illegal pin count " +
                         std::to_string(g.inputs.size()));
    }
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (n.is_primary_input && !n.drivers.empty()) {
      throw NetlistError("primary input '" + n.name + "' has a driver");
    }
    if (!n.is_primary_input && n.drivers.empty()) {
      throw NetlistError("net '" + n.name + "' is undriven and not a primary input");
    }
    if (n.drivers.size() > 1 && n.wired == WiredKind::None) {
      throw NetlistError("net '" + n.name + "' has multiple drivers but is not wired");
    }
  }
}

bool Netlist::is_acyclic() const {
  // Kahn's algorithm over gates: a gate is ready when all its input nets are
  // resolved; a net is resolved when all its drivers have fired.
  std::vector<std::uint32_t> gate_pending(gates_.size());
  std::vector<std::uint32_t> net_pending(nets_.size());
  std::vector<std::uint32_t> ready;
  ready.reserve(gates_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    net_pending[i] = static_cast<std::uint32_t>(nets_[i].drivers.size());
  }
  std::vector<std::vector<std::uint32_t>> waiting(nets_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    std::uint32_t unresolved = 0;
    for (NetId in : gates_[i].inputs) {
      if (net_pending[in.value] != 0) {
        ++unresolved;
        waiting[in.value].push_back(static_cast<std::uint32_t>(i));
      }
    }
    gate_pending[i] = unresolved;
    if (unresolved == 0) ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t fired = 0;
  while (!ready.empty()) {
    const std::uint32_t gi = ready.back();
    ready.pop_back();
    ++fired;
    const NetId out = gates_[gi].output;
    if (--net_pending[out.value] == 0) {
      // `waiting` holds one entry per unresolved *pin*, so one decrement per
      // entry is exact even when a gate lists this net on several pins.
      for (std::uint32_t waiter : waiting[out.value]) {
        if (--gate_pending[waiter] == 0) ready.push_back(waiter);
      }
    }
  }
  return fired == gates_.size();
}

std::vector<NetId> Netlist::find_cycle() const {
  // Iterative DFS over nets; the edge relation is net -> fanout gate ->
  // gate's output net (Dff edges included, matching is_acyclic()). A gray
  // successor closes a cycle, which is read back off the DFS stack.
  enum : std::uint8_t { White, Gray, Black };
  std::vector<std::uint8_t> color(nets_.size(), White);
  struct Frame {
    std::uint32_t net;
    std::size_t next_fanout;
  };
  std::vector<Frame> stack;
  for (std::uint32_t root = 0; root < nets_.size(); ++root) {
    if (color[root] != White) continue;
    stack.push_back({root, 0});
    color[root] = Gray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const Net& n = nets_[f.net];
      if (f.next_fanout >= n.fanout.size()) {
        color[f.net] = Black;
        stack.pop_back();
        continue;
      }
      const GateId g = n.fanout[f.next_fanout++];
      const std::uint32_t succ = gates_[g.value].output.value;
      if (color[succ] == Gray) {
        std::vector<NetId> cycle;
        auto it = stack.begin();
        while (it != stack.end() && it->net != succ) ++it;
        for (; it != stack.end(); ++it) cycle.push_back(NetId{it->net});
        return cycle;
      }
      if (color[succ] == White) {
        color[succ] = Gray;
        stack.push_back({succ, 0});
      }
    }
  }
  return {};
}

std::string Netlist::describe_cycle(std::size_t max_nets) const {
  const std::vector<NetId> cycle = find_cycle();
  if (cycle.empty()) return {};
  std::string s;
  const std::size_t shown = std::min(cycle.size(), max_nets);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) s += " -> ";
    s += nets_[cycle[i].value].name;
  }
  if (shown < cycle.size()) {
    s += " -> ... (" + std::to_string(cycle.size() - shown) + " more)";
  }
  s += " -> " + nets_[cycle.front().value].name;
  return s;
}

std::size_t lower_wired_nets(Netlist& nl) {
  // Collect the multi-driver nets first; we mutate the netlist below.
  struct Item {
    NetId net;
    WiredKind kind;
    std::vector<GateId> drivers;
  };
  std::vector<Item> items;
  for (std::uint32_t i = 0; i < nl.net_count(); ++i) {
    const Net& n = nl.net(NetId{i});
    if (n.drivers.size() > 1) {
      if (n.wired == WiredKind::None) {
        throw NetlistError("net '" + n.name + "' multiply driven but not wired");
      }
      items.push_back({NetId{i}, n.wired, n.drivers});
    }
  }
  if (items.empty()) return 0;

  // Rebuild the netlist: same nets plus one split net per (wired net, driver).
  Netlist out(nl.name());
  for (const Net& n : nl.nets()) {
    out.add_net(n.name);
  }
  std::unordered_map<std::uint64_t, NetId> split;  // (net<<32)|driver -> new net
  for (const Item& it : items) {
    for (std::size_t k = 0; k < it.drivers.size(); ++k) {
      const std::string nm =
          nl.net(it.net).name + "$w" + std::to_string(k);
      split.emplace((static_cast<std::uint64_t>(it.net.value) << 32) |
                        it.drivers[k].value,
                    out.add_net(nm));
    }
  }
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const Gate& g = nl.gate(GateId{gi});
    NetId target = g.output;
    const auto key = (static_cast<std::uint64_t>(g.output.value) << 32) | gi;
    if (auto sit = split.find(key); sit != split.end()) {
      target = sit->second;
    }
    const GateId ng = out.add_gate(g.type, g.inputs, target);
    out.set_delay(ng, nl.delay(GateId{gi}));
  }
  for (const Item& it : items) {
    std::vector<NetId> ins;
    ins.reserve(it.drivers.size());
    for (GateId d : it.drivers) {
      ins.push_back(split.at((static_cast<std::uint64_t>(it.net.value) << 32) |
                             d.value));
    }
    out.add_gate(it.kind == WiredKind::And ? GateType::WiredAnd : GateType::WiredOr,
                 std::move(ins), it.net);
  }
  for (NetId pi : nl.primary_inputs()) out.mark_primary_input(pi);
  for (NetId po : nl.primary_outputs()) out.mark_primary_output(po);
  nl = std::move(out);
  return items.size();
}

}  // namespace udsim
