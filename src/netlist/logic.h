// Two- and three-valued gate-level logic.
//
// The compiled techniques of Maurer (DAC 1990) use a two-valued model; the
// interpreted event-driven baseline is provided in both a two-valued and a
// three-valued variant, matching the paper's Fig. 19 columns.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace udsim {

/// A two-valued logic level. Only the low bit is meaningful.
using Bit = std::uint8_t;

/// Gate primitives. `WiredAnd`/`WiredOr` are zero-delay resolution
/// pseudo-gates introduced when lowering multi-driver (wired) nets; all other
/// gates have unit delay. `Dff` appears only in sequential netlists and must
/// be broken (see gen/sequential.h) before any of the combinational engines
/// see the circuit.
enum class GateType : std::uint8_t {
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Not,
  Buf,
  Const0,
  Const1,
  WiredAnd,
  WiredOr,
  Dff,
};

/// Three-valued logic level for the event-driven baseline: 0, 1, unknown.
enum class Tri : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Number of gate delays contributed by a gate of this type. Unit delay for
/// all real gates, zero for wired-resolution pseudo-gates (a wired connection
/// is a property of the net, not a level of logic).
[[nodiscard]] constexpr int gate_delay(GateType t) noexcept {
  return (t == GateType::WiredAnd || t == GateType::WiredOr) ? 0 : 1;
}

/// True for gate types whose evaluation ignores the input list.
[[nodiscard]] constexpr bool is_constant(GateType t) noexcept {
  return t == GateType::Const0 || t == GateType::Const1;
}

/// True for the single-input gate types.
[[nodiscard]] constexpr bool is_unary(GateType t) noexcept {
  return t == GateType::Not || t == GateType::Buf || t == GateType::Dff;
}

/// Evaluate a gate in two-valued logic. `inputs` holds one Bit (0/1) per
/// input pin; n-ary AND/OR/NAND/NOR reduce over all pins, XOR/XNOR are
/// parity/its complement. Constants ignore `inputs`.
[[nodiscard]] Bit eval2(GateType t, std::span<const Bit> inputs) noexcept;

/// Evaluate a gate in three-valued logic (with the usual dominance rules:
/// a 0 input forces AND to 0 regardless of X, etc.).
[[nodiscard]] Tri eval3(GateType t, std::span<const Tri> inputs) noexcept;

/// Word-parallel evaluation: applies the gate function bitwise to whole
/// words, the primitive the parallel technique is built on.
template <class Word>
[[nodiscard]] Word eval_word(GateType t, std::span<const Word> inputs) noexcept {
  const Word ones = ~Word{0};
  switch (t) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return ones;
    case GateType::Not:
      return static_cast<Word>(~inputs[0]);
    case GateType::Buf:
    case GateType::Dff:
      return inputs[0];
    default:
      break;
  }
  Word acc = inputs[0];
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::WiredAnd:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc &= inputs[i];
      break;
    case GateType::Or:
    case GateType::Nor:
    case GateType::WiredOr:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc |= inputs[i];
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc ^= inputs[i];
      break;
    default:
      break;
  }
  if (t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor) {
    acc = static_cast<Word>(~acc);
  }
  return acc;
}

/// Canonical lower-case name used by the .bench reader/writer.
[[nodiscard]] std::string_view gate_type_name(GateType t) noexcept;

/// Parse a gate-type name (case-insensitive). Returns true on success.
[[nodiscard]] bool parse_gate_type(std::string_view name, GateType& out) noexcept;

}  // namespace udsim
