// Structured diagnostics sink.
//
// Robustness layers of the library (the .bench parser, netlist validation,
// the guarded compilers, the engine fallback chain) report non-fatal
// findings — undriven nets, dangling outputs, fanout-free gates, gap-word
// fallbacks, budget downgrades — as structured records into a `Diagnostics`
// sink instead of silently proceeding or throwing on the first issue.
// Callers that pass no sink keep the historical behaviour (warnings are
// dropped, errors still throw); callers that pass one get the full list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace udsim {

enum class DiagSeverity : std::uint8_t {
  Note,     ///< informational (e.g. which engine a fallback chain selected)
  Warning,  ///< suspicious but simulable (e.g. fanout-free gate)
  Error,    ///< structurally invalid (collected by the non-throwing validate)
};

enum class DiagCode : std::uint8_t {
  // Netlist structure / .bench parsing.
  UndrivenNet,        ///< net referenced as an input but never driven
  DanglingOutput,     ///< declared OUTPUT with no driver
  FanoutFreeGate,     ///< gate output feeds nothing and is not an output
  DuplicateDecl,      ///< INPUT/OUTPUT declared more than once
  PrimaryInputDriven, ///< a gate drives a declared primary input
  MultiDriverNet,     ///< several drivers without a wired resolution kind
  IllegalGate,        ///< bad pin count / Dff in a combinational core
  CombinationalCycle, ///< cycle through combinational gates
  // Guarded compilation.
  GapWordFallback,    ///< trimming filled gap words by broadcast fallback
  BudgetDowngrade,    ///< an engine was rejected because of a CompileBudget
  EngineSelected,     ///< the engine a fallback chain settled on
  NativeFallback,     ///< native pipeline failed; chain dropped to the IR path
  NativeBreakerOpen,  ///< toolchain circuit breaker open; native skipped untried
  WidthFallback,      ///< requested lane width unavailable; ladder stepped down
  // Program validation (resilience/program_validator.h).
  ProgramWordSize,    ///< word_bits is not a supported executor width
  ProgramOpBounds,    ///< op touches an arena word outside the arena
  ProgramInputBounds, ///< Load* references an input word outside the span
  ProgramShiftRange,  ///< shift immediate >= word size / zero funnel shift
  ProgramInitBounds,  ///< arena_init index outside the arena
  ProgramScratchRead, ///< scratch word read before any write
  ProgramProbeBounds, ///< output probe outside the arena / word size
  ProgramInputUnused, ///< input word never loaded (coverage warning)
  ProgramAccepted,    ///< validation passed (note)
  // Resilient execution (resilience/, core/batch_runner.h).
  ShardRetry,         ///< a failed shard was retried from its seam
  ShardQuarantined,   ///< retries exhausted; shard replayed sequentially
  RunCancelled,       ///< a run stopped at a cancel/deadline poll
  CheckpointResumed,  ///< a run continued from a snapshot
};

[[nodiscard]] std::string_view diag_code_name(DiagCode c) noexcept;
[[nodiscard]] std::string_view diag_severity_name(DiagSeverity s) noexcept;

struct Diagnostic {
  DiagCode code = DiagCode::UndrivenNet;
  DiagSeverity severity = DiagSeverity::Warning;
  std::string subject;   ///< net / gate / engine the record is about
  std::string message;   ///< human-readable detail
  std::size_t line = 0;  ///< source line for parser records (0 = n/a)

  /// "warning: undriven-net 'G7': ..." one-line rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Reporting is thread-safe: concurrent `run_batch` shards and parallel
/// guarded compiles may share one sink (record order across threads is
/// unspecified). The read side (`records()`, `count`, `first`, `print`)
/// locks per call but hands out references into the record list, so reads
/// are meaningful once the writers have quiesced — the sink serializes
/// reporting, it is not a cross-thread query structure.
class Diagnostics {
 public:
  void report(Diagnostic d) {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(d));
  }
  void report(DiagCode code, DiagSeverity severity, std::string subject,
              std::string message, std::size_t line = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(
        {code, severity, std::move(subject), std::move(message), line});
  }

  [[nodiscard]] const std::vector<Diagnostic>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  void clear() noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

  [[nodiscard]] std::size_t count(DiagCode code) const noexcept;
  [[nodiscard]] std::size_t count(DiagSeverity severity) const noexcept;
  [[nodiscard]] bool has(DiagCode code) const noexcept { return count(code) > 0; }
  /// First record with `code`, or nullptr.
  [[nodiscard]] const Diagnostic* first(DiagCode code) const noexcept;

  /// One line per record.
  void print(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> records_;
};

}  // namespace udsim
