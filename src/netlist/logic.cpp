#include "netlist/logic.h"

#include <array>
#include <cctype>
#include <string>

namespace udsim {

Bit eval2(GateType t, std::span<const Bit> inputs) noexcept {
  switch (t) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return 1;
    case GateType::Not:
      return static_cast<Bit>(~inputs[0] & 1u);
    case GateType::Buf:
    case GateType::Dff:
      return static_cast<Bit>(inputs[0] & 1u);
    default:
      break;
  }
  unsigned acc = inputs[0] & 1u;
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::WiredAnd:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc &= inputs[i];
      break;
    case GateType::Or:
    case GateType::Nor:
    case GateType::WiredOr:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc |= inputs[i];
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc ^= inputs[i];
      break;
    default:
      break;
  }
  if (t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor) {
    acc = ~acc;
  }
  return static_cast<Bit>(acc & 1u);
}

namespace {

[[nodiscard]] Tri tri_not(Tri a) noexcept {
  if (a == Tri::X) return Tri::X;
  return a == Tri::Zero ? Tri::One : Tri::Zero;
}

[[nodiscard]] Tri tri_and(Tri a, Tri b) noexcept {
  if (a == Tri::Zero || b == Tri::Zero) return Tri::Zero;
  if (a == Tri::X || b == Tri::X) return Tri::X;
  return Tri::One;
}

[[nodiscard]] Tri tri_or(Tri a, Tri b) noexcept {
  if (a == Tri::One || b == Tri::One) return Tri::One;
  if (a == Tri::X || b == Tri::X) return Tri::X;
  return Tri::Zero;
}

[[nodiscard]] Tri tri_xor(Tri a, Tri b) noexcept {
  if (a == Tri::X || b == Tri::X) return Tri::X;
  return a == b ? Tri::Zero : Tri::One;
}

}  // namespace

Tri eval3(GateType t, std::span<const Tri> inputs) noexcept {
  switch (t) {
    case GateType::Const0:
      return Tri::Zero;
    case GateType::Const1:
      return Tri::One;
    case GateType::Not:
      return tri_not(inputs[0]);
    case GateType::Buf:
    case GateType::Dff:
      return inputs[0];
    default:
      break;
  }
  Tri acc = inputs[0];
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::WiredAnd:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc = tri_and(acc, inputs[i]);
      break;
    case GateType::Or:
    case GateType::Nor:
    case GateType::WiredOr:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc = tri_or(acc, inputs[i]);
      break;
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 1; i < inputs.size(); ++i) acc = tri_xor(acc, inputs[i]);
      break;
    default:
      break;
  }
  if (t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor) {
    acc = tri_not(acc);
  }
  return acc;
}

namespace {

struct NameEntry {
  std::string_view name;
  GateType type;
};

constexpr std::array<NameEntry, 13> kNames = {{
    {"and", GateType::And},
    {"or", GateType::Or},
    {"nand", GateType::Nand},
    {"nor", GateType::Nor},
    {"xor", GateType::Xor},
    {"xnor", GateType::Xnor},
    {"not", GateType::Not},
    {"buf", GateType::Buf},
    {"const0", GateType::Const0},
    {"const1", GateType::Const1},
    {"wired_and", GateType::WiredAnd},
    {"wired_or", GateType::WiredOr},
    {"dff", GateType::Dff},
}};

}  // namespace

std::string_view gate_type_name(GateType t) noexcept {
  for (const auto& e : kNames) {
    if (e.type == t) return e.name;
  }
  return "?";
}

bool parse_gate_type(std::string_view name, GateType& out) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  // .bench files spell buffers "BUFF".
  if (lower == "buff") lower = "buf";
  for (const auto& e : kNames) {
    if (e.name == lower) {
      out = e.type;
      return true;
    }
  }
  return false;
}

}  // namespace udsim
