#include "netlist/diagnostics.h"

#include <ostream>

namespace udsim {

std::string_view diag_code_name(DiagCode c) noexcept {
  switch (c) {
    case DiagCode::UndrivenNet:
      return "undriven-net";
    case DiagCode::DanglingOutput:
      return "dangling-output";
    case DiagCode::FanoutFreeGate:
      return "fanout-free-gate";
    case DiagCode::DuplicateDecl:
      return "duplicate-declaration";
    case DiagCode::PrimaryInputDriven:
      return "primary-input-driven";
    case DiagCode::MultiDriverNet:
      return "multi-driver-net";
    case DiagCode::IllegalGate:
      return "illegal-gate";
    case DiagCode::CombinationalCycle:
      return "combinational-cycle";
    case DiagCode::GapWordFallback:
      return "gap-word-fallback";
    case DiagCode::BudgetDowngrade:
      return "budget-downgrade";
    case DiagCode::EngineSelected:
      return "engine-selected";
    case DiagCode::NativeFallback:
      return "native-fallback";
    case DiagCode::NativeBreakerOpen:
      return "native-breaker-open";
    case DiagCode::WidthFallback:
      return "width-fallback";
    case DiagCode::ProgramWordSize:
      return "program-word-size";
    case DiagCode::ProgramOpBounds:
      return "program-op-bounds";
    case DiagCode::ProgramInputBounds:
      return "program-input-bounds";
    case DiagCode::ProgramShiftRange:
      return "program-shift-range";
    case DiagCode::ProgramInitBounds:
      return "program-init-bounds";
    case DiagCode::ProgramScratchRead:
      return "program-scratch-read";
    case DiagCode::ProgramProbeBounds:
      return "program-probe-bounds";
    case DiagCode::ProgramInputUnused:
      return "program-input-unused";
    case DiagCode::ProgramAccepted:
      return "program-accepted";
    case DiagCode::ShardRetry:
      return "shard-retry";
    case DiagCode::ShardQuarantined:
      return "shard-quarantined";
    case DiagCode::RunCancelled:
      return "run-cancelled";
    case DiagCode::CheckpointResumed:
      return "checkpoint-resumed";
  }
  return "?";
}

std::string_view diag_severity_name(DiagSeverity s) noexcept {
  switch (s) {
    case DiagSeverity::Note:
      return "note";
    case DiagSeverity::Warning:
      return "warning";
    case DiagSeverity::Error:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string s;
  s += diag_severity_name(severity);
  s += ": ";
  s += diag_code_name(code);
  if (!subject.empty()) {
    s += " '";
    s += subject;
    s += "'";
  }
  if (line != 0) {
    s += " (line ";
    s += std::to_string(line);
    s += ")";
  }
  s += ": ";
  s += message;
  return s;
}

std::size_t Diagnostics::count(DiagCode code) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Diagnostic& d : records_) {
    if (d.code == code) ++n;
  }
  return n;
}

std::size_t Diagnostics::count(DiagSeverity severity) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Diagnostic& d : records_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

const Diagnostic* Diagnostics::first(DiagCode code) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const Diagnostic& d : records_) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

void Diagnostics::print(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const Diagnostic& d : records_) out << d.to_string() << "\n";
}

}  // namespace udsim
