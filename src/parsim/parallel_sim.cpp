#include "parsim/parallel_sim.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "analysis/pcset.h"
#include "ir/emit_util.h"
#include "obs/metrics.h"

namespace udsim {

namespace {

[[nodiscard]] int floor_div(int a, int b) noexcept {
  int q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Record the shift-site ledger of an alignment plan: every potential
/// realignment site (each distinct (gate, input net) pair plus one output
/// site per non-constant gate) is either retained (non-zero shift) or
/// eliminated (alignments line up). retained + eliminated == total by
/// construction here; the cross-check that the *emitter's* independent
/// retained count agrees is tests/metrics_invariant_test.cpp's job.
void record_shift_sites(MetricsRegistry* reg, const Netlist& nl,
                        const AlignmentPlan& plan) {
  std::uint64_t total = 0, retained = 0;
  std::vector<std::uint32_t> seen;
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const GateId gid{gi};
    const Gate& g = nl.gate(gid);
    if (is_constant(g.type)) continue;
    seen.clear();
    for (NetId in : g.inputs) {
      if (std::find(seen.begin(), seen.end(), in.value) != seen.end()) continue;
      seen.push_back(in.value);
      ++total;
      if (plan.input_shift(nl, gid, in) != 0) ++retained;
    }
    ++total;
    if (plan.output_shift(nl, gid) != 0) ++retained;
  }
  reg->counter("compile.shift_sites_total").add(total);
  reg->counter("compile.shift_sites_retained").add(retained);
  reg->counter("compile.shift_sites_eliminated").add(total - retained);
}

}  // namespace

ParallelCompiled::Probe ParallelCompiled::probe(NetId n, int t) const {
  const int a = plan.net_align[n.value];
  int pos = t - a;
  if (pos < 0) return {0, 0, false};
  pos = std::min(pos, widths[n.value] - 1);
  const int W = options.word_bits;
  return {net_base[n.value] + static_cast<std::uint32_t>(pos / W),
          static_cast<std::uint8_t>(pos % W), true};
}

ParallelCompiled::Probe ParallelCompiled::final_probe(NetId n) const {
  return probe(n, lv.net_level[n.value]);
}

namespace {

// Builds the straight-line program for one netlist under one option set.
class ParallelEmitter {
 public:
  ParallelEmitter(const Netlist& nl, ParallelCompiled& out)
      : nl_(nl), out_(out), p_(out.program), W_(out.options.word_bits) {}

  void run() {
    allocate_fields();
    emit_constants();
    emit_pi_loads();
    emit_net_inits();
    for (GateId g : topological_gate_order(nl_)) {
      if (!is_constant(nl_.gate(g).type)) emit_gate(g);
    }
    p_.arena_words = field_end_ + scratch_high_;
    finalize_stats();
  }

 private:
  // ---- layout ---------------------------------------------------------------

  void allocate_fields() {
    out_.net_base.resize(nl_.net_count());
    out_.net_words.resize(nl_.net_count());
    std::uint32_t next = 0;
    for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
      const auto words = static_cast<std::uint32_t>((out_.widths[n] + W_ - 1) / W_);
      out_.net_base[n] = next;
      out_.net_words[n] = words;
      for (std::uint32_t w = 0; w < words; ++w) {
        p_.names.push_back(w == 0 ? nl_.net(NetId{n}).name
                                  : nl_.net(NetId{n}).name + ".w" + std::to_string(w));
      }
      next += words;
    }
    field_end_ = next;
    p_.input_words = static_cast<std::uint32_t>(nl_.primary_inputs().size());
  }

  // Per-gate scratch pool (indices after the fields; high-water sized).
  void scratch_reset() { scratch_next_ = 0; }
  [[nodiscard]] std::uint32_t scratch() {
    const std::uint32_t idx = field_end_ + scratch_next_++;
    scratch_high_ = std::max(scratch_high_, scratch_next_);
    while (p_.names.size() <= idx) p_.names.emplace_back();
    return idx;
  }

  void op(OpCode code, std::uint32_t dst, std::uint32_t a = 0, std::uint32_t b = 0,
          std::uint8_t imm = 0) {
    p_.ops.push_back({code, imm, dst, a, b});
  }

  // ---- phases ---------------------------------------------------------------

  void emit_constants() {
    for (const Gate& g : nl_.gates()) {
      if (!is_constant(g.type)) continue;
      const std::uint32_t base = out_.net_base[g.output.value];
      const std::uint64_t v = g.type == GateType::Const1 ? ~std::uint64_t{0} : 0;
      for (std::uint32_t w = 0; w < out_.net_words[g.output.value]; ++w) {
        p_.arena_init.push_back({base + w, v});
      }
    }
  }

  void emit_pi_loads() {
    scratch_reset();
    for (std::uint32_t i = 0; i < nl_.primary_inputs().size(); ++i) {
      const NetId pi = nl_.primary_inputs()[i];
      const std::uint32_t base = out_.net_base[pi.value];
      const std::uint32_t words = out_.net_words[pi.value];
      const int a = out_.plan.net_align[pi.value];
      assert(a <= 0 && "primary input alignment must be <= its minlevel (0)");
      if (a == 0) {
        op(OpCode::LoadBcast, base, i);
        for (std::uint32_t w = 1; w < words; ++w) op(OpCode::Copy, base + w, base);
        continue;
      }
      // Negative alignment: bits below -a keep the previous value (paper:
      // "its previous value is copied into all bits whose index is
      // negative"), the rest take the new value.
      const int b = -a;  // first new-value bit position (time 0)
      scratch_reset();
      const std::uint32_t sc_old = scratch();
      const std::uint32_t sc_new = scratch();
      op(OpCode::BcastBit, sc_old, base + static_cast<std::uint32_t>(b / W_), 0,
         static_cast<std::uint8_t>(b % W_));
      op(OpCode::LoadBcast, sc_new, i);
      for (std::uint32_t w = 0; w < words; ++w) {
        const int lo = static_cast<int>(w) * W_;
        const int hi = lo + W_ - 1;
        if (hi < b) {
          op(OpCode::Copy, base + w, sc_old);
        } else if (lo >= b) {
          op(OpCode::Copy, base + w, sc_new);
        } else {
          const int bl = b - lo;  // boundary inside this word, 1..W-1
          op(OpCode::FunnelR, base + w, sc_old, sc_new,
             static_cast<std::uint8_t>(W_ - bl));
        }
      }
    }
  }

  void emit_net_inits() {
    for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
      const Net& net = nl_.net(NetId{n});
      if (net.is_primary_input || net.drivers.empty()) continue;
      const GateId drv = net.drivers.front();
      if (is_constant(nl_.gate(drv).type)) continue;
      const auto& cls = out_.trim_classes(n);
      const std::uint32_t base = out_.net_base[n];
      const int pos_final = lv().net_level[n] - out_.plan.net_align[n];
      // Stable-low words: every bit is the previous vector's final value.
      bool have_bcast = false;
      std::uint32_t sc = 0;
      scratch_reset();
      for (std::uint32_t w = 0; w < cls.size(); ++w) {
        if (cls[w] != WordClass::StableLow) continue;
        if (!have_bcast) {
          sc = scratch();
          op(OpCode::BcastBit, sc, base + static_cast<std::uint32_t>(pos_final / W_), 0,
             static_cast<std::uint8_t>(pos_final % W_));
          have_bcast = true;
        }
        op(OpCode::Copy, base + w, sc);
      }
      // Classic unit-delay unoptimized initialization: the final value moves
      // into bit 0 ahead of the post-gate left shift (paper Fig. 6:
      // "D = (D>>2)&1;"). Multi-delay gates use the pf path instead.
      if (out_.options.shift_elim == ShiftElim::None &&
          out_.plan.output_shift(nl_, drv) == -1 && cls[0] == WordClass::Computed) {
        op(OpCode::ExtractBit, base, base + static_cast<std::uint32_t>(pos_final / W_),
           0, static_cast<std::uint8_t>(pos_final % W_));
      }
    }
  }

  // ---- per-gate emission -----------------------------------------------------

  void emit_gate(GateId gid) {
    const Gate& g = nl_.gate(gid);
    const NetId out_net = g.output;
    const std::uint32_t n = out_net.value;
    const std::uint32_t out_base = out_.net_base[n];
    const std::uint32_t out_words = out_.net_words[n];
    const auto& cls = out_.trim_classes(n);
    const int s_out = out_.plan.output_shift(nl_, gid);
    const int a_g = out_.plan.gate_align[gid.value];

    scratch_reset();
    input_cache_.clear();

    // Result width: per-net formula for aligned modes, full field width in
    // the uniform (unoptimized) mode where all fields share the same size.
    const bool uniform = out_.options.shift_elim == ShiftElim::None;
    const int res_bits = uniform ? out_.widths[n]
                                 : lv().gate_level[gid.value] - a_g + 1;
    const auto res_words = static_cast<std::uint32_t>((res_bits + W_ - 1) / W_);

    // Which result words must be evaluated?
    std::vector<bool> needed(res_words, false);
    bool need_res_msb = false;
    bool need_pf = false;
    for (std::uint32_t w = 0; w < out_words; ++w) {
      if (cls[w] != WordClass::Computed) {
        ++out_.stats.suppressed_stores;
        continue;
      }
      if (s_out == 0) {
        assert(w < res_words);
        needed[w] = true;
        continue;
      }
      const int lo = static_cast<int>(w) * W_ + s_out;
      const int hi = lo + W_ - 1;
      if (lo < 0) need_pf = true;
      const int r_lo = std::max(floor_div(std::max(lo, 0), W_), 0);
      const int r_hi = floor_div(hi, W_);
      for (int r = r_lo; r <= std::min(r_hi, static_cast<int>(res_words) - 1); ++r) {
        needed[static_cast<std::size_t>(r)] = true;
      }
      if (r_hi >= static_cast<int>(res_words)) {
        need_res_msb = true;
        needed[res_words - 1] = true;
      }
    }
    // The classic unit-delay unoptimized word-0 store (paper Fig. 6) keeps
    // bit 0 from the init phase rather than reading a previous-final
    // broadcast; larger delays go through the general pf path.
    if (uniform && s_out == -1) need_pf = false;

    std::uint32_t pf = 0;
    if (need_pf) {
      pf = scratch();
      const int pos_final = lv().net_level[n] - out_.plan.net_align[n];
      op(OpCode::BcastBit, pf, out_base + static_cast<std::uint32_t>(pos_final / W_), 0,
         static_cast<std::uint8_t>(pos_final % W_));
    }

    // Result storage: in place for aligned stores, scratch otherwise.
    std::uint32_t res_base = 0;
    if (s_out != 0) {
      res_base = field_end_ + scratch_next_;
      for (std::uint32_t r = 0; r < res_words; ++r) (void)scratch();
    }
    const auto res_idx = [&](std::uint32_t r) { return res_base + r; };

    // Shift-site statistics (distinct input nets).
    {
      std::vector<std::uint32_t> seen;
      for (NetId in : g.inputs) {
        if (std::find(seen.begin(), seen.end(), in.value) != seen.end()) continue;
        seen.push_back(in.value);
        if (out_.plan.input_shift(nl_, gid, in) != 0) ++out_.stats.shift_sites;
      }
      if (s_out != 0) ++out_.stats.shift_sites;
    }

    // Evaluate needed result words in ascending order.
    std::vector<std::uint32_t> operands;
    for (std::uint32_t r = 0; r < res_words; ++r) {
      if (!needed[r]) continue;
      operands.clear();
      for (NetId in : g.inputs) {
        operands.push_back(read_input_word(gid, in, static_cast<int>(r)));
      }
      const std::uint32_t dst = s_out == 0 ? out_base + r : res_idx(r);
      const std::size_t before = p_.ops.size();
      emit_gate_word(p_.ops, g.type, dst, operands);
      out_.stats.gate_eval_ops += p_.ops.size() - before;
    }

    // Store phase for shifted outputs.
    if (s_out != 0) {
      std::uint32_t res_msb = 0;
      if (need_res_msb) {
        res_msb = scratch();
        op(OpCode::BcastBit, res_msb, res_idx(res_words - 1), 0,
           static_cast<std::uint8_t>(W_ - 1));
      }
      const auto eres = [&](int q) -> std::uint32_t {
        if (q < 0) return pf;
        if (q >= static_cast<int>(res_words)) return res_msb;
        return res_idx(static_cast<std::uint32_t>(q));
      };
      for (std::uint32_t w = 0; w < out_words; ++w) {
        if (cls[w] != WordClass::Computed) continue;
        if (uniform && s_out == -1 && w == 0) {
          op(OpCode::MaskShlOr, out_base, res_idx(0), 0, 1);
          ++out_.stats.shift_ops;
          continue;
        }
        const int g0 = static_cast<int>(w) * W_ + s_out;
        const int q = floor_div(g0, W_);
        const int sh = g0 - q * W_;
        if (sh == 0) {
          op(OpCode::Copy, out_base + w, eres(q));
        } else {
          op(OpCode::FunnelR, out_base + w, eres(q), eres(q + 1),
             static_cast<std::uint8_t>(sh));
          ++out_.stats.shift_ops;
        }
      }
    }

    // Gap fills: broadcast the high bit of the preceding word (Fig. 9).
    for (std::uint32_t w = 1; w < out_words; ++w) {
      if (cls[w] == WordClass::Gap) {
        op(OpCode::BcastBit, out_base + w, out_base + w - 1, 0,
           static_cast<std::uint8_t>(W_ - 1));
      }
    }
  }

  /// Arena word holding input net `in`'s realigned value for result word r.
  std::uint32_t read_input_word(GateId gid, NetId in, int r) {
    const int s_in = out_.plan.input_shift(nl_, gid, in);
    const std::uint32_t base = out_.net_base[in.value];
    const auto in_words = static_cast<int>(out_.net_words[in.value]);
    if (s_in == 0 && r < in_words) return base + static_cast<std::uint32_t>(r);
    const int g0 = r * W_ + s_in;
    const int q = floor_div(g0, W_);
    const int sh = g0 - q * W_;
    if (sh == 0) return ext_word(in, q);
    auto& cache = input_cache_[in.value];
    if (cache.temp == kNoWord) cache.temp = scratch();
    op(OpCode::FunnelR, cache.temp, ext_word(in, q), ext_word(in, q + 1),
       static_cast<std::uint8_t>(sh));
    ++out_.stats.shift_ops;
    return cache.temp;
  }

  /// Extended field read: words below the field replicate bit 0 (stable
  /// previous-vector value), words above replicate the top bit (final).
  std::uint32_t ext_word(NetId in, int q) {
    const std::uint32_t base = out_.net_base[in.value];
    const auto in_words = static_cast<int>(out_.net_words[in.value]);
    if (q >= 0 && q < in_words) return base + static_cast<std::uint32_t>(q);
    auto& cache = input_cache_[in.value];
    if (q < 0) {
      if (cache.lsb == kNoWord) {
        cache.lsb = scratch();
        op(OpCode::BcastBit, cache.lsb, base, 0, 0);
      }
      return cache.lsb;
    }
    if (cache.msb == kNoWord) {
      cache.msb = scratch();
      op(OpCode::BcastBit, cache.msb, base + static_cast<std::uint32_t>(in_words - 1), 0,
         static_cast<std::uint8_t>(W_ - 1));
    }
    return cache.msb;
  }

  void finalize_stats() {
    out_.stats.total_ops = p_.ops.size();
    out_.stats.arena_words = p_.arena_words;
    for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
      out_.stats.field_bits_max = std::max(out_.stats.field_bits_max, out_.widths[n]);
      out_.stats.field_words_max =
          std::max(out_.stats.field_words_max, static_cast<int>(out_.net_words[n]));
    }
  }

  [[nodiscard]] const Levelization& lv() const noexcept { return out_.lv; }

  static constexpr std::uint32_t kNoWord = 0xffffffffu;
  struct InputCache {
    std::uint32_t temp = kNoWord;
    std::uint32_t lsb = kNoWord;
    std::uint32_t msb = kNoWord;
  };

  const Netlist& nl_;
  ParallelCompiled& out_;
  Program& p_;
  const int W_;
  std::uint32_t field_end_ = 0;
  std::uint32_t scratch_next_ = 0;
  std::uint32_t scratch_high_ = 0;
  std::unordered_map<std::uint32_t, InputCache> input_cache_;
};

}  // namespace

EngineKind parallel_engine_kind(const ParallelOptions& options) noexcept {
  switch (options.shift_elim) {
    case ShiftElim::None:
      return options.trimming ? EngineKind::ParallelTrimmed : EngineKind::Parallel;
    case ShiftElim::PathTracing:
      return options.trimming ? EngineKind::ParallelCombined
                              : EngineKind::ParallelPathTracing;
    case ShiftElim::CycleBreaking:
      return EngineKind::ParallelCycleBreaking;
  }
  return EngineKind::Parallel;
}

ParallelCompiled compile_parallel(const Netlist& nl, const ParallelOptions& options) {
  return compile_parallel(nl, options, CompileGuard{});
}

ParallelCompiled compile_parallel(const Netlist& nl, const ParallelOptions& options,
                                  const CompileGuard& guard) {
  nl.validate();
  for (const Net& n : nl.nets()) {
    if (n.drivers.size() > 1) {
      throw NetlistError("compile_parallel requires lowered wired nets (net '" +
                         n.name + "' has several drivers)");
    }
  }
  const EngineKind kind = parallel_engine_kind(options);
  if (!guard.budget.unlimited()) {
    // Predicted from levelization/alignment/trim statistics alone, before
    // any op is emitted — the whole point: reject a blow-up while its cost
    // is still a prediction, not an allocation.
    guard.enforce(estimate_compile_cost(nl, kind, options.word_bits),
                  /*predicted=*/true);
  }
  MetricsRegistry* const reg = guard.metrics;
  TraceSpan total_span(reg, "compile.total");
  ParallelCompiled out;
  out.options = options;
  {
    guard.check_cancel("compile.levelize");
    TraceSpan span(reg, "compile.levelize");
    out.lv = levelize(nl);
  }
  {
    guard.check_cancel("compile.alignment");
    TraceSpan span(reg, "compile.alignment");
    switch (options.shift_elim) {
      case ShiftElim::None:
        out.plan = align_unoptimized(nl, out.lv);
        break;
      case ShiftElim::PathTracing:
        out.plan = align_path_tracing(nl, out.lv);
        break;
      case ShiftElim::CycleBreaking:
        out.plan = align_cycle_breaking(nl, out.lv);
        break;
    }
    check_alignment_plan(nl, out.lv, out.plan);
  }
  const bool uniform = options.shift_elim == ShiftElim::None;
  {
    guard.check_cancel("compile.trimming");
    TraceSpan span(reg, "compile.trimming");
    out.widths = field_widths(nl, out.lv, out.plan, uniform);
    if (options.trimming) {
      const PCSets pc = [&] {
        TraceSpan pc_span(reg, "compile.pcset");
        return compute_pc_sets(nl, out.lv);
      }();
      out.trim = compute_trim_plan(nl, out.lv, pc, out.plan, out.widths,
                                   options.word_bits);
    } else {
      out.trim = full_trim_plan(nl, out.widths, options.word_bits);
    }
  }
  out.program.word_bits = options.word_bits;

  {
    guard.check_cancel("compile.emit");
    TraceSpan span(reg, "compile.emit");
    ParallelEmitter emitter(nl, out);
    emitter.run();
  }
  if (reg) {
    reg->counter("compile.programs").add(1);
    reg->counter("compile.ops").add(out.program.ops.size());
    reg->counter("compile.arena_words").add(out.program.arena_words);
    reg->counter("compile.arena_init_words").add(out.program.arena_init.size());
    reg->counter("compile.input_words").add(out.program.input_words);
    reg->counter("compile.depth").set_max(static_cast<std::uint64_t>(out.lv.depth));
    reg->counter("compile.gate_eval_ops").add(out.stats.gate_eval_ops);
    reg->counter("compile.shift_ops").add(out.stats.shift_ops);
    reg->counter("compile.suppressed_stores").add(out.stats.suppressed_stores);
    reg->counter("compile.words_computed").add(out.trim.computed_words);
    reg->counter("compile.words_stable").add(out.trim.stable_words);
    reg->counter("compile.words_gap").add(out.trim.gap_words);
    record_shift_sites(reg, nl, out.plan);
  }
  if (guard.diag && out.trim.gap_words > 0) {
    guard.diag->report(
        DiagCode::GapWordFallback, DiagSeverity::Note, nl.name(),
        std::to_string(out.trim.gap_words) +
            " representative-free word(s) filled by broadcasting the "
            "preceding word's high bit instead of gate evaluation");
  }
  if (!guard.budget.unlimited()) {
    guard.enforce(measure_compile_cost(out.program, kind, nl.net_count()),
                  /*predicted=*/false);
  }
  return out;
}

}  // namespace udsim
