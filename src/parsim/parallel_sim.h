// The parallel technique of compiled unit-delay simulation (paper §3) and
// its optimizations (paper §4).
//
// Every net owns a bit-field in which bit p is the net's value at time
// p + alignment(net). Gates are simulated with word-parallel logical ops;
// the unit delay becomes a one-bit left shift (unoptimized), a right shift
// at the gate inputs (shift elimination), or no shift at all where the
// alignments line up. Bit-field trimming skips whole words that carry no
// PC-set representative.
//
// Invariant maintained by all generated code: every word of every field is
// valid at every bit position — bit p holds the value at time
// min(p + alignment, level) — so word-granular fills (broadcasts of a
// stable bit) compose with funnel shifts without masking.
#pragma once

#include <span>
#include <vector>

#include "analysis/alignment.h"
#include "analysis/compile_budget.h"
#include "analysis/levelize.h"
#include "analysis/trimming.h"
#include "core/kernel_runner.h"
#include "netlist/netlist.h"

namespace udsim {

enum class ShiftElim : std::uint8_t {
  None,          ///< unoptimized: one left shift after every gate (Fig. 6)
  PathTracing,   ///< paper Fig. 17: right shifts at gate inputs only
  CycleBreaking, ///< spanning-forest alignments; may expand fields
};

struct ParallelOptions {
  bool trimming = false;
  ShiftElim shift_elim = ShiftElim::None;
  int word_bits = 32;
};

struct ParallelCodeStats {
  std::size_t shift_sites = 0;       ///< realignment sites with non-zero shift
  std::size_t shift_ops = 0;         ///< funnel/shift ops emitted
  std::size_t suppressed_stores = 0; ///< per-word stores skipped by trimming
  std::size_t gate_eval_ops = 0;
  std::size_t total_ops = 0;
  int field_words_max = 0;           ///< words per field (uniform in unopt mode)
  int field_bits_max = 0;
  std::size_t arena_words = 0;
};

struct ParallelCompiled {
  Program program;
  ParallelOptions options;
  AlignmentPlan plan;
  Levelization lv;
  std::vector<int> widths;                ///< field width in bits per net
  std::vector<std::uint32_t> net_base;    ///< first arena word of each field
  std::vector<std::uint32_t> net_words;   ///< words per field
  TrimPlan trim;
  ParallelCodeStats stats;

  [[nodiscard]] const std::vector<WordClass>& trim_classes(std::uint32_t n) const {
    return trim.net_words[n];
  }

  struct Probe {
    std::uint32_t word;
    std::uint8_t bit;
    bool in_field;  ///< false: t precedes the field (previous-vector value)
  };
  /// Locate the bit holding net n's value at time t (0 <= t <= depth).
  /// Times beyond the net's level clamp to the final-value bit.
  [[nodiscard]] Probe probe(NetId n, int t) const;
  /// The bit holding the net's final (settled) value.
  [[nodiscard]] Probe final_probe(NetId n) const;
};

[[nodiscard]] ParallelCompiled compile_parallel(const Netlist& nl,
                                                const ParallelOptions& options = {});

/// Guarded variant: throws BudgetExceeded when the predicted or emitted
/// cost crosses `guard.budget`; records compile diagnostics (gap-word
/// fallbacks) into `guard.diag` when set.
[[nodiscard]] ParallelCompiled compile_parallel(const Netlist& nl,
                                                const ParallelOptions& options,
                                                const CompileGuard& guard);

/// The EngineKind label of one parallel-technique option set (used for
/// budget errors and diagnostics).
[[nodiscard]] EngineKind parallel_engine_kind(const ParallelOptions& options) noexcept;

/// Runtime wrapper: steps vectors and exposes full waveform access.
/// Previous-vector finals are captured before each step so that `value_at`
/// is defined even for times preceding a net's alignment.
template <class Word = std::uint32_t>
class ParallelSim {
 public:
  explicit ParallelSim(const Netlist& nl, const ParallelOptions& options = {})
      : nl_(nl), compiled_(make(nl, options)), runner_(compiled_.program),
        prev_final_(nl.net_count(), 0) {}

  ParallelSim(const Netlist& nl, const ParallelOptions& options,
              const CompileGuard& guard)
      : nl_(nl), compiled_(make(nl, options, &guard)), runner_(compiled_.program),
        prev_final_(nl.net_count(), 0) {}

  // runner_ references compiled_.program; relocation would dangle.
  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  void step(std::span<const Bit> pi_values) {
    for (std::uint32_t n = 0; n < nl_.net_count(); ++n) {
      const auto pr = compiled_.final_probe(NetId{n});
      prev_final_[n] = runner_.bit(pr.word, pr.bit);
    }
    in_.assign(nl_.primary_inputs().size(), 0);
    for (std::size_t i = 0; i < in_.size(); ++i) in_[i] = pi_values[i] & 1;
    runner_.run(in_);
  }

  /// Value of any net at any time 0..depth for the last vector.
  [[nodiscard]] Bit value_at(NetId n, int t) const {
    const auto pr = compiled_.probe(n, t);
    if (!pr.in_field) return prev_final_[n.value];
    return runner_.bit(pr.word, pr.bit);
  }
  [[nodiscard]] Bit final_value(NetId n) const {
    const auto pr = compiled_.final_probe(n);
    return runner_.bit(pr.word, pr.bit);
  }
  /// Arena location of the net's settled value (batch-layer probe).
  [[nodiscard]] ArenaProbe final_arena_probe(NetId n) const {
    const auto pr = compiled_.final_probe(n);
    return {pr.word, pr.bit};
  }
  /// Raw field words of a net (for hazard analysis).
  [[nodiscard]] std::span<const Word> field(NetId n) const {
    return runner_.arena().subspan(compiled_.net_base[n.value],
                                   compiled_.net_words[n.value]);
  }
  [[nodiscard]] const ParallelCompiled& compiled() const noexcept { return compiled_; }

  /// Attach runtime execution counters (obs/pass_cost.h), plus the
  /// trimming-specific per-pass constants: stores suppressed by word
  /// trimming and gap words filled by broadcast instead of evaluation.
  void set_metrics(MetricsRegistry* reg) {
    runner_.set_metrics(reg, metric_extras());
  }
  /// Cooperative stop between vectors (see KernelRunner::set_cancel).
  void set_cancel(const CancelToken* token) noexcept { runner_.set_cancel(token); }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  metric_extras() const {
    return {{"exec.trimmed_stores_skipped", compiled_.stats.suppressed_stores},
            {"exec.gap_words_filled", compiled_.trim.gap_words}};
  }

 private:
  static ParallelCompiled make(const Netlist& nl, ParallelOptions options,
                               const CompileGuard* guard = nullptr) {
    options.word_bits = static_cast<int>(sizeof(Word) * 8);
    return guard ? compile_parallel(nl, options, *guard)
                 : compile_parallel(nl, options);
  }

  const Netlist& nl_;
  ParallelCompiled compiled_;
  KernelRunner<Word> runner_;
  std::vector<Bit> prev_final_;
  std::vector<Word> in_;
};

}  // namespace udsim
