// Hazard analysis on parallel-technique bit-fields.
//
// Paper §3: "Although the current implementation of the parallel technique
// does not perform hazard analysis, such analysis could be done quickly by
// using a binary search technique and comparison fields of the form
// 0...01...1 and 1...10...0." This module implements that idea: a net's
// bit-field hazards on a vector iff it is not of single-transition form —
// constant, 0^a 1^b, or 1^a 0^b over its significant bits. The binary
// search probes the field against step masks to find the transition
// boundary and verifies both halves are constant.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace udsim {

struct TransitionShape {
  bool constant = false;  ///< no transition at all
  int boundary = 0;       ///< first bit index of the settled region (when !constant)
  bool rising = false;    ///< 0...01...1 (vs 1...10...0) when !constant
};

/// Analyze the low `width_bits` of a little-endian multi-word bit-field.
/// Returns the single-transition shape, or nullopt if the field transitions
/// more than once — i.e. the net glitched (a static hazard under a
/// unit-delay model).
template <class Word>
[[nodiscard]] std::optional<TransitionShape> single_transition_shape(
    std::span<const Word> field, int width_bits);

/// True iff the field changes value more than once: a hazard.
template <class Word>
[[nodiscard]] bool has_hazard(std::span<const Word> field, int width_bits) {
  return !single_transition_shape(field, width_bits).has_value();
}

/// Reference implementation (linear scan) used by tests to validate the
/// binary-search version.
template <class Word>
[[nodiscard]] int count_transitions(std::span<const Word> field, int width_bits);

extern template std::optional<TransitionShape> single_transition_shape<std::uint32_t>(
    std::span<const std::uint32_t>, int);
extern template std::optional<TransitionShape> single_transition_shape<std::uint64_t>(
    std::span<const std::uint64_t>, int);
extern template int count_transitions<std::uint32_t>(std::span<const std::uint32_t>, int);
extern template int count_transitions<std::uint64_t>(std::span<const std::uint64_t>, int);

}  // namespace udsim
