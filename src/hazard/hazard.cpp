#include "hazard/hazard.h"

#include <algorithm>

namespace udsim {

namespace {

template <class Word>
[[nodiscard]] int bit_at(std::span<const Word> field, int i) {
  constexpr int W = static_cast<int>(sizeof(Word) * 8);
  return static_cast<int>((field[static_cast<std::size_t>(i / W)] >> (i % W)) & 1u);
}

/// Verify bits [lo, hi) all equal `v` using whole-word mask comparisons
/// (the "comparison fields" of the paper) rather than a bit loop.
template <class Word>
[[nodiscard]] bool range_is(std::span<const Word> field, int lo, int hi, int v) {
  constexpr int W = static_cast<int>(sizeof(Word) * 8);
  const Word expect = v ? static_cast<Word>(~Word{0}) : Word{0};
  int i = lo;
  while (i < hi) {
    const int w = i / W;
    const int first = i % W;
    const int last = std::min(hi - w * W, W);  // one past, within word
    Word mask = static_cast<Word>(~Word{0});
    if (first != 0) mask &= static_cast<Word>(~Word{0}) << first;
    if (last != W) mask &= static_cast<Word>((Word{1} << last) - 1);
    if ((field[static_cast<std::size_t>(w)] & mask) != (expect & mask)) return false;
    i = (w + 1) * W;
  }
  return true;
}

}  // namespace

template <class Word>
std::optional<TransitionShape> single_transition_shape(std::span<const Word> field,
                                                       int width_bits) {
  if (width_bits <= 1) return TransitionShape{true, 0, false};
  const int v0 = bit_at(field, 0);
  const int vt = bit_at(field, width_bits - 1);
  if (v0 == vt) {
    if (range_is(field, 0, width_bits, v0)) return TransitionShape{true, 0, false};
    return std::nullopt;  // departs and returns: at least two transitions
  }
  // Binary search for the boundary: smallest index whose bit equals vt,
  // assuming a single transition (verified afterwards).
  int lo = 0;
  int hi = width_bits - 1;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (bit_at(field, mid) == v0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (!range_is(field, 0, hi, v0) || !range_is(field, hi, width_bits, vt)) {
    return std::nullopt;
  }
  return TransitionShape{false, hi, vt == 1};
}

template <class Word>
int count_transitions(std::span<const Word> field, int width_bits) {
  int n = 0;
  for (int i = 1; i < width_bits; ++i) {
    if (bit_at(field, i) != bit_at(field, i - 1)) ++n;
  }
  return n;
}

template std::optional<TransitionShape> single_transition_shape<std::uint32_t>(
    std::span<const std::uint32_t>, int);
template std::optional<TransitionShape> single_transition_shape<std::uint64_t>(
    std::span<const std::uint64_t>, int);
template int count_transitions<std::uint32_t>(std::span<const std::uint32_t>, int);
template int count_transitions<std::uint64_t>(std::span<const std::uint64_t>, int);

}  // namespace udsim
