// Rolling-window aggregation for live service telemetry (DESIGN.md §5l).
//
// The PR 3 registry is cumulative: its counters answer "since the service
// started". A live SLO needs "over the last minute". RollingWindow is a
// fixed ring of per-interval buckets — each holding per-slot outcome counts
// and one 65-bucket log2 latency histogram, all relaxed atomics — that a
// hot resolve() path can record into with no locks on the common path (one
// rare mutex acquisition per bucket *rotation*, i.e. once per interval).
//
// Two views with different guarantees:
//   - totals(): cumulative per-slot counts since construction. EXACT — every
//     record() bumps them unconditionally, so they always equal the
//     service's exactly-once outcome counters (the hard invariant the soak
//     test holds).
//   - snapshot(now): the windowed view over the last `buckets` intervals.
//     Buckets whose interval has slid out of the window are excluded;
//     within the covered span the counts are exact per bucket (a record
//     racing a rotation at an interval edge may land in the new interval —
//     time attribution at edges is approximate, counts are never lost
//     because totals() is bumped first).
//
// Slots are opaque small integers so this layer stays independent of the
// service's Outcome enum; the service maps Outcome → slot by value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace udsim {

struct RollingWindowConfig {
  std::uint64_t interval_ns = 1'000'000'000;  ///< bucket granularity (1 s)
  std::size_t buckets = 60;  ///< window span = interval_ns × buckets
};

/// Service-level objective targets evaluated against a window snapshot.
struct SloConfig {
  /// Fraction of requests that must end "good" (not a service-side failure
  /// or refusal) over the window.
  double availability_target = 0.999;
  /// Latency objective: the `latency_quantile` of windowed latency must be
  /// at or below this many microseconds.
  std::uint64_t latency_target_us = 1'000'000;
  double latency_quantile = 0.95;
};

/// One evaluated SLO view (see evaluate_slo).
struct SloView {
  std::uint64_t total = 0;     ///< windowed requests
  std::uint64_t good = 0;      ///< windowed requests in a "good" slot
  std::uint64_t errors = 0;    ///< total - good
  double availability = 1.0;   ///< good / total (1.0 when empty)
  /// Error budget for the windowed traffic: (1 - target) × total, and how
  /// much of it the observed errors consumed (> 1.0 = budget blown).
  double error_budget = 0.0;
  double budget_consumed = 0.0;
  std::uint64_t latency_q_us = 0;  ///< observed quantile (upper-bound estimate)
  bool latency_ok = true;
  bool availability_ok = true;
};

class RollingWindow {
 public:
  /// `slots` is the number of distinct outcome slots (record() takes
  /// slot < slots). Throws std::invalid_argument on zero slots/buckets.
  RollingWindow(RollingWindowConfig cfg, std::size_t slots);

  /// Record one resolution: `slot` names the outcome, `latency_us` feeds
  /// the windowed latency histogram, `now_ns` is the caller's steady clock
  /// (explicit so tests can drive time deterministically). Lock-free except
  /// when `now_ns` enters a new interval (one mutex-guarded bucket reset).
  void record(std::size_t slot, std::uint64_t latency_us,
              std::uint64_t now_ns) noexcept;

  /// Cumulative per-slot counts since construction — exact, never expire.
  [[nodiscard]] std::vector<std::uint64_t> totals() const;
  [[nodiscard]] std::uint64_t total_count() const noexcept;

  struct Snapshot {
    std::uint64_t now_ns = 0;
    std::uint64_t interval_ns = 0;
    std::uint64_t span_ns = 0;  ///< interval_ns × ring size
    std::uint64_t covered_intervals = 0;  ///< live buckets merged in
    std::vector<std::uint64_t> slot_counts;  ///< windowed, per slot
    std::vector<std::uint64_t> slot_totals;  ///< cumulative (== totals())
    HistogramSnapshot latency;  ///< windowed latency (µs), merged buckets
  };

  /// Merge every bucket still inside the window ending at `now_ns`.
  [[nodiscard]] Snapshot snapshot(std::uint64_t now_ns) const;

  [[nodiscard]] const RollingWindowConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] std::size_t slots() const noexcept { return slot_count_; }

  /// Upper-bound quantile estimate from a log2 histogram snapshot: the
  /// inclusive upper edge of the bucket holding the q-th ordered sample
  /// (0 when empty). Monotone in q; exact to within one power of two.
  [[nodiscard]] static std::uint64_t percentile(const HistogramSnapshot& h,
                                                double q) noexcept;

 private:
  struct Bucket {
    std::atomic<std::uint64_t> epoch{kNeverUsed};
    std::unique_ptr<std::atomic<std::uint64_t>[]> slot_counts;
    std::array<std::atomic<std::uint64_t>, MetricHistogram::kBuckets> lat{};
    std::atomic<std::uint64_t> lat_count{0};
    std::atomic<std::uint64_t> lat_sum{0};
    std::atomic<std::uint64_t> lat_max{0};
  };
  static constexpr std::uint64_t kNeverUsed = ~std::uint64_t{0};

  void rotate(Bucket& b, std::uint64_t epoch) noexcept;

  RollingWindowConfig cfg_;
  std::size_t slot_count_;
  std::vector<Bucket> ring_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> totals_;
  std::atomic<std::uint64_t> total_count_{0};
  std::mutex rotate_mu_;  ///< taken once per interval, never on record
};

/// Evaluate `slo` against a window snapshot. `good_slots` marks which slot
/// indices count as "good" (e.g. Completed, plus client-initiated stops);
/// everything else is an error charged against the budget.
[[nodiscard]] SloView evaluate_slo(const RollingWindow::Snapshot& snap,
                                   const SloConfig& slo,
                                   const std::vector<bool>& good_slots);

}  // namespace udsim
