#include "obs/metrics.h"

#include <chrono>
#include <ostream>

#include "harness/table.h"

namespace udsim {

namespace {

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] bool is_timing_key(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == ".ns";
}

}  // namespace

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::string MetricsRegistry::to_json(bool include_timings) const {
  const auto snap = snapshot();
  std::string json = "{";
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!include_timings && is_timing_key(name)) continue;
    json += first ? "\n" : ",\n";
    first = false;
    json += "  \"" + name + "\": " + std::to_string(value);
  }
  json += first ? "}" : "\n}";
  return json;
}

void MetricsRegistry::print(std::ostream& out) const {
  Table table({"counter", "value"});
  for (const auto& [name, value] : snapshot()) {
    table.add_row({name, std::to_string(value)});
  }
  table.print(out);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->set(0);
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty();
}

TraceSpan::TraceSpan(MetricsRegistry* reg, std::string_view name) : reg_(reg) {
  if (!reg_) return;
  name_ = name;
  start_ns_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (!reg_) return;
  reg_->counter(name_ + ".ns").add(now_ns() - start_ns_);
  reg_->counter(name_ + ".calls").add(1);
}

}  // namespace udsim
