#include "obs/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "harness/table.h"
#include "obs/request_trace.h"

namespace udsim {

namespace {

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] bool is_timing_key(std::string_view name) {
  return (name.size() >= 3 && name.substr(name.size() - 3) == ".ns") ||
         (name.size() >= 3 && name.substr(name.size() - 3) == ".us");
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

std::uint32_t trace_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  }
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::snapshot_histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n != 0) s.buckets.emplace_back(MetricHistogram::bucket_floor(b), n);
    }
    out.emplace(name, std::move(s));
  }
  return out;
}

std::string MetricsRegistry::to_json(bool include_timings) const {
  const auto snap = snapshot();
  const auto hists = snapshot_histograms();
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!include_timings && is_timing_key(name)) continue;
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"" + name + "\": " + std::to_string(value);
  }
  json += first ? "}" : "\n  }";
  json += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists) {
    if (!include_timings && is_timing_key(name)) continue;
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"" + name + "\": {\"count\": " + std::to_string(h.count) +
            ", \"sum\": " + std::to_string(h.sum) +
            ", \"min\": " + std::to_string(h.min) +
            ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [floor, n] : h.buckets) {
      if (!bfirst) json += ", ";
      bfirst = false;
      json += "[" + std::to_string(floor) + ", " + std::to_string(n) + "]";
    }
    json += "]}";
  }
  json += first ? "}" : "\n  }";
  json += "\n}";
  return json;
}

void MetricsRegistry::record_trace(TraceEvent event) {
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (trace_.size() < kMaxTraceEvents) {
      trace_.push_back(std::move(event));
      return;
    }
  }
  counter("trace.dropped").add(1);
}

std::vector<TraceEvent> MetricsRegistry::trace_events() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

std::size_t MetricsRegistry::trace_size() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_.size();
}

std::string MetricsRegistry::trace_to_json() const {
  const auto events = trace_events();
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(std::string_view("trace.dropped"));
    if (it != counters_.end()) dropped = it->second->value();
  }
  std::string json = "{\"displayTimeUnit\": \"ns\", \"metadata\": {";
  json += "\"trace.events\": " + std::to_string(events.size());
  json += ", \"trace.dropped\": " + std::to_string(dropped);
  json += "}, \"traceEvents\": [";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "  {\"name\": \"";
    append_escaped(json, e.name);
    // Chrome trace timestamps are microseconds; keep ns resolution via the
    // fractional part.
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", e.start_ns / 1000,
                  static_cast<unsigned>(e.start_ns % 1000));
    json += std::string("\", \"ph\": \"X\", \"ts\": ") + buf;
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", e.dur_ns / 1000,
                  static_cast<unsigned>(e.dur_ns % 1000));
    json += std::string(", \"dur\": ") + buf;
    json += ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) {
      json += ", \"args\": {";
      bool afirst = true;
      for (const auto& [key, value] : e.args) {
        if (!afirst) json += ", ";
        afirst = false;
        json += "\"";
        append_escaped(json, key);
        json += "\": " + std::to_string(value);
      }
      json += "}";
    }
    json += "}";
  }
  json += first ? "]}" : "\n]}";
  return json;
}

void MetricsRegistry::clear_trace() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.clear();
}

void MetricsRegistry::print(std::ostream& out) const {
  Table table({"counter", "value"});
  for (const auto& [name, value] : snapshot()) {
    table.add_row({name, std::to_string(value)});
  }
  table.print(out);
}

void MetricsRegistry::reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->set(0);
    for (auto& [name, h] : histograms_) h->reset_values();
  }
  clear_trace();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && histograms_.empty();
}

TraceSpan::TraceSpan(MetricsRegistry* reg, std::string_view name) : reg_(reg) {
  if (!reg_) return;
  name_ = name;
  tid_ = trace_thread_id();
  start_ns_ = now_ns();
  // Spans opened inside a RequestTraceScope tag themselves with the request
  // id, cross-linking the thread lanes with the per-request lanes.
  if (const RequestTraceId req = current_request_trace_id(); req != 0) {
    args_.emplace_back("request", req);
  }
}

TraceSpan::~TraceSpan() {
  if (!reg_) return;
  const std::uint64_t dur = now_ns() - start_ns_;
  reg_->counter(name_ + ".ns").add(dur);
  reg_->counter(name_ + ".calls").add(1);
  reg_->record_trace(TraceEvent{std::move(name_), start_ns_, dur, tid_,
                                std::move(args_)});
}

void TraceSpan::arg(std::string_view key, std::uint64_t value) {
  if (!reg_) return;
  args_.emplace_back(std::string(key), value);
}

}  // namespace udsim
