#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace udsim {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError(msg, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) throw JsonParseError("unexpected end", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // ASCII pass-through is all our own emitters ever produce.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (!digits) fail("expected a value");
    bool integral = text_[start] != '-';
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string tok(text_.substr(start, pos_ - start));
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        v.integer = u;
        v.is_integer = true;
      }
    }
    v.number = std::strtod(tok.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_impl(const JsonValue& v, std::string& out, int indent, int depth) {
  const std::string pad = indent > 0 ? std::string(
                                           static_cast<std::size_t>(indent) *
                                               static_cast<std::size_t>(depth + 1),
                                           ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (v.kind) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Kind::Number:
      if (v.is_integer) {
        out += std::to_string(v.integer);
      } else {
        char buf[40];
        if (std::isfinite(v.number)) {
          std::snprintf(buf, sizeof buf, "%.10g", v.number);
        } else {
          std::snprintf(buf, sizeof buf, "null");  // JSON has no NaN/Inf
        }
        out += buf;
      }
      break;
    case JsonValue::Kind::String:
      out += '"';
      out += json_escape(v.string);
      out += '"';
      break;
    case JsonValue::Kind::Array:
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += i == 0 ? nl : (indent > 0 ? ",\n" : ", ");
        out += pad;
        dump_impl(v.array[i], out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += ']';
      break;
    case JsonValue::Kind::Object:
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += i == 0 ? nl : (indent > 0 ? ",\n" : ", ");
        out += pad;
        out += '"';
        out += json_escape(v.object[i].first);
        out += "\": ";
        dump_impl(v.object[i].second, out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += '}';
      break;
  }
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::out_of_range("missing JSON key: " + std::string(key));
  return *v;
}

std::uint64_t JsonValue::as_u64() const {
  if (is_integer) return integer;
  return static_cast<std::uint64_t>(number);
}

double JsonValue::as_double() const {
  if (is_integer) return static_cast<double>(integer);
  return number;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace udsim
