// Bench-regression harness core (DESIGN.md §5g): run a set of circuits
// through a set of engines, collect throughput plus the *exact* counters
// PR 3 made available, and serialize everything to one schema-versioned
// JSON document (BENCH_results.json). `check_bench_report` diffs a current
// report against a committed baseline: any exact-counter drift is a hard
// violation (those numbers are deterministic by construction), while
// throughput only fails beyond a configurable tolerance (wall clocks are
// noisy; counters are not).
//
// The driver binary is bench/bench_report.cpp; this core lives in the
// library so the `report`-labelled tests can exercise collection and
// checking in-process.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_kind.h"

namespace udsim {

class JsonValue;
class Netlist;

inline constexpr const char* kBenchReportSchema = "udsim-bench-report-v1";

/// One (circuit, engine, width) measurement row.
struct BenchEngineResult {
  std::string engine;      ///< stable slug, e.g. "parallel-combined"
  unsigned threads = 1;    ///< batch worker threads (1 = sequential step loop)
  int word_bits = 32;      ///< dispatched executor lane width of this row
  double seconds = 0.0;    ///< median wall time of one timed run
  double vectors_per_sec = 0.0;
  double us_per_vector = 0.0;
  double arena_bytes_per_gate = 0.0;  ///< peak compile bytes / gate count
  /// Deterministic counters (exec.ops, compile.*, sim.vectors, ...): equal
  /// across runs for fixed (circuit, vectors, seed), so a baseline diff of
  /// any of these is a real behavior change, not noise.
  std::map<std::string, std::uint64_t> exact;
};

struct BenchCircuitResult {
  std::string circuit;
  std::uint64_t gates = 0;
  std::uint64_t inputs = 0;
  std::uint64_t outputs = 0;
  std::vector<BenchEngineResult> engines;
};

struct BenchReport {
  std::string schema = kBenchReportSchema;
  std::uint64_t vectors = 0;
  std::uint64_t seed = 0;
  int trials = 0;
  unsigned batch_threads = 2;
  int word_bits = 32;
  std::vector<BenchCircuitResult> circuits;

  [[nodiscard]] std::string to_json() const;
};

struct BenchRunConfig {
  std::size_t vectors = 256;
  int trials = 3;
  std::uint64_t seed = 88172645463325252ull;
  unsigned batch_threads = 2;
  /// Engines measured with a sequential (1-thread) batch run.
  std::vector<EngineKind> engines{EngineKind::ZeroDelayLcc, EngineKind::PCSet,
                                  EngineKind::ParallelCombined};
  /// Also measure ParallelCombined sharded across batch_threads workers.
  bool with_batch = true;
  /// Also measure EngineKind::Native (the dlopen backend) with 1 thread —
  /// the ir-vs-native row quantifying the interpreter tax. Opt-in (the
  /// driver enables it): the row is appended, so a baseline without it
  /// still checks clean (check_bench_report walks the baseline's rows), and
  /// a machine without a C compiler just skips the row.
  bool with_native = false;
  /// Also measure the packed LCC data-parallel runner ("lcc-packed" rows)
  /// once per lane width: word_bits independent vectors per executor pass,
  /// so throughput scales with the lane — the row set where the wide
  /// executors show their win (DESIGN.md §5j). Empty = every width
  /// supported_widths() reports; widths unavailable on this build/CPU are
  /// skipped (check_bench_report then reports the coverage loss against a
  /// baseline that had them).
  bool with_packed = true;
  std::vector<int> packed_widths;
};

/// Measure every circuit × engine. Timing runs detached from metrics (the
/// measured loop is the production loop); the exact counters come from one
/// separate metered run of exactly `vectors` passes, so they are
/// independent of the trial count.
[[nodiscard]] BenchReport run_bench_report(
    const std::vector<std::pair<std::string, const Netlist*>>& circuits,
    const BenchRunConfig& cfg = {});

/// "zero-delay-lcc", "pcset", "parallel-combined", ...
[[nodiscard]] std::string bench_engine_slug(EngineKind k);

struct BenchCheckConfig {
  double max_regression_pct = 25.0;  ///< allowed vectors/sec drop vs baseline
  bool check_throughput = true;
};

/// Compare `current` against a parsed baseline document. Returns one
/// human-readable string per violation (empty = pass): schema mismatch,
/// geometry mismatch (vectors/seed — exact counters are only comparable at
/// equal geometry), coverage loss, exact-counter drift, and throughput
/// regressions beyond the tolerance.
[[nodiscard]] std::vector<std::string> check_bench_report(
    const BenchReport& current, const JsonValue& baseline,
    const BenchCheckConfig& cfg = {});

}  // namespace udsim
