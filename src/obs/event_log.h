// Bounded structured JSONL event log (DESIGN.md §5l).
//
// One line of JSON per event (for the service: per request *resolution*),
// appended to a file by a dedicated writer thread behind a bounded queue.
// The producer side is a mutex-guarded push that never blocks on I/O: when
// the writer cannot keep up and the queue is full, the line is dropped and
// *counted* — the log is self-describing about its own losses, so
// "every resolution appears exactly once in the log or in the drop counter"
// is a checkable invariant (the soak test holds it).
//
// The sink is deliberately dumb: it takes pre-rendered lines (the caller
// owns the schema; SimService renders via the obs/json DOM so every line
// round-trips through the hardened parser) and guarantees only atomicity
// per line (single writer thread, one fputs per line + newline) and
// eventual durability (flush() drains and fflushes; the destructor drains).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace udsim {

struct EventLogConfig {
  std::string path;            ///< file appended to; must be non-empty
  std::size_t capacity = 1024; ///< queued lines before append() drops
};

class JsonlEventLog {
 public:
  /// Opens `cfg.path` for append. When `metrics` is non-null, written and
  /// dropped lines bump events.written / events.dropped. A path that cannot
  /// be opened leaves ok() false; append() then drops (and counts) every
  /// line instead of crashing the service over its telemetry.
  explicit JsonlEventLog(EventLogConfig cfg, MetricsRegistry* metrics = nullptr);
  /// Drains the queue, flushes and closes the file, joins the writer.
  ~JsonlEventLog();
  JsonlEventLog(const JsonlEventLog&) = delete;
  JsonlEventLog& operator=(const JsonlEventLog&) = delete;

  /// Enqueue one event line (without trailing newline; the writer adds it).
  /// Returns false — and bumps the drop counter — when the queue is at
  /// capacity or the sink is unusable. Never blocks on I/O.
  bool append(std::string line);

  /// Block until every line enqueued before the call is written and
  /// fflush()ed. Safe from any thread.
  void flush();

  [[nodiscard]] std::uint64_t written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return cfg_.path; }

 private:
  void writer_loop();

  EventLogConfig cfg_;
  MetricsRegistry* metrics_;
  std::FILE* file_ = nullptr;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< producer → writer
  std::condition_variable drain_cv_;  ///< writer → flush()ers
  std::deque<std::string> queue_;
  bool stopping_ = false;
  bool writer_idle_ = true;

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::thread writer_;
};

}  // namespace udsim
