#include "obs/bench_report.h"

#include <cstdio>
#include <span>

#include "analysis/compile_budget.h"
#include "core/packed_runner.h"
#include "core/simulator.h"
#include "core/width_dispatch.h"
#include "harness/timer.h"
#include "netlist/netlist.h"
#include "obs/json.h"

namespace udsim {

namespace {

[[nodiscard]] bool is_nondeterministic_key(const std::string& name) {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  // Wall-clock counters and span call counts (calls vary with attach/detach
  // choreography, not simulation behavior); native.* describes toolchain and
  // cache state (hit vs miss depends on what earlier runs left in the cache
  // directory); everything else the registry holds is a per-pass constant
  // times a deterministic pass count.
  if (name.rfind("native.", 0) == 0) return true;
  return ends_with(".ns") || ends_with(".us") || ends_with(".calls");
}

[[nodiscard]] std::vector<Bit> xorshift_stream(std::size_t vectors,
                                               std::size_t inputs,
                                               std::uint64_t x) {
  if (x == 0) x = 88172645463325252ull;
  std::vector<Bit> stream(vectors * inputs);
  for (Bit& b : stream) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Bit>(x & 1);
  }
  return stream;
}

[[nodiscard]] BenchEngineResult measure_engine(const Netlist& nl,
                                               EngineKind kind,
                                               unsigned threads,
                                               std::span<const Bit> stream,
                                               const BenchRunConfig& cfg) {
  BenchEngineResult row;
  row.engine = bench_engine_slug(kind);
  row.threads = threads;

  MetricsRegistry reg;
  CompileGuard guard;
  guard.metrics = &reg;
  auto sim = make_simulator(nl, kind, guard);
  if (const Program* program = sim->compiled_program()) {
    row.word_bits = program->word_bits;
  }

  // Timed runs are detached from the registry: the measured loop is the
  // production loop (one dead branch per pass), not the metered one.
  sim->set_metrics(nullptr);
  row.seconds = median_seconds(
      [&] { (void)sim->run_batch(stream, threads); }, cfg.trials);
  if (row.seconds > 0.0) {
    row.vectors_per_sec = static_cast<double>(cfg.vectors) / row.seconds;
    row.us_per_vector = row.seconds * 1e6 / static_cast<double>(cfg.vectors);
  }

  // One metered run of exactly cfg.vectors passes: the exact counters are
  // then independent of the trial count above.
  sim->set_metrics(&reg);
  (void)sim->run_batch(stream, threads);
  sim->set_metrics(nullptr);
  for (const auto& [name, value] : reg.snapshot()) {
    if (!is_nondeterministic_key(name)) row.exact.emplace(name, value);
  }
  const std::uint64_t stable = row.exact.count("compile.words_stable")
                                   ? row.exact.at("compile.words_stable")
                                   : 0;
  const std::uint64_t gap =
      row.exact.count("compile.words_gap") ? row.exact.at("compile.words_gap") : 0;
  if (stable + gap != 0 || row.exact.count("compile.words_stable")) {
    row.exact["compile.trimmed_words"] = stable + gap;
  }
  if (const Program* program = sim->compiled_program()) {
    const CompileCostEstimate est =
        measure_compile_cost(*program, kind, nl.net_count());
    row.exact["compile.peak_bytes"] = est.peak_bytes;
    if (nl.gate_count() != 0) {
      row.arena_bytes_per_gate = static_cast<double>(est.peak_bytes) /
                                 static_cast<double>(nl.gate_count());
    }
  }
  return row;
}

/// One "lcc-packed" row: the packed data-parallel LCC runner at one lane
/// width — word_bits independent vectors per executor pass, the row set
/// where throughput scales with the dispatched width.
[[nodiscard]] BenchEngineResult measure_packed(const Netlist& nl, int word_bits,
                                               std::span<const Bit> stream,
                                               const BenchRunConfig& cfg) {
  BenchEngineResult row;
  row.engine = "lcc-packed";
  row.threads = 1;

  // Timed runs detached from metrics, same protocol as measure_engine.
  row.seconds = median_seconds(
      [&] { (void)run_packed_lcc(nl, stream, word_bits); }, cfg.trials);
  if (row.seconds > 0.0) {
    row.vectors_per_sec = static_cast<double>(cfg.vectors) / row.seconds;
    row.us_per_vector = row.seconds * 1e6 / static_cast<double>(cfg.vectors);
  }

  MetricsRegistry reg;
  CompileGuard guard;
  guard.metrics = &reg;
  const PackedRunResult metered =
      run_packed_lcc(nl, stream, word_bits, &reg, &guard);
  row.word_bits = metered.word_bits;
  for (const auto& [name, value] : reg.snapshot()) {
    if (!is_nondeterministic_key(name)) row.exact.emplace(name, value);
  }
  return row;
}

}  // namespace

std::string bench_engine_slug(EngineKind k) {
  switch (k) {
    case EngineKind::Event2: return "event2";
    case EngineKind::Event3: return "event3";
    case EngineKind::PCSet: return "pcset";
    case EngineKind::Parallel: return "parallel";
    case EngineKind::ParallelTrimmed: return "parallel-trimmed";
    case EngineKind::ParallelPathTracing: return "parallel-path-tracing";
    case EngineKind::ParallelCycleBreaking: return "parallel-cycle-breaking";
    case EngineKind::ParallelCombined: return "parallel-combined";
    case EngineKind::ZeroDelayLcc: return "zero-delay-lcc";
    case EngineKind::Native: return "native";
  }
  return "unknown";
}

BenchReport run_bench_report(
    const std::vector<std::pair<std::string, const Netlist*>>& circuits,
    const BenchRunConfig& cfg) {
  BenchReport report;
  report.vectors = cfg.vectors;
  report.seed = cfg.seed;
  report.trials = cfg.trials;
  report.batch_threads = cfg.batch_threads;
  for (const auto& [name, nl] : circuits) {
    BenchCircuitResult cr;
    cr.circuit = name;
    cr.gates = nl->gate_count();
    cr.inputs = nl->primary_inputs().size();
    cr.outputs = nl->primary_outputs().size();
    const std::vector<Bit> stream =
        xorshift_stream(cfg.vectors, cr.inputs, cfg.seed);
    for (EngineKind kind : cfg.engines) {
      cr.engines.push_back(measure_engine(*nl, kind, 1, stream, cfg));
    }
    if (cfg.with_batch && cfg.batch_threads > 1) {
      cr.engines.push_back(measure_engine(*nl, EngineKind::ParallelCombined,
                                          cfg.batch_threads, stream, cfg));
    }
    if (cfg.with_native) {
      try {
        cr.engines.push_back(
            measure_engine(*nl, EngineKind::Native, 1, stream, cfg));
      } catch (const NativeError&) {
        // No usable C compiler (or cache) on this machine: the native row
        // is absent rather than fabricated; check_bench_report only flags
        // rows the *baseline* has, so IR baselines still check clean.
      }
    }
    if (cfg.with_packed) {
      const std::vector<int> widths =
          cfg.packed_widths.empty() ? supported_widths() : cfg.packed_widths;
      for (const int w : widths) {
        // A width this build/CPU lacks is skipped, not narrowed: a silent
        // fallback would produce a row labeled with a width it never ran.
        if (!width_available(w)) continue;
        cr.engines.push_back(measure_packed(*nl, w, stream, cfg));
      }
    }
    report.circuits.push_back(std::move(cr));
  }
  return report;
}

std::string BenchReport::to_json() const {
  JsonValue v = JsonValue::make_object();
  v.set("schema", JsonValue::make_string(schema));
  v.set("vectors", JsonValue::make_uint(vectors));
  v.set("seed", JsonValue::make_uint(seed));
  v.set("trials", JsonValue::make_uint(static_cast<std::uint64_t>(trials)));
  v.set("batch_threads", JsonValue::make_uint(batch_threads));
  v.set("word_bits", JsonValue::make_uint(static_cast<std::uint64_t>(word_bits)));
  JsonValue& cj = v.set("circuits", JsonValue::make_array());
  for (const BenchCircuitResult& c : circuits) {
    JsonValue ce = JsonValue::make_object();
    ce.set("circuit", JsonValue::make_string(c.circuit));
    ce.set("gates", JsonValue::make_uint(c.gates));
    ce.set("inputs", JsonValue::make_uint(c.inputs));
    ce.set("outputs", JsonValue::make_uint(c.outputs));
    JsonValue& ej = ce.set("engines", JsonValue::make_array());
    for (const BenchEngineResult& e : c.engines) {
      JsonValue ee = JsonValue::make_object();
      ee.set("engine", JsonValue::make_string(e.engine));
      ee.set("threads", JsonValue::make_uint(e.threads));
      ee.set("word_bits",
             JsonValue::make_uint(static_cast<std::uint64_t>(e.word_bits)));
      ee.set("seconds", JsonValue::make_double(e.seconds));
      ee.set("vectors_per_sec", JsonValue::make_double(e.vectors_per_sec));
      ee.set("us_per_vector", JsonValue::make_double(e.us_per_vector));
      ee.set("arena_bytes_per_gate",
             JsonValue::make_double(e.arena_bytes_per_gate));
      JsonValue& xj = ee.set("exact", JsonValue::make_object());
      for (const auto& [name, value] : e.exact) {
        xj.set(name, JsonValue::make_uint(value));
      }
      ej.array.push_back(std::move(ee));
    }
    cj.array.push_back(std::move(ce));
  }
  return v.dump();
}

std::vector<std::string> check_bench_report(const BenchReport& current,
                                            const JsonValue& baseline,
                                            const BenchCheckConfig& cfg) {
  std::vector<std::string> violations;
  if (!baseline.is_object() || !baseline.has("schema") ||
      !baseline.at("schema").is_string()) {
    violations.push_back("baseline: not a bench report (missing schema)");
    return violations;
  }
  if (baseline.at("schema").string != current.schema) {
    violations.push_back("baseline schema '" + baseline.at("schema").string +
                         "' != '" + current.schema + "'");
    return violations;
  }
  // Exact counters only compare at equal geometry: exec.ops is a function
  // of (circuit, vectors), the input stream of (inputs, seed).
  if (!baseline.has("vectors") || baseline.at("vectors").as_u64() != current.vectors ||
      !baseline.has("seed") || baseline.at("seed").as_u64() != current.seed) {
    violations.push_back(
        "baseline geometry differs (vectors/seed); re-generate the baseline "
        "with the current settings before checking");
    return violations;
  }

  // Index the current rows by (circuit, engine, threads, lane width).
  const auto row_key = [](const std::string& circuit, const std::string& engine,
                          std::uint64_t threads, std::uint64_t word_bits) {
    return circuit + "/" + engine + "@" + std::to_string(threads) + "/w" +
           std::to_string(word_bits);
  };
  std::map<std::string, const BenchEngineResult*> rows;
  for (const BenchCircuitResult& c : current.circuits) {
    for (const BenchEngineResult& e : c.engines) {
      rows.emplace(row_key(c.circuit, e.engine, e.threads,
                           static_cast<std::uint64_t>(e.word_bits)),
                   &e);
    }
  }
  // Baselines predating per-row widths carry one report-level word_bits;
  // their rows compare against current rows at that width.
  const std::uint64_t baseline_word_bits =
      baseline.has("word_bits") ? baseline.at("word_bits").as_u64() : 32;

  const JsonValue* bcircuits = baseline.find("circuits");
  if (!bcircuits || !bcircuits->is_array()) {
    violations.push_back("baseline: missing circuits array");
    return violations;
  }
  for (const JsonValue& bc : bcircuits->array) {
    const std::string circuit =
        bc.has("circuit") ? bc.at("circuit").string : "?";
    const JsonValue* bengines = bc.find("engines");
    if (!bengines || !bengines->is_array()) continue;
    for (const JsonValue& be : bengines->array) {
      const std::string engine = be.has("engine") ? be.at("engine").string : "?";
      const std::uint64_t threads =
          be.has("threads") ? be.at("threads").as_u64() : 1;
      const std::uint64_t word_bits = be.has("word_bits")
                                          ? be.at("word_bits").as_u64()
                                          : baseline_word_bits;
      const std::string key = row_key(circuit, engine, threads, word_bits);
      const auto it = rows.find(key);
      if (it == rows.end()) {
        violations.push_back(key + ": in baseline but not in current run "
                             "(coverage shrank)");
        continue;
      }
      const BenchEngineResult& cur = *it->second;
      if (const JsonValue* bexact = be.find("exact"); bexact && bexact->is_object()) {
        for (const auto& [name, bval] : bexact->object) {
          const auto cit = cur.exact.find(name);
          if (cit == cur.exact.end()) {
            violations.push_back(key + ": exact counter '" + name +
                                 "' missing from current run");
            continue;
          }
          if (cit->second != bval.as_u64()) {
            violations.push_back(
                key + ": exact counter '" + name + "' drifted: baseline " +
                std::to_string(bval.as_u64()) + " != current " +
                std::to_string(cit->second));
          }
        }
      }
      if (cfg.check_throughput && be.has("vectors_per_sec")) {
        const double base_vps = be.at("vectors_per_sec").as_double();
        const double floor = base_vps * (1.0 - cfg.max_regression_pct / 100.0);
        if (base_vps > 0.0 && cur.vectors_per_sec < floor) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "%s: throughput regressed beyond %.1f%%: baseline "
                        "%.0f vec/s, current %.0f vec/s",
                        key.c_str(), cfg.max_regression_pct, base_vps,
                        cur.vectors_per_sec);
          violations.emplace_back(buf);
        }
      }
    }
  }
  return violations;
}

}  // namespace udsim
