#include "obs/event_log.h"

#include <utility>
#include <vector>

namespace udsim {

JsonlEventLog::JsonlEventLog(EventLogConfig cfg, MetricsRegistry* metrics)
    : cfg_(std::move(cfg)), metrics_(metrics) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  if (!cfg_.path.empty()) file_ = std::fopen(cfg_.path.c_str(), "a");
  if (file_ != nullptr) {
    writer_ = std::thread([this] { writer_loop(); });
  }
}

JsonlEventLog::~JsonlEventLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

bool JsonlEventLog::append(std::string line) {
  if (file_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ && queue_.size() < cfg_.capacity) {
      queue_.push_back(std::move(line));
      work_cv_.notify_one();
      return true;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  metric_add(metrics_, "events.dropped", 1);
  return false;
}

void JsonlEventLog::flush() {
  if (file_ == nullptr) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] {
      return (queue_.empty() && writer_idle_) || stopping_;
    });
  }
  std::fflush(file_);
}

void JsonlEventLog::writer_loop() {
  std::vector<std::string> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_idle_ = true;
      drain_cv_.notify_all();
      work_cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      // Take the whole backlog in one swap so the producers' lock hold time
      // stays independent of I/O latency.
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      writer_idle_ = false;
    }
    for (std::string& line : batch) {
      line.push_back('\n');
      std::fputs(line.c_str(), file_);
      written_.fetch_add(1, std::memory_order_relaxed);
      metric_add(metrics_, "events.written", 1);
    }
    std::fflush(file_);
    batch.clear();
  }
}

}  // namespace udsim
