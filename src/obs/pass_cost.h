// Static per-pass cost of a compiled Program, and the pre-resolved counter
// bundle the executor-adjacent layers bump once per vector pass.
//
// A straight-line program executes *every* op on *every* pass — that is the
// defining property of compiled simulation — so all dynamic execution
// counters are per-pass constants times the pass count. Computing the
// constants once (one scan of the op vector) keeps the hot loops free of
// per-op instrumentation while the counters stay exact, not sampled:
// `exec.ops` after N vectors is provably N × |Program|, and the
// metrics-invariant tests hold the runtime to exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"
#include "obs/metrics.h"

namespace udsim {

/// What one executor pass over a Program costs, by static count.
struct ProgramPassCost {
  std::uint64_t ops = 0;            ///< total ops (== program.size())
  std::uint64_t words_written = 0;  ///< arena stores (every op writes dst)
  std::uint64_t words_read = 0;     ///< arena reads (dst for accumulate ops too)
  std::uint64_t shift_ops = 0;      ///< Shl/Shr/ShlOr/MaskShlOr/Funnel*
  std::uint64_t load_ops = 0;       ///< LoadBit/LoadBcast/LoadWord
  std::uint64_t gate_ops = 0;       ///< logic ops (Not..Xnor, Acc*, MaskedCopy)
};

/// One scan of the op vector; every op contributes to exactly one of the
/// shift/load/gate classes (Const/Copy/ExtractBit/BcastBit are data
/// movement and count only toward ops/words).
[[nodiscard]] ProgramPassCost program_pass_cost(const Program& p);

/// Cost of a single op (ops == 1). program_pass_cost is the sum of this
/// over the op vector — the profiler leans on that to attribute cost to
/// circuit structure with an exact, lossless decomposition.
[[nodiscard]] ProgramPassCost op_pass_cost(const Op& op);

inline ProgramPassCost& operator+=(ProgramPassCost& a,
                                   const ProgramPassCost& b) {
  a.ops += b.ops;
  a.words_written += b.words_written;
  a.words_read += b.words_read;
  a.shift_ops += b.shift_ops;
  a.load_ops += b.load_ops;
  a.gate_ops += b.gate_ops;
  return a;
}
inline bool operator==(const ProgramPassCost& a, const ProgramPassCost& b) {
  return a.ops == b.ops && a.words_written == b.words_written &&
         a.words_read == b.words_read && a.shift_ops == b.shift_ops &&
         a.load_ops == b.load_ops && a.gate_ops == b.gate_ops;
}

/// Pre-resolved handles for the per-pass execution counters, plus optional
/// engine-specific extras (per-pass constants the Program alone cannot
/// supply, e.g. trimming's suppressed stores). Null-registry attach yields
/// a disengaged bundle whose on_passes() is a single branch.
struct ExecCounters {
  MetricCounter* vectors = nullptr;  ///< null = disengaged (no registry)
  MetricCounter* ops = nullptr;
  MetricCounter* words_written = nullptr;
  MetricCounter* words_read = nullptr;
  MetricCounter* shift_ops = nullptr;
  MetricCounter* load_ops = nullptr;
  MetricCounter* gate_ops = nullptr;
  std::vector<std::pair<MetricCounter*, std::uint64_t>> extras;
  ProgramPassCost cost;

  [[nodiscard]] static ExecCounters attach(
      MetricsRegistry* reg, const Program& program,
      const std::vector<std::pair<std::string, std::uint64_t>>& extra_per_pass = {});

  [[nodiscard]] bool engaged() const noexcept { return vectors != nullptr; }

  /// Record `n` completed executor passes (relaxed atomic adds).
  void on_passes(std::uint64_t n) const noexcept {
    if (!vectors || n == 0) return;
    vectors->add(n);
    ops->add(cost.ops * n);
    words_written->add(cost.words_written * n);
    words_read->add(cost.words_read * n);
    shift_ops->add(cost.shift_ops * n);
    load_ops->add(cost.load_ops * n);
    gate_ops->add(cost.gate_ops * n);
    for (const auto& [counter, per_pass] : extras) counter->add(per_pass * n);
  }
};

}  // namespace udsim
