// Request-scoped tracing (DESIGN.md §5l).
//
// The PR 5 trace layer answers "where did this *session* spend its time";
// this layer answers the serving question: "where did *this request* spend
// its time". Every SimService::submit() mints a RequestTraceId, and a
// RequestTrace accumulates the request's typed lifecycle phases — admission,
// queue wait, cache disposition (hit / single-flight wait / build), the
// shed-ladder decision, every run attempt, resolution — each with a
// steady-clock start and duration. flush_to() converts the finished trace
// into TraceEvents on a per-request Perfetto lane, so one export shows both
// the thread view (which worker did what) and the request view (what one
// request's life looked like), cross-linked by the "request" arg.
//
// The propagation mechanism is a thread-local scope: RequestTraceScope pins
// the current request's id to the thread, and every TraceSpan constructed
// while the scope is active (compile phases inside the program-cache build,
// batch.run, native.compile) tags itself with a "request" arg
// automatically. Batch shards run on pool threads, so BatchRunner re-enters
// the scope per shard from BatchOptions::trace_id — the one id that is
// threaded explicitly.
//
// Thread model: a RequestTrace is written by one thread at a time (the
// submitting thread until the request is queued, then exactly one service
// worker — the queue hand-off provides the happens-before edge). It is not
// internally synchronized.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace udsim {

/// Opaque per-request trace identifier; 0 = "no trace". Unique within a
/// process (minted from one atomic counter, seeded so two services in one
/// process never collide).
using RequestTraceId = std::uint64_t;

/// Mint the next process-unique trace id (never returns 0).
[[nodiscard]] RequestTraceId mint_request_trace_id() noexcept;

/// Steady-clock ns since an arbitrary process epoch — the same clock
/// TraceSpan stamps, so request-phase events and thread spans share one
/// timeline in the Perfetto export.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// The typed lifecycle phases of one service request, in the order they can
/// occur. A request records a subset: a refusal records only Admission; a
/// cache hit records no CacheBuild; retries repeat RunAttempt/Backoff.
enum class RequestPhase : std::uint8_t {
  Admission,   ///< submit(): shape/quarantine/budget checks
  QueueWait,   ///< bounded-queue residency until a worker picked it up
  ShedDecide,  ///< load-shed ladder decision (arg = level)
  CacheHit,    ///< compiled program served from the cache immediately
  CacheWait,   ///< single-flight: waited for another request's build
  CacheBuild,  ///< this request compiled the program (chain walk inside)
  RunAttempt,  ///< one whole-run batch attempt (arg = attempt number)
  Backoff,     ///< retry backoff sleep between attempts
  Resolve,     ///< outcome sealed, future fulfilled
};

[[nodiscard]] std::string_view request_phase_name(RequestPhase p) noexcept;

/// RAII thread-local scope: while alive, current_request_trace_id() returns
/// `id` on this thread and every TraceSpan constructed here tags itself
/// with a "request" arg. Nesting restores the previous id; id 0 is inert
/// (the scope neither sets nor clears anything).
class RequestTraceScope {
 public:
  explicit RequestTraceScope(RequestTraceId id) noexcept;
  ~RequestTraceScope();
  RequestTraceScope(const RequestTraceScope&) = delete;
  RequestTraceScope& operator=(const RequestTraceScope&) = delete;

 private:
  RequestTraceId previous_ = 0;
  bool engaged_ = false;
};

/// The id pinned by the innermost live RequestTraceScope on this thread,
/// or 0 when none is active.
[[nodiscard]] RequestTraceId current_request_trace_id() noexcept;

/// One request's recorded lifecycle. Records are appended in completion
/// order; phase_ns() sums durations per phase for the event-log line.
class RequestTrace {
 public:
  struct Record {
    RequestPhase phase = RequestPhase::Admission;
    std::uint64_t start_ns = 0;  ///< trace_now_ns timebase
    std::uint64_t dur_ns = 0;
    std::uint64_t arg = 0;  ///< phase-specific (shed level, attempt number)
  };

  RequestTrace() = default;
  explicit RequestTrace(RequestTraceId id) noexcept : id_(id) {}

  [[nodiscard]] RequestTraceId id() const noexcept { return id_; }

  /// No-op on a default-constructed (id 0) trace, so disabled telemetry
  /// costs one branch per phase and never allocates.
  void record(RequestPhase phase, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t arg = 0) {
    if (id_ == 0) return;
    records_.push_back({phase, start_ns, dur_ns, arg});
  }

  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }

  /// Summed duration of every record of `phase` (a retried request has
  /// several RunAttempt records).
  [[nodiscard]] std::uint64_t phase_ns(RequestPhase phase) const noexcept;

  /// Export the trace into `reg`'s trace buffer: one "request.<phase>"
  /// TraceEvent per record plus one enclosing "request" event spanning the
  /// first record's start to the last record's end, all on a synthetic
  /// per-request lane (tid derived from the id) and all carrying the
  /// "request" arg — Perfetto then shows one lane per request next to the
  /// worker-thread lanes. No-op for an id of 0 or an empty trace.
  void flush_to(MetricsRegistry& reg) const;

  /// The synthetic Perfetto lane (tid) this request's events land on.
  [[nodiscard]] static std::uint32_t lane_of(RequestTraceId id) noexcept;

 private:
  RequestTraceId id_ = 0;
  std::vector<Record> records_;
};

}  // namespace udsim
