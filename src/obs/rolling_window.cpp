#include "obs/rolling_window.h"

#include <algorithm>
#include <stdexcept>

namespace udsim {

RollingWindow::RollingWindow(RollingWindowConfig cfg, std::size_t slots)
    : cfg_(cfg), slot_count_(slots) {
  if (slots == 0) {
    throw std::invalid_argument("RollingWindow: slot count must be non-zero");
  }
  if (cfg_.buckets == 0 || cfg_.interval_ns == 0) {
    throw std::invalid_argument(
        "RollingWindow: interval and bucket count must be non-zero");
  }
  ring_ = std::vector<Bucket>(cfg_.buckets);
  for (Bucket& b : ring_) {
    b.slot_counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(slot_count_);
    for (std::size_t s = 0; s < slot_count_; ++s) {
      b.slot_counts[s].store(0, std::memory_order_relaxed);
    }
  }
  totals_ = std::make_unique<std::atomic<std::uint64_t>[]>(slot_count_);
  for (std::size_t s = 0; s < slot_count_; ++s) {
    totals_[s].store(0, std::memory_order_relaxed);
  }
}

void RollingWindow::rotate(Bucket& b, std::uint64_t epoch) noexcept {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  if (b.epoch.load(std::memory_order_relaxed) == epoch) return;
  for (std::size_t s = 0; s < slot_count_; ++s) {
    b.slot_counts[s].store(0, std::memory_order_relaxed);
  }
  for (auto& lb : b.lat) lb.store(0, std::memory_order_relaxed);
  b.lat_count.store(0, std::memory_order_relaxed);
  b.lat_sum.store(0, std::memory_order_relaxed);
  b.lat_max.store(0, std::memory_order_relaxed);
  b.epoch.store(epoch, std::memory_order_release);
}

void RollingWindow::record(std::size_t slot, std::uint64_t latency_us,
                           std::uint64_t now_ns) noexcept {
  if (slot >= slot_count_) slot = slot_count_ - 1;
  // Cumulative totals first: exact under every interleaving with rotation
  // (the invariant layer — windowed attribution below is best-effort at
  // interval edges, these never are).
  totals_[slot].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t epoch = now_ns / cfg_.interval_ns;
  Bucket& b = ring_[epoch % ring_.size()];
  if (b.epoch.load(std::memory_order_acquire) != epoch) rotate(b, epoch);
  b.slot_counts[slot].fetch_add(1, std::memory_order_relaxed);
  b.lat[static_cast<std::size_t>(MetricHistogram::bucket_index(latency_us))]
      .fetch_add(1, std::memory_order_relaxed);
  b.lat_count.fetch_add(1, std::memory_order_relaxed);
  b.lat_sum.fetch_add(latency_us, std::memory_order_relaxed);
  std::uint64_t cur = b.lat_max.load(std::memory_order_relaxed);
  while (latency_us > cur && !b.lat_max.compare_exchange_weak(
                                 cur, latency_us, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> RollingWindow::totals() const {
  std::vector<std::uint64_t> out(slot_count_);
  for (std::size_t s = 0; s < slot_count_; ++s) {
    out[s] = totals_[s].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t RollingWindow::total_count() const noexcept {
  return total_count_.load(std::memory_order_relaxed);
}

RollingWindow::Snapshot RollingWindow::snapshot(std::uint64_t now_ns) const {
  Snapshot snap;
  snap.now_ns = now_ns;
  snap.interval_ns = cfg_.interval_ns;
  snap.span_ns = cfg_.interval_ns * ring_.size();
  snap.slot_counts.assign(slot_count_, 0);
  snap.slot_totals = totals();

  const std::uint64_t now_epoch = now_ns / cfg_.interval_ns;
  // The window covers epochs (now_epoch - buckets, now_epoch]; anything
  // older has expired (its ring position may already be recycled).
  const std::uint64_t oldest =
      now_epoch >= ring_.size() - 1 ? now_epoch - (ring_.size() - 1) : 0;

  std::array<std::uint64_t, MetricHistogram::kBuckets> merged{};
  std::uint64_t min_floor_seen = 0;
  bool any = false;
  for (const Bucket& b : ring_) {
    const std::uint64_t epoch = b.epoch.load(std::memory_order_acquire);
    if (epoch == kNeverUsed || epoch < oldest || epoch > now_epoch) continue;
    ++snap.covered_intervals;
    for (std::size_t s = 0; s < slot_count_; ++s) {
      snap.slot_counts[s] +=
          b.slot_counts[s].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < MetricHistogram::kBuckets; ++i) {
      merged[static_cast<std::size_t>(i)] +=
          b.lat[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    snap.latency.count += b.lat_count.load(std::memory_order_relaxed);
    snap.latency.sum += b.lat_sum.load(std::memory_order_relaxed);
    snap.latency.max =
        std::max(snap.latency.max, b.lat_max.load(std::memory_order_relaxed));
    any = true;
  }
  (void)any;
  for (int i = 0; i < MetricHistogram::kBuckets; ++i) {
    const std::uint64_t n = merged[static_cast<std::size_t>(i)];
    if (n != 0) {
      const std::uint64_t floor = MetricHistogram::bucket_floor(i);
      if (snap.latency.buckets.empty()) min_floor_seen = floor;
      snap.latency.buckets.emplace_back(floor, n);
    }
  }
  snap.latency.min = min_floor_seen;
  return snap;
}

std::uint64_t RollingWindow::percentile(const HistogramSnapshot& h,
                                        double q) noexcept {
  if (h.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th ordered sample (1-based, ceil — the classic nearest-
  // rank definition), then walk the cumulative bucket counts.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(h.count) + 0.9999999999));
  std::uint64_t seen = 0;
  for (const auto& [floor, n] : h.buckets) {
    seen += n;
    if (seen >= rank) {
      // Inclusive upper edge of the log2 bucket: [floor, 2·floor).
      return floor == 0 ? 0 : floor * 2 - 1;
    }
  }
  return h.max;
}

SloView evaluate_slo(const RollingWindow::Snapshot& snap, const SloConfig& slo,
                     const std::vector<bool>& good_slots) {
  SloView v;
  for (std::size_t s = 0; s < snap.slot_counts.size(); ++s) {
    v.total += snap.slot_counts[s];
    if (s < good_slots.size() && good_slots[s]) v.good += snap.slot_counts[s];
  }
  v.errors = v.total - v.good;
  v.availability =
      v.total == 0 ? 1.0
                   : static_cast<double>(v.good) / static_cast<double>(v.total);
  v.error_budget =
      (1.0 - slo.availability_target) * static_cast<double>(v.total);
  v.budget_consumed =
      v.errors == 0
          ? 0.0
          : (v.error_budget <= 0.0
                 ? static_cast<double>(v.errors)  // zero budget: any error blows it
                 : static_cast<double>(v.errors) / v.error_budget);
  v.availability_ok = v.availability >= slo.availability_target || v.total == 0;
  v.latency_q_us = RollingWindow::percentile(snap.latency, slo.latency_quantile);
  v.latency_ok = v.latency_q_us <= slo.latency_target_us;
  return v;
}

}  // namespace udsim
