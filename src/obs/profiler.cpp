#include "obs/profiler.h"

#include <algorithm>
#include <numeric>

#include "analysis/levelize.h"
#include "lcc/lcc.h"
#include "netlist/netlist.h"
#include "obs/json.h"
#include "parsim/parallel_sim.h"
#include "pcsim/pcset_sim.h"

namespace udsim {

namespace {

void size_net_tables(ProfileAttribution& a, const Netlist& nl,
                     std::size_t arena_words) {
  const std::size_t nets = nl.net_count();
  a.word_net.assign(arena_words, ProfileAttribution::kNoNet);
  a.word_level.assign(arena_words, -1);
  a.net_name.resize(nets);
  a.net_level.assign(nets, 0);
  a.net_arena_words.assign(nets, 0);
  for (std::uint32_t n = 0; n < nets; ++n) a.net_name[n] = nl.net(NetId{n}).name;
}

}  // namespace

ProfileAttribution attribution_for(const ParallelCompiled& c,
                                   const Netlist& nl) {
  ProfileAttribution a;
  size_net_tables(a, nl, c.program.arena_words);
  a.depth = c.lv.depth;
  const int W = c.options.word_bits;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    a.net_level[n] = c.lv.net_level[n];
    a.net_arena_words[n] = c.net_words[n];
    for (std::uint32_t w = 0; w < c.net_words[n]; ++w) {
      const std::uint32_t idx = c.net_base[n] + w;
      a.word_net[idx] = n;
      // Settle time of this field word: the time of its highest bit,
      // clamped to the net's level (trailing bits hold the stable value).
      a.word_level[idx] =
          std::min(c.plan.net_align[n] + static_cast<int>(w + 1) * W - 1,
                   c.lv.net_level[n]);
    }
  }
  // Shift-site ledger per gate level: the same walk as the compiler's
  // record_shift_sites (distinct (gate, input) pairs plus one output site
  // per non-constant gate), bucketed by the gate's level so the profile
  // shows *where* shift elimination pays off. Sums equal the
  // compile.shift_sites_* counters (asserted in tests/profiler_test.cpp).
  a.level_shift_sites_retained.assign(a.depth + 1, 0);
  a.level_shift_sites_eliminated.assign(a.depth + 1, 0);
  std::vector<std::uint32_t> seen;
  for (std::uint32_t gi = 0; gi < nl.gate_count(); ++gi) {
    const GateId gid{gi};
    const Gate& g = nl.gate(gid);
    if (is_constant(g.type)) continue;
    const int glv = std::clamp(c.lv.gate_level[gi], 0, a.depth);
    seen.clear();
    for (NetId in : g.inputs) {
      if (std::find(seen.begin(), seen.end(), in.value) != seen.end()) continue;
      seen.push_back(in.value);
      if (c.plan.input_shift(nl, gid, in) != 0) {
        ++a.level_shift_sites_retained[glv];
      } else {
        ++a.level_shift_sites_eliminated[glv];
      }
    }
    if (c.plan.output_shift(nl, gid) != 0) {
      ++a.level_shift_sites_retained[glv];
    } else {
      ++a.level_shift_sites_eliminated[glv];
    }
  }
  return a;
}

ProfileAttribution attribution_for(const LccCompiled& c, const Netlist& nl) {
  ProfileAttribution a;
  size_net_tables(a, nl, c.program.arena_words);
  const Levelization lv = levelize(nl);
  a.depth = lv.depth;
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    a.net_level[n] = lv.net_level[n];
    a.net_arena_words[n] = 1;
    a.word_net[c.net_var[n]] = n;
    a.word_level[c.net_var[n]] = lv.net_level[n];
  }
  return a;
}

ProfileAttribution attribution_for(const PCSetCompiled& c, const Netlist& nl) {
  ProfileAttribution a;
  size_net_tables(a, nl, c.program.arena_words);
  for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
    const auto& vars = c.net_vars[n];
    a.net_arena_words[n] = vars.size();
    for (const auto& [time, word] : vars) {
      a.word_net[word] = n;
      a.word_level[word] = time;
      a.depth = std::max(a.depth, time);
    }
    if (!vars.empty()) a.net_level[n] = vars.back().first;
  }
  return a;
}

ProgramProfile profile_program(const Program& p, const ProfileAttribution& attr,
                               std::size_t top_k) {
  ProgramProfile prof;
  prof.unattributed.level = -1;
  prof.levels.resize(static_cast<std::size_t>(attr.depth) + 1);
  for (std::size_t i = 0; i < prof.levels.size(); ++i) {
    prof.levels[i].level = static_cast<int>(i);
    if (i < attr.level_shift_sites_retained.size()) {
      prof.levels[i].shift_sites_retained = attr.level_shift_sites_retained[i];
      prof.levels[i].shift_sites_eliminated =
          attr.level_shift_sites_eliminated[i];
    }
  }

  const std::size_t nets = attr.net_name.size();
  std::vector<std::uint64_t> net_ops(nets, 0);

  // Backward scan: an op storing into a net's field attributes itself and
  // every preceding scratch op (the computation feeding that store).
  std::uint32_t carry_net = ProfileAttribution::kNoNet;
  int carry_level = -1;
  for (auto it = p.ops.rbegin(); it != p.ops.rend(); ++it) {
    const Op& op = *it;
    std::uint32_t net = op.dst < attr.word_net.size()
                            ? attr.word_net[op.dst]
                            : ProfileAttribution::kNoNet;
    int level;
    if (net != ProfileAttribution::kNoNet) {
      level = attr.word_level[op.dst];
      carry_net = net;
      carry_level = level;
    } else {
      net = carry_net;
      level = carry_level;
    }
    const ProgramPassCost c = op_pass_cost(op);
    prof.total += c;
    if (net == ProfileAttribution::kNoNet || level < 0 || level > attr.depth) {
      prof.unattributed.cost += c;
    } else {
      prof.levels[static_cast<std::size_t>(level)].cost += c;
      net_ops[net] += c.ops;
    }
  }

  const auto make_net = [&](std::uint32_t n) {
    ProfileNet pn;
    pn.net = n;
    pn.name = attr.net_name[n].empty() ? "net" + std::to_string(n)
                                       : attr.net_name[n];
    pn.level = attr.net_level[n];
    pn.arena_words = attr.net_arena_words[n];
    pn.ops = net_ops[n];
    return pn;
  };
  std::vector<std::uint32_t> order(nets);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    if (net_ops[x] != net_ops[y]) return net_ops[x] > net_ops[y];
    return x < y;
  });
  for (std::uint32_t n : order) {
    if (prof.top_by_ops.size() >= top_k || net_ops[n] == 0) break;
    prof.top_by_ops.push_back(make_net(n));
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    if (attr.net_arena_words[x] != attr.net_arena_words[y]) {
      return attr.net_arena_words[x] > attr.net_arena_words[y];
    }
    return x < y;
  });
  for (std::uint32_t n : order) {
    if (prof.top_by_arena_words.size() >= top_k || attr.net_arena_words[n] == 0) {
      break;
    }
    prof.top_by_arena_words.push_back(make_net(n));
  }
  return prof;
}

namespace {

JsonValue cost_json(const ProgramPassCost& c) {
  JsonValue v = JsonValue::make_object();
  v.set("ops", JsonValue::make_uint(c.ops));
  v.set("words_written", JsonValue::make_uint(c.words_written));
  v.set("words_read", JsonValue::make_uint(c.words_read));
  v.set("shift_ops", JsonValue::make_uint(c.shift_ops));
  v.set("load_ops", JsonValue::make_uint(c.load_ops));
  v.set("gate_ops", JsonValue::make_uint(c.gate_ops));
  return v;
}

JsonValue level_json(const ProfileLevel& l) {
  JsonValue v = JsonValue::make_object();
  v.set("level", l.level >= 0 ? JsonValue::make_uint(
                                    static_cast<std::uint64_t>(l.level))
                              : JsonValue::make_double(-1));
  v.set("cost", cost_json(l.cost));
  v.set("shift_sites_retained", JsonValue::make_uint(l.shift_sites_retained));
  v.set("shift_sites_eliminated",
        JsonValue::make_uint(l.shift_sites_eliminated));
  return v;
}

JsonValue net_json(const ProfileNet& n) {
  JsonValue v = JsonValue::make_object();
  v.set("net", JsonValue::make_uint(n.net));
  v.set("name", JsonValue::make_string(n.name));
  v.set("level", JsonValue::make_uint(static_cast<std::uint64_t>(n.level)));
  v.set("arena_words", JsonValue::make_uint(n.arena_words));
  v.set("ops", JsonValue::make_uint(n.ops));
  return v;
}

}  // namespace

std::string ProgramProfile::to_json() const {
  JsonValue v = JsonValue::make_object();
  v.set("total", cost_json(total));
  JsonValue& lv = v.set("levels", JsonValue::make_array());
  for (const ProfileLevel& l : levels) lv.array.push_back(level_json(l));
  v.set("unattributed", level_json(unattributed));
  JsonValue& by_ops = v.set("top_by_ops", JsonValue::make_array());
  for (const ProfileNet& n : top_by_ops) by_ops.array.push_back(net_json(n));
  JsonValue& by_words = v.set("top_by_arena_words", JsonValue::make_array());
  for (const ProfileNet& n : top_by_arena_words) {
    by_words.array.push_back(net_json(n));
  }
  return v.dump();
}

}  // namespace udsim
