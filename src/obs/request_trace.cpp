#include "obs/request_trace.h"

#include <atomic>
#include <string>

namespace udsim {

namespace {

/// Seed the mint with the process start time so ids from two SimService
/// instances (or a service restarted in one process) never repeat.
std::atomic<std::uint64_t>& trace_id_source() noexcept {
  static std::atomic<std::uint64_t> next{
      (static_cast<std::uint64_t>(
           std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count())
       << 20) |
      1};
  return next;
}

thread_local RequestTraceId tls_current_trace = 0;

}  // namespace

RequestTraceId mint_request_trace_id() noexcept {
  const RequestTraceId id =
      trace_id_source().fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? mint_request_trace_id() : id;
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string_view request_phase_name(RequestPhase p) noexcept {
  switch (p) {
    case RequestPhase::Admission:  return "admission";
    case RequestPhase::QueueWait:  return "queue_wait";
    case RequestPhase::ShedDecide: return "shed_decide";
    case RequestPhase::CacheHit:   return "cache_hit";
    case RequestPhase::CacheWait:  return "cache_wait";
    case RequestPhase::CacheBuild: return "cache_build";
    case RequestPhase::RunAttempt: return "run_attempt";
    case RequestPhase::Backoff:    return "backoff";
    case RequestPhase::Resolve:    return "resolve";
  }
  return "?";
}

RequestTraceScope::RequestTraceScope(RequestTraceId id) noexcept {
  if (id == 0) return;
  previous_ = tls_current_trace;
  tls_current_trace = id;
  engaged_ = true;
}

RequestTraceScope::~RequestTraceScope() {
  if (engaged_) tls_current_trace = previous_;
}

RequestTraceId current_request_trace_id() noexcept {
  return tls_current_trace;
}

std::uint64_t RequestTrace::phase_ns(RequestPhase phase) const noexcept {
  std::uint64_t sum = 0;
  for (const Record& r : records_) {
    if (r.phase == phase) sum += r.dur_ns;
  }
  return sum;
}

std::uint32_t RequestTrace::lane_of(RequestTraceId id) noexcept {
  // Worker-thread tids are small ordinals (1, 2, ...); request lanes live
  // far above them so the two families never collide in the export.
  return static_cast<std::uint32_t>(1000000 + id % 1000000);
}

void RequestTrace::flush_to(MetricsRegistry& reg) const {
  if (id_ == 0 || records_.empty()) return;
  const std::uint32_t lane = lane_of(id_);
  std::uint64_t first = records_.front().start_ns;
  std::uint64_t last = 0;
  for (const Record& r : records_) {
    if (r.start_ns < first) first = r.start_ns;
    if (r.start_ns + r.dur_ns > last) last = r.start_ns + r.dur_ns;
    TraceEvent e;
    e.name = "request." + std::string(request_phase_name(r.phase));
    e.start_ns = r.start_ns;
    e.dur_ns = r.dur_ns;
    e.tid = lane;
    e.args.emplace_back("request", id_);
    if (r.arg != 0) e.args.emplace_back("value", r.arg);
    reg.record_trace(std::move(e));
  }
  TraceEvent whole;
  whole.name = "request";
  whole.start_ns = first;
  whole.dur_ns = last > first ? last - first : 0;
  whole.tid = lane;
  whole.args.emplace_back("request", id_);
  reg.record_trace(std::move(whole));
}

}  // namespace udsim
