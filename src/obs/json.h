// Minimal JSON DOM: just enough to parse the reports this repo emits
// (bench baselines for `bench_report --check`, run reports in tests) and to
// build them programmatically. Not a general-purpose library: no unicode
// \uXXXX decoding beyond pass-through of ASCII, objects keep insertion
// order, and unsigned 64-bit integers are preserved exactly (a double
// cannot hold exec.ops for a long run without rounding, and exact-counter
// drift checks must compare exactly).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace udsim {

/// Parse failure: message plus byte offset into the input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// One JSON value. A Number remembers whether the source text was a
/// non-negative integer that fits uint64 (`is_integer`), in which case
/// `integer` is exact and `number` is the (possibly rounded) double view.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  /// Parse a complete document; trailing non-whitespace is an error.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  // -- constructors for building documents --
  [[nodiscard]] static JsonValue make_object() {
    JsonValue v;
    v.kind = Kind::Object;
    return v;
  }
  [[nodiscard]] static JsonValue make_array() {
    JsonValue v;
    v.kind = Kind::Array;
    return v;
  }
  [[nodiscard]] static JsonValue make_string(std::string_view s) {
    JsonValue v;
    v.kind = Kind::String;
    v.string = s;
    return v;
  }
  [[nodiscard]] static JsonValue make_uint(std::uint64_t u) {
    JsonValue v;
    v.kind = Kind::Number;
    v.integer = u;
    v.number = static_cast<double>(u);
    v.is_integer = true;
    return v;
  }
  [[nodiscard]] static JsonValue make_double(double d) {
    JsonValue v;
    v.kind = Kind::Number;
    v.number = d;
    return v;
  }
  [[nodiscard]] static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
  }

  /// Append a member to an Object (no duplicate-key check).
  JsonValue& set(std::string key, JsonValue value) {
    object.emplace_back(std::move(key), std::move(value));
    return object.back().second;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::String; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::Number; }

  /// Exact for integer-sourced numbers; truncates doubles.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;

  /// Serialize. indent > 0 pretty-prints; 0 emits one line.
  [[nodiscard]] std::string dump(int indent = 2) const;
};

/// Escape a string for embedding between JSON quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace udsim
