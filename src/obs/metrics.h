// Observability layer: named monotonic counters, gauges and RAII trace
// spans (DESIGN.md §5e).
//
// The paper's whole evaluation is counting — retained shifts, trimmed
// words, gate evaluations — so the runtime exposes the same quantities as
// *exact* counters instead of samples: a dynamic counter is always a
// per-pass static cost times the number of passes, which makes every
// counter double as a correctness oracle (executed ops == |Program| ×
// vectors; see tests/metrics_invariant_test.cpp).
//
// Zero overhead when disabled: every producer takes a nullable
// `MetricsRegistry*`; with nullptr the hot paths reduce to one predictable
// branch per *vector pass* (never per op), and TraceSpan never reads the
// clock. Counter handles are resolved once (one mutex-protected map lookup)
// and then bumped with relaxed atomics, so shards of a multi-threaded
// `run_batch` can share one registry safely.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace udsim {

/// One named metric: a monotonic counter or a gauge. Address-stable for the
/// registry's lifetime, so producers cache `MetricCounter*` handles and
/// never touch the registry map on the hot path.
class MetricCounter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Gauge write: last value wins.
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Gauge write: keep the maximum ever seen.
  void set_max(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Registry of named counters. Registration is mutex-protected (safe from
/// concurrent shards); reads and bumps are lock-free through the returned
/// handles. See DESIGN.md §5e for the counter catalogue.
class MetricsRegistry {
 public:
  /// Create-or-get. The returned reference stays valid for the registry's
  /// lifetime (values live behind unique_ptr; rehashing never moves them).
  [[nodiscard]] MetricCounter& counter(std::string_view name);

  /// Point-in-time copy of every (name, value) pair, sorted by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Machine-readable export: a flat sorted JSON object, one counter per
  /// line. `include_timings` = false drops every "*.ns" key — the subset
  /// that is deterministic across runs (golden-metrics fixtures diff this).
  [[nodiscard]] std::string to_json(bool include_timings = true) const;

  /// Human table (harness/table): counter | value, sorted by name.
  void print(std::ostream& out) const;

  /// Zero every counter; existing handles stay valid.
  void reset();

  [[nodiscard]] bool empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
};

/// Convenience null-safe bump (registration cost per call; hot paths should
/// cache handles instead).
inline void metric_add(MetricsRegistry* reg, std::string_view name,
                       std::uint64_t delta) {
  if (reg) reg->counter(name).add(delta);
}
inline void metric_set_max(MetricsRegistry* reg, std::string_view name,
                           std::uint64_t v) {
  if (reg) reg->counter(name).set_max(v);
}

/// RAII span: on destruction adds the elapsed wall time to `<name>.ns` and
/// bumps `<name>.calls`. With a null registry the clock is never read.
/// Used around every compile phase (levelize, PC-set, alignment, trimming,
/// emit) and around batch runs.
class TraceSpan {
 public:
  TraceSpan(MetricsRegistry* reg, std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  MetricsRegistry* reg_;
  std::string name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace udsim
