// Observability layer: named monotonic counters, gauges, log2-bucketed
// histograms and RAII trace spans with Chrome-trace export (DESIGN.md §5e,
// §5g).
//
// The paper's whole evaluation is counting — retained shifts, trimmed
// words, gate evaluations — so the runtime exposes the same quantities as
// *exact* counters instead of samples: a dynamic counter is always a
// per-pass static cost times the number of passes, which makes every
// counter double as a correctness oracle (executed ops == |Program| ×
// vectors; see tests/metrics_invariant_test.cpp). Histograms cover the one
// family of values that is *not* a per-pass constant — wall time — with a
// fixed 65-bucket log2 layout so recording stays a few relaxed atomics.
//
// Zero overhead when disabled: every producer takes a nullable
// `MetricsRegistry*`; with nullptr the hot paths reduce to one predictable
// branch per *vector pass* (never per op), and TraceSpan never reads the
// clock. Counter handles are resolved once (one mutex-protected map lookup)
// and then bumped with relaxed atomics, so shards of a multi-threaded
// `run_batch` can share one registry safely.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace udsim {

/// One named metric: a monotonic counter or a gauge. Address-stable for the
/// registry's lifetime, so producers cache `MetricCounter*` handles and
/// never touch the registry map on the hot path.
class MetricCounter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Gauge write: last value wins.
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Gauge write: keep the maximum ever seen.
  void set_max(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// One named log2-bucketed distribution. Bucket 0 holds value 0; value v>=1
/// lands in bucket 1+floor(log2 v), so bucket b covers [2^(b-1), 2^b).
/// Recording is a handful of relaxed atomics (no locks, no allocation), so
/// concurrent batch shards can share one histogram; totals are exact even
/// under contention because every field is an independent atomic.
class MetricHistogram {
 public:
  static constexpr int kBuckets = 65;  ///< bucket 0 + one per bit of uint64

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == std::numeric_limits<std::uint64_t>::max() && count() == 0 ? 0 : m;
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] static int bucket_index(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    int lg = 0;
    while (v >>= 1) ++lg;  // floor(log2 v)
    return 1 + lg;
  }
  /// Smallest value that lands in bucket b (inclusive lower bound).
  [[nodiscard]] static std::uint64_t bucket_floor(int b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

 private:
  friend class MetricsRegistry;
  void reset_values() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<std::uint64_t>::max(),
               std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of one histogram: only the non-empty buckets, as
/// (inclusive lower bound, count) pairs in ascending bound order.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// One finished trace span, buffered for Chrome Trace Event export. tid is
/// a small per-process thread ordinal (stable per thread, assigned on first
/// span), not the OS thread id — Perfetto only needs distinctness.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock, process-relative
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::uint64_t>> args;
};

/// Small per-process thread ordinal (1, 2, ...) used as the trace tid.
[[nodiscard]] std::uint32_t trace_thread_id() noexcept;

/// Registry of named counters, histograms and buffered trace events.
/// Registration is mutex-protected (safe from concurrent shards); reads and
/// bumps are lock-free through the returned handles. See DESIGN.md §5e for
/// the counter catalogue and §5g for the export formats.
class MetricsRegistry {
 public:
  /// Create-or-get. The returned reference stays valid for the registry's
  /// lifetime (values live behind unique_ptr; rehashing never moves them).
  [[nodiscard]] MetricCounter& counter(std::string_view name);

  /// Create-or-get a histogram; same lifetime guarantee as counter().
  [[nodiscard]] MetricHistogram& histogram(std::string_view name);

  /// Point-in-time copy of every (name, value) pair, sorted by name.
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  /// Point-in-time copy of every histogram, sorted by name.
  [[nodiscard]] std::map<std::string, HistogramSnapshot> snapshot_histograms()
      const;

  /// Machine-readable export: `{"counters": {...}, "histograms": {...}}`,
  /// both sections sorted by name (deterministic for identically-driven
  /// registries). `include_timings` = false drops every "*.ns"/"*.us" key —
  /// the subset that is deterministic across runs (golden-metrics fixtures
  /// diff this).
  [[nodiscard]] std::string to_json(bool include_timings = true) const;

  /// Append one finished span to the trace buffer. Drops (and counts, in
  /// "trace.dropped") beyond kMaxTraceEvents so a runaway loop cannot eat
  /// the heap.
  void record_trace(TraceEvent event);

  /// Copy of the buffered trace, in completion order.
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;

  /// Buffered trace-event count without copying the buffer.
  [[nodiscard]] std::size_t trace_size() const;

  /// Chrome Trace Event Format JSON ("X" complete events, µs timestamps) —
  /// load the string in Perfetto (ui.perfetto.dev) or chrome://tracing.
  [[nodiscard]] std::string trace_to_json() const;

  void clear_trace();

  /// Human table (harness/table): counter | value, sorted by name.
  void print(std::ostream& out) const;

  /// Zero every counter and histogram and clear the trace buffer; existing
  /// handles stay valid.
  void reset();

  [[nodiscard]] bool empty() const;

  static constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
      histograms_;
  mutable std::mutex trace_mu_;
  std::vector<TraceEvent> trace_;
};

/// Convenience null-safe bump (registration cost per call; hot paths should
/// cache handles instead).
inline void metric_add(MetricsRegistry* reg, std::string_view name,
                       std::uint64_t delta) {
  if (reg) reg->counter(name).add(delta);
}
inline void metric_set_max(MetricsRegistry* reg, std::string_view name,
                           std::uint64_t v) {
  if (reg) reg->counter(name).set_max(v);
}

/// RAII span: on destruction adds the elapsed wall time to `<name>.ns`,
/// bumps `<name>.calls`, and buffers a TraceEvent (name, tid, start, dur,
/// args) for trace_to_json. The thread ordinal is captured at construction
/// so spans from batch shards are attributable to their worker. With a null
/// registry the clock is never read and arg() is a no-op.
/// Used around every compile phase (levelize, PC-set, alignment, trimming,
/// emit) and around batch runs and their shards.
class TraceSpan {
 public:
  TraceSpan(MetricsRegistry* reg, std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a (key, value) pair exported in the trace event's "args".
  void arg(std::string_view key, std::uint64_t value);

  /// Thread ordinal captured at construction; 0 when disengaged.
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

 private:
  MetricsRegistry* reg_;
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t tid_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> args_;
};

}  // namespace udsim
