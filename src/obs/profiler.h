// Program profiler: attribute per-pass execution cost back to circuit
// structure (DESIGN.md §5g).
//
// A compiled Program is straight-line, so its cost decomposition is exact,
// not sampled: every op runs once per pass, every op stores to exactly one
// arena word, and every arena word either belongs to a net's variable /
// bit-field or is gate-local scratch that feeds the next net store. Walking
// the op vector once therefore attributes 100% of program_pass_cost to
// (level, net) buckets — the profile's level totals *sum exactly* to
// program_pass_cost, which the invariant tests assert for every ISCAS
// profile × engine variant.
//
// Scratch attribution uses the emitters' store discipline: gates compute
// into scratch words and then store to the owning net's field, so a single
// backward scan can hand each scratch op to the net whose store it feeds
// (the nearest following op whose dst is net-owned). Ops after the final
// net store (none today) land in the explicit `unattributed` bucket rather
// than being dropped, keeping the sum lossless by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "obs/pass_cost.h"

namespace udsim {

class Netlist;
struct ParallelCompiled;
struct LccCompiled;
struct PCSetCompiled;

/// Maps arena words of one compiled Program back to nets and levels. Built
/// per engine family from the provenance each compiler already keeps
/// (net_base/net_words + Levelization, net_var, PC-set net_vars).
struct ProfileAttribution {
  static constexpr std::uint32_t kNoNet = 0xffffffffu;

  std::vector<std::uint32_t> word_net;  ///< arena word → net, or kNoNet (scratch)
  std::vector<int> word_level;          ///< arena word → time/level; -1 unknown
  std::vector<std::string> net_name;    ///< per net (may be empty)
  std::vector<int> net_level;           ///< per net: settle level
  std::vector<std::uint64_t> net_arena_words;  ///< per net: field size in words
  int depth = 0;                        ///< max level (levels = depth + 1)

  /// Shift-site ledger bucketed by gate level (parallel engines only; empty
  /// otherwise). Sums match the compile.shift_sites_* counters.
  std::vector<std::uint64_t> level_shift_sites_retained;
  std::vector<std::uint64_t> level_shift_sites_eliminated;
};

[[nodiscard]] ProfileAttribution attribution_for(const ParallelCompiled& c,
                                                 const Netlist& nl);
[[nodiscard]] ProfileAttribution attribution_for(const LccCompiled& c,
                                                 const Netlist& nl);
[[nodiscard]] ProfileAttribution attribution_for(const PCSetCompiled& c,
                                                 const Netlist& nl);

/// Cost bucket for one level of the levelized circuit.
struct ProfileLevel {
  int level = 0;
  ProgramPassCost cost;
  std::uint64_t shift_sites_retained = 0;
  std::uint64_t shift_sites_eliminated = 0;
};

/// One hot net in a top-K ranking.
struct ProfileNet {
  std::uint32_t net = 0;
  std::string name;
  int level = 0;
  std::uint64_t arena_words = 0;
  std::uint64_t ops = 0;  ///< per-pass ops attributed to this net
};

/// Exact structural cost profile of one compiled Program.
struct ProgramProfile {
  ProgramPassCost total;        ///< == program_pass_cost(program)
  ProfileLevel unattributed;    ///< ops no net store claims (level = -1)
  std::vector<ProfileLevel> levels;       ///< index == level
  std::vector<ProfileNet> top_by_ops;
  std::vector<ProfileNet> top_by_arena_words;

  [[nodiscard]] bool engaged() const noexcept {
    return total.ops != 0 || !levels.empty();
  }
  [[nodiscard]] std::string to_json() const;
};

/// One scan of the op vector against the attribution. Lossless: the sum of
/// all level costs plus `unattributed` equals `total` field-for-field.
[[nodiscard]] ProgramProfile profile_program(const Program& p,
                                             const ProfileAttribution& attr,
                                             std::size_t top_k = 8);

}  // namespace udsim
