#include "obs/pass_cost.h"

namespace udsim {

ProgramPassCost program_pass_cost(const Program& p) {
  ProgramPassCost c;
  for (const Op& op : p.ops) c += op_pass_cost(op);
  return c;
}

ProgramPassCost op_pass_cost(const Op& op) {
  ProgramPassCost c;
  c.ops = 1;
  c.words_written = 1;  // every op stores exactly one arena word
  switch (op.code) {
    case OpCode::Const:
      break;  // no arena read
    case OpCode::Copy:
    case OpCode::Not:
    case OpCode::ExtractBit:
    case OpCode::BcastBit:
      c.words_read += 1;
      break;
    case OpCode::And:
    case OpCode::Or:
    case OpCode::Xor:
    case OpCode::Nand:
    case OpCode::Nor:
    case OpCode::Xnor:
      c.words_read += 2;
      break;
    case OpCode::AccAnd:
    case OpCode::AccOr:
    case OpCode::AccXor:
      c.words_read += 2;  // dst and a
      break;
    case OpCode::MaskedCopy:
      c.words_read += 3;  // dst, a, b
      break;
    case OpCode::LoadBit:
    case OpCode::LoadBcast:
    case OpCode::LoadWord:
      break;  // input span, not arena
    case OpCode::Shl:
    case OpCode::Shr:
      c.words_read += 1;
      break;
    case OpCode::ShlOr:
    case OpCode::MaskShlOr:
      c.words_read += 2;  // dst and a
      break;
    case OpCode::FunnelL:
    case OpCode::FunnelR:
      c.words_read += 2;
      break;
  }
  switch (op.code) {
    case OpCode::Shl:
    case OpCode::Shr:
    case OpCode::ShlOr:
    case OpCode::MaskShlOr:
    case OpCode::FunnelL:
    case OpCode::FunnelR:
      ++c.shift_ops;
      break;
    case OpCode::LoadBit:
    case OpCode::LoadBcast:
    case OpCode::LoadWord:
      ++c.load_ops;
      break;
    case OpCode::Not:
    case OpCode::And:
    case OpCode::Or:
    case OpCode::Xor:
    case OpCode::Nand:
    case OpCode::Nor:
    case OpCode::Xnor:
    case OpCode::AccAnd:
    case OpCode::AccOr:
    case OpCode::AccXor:
    case OpCode::MaskedCopy:
      ++c.gate_ops;
      break;
    default:
      break;  // Const/Copy/ExtractBit/BcastBit: data movement
  }
  return c;
}

ExecCounters ExecCounters::attach(
    MetricsRegistry* reg, const Program& program,
    const std::vector<std::pair<std::string, std::uint64_t>>& extra_per_pass) {
  ExecCounters e;
  if (!reg) return e;
  e.cost = program_pass_cost(program);
  // One deterministic histogram sample per attach: the program size. Keeps
  // the histogram section of golden fixtures non-empty and engine-shaped
  // without depending on wall time (timing histograms are "*.ns"/"*.us" and
  // filtered out of the deterministic subset).
  reg->histogram("exec.program_ops").record(e.cost.ops);
  e.vectors = &reg->counter("sim.vectors");
  e.ops = &reg->counter("exec.ops");
  e.words_written = &reg->counter("exec.words_written");
  e.words_read = &reg->counter("exec.words_read");
  e.shift_ops = &reg->counter("exec.shift_ops");
  e.load_ops = &reg->counter("exec.load_ops");
  e.gate_ops = &reg->counter("exec.gate_ops");
  for (const auto& [name, per_pass] : extra_per_pass) {
    e.extras.emplace_back(&reg->counter(name), per_pass);
  }
  return e;
}

}  // namespace udsim
